#!/usr/bin/env python3
"""Figure 2 side by side: conventional unrolled code vs SIMD synthesis.

The paper's Fig. 2 shows Simulink Coder translating a 4-wide
multiply-add-reciprocal model into "four multiplications, four
additions and four reciprocal" scalar statements, and argues that two
SIMD instructions (``vmlaq_f32`` + a vector reciprocal) suffice.
"""

import numpy as np

from repro.arch import ARM_A72
from repro.codegen import HcgGenerator, SimulinkCoderGenerator
from repro.compiler import GCC
from repro.dtypes import DataType
from repro.ir.cemit import emit_c
from repro.model import ModelBuilder, ModelEvaluator
from repro.vm import Machine


def build_fig2_model():
    b = ModelBuilder("fig2", default_dtype=DataType.F32)
    a = b.inport("a", shape=4)
    bb = b.inport("b", shape=4)
    c = b.inport("c", shape=4)
    m = b.add_actor("Mul", "m", a, bb)
    s = b.add_actor("Add", "s", m, c)
    r = b.add_actor("Recp", "r", s)
    b.outport("y", r)
    return b.build()


def main() -> None:
    model = build_fig2_model()

    print("=== Simulink-Coder-style output (unrolled scalar, Fig. 2 left) ===")
    baseline = SimulinkCoderGenerator(ARM_A72).generate(model)
    print(emit_c(baseline))

    print("=== HCG output: the whole model in two SIMD instructions ===")
    hcg_program = HcgGenerator(ARM_A72).generate(model)
    print(emit_c(hcg_program, ARM_A72.instruction_set))

    rng = np.random.default_rng(2)
    inputs = {k: rng.uniform(0.5, 2.0, 4).astype(np.float32) for k in "abc"}
    reference = ModelEvaluator(model).step(inputs)["y"]
    for name, program in (("simulink", baseline), ("hcg", hcg_program)):
        compiled = GCC.compile(program)
        result = Machine(compiled, ARM_A72, cost=GCC.effective_cost(ARM_A72)).run(inputs)
        assert np.allclose(result.outputs["y"], reference, rtol=1e-5)
        print(f"{name:10s}: {result.cycles:6.1f} modelled cycles, outputs correct")


if __name__ == "__main__":
    main()
