#!/usr/bin/env python3
"""2-D intensive actors: an image pre-processing pipeline.

Table 1(a) lists 2-D FFT/DCT/Convolution among the intensive computing
actors.  This example builds an image pipeline — 3x3 blur (Conv2D), a
block DCT (DCT2D), and a 4x4 calibration-matrix inversion — generates
code with HCG and the Simulink-Coder baseline, and prints a profiler
view of where the cycles go.
"""

import numpy as np

from repro.arch import ARM_A72
from repro.codegen import HcgGenerator, SimulinkCoderGenerator
from repro.dtypes import DataType
from repro.model import ModelBuilder, ModelEvaluator
from repro.vm import Machine, compare_report, profile_report

SIZE = 32


def build_pipeline():
    b = ModelBuilder("image_pipeline", default_dtype=DataType.F32)
    image = b.inport("image", shape=(SIZE, SIZE))

    blur_taps = np.full((3, 3), 1.0 / 9.0)
    taps = b.const("taps", value=blur_taps.tolist())
    blurred = b.add_actor(
        "Conv2D", "blur", image, taps,
        rows=SIZE, cols=SIZE, krows=3, kcols=3,
    )
    b.outport("blurred", blurred)

    coeffs = b.add_actor("DCT2D", "dct", image, rows=SIZE, cols=SIZE)
    b.outport("coeffs", coeffs)

    calibration = b.inport("calibration", shape=(4, 4))
    inverse = b.add_actor("MatInv", "inv", calibration, n=4)
    b.outport("calibration_inverse", inverse)
    return b.build()


def main() -> None:
    model = build_pipeline()
    rng = np.random.default_rng(8)
    inputs = {
        "image": rng.uniform(0, 1, (SIZE, SIZE)).astype(np.float32),
        "calibration": (rng.normal(size=(4, 4)) + 4 * np.eye(4)).astype(np.float32),
    }
    reference = ModelEvaluator(model).step(inputs)

    results = {}
    for generator in (SimulinkCoderGenerator(ARM_A72), HcgGenerator(ARM_A72)):
        program = generator.generate(model)
        result = Machine(program, ARM_A72).run(inputs)
        for key, want in reference.items():
            got = result.outputs[key].reshape(want.shape)
            assert np.allclose(got, want, rtol=1e-3, atol=1e-3), (generator.name, key)
        results[generator.name] = result
        if generator.name == "hcg":
            print("--- Algorithm 1 selections for the 2-D actors ---")
            for record in generator.last_intensive.records:
                print(f"  {record.key.actor_key:8s} -> {record.chosen}")
            print()

    print("--- profiler view, HCG run ---")
    print(profile_report(results["hcg"], ARM_A72))
    print()
    print("--- generator comparison (cycles by category) ---")
    print(compare_report(results))
    hcg = results["hcg"].cycles
    base = results["simulink_coder"].cycles
    print(f"\nHCG speedup over the generic-kernel baseline: {base / hcg:.2f}x")
    assert hcg < base


if __name__ == "__main__":
    main()
