#!/usr/bin/env python3
"""Block-based processing with Slice/Concat and adaptive convolution.

Splits a frame into two half-frames (Slice), filters each half against
a different tap set (Conv — Algorithm 1 picks direct or FFT-based
convolution depending on the tap count), trims and rejoins the halves
(Slice + Concat), and post-scales with a batch group.  One model
exercising every actor family: copy actors, intensive actors with
*different* implementation selections, and SIMD-mapped batch actors.
"""

import numpy as np

from repro.arch import ARM_A72
from repro.codegen import HcgGenerator
from repro.dtypes import DataType
from repro.model import ModelBuilder, ModelEvaluator
from repro.vm import Machine, profile_report

FRAME = 512
HALF = FRAME // 2
SHORT_TAPS = 8      # direct convolution territory
LONG_TAPS = 256     # FFT convolution territory


def build_model():
    rng = np.random.default_rng(21)
    b = ModelBuilder("blocks", default_dtype=DataType.F32)
    frame = b.inport("frame", shape=FRAME)

    first = b.add_actor("Slice", "first", frame, offset=0, length=HALF)
    second = b.add_actor("Slice", "second", frame, offset=HALF, length=HALF)

    short_kernel = b.const("h_short", value=rng.normal(scale=0.2, size=SHORT_TAPS).tolist())
    long_kernel = b.const("h_long", value=rng.normal(scale=0.05, size=LONG_TAPS).tolist())
    conv_a = b.add_actor("Conv", "conv_short", first, short_kernel,
                         n=HALF, m=SHORT_TAPS)
    conv_b = b.add_actor("Conv", "conv_long", second, long_kernel,
                         n=HALF, m=LONG_TAPS)

    # trim both convolutions back to HALF samples and rejoin
    trim_a = b.add_actor("Slice", "trim_a", conv_a, offset=0, length=HALF)
    trim_b = b.add_actor("Slice", "trim_b", conv_b, offset=0, length=HALF)
    joined = b.add_actor("Concat", "joined", trim_a, trim_b, shape2=HALF)

    # batch post-processing: scale and clamp (vectorised by Algorithm 2)
    gain = b.const("gain", value=[0.5] * FRAME)
    cap = b.const("cap", value=[1.0] * FRAME)
    scaled = b.add_actor("Mul", "scaled", joined, gain)
    clamped = b.add_actor("Min", "clamped", scaled, cap)
    b.outport("y", clamped)
    return b.build()


def main() -> None:
    model = build_model()
    generator = HcgGenerator(ARM_A72)
    program = generator.generate(model)

    print("--- Algorithm 1: per-actor implementation selection ---")
    for record in generator.last_intensive.records:
        sizes = dict(record.key.size)
        print(f"  Conv(n={sizes['n']}, m={sizes['m']}) -> {record.chosen}")
    chosen = {tuple(sorted(dict(r.key.size).items())): r.chosen
              for r in generator.last_intensive.records}
    assert "direct" in chosen[(("m", SHORT_TAPS), ("n", HALF))]
    assert "fft" in chosen[(("m", LONG_TAPS), ("n", HALF))]
    print("  (short taps -> direct MAC loop; long taps -> FFT convolution)\n")

    print("--- Algorithm 2: instructions for the post-processing group ---")
    for match in generator.last_batch.matches:
        print(f"  {match.spec.name:14s} covers {sorted(match.subgraph.members)}")
    print()

    rng = np.random.default_rng(3)
    inputs = {"frame": rng.normal(size=FRAME).astype(np.float32)}
    result = Machine(program, ARM_A72).run(inputs)
    want = ModelEvaluator(model).step(inputs)["y"]
    assert np.allclose(result.outputs["y"], want, rtol=1e-4, atol=1e-5)
    print("--- outputs verified against the model reference ---")
    print(profile_report(result, ARM_A72, top_events=5))


if __name__ == "__main__":
    main()
