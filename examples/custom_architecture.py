#!/usr/bin/env python3
"""Cross-architecture extension (§3.3 / §4.2).

The paper: "we can simply expand it to other architectures by replacing
the corresponding SIMD instruction set in Algorithm 2" — the instruction
set is an external file of ``Graph: ... ; Code: ...`` records.  This
example defines a small RISC-V-Vector-flavoured 128-bit instruction set
at runtime, registers it, builds an Architecture around it, and lets
HCG synthesise code for it without touching any generator internals.
"""

import numpy as np

from repro.arch import Architecture, CostTable
from repro.codegen import HcgGenerator
from repro.dtypes import DataType
from repro.ir.cemit import emit_c
from repro.isa import parse_instruction_set, register_instruction_set
from repro.model import ModelBuilder, ModelEvaluator
from repro.vm import Machine

RVV_SI = """
# A minimal RISC-V Vector flavoured set (VLEN = 128), written in the
# paper's external instruction-description format.
arch: rvv128
vector_bits: 128

Ins: vadd_vv_i32 ; Graph: Add,i32,4,I1,I2,O1 ; Code: O1 = __riscv_vadd_vv_i32m1(I1, I2, 4) ; Cost: 1
Ins: vsub_vv_i32 ; Graph: Sub,i32,4,I1,I2,O1 ; Code: O1 = __riscv_vsub_vv_i32m1(I1, I2, 4) ; Cost: 1
Ins: vmul_vv_i32 ; Graph: Mul,i32,4,I1,I2,O1 ; Code: O1 = __riscv_vmul_vv_i32m1(I1, I2, 4) ; Cost: 2
Ins: vmin_vv_i32 ; Graph: Min,i32,4,I1,I2,O1 ; Code: O1 = __riscv_vmin_vv_i32m1(I1, I2, 4) ; Cost: 1
Ins: vmax_vv_i32 ; Graph: Max,i32,4,I1,I2,O1 ; Code: O1 = __riscv_vmax_vv_i32m1(I1, I2, 4) ; Cost: 1
Ins: vsra_vi_i32 ; Graph: Shr,i32,4,I1,#imm,O1 ; Code: O1 = __riscv_vsra_vx_i32m1(I1, #imm, 4) ; Cost: 1
# RVV has a true integer multiply-accumulate, unlike x86:
Ins: vmacc_vv_i32 ; Graph: Mul,i32,4,I1,I2,T1 | Add,i32,4,T1,I3,O1 ; Code: O1 = __riscv_vmacc_vv_i32m1(I3, I1, I2, 4) ; Cost: 2
"""


def main() -> None:
    iset = parse_instruction_set(RVV_SI, source="rvv128.si")
    register_instruction_set(iset)
    print(f"registered {len(iset.instructions)} instructions for arch {iset.arch!r}")

    rvv_board = Architecture(
        name="rvv_devboard",
        isa_name="rvv128",
        clock_ghz=1.0,
        cost=CostTable(simd_load=6.0, simd_store=2.0, loop_overhead=2.0),
    )

    b = ModelBuilder("macc_demo", default_dtype=DataType.I32)
    x = b.inport("x", shape=16)
    h = b.const("h", value=list(range(1, 17)))
    acc = b.inport("acc", shape=16)
    weighted = b.add_actor("Mul", "weighted", x, h)
    summed = b.add_actor("Add", "summed", weighted, acc)
    clamped = b.add_actor("Min", "clamped", summed, b.const("cap", value=[10_000] * 16))
    b.outport("y", clamped)
    model = b.build()

    generator = HcgGenerator(rvv_board)
    program = generator.generate(model)

    print("\n--- instructions selected by Algorithm 2 on the new target ---")
    for match in generator.last_batch.matches:
        members = ", ".join(sorted(match.subgraph.members))
        print(f"  {match.spec.name:16s} covers [{members}]")

    print("\n--- generated C (RVV intrinsics from the .si templates) ---")
    print(emit_c(program, iset))

    rng = np.random.default_rng(5)
    inputs = {
        "x": rng.integers(-100, 100, 16).astype(np.int32),
        "acc": rng.integers(-100, 100, 16).astype(np.int32),
    }
    got = Machine(program, rvv_board, instruction_set=iset).run(inputs).outputs["y"]
    want = ModelEvaluator(model).step(inputs)["y"]
    assert np.array_equal(got, want)
    print("outputs match the model reference on the custom target")


if __name__ == "__main__":
    main()
