#!/usr/bin/env python3
"""Adaptive implementation selection for intensive actors (Algorithm 1).

Generates code for FFT models of several input scales and shows which
library implementation HCG's pre-calculation picks for each — the
paper's §3 example ("the FFT actor with 1024 floating point data as
input will be translated into the Radix-4 butterfly FFT implementation").
Then runs the 1024-point model and plots a crude ASCII spectrum.
"""

import numpy as np

from repro.arch import ARM_A72
from repro.bench.models import fft_model
from repro.codegen import HcgGenerator
from repro.codegen.hcg.history import SelectionHistory
from repro.vm import Machine


def selection_demo() -> SelectionHistory:
    history = SelectionHistory()
    print("--- Algorithm 1: implementation choice per input scale ---")
    print(f"{'n':>6s}  {'chosen implementation':24s} {'candidates measured':>20s}")
    for n in (8, 64, 100, 360, 1024, 4096):
        generator = HcgGenerator(ARM_A72, history=history)
        generator.generate(fft_model(n))
        record = generator.last_intensive.records[-1]
        print(f"{n:6d}  {record.chosen:24s} {len(record.measured):>20d}")
    print()

    print("--- the history cache short-circuits repeats ---")
    generator = HcgGenerator(ARM_A72, history=history)
    generator.generate(fft_model(1024))
    record = generator.last_intensive.records[-1]
    print(f"regenerating n=1024: from_history={record.from_history}, "
          f"{history.hits} hit(s) so far\n")
    return history


def spectrum_demo(history: SelectionHistory) -> None:
    n = 1024
    model = fft_model(n)
    program = HcgGenerator(ARM_A72, history=history).generate(model)
    machine = Machine(program, ARM_A72)

    t = np.arange(n) / n
    signal = (np.sin(2 * np.pi * 50 * t) + 0.5 * np.sin(2 * np.pi * 120 * t)).astype(np.float32)
    result = machine.run({"x": signal})
    spectrum = result.outputs["y"]
    magnitude = np.hypot(spectrum[0], spectrum[1])[: n // 2]

    print("--- |FFT| of sin(50 Hz) + 0.5 sin(120 Hz), generated code ---")
    peaks = np.argsort(magnitude)[-2:]
    print(f"dominant bins: {sorted(int(p) for p in peaks)} (expected [50, 120])")
    bins = magnitude[:160].reshape(16, 10).max(axis=1)
    scale = 50.0 / bins.max()
    for index, value in enumerate(bins):
        bar = "#" * int(value * scale)
        print(f"  {index * 10:4d}-{index * 10 + 9:3d} Hz | {bar}")
    print(f"\nmodelled execution cost: {result.cycles:,.0f} cycles "
          f"({result.seconds(ARM_A72, 1) * 1e6:.1f} us/step on a 1.5 GHz A72)")
    assert sorted(int(p) for p in peaks) == [50, 120]


def main() -> None:
    history = selection_demo()
    spectrum_demo(history)


if __name__ == "__main__":
    main()
