#!/usr/bin/env python3
"""Quickstart: build a Simulink-like model, generate code with HCG, run it.

This walks the paper's running example (Fig. 4 / Listing 1): a model of
batch computing actors where HCG synthesises ``vsubq_s32``,
``vhaddq_s32`` and ``vmlaq_s32``.
"""

import numpy as np

from repro.arch import ARM_A72
from repro.bench import compare_generators
from repro.codegen import HcgGenerator
from repro.compiler import GCC
from repro.dtypes import DataType
from repro.ir.cemit import emit_c
from repro.ir.printer import format_program
from repro.model import ModelBuilder, ModelEvaluator, model_to_string
from repro.vm import Machine


def build_model(n: int = 8):
    """Fig. 4(a): Sub = b - c; Shr = (a + Sub) >> 1; Add = Sub + Sub * d."""
    b = ModelBuilder("fig4", default_dtype=DataType.I32)
    a = b.inport("a", shape=n)
    bb = b.inport("b", shape=n)
    c = b.inport("c", shape=n)
    d = b.inport("d", shape=n)
    sub = b.add_actor("Sub", "sub", bb, c)
    add1 = b.add_actor("Add", "add1", a, sub)
    shr = b.add_actor("Shr", "shr", add1, shift=1)
    mul = b.add_actor("Mul", "mul", sub, d)
    add2 = b.add_actor("Add", "add2", sub, mul)
    b.outport("shr_out", shr)
    b.outport("add_out", add2)
    return b.build()


def main() -> None:
    model = build_model()

    print("=== 1. the model, as the XML carrier format ===")
    print(model_to_string(model))

    print("=== 2. HCG-generated program (IR view) ===")
    generator = HcgGenerator(ARM_A72)
    program = generator.generate(model)
    print(format_program(program))
    print()

    print("=== 3. the same program as deployable NEON C ===")
    print(emit_c(program, ARM_A72.instruction_set))

    print("=== 4. execute on the cost-modelled VM ===")
    rng = np.random.default_rng(1)
    inputs = {k: rng.integers(-1000, 1000, size=8).astype(np.int32) for k in "abcd"}
    result = Machine(program, ARM_A72).run(inputs)
    reference = ModelEvaluator(model).step(inputs)
    print("shr_out:", result.outputs["shr_out"])
    print("add_out:", result.outputs["add_out"])
    assert np.array_equal(result.outputs["shr_out"], reference["shr_out"])
    assert np.array_equal(result.outputs["add_out"], reference["add_out"])
    print(f"matches the model reference; modelled cost {result.cycles:.0f} cycles")
    print()

    print("=== 5. compare with the baselines (ARM Cortex-A72 + GCC) ===")
    results = compare_generators(model, ARM_A72, GCC, inputs=inputs)
    for name, run in results.items():
        print(f"  {name:15s} {run.cycles_per_step:8.1f} cycles/step")
    hcg = results["hcg"].cycles_per_step
    base = results["simulink_coder"].cycles_per_step
    print(f"  HCG improvement vs Simulink-Coder baseline: {(base - hcg) / base:.1%}")


if __name__ == "__main__":
    main()
