"""Table 2: execution time of the six benchmark models on ARM + GCC.

Paper numbers (ARM Cortex-A72, GCC, 10,000 iterations):

    Model     Simulink  DFSynth  HCG     impr. vs Simulink / DFSynth
    FFT       0.459s    0.503s   0.183s  60.2% / 63.7%
    DCT       0.430s    0.451s   0.121s  71.9% / 73.2%
    Conv      0.591s    0.722s   0.178s  69.9% / 75.4%
    HighPass  0.447s    0.446s   0.262s  41.3% / 41.2%
    LowPass   0.369s    0.305s   0.164s  55.5% / 46.1%
    FIR       0.415s    0.551s   0.205s  50.6% / 62.8%

The reproduction target is the *shape*: HCG fastest on every model,
with improvements in roughly the 40-75% band.
"""

import pytest

from repro.bench import (
    benchmark_suite,
    compare_generators,
    render_table2,
    summarize_improvements,
)

PAPER_TABLE2 = {
    "FFT": (0.459, 0.503, 0.183),
    "DCT": (0.430, 0.451, 0.121),
    "Conv": (0.591, 0.722, 0.178),
    "HighPass": (0.447, 0.446, 0.262),
    "LowPass": (0.369, 0.305, 0.164),
    "FIR": (0.415, 0.551, 0.205),
}


def _run_table2(arm, gcc):
    return {
        name: compare_generators(model, arm, gcc, steps=2)
        for name, model in benchmark_suite().items()
    }


def test_table2(benchmark, arm, gcc):
    rows = benchmark.pedantic(_run_table2, args=(arm, gcc), rounds=1, iterations=1)
    print("\n=== Table 2 (reproduced, ARM Cortex-A72 + GCC) ===")
    print(render_table2(rows))
    summary = summarize_improvements(rows)
    print(f"improvement bands: vs Simulink {summary['simulink_min']:.1f}-"
          f"{summary['simulink_max']:.1f}%, vs DFSynth {summary['dfsynth_min']:.1f}-"
          f"{summary['dfsynth_max']:.1f}%")

    for name, results in rows.items():
        hcg = results["hcg"].seconds
        # shape claim: HCG strictly fastest everywhere
        assert hcg < results["simulink_coder"].seconds, name
        assert hcg < results["dfsynth"].seconds, name
        benchmark.extra_info[f"{name}_simulink_s"] = round(results["simulink_coder"].seconds, 4)
        benchmark.extra_info[f"{name}_dfsynth_s"] = round(results["dfsynth"].seconds, 4)
        benchmark.extra_info[f"{name}_hcg_s"] = round(hcg, 4)

    # band claim: improvements within the paper's overall reported range
    assert 30.0 <= summary["simulink_min"] and summary["simulink_max"] <= 95.0
    assert 30.0 <= summary["dfsynth_min"] and summary["dfsynth_max"] <= 95.0
