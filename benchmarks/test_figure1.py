"""Figure 1: time cost of different FFT implementations vs input length.

The paper plots Mix-FFT, Rad-2 FFT and Galois FFT over input data
lengths and observes that "no one implementation can always perform
better than the others" — Mix-FFT wins large scales but loses small
ones.  Our library adds the naive DFT and radix-4 to the sweep.
"""

import numpy as np
import pytest

from repro.arch import ARM_A72
from repro.bench import render_figure1
from repro.kernels.base import OpCounts
from repro.kernels.fft import (
    FftBluestein,
    FftMixed,
    FftNaive,
    FftRadix2,
    FftRadix4,
    FftSplitRadix,
)

LENGTHS = [2, 3, 4, 8, 16, 30, 64, 100, 256, 480, 1000, 1024, 2048, 4096]

IMPLEMENTATIONS = {
    "naive-dft": FftNaive(inverse=False),
    "rad2-fft": FftRadix2(inverse=False),
    "rad4-fft": FftRadix4(inverse=False),
    "split-radix": FftSplitRadix(inverse=False),
    "mix-fft": FftMixed(inverse=False),
    "galois(bluestein)": FftBluestein(inverse=False),
}


def _sweep():
    series = {}
    for name, kernel in IMPLEMENTATIONS.items():
        curve = {}
        for n in LENGTHS:
            if not kernel._supports_length(n):
                continue
            counts = OpCounts()
            kernel.execute([np.zeros(n)], {"n": n}, counts)
            curve[n] = counts.cycles(ARM_A72.cost)
        series[name] = curve
    return series


def test_figure1(benchmark):
    series = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print("\n=== Figure 1 (reproduced): FFT implementation cost by length ===")
    print(render_figure1(series))

    def winner(n):
        eligible = {name: curve[n] for name, curve in series.items() if n in curve}
        return min(eligible, key=eligible.get)

    # shape claims from the paper's figure:
    # 1. no single implementation wins everywhere
    winners = {winner(n) for n in LENGTHS}
    assert len(winners) > 1
    # 2. Mix-FFT best on large (composite, non-2^k) scales ...
    assert winner(1000) == "mix-fft"
    # 3. ... but not on the smallest scales
    assert winner(2) != "mix-fft" and winner(3) != "mix-fft"
    # 4. the dedicated pow2 kernels win their exact power-of-two sizes
    assert winner(1024) in ("rad4-fft", "rad2-fft", "split-radix")
    # 4b. split-radix achieves the lowest multiply count at 2^k
    import numpy as np
    from repro.kernels.base import OpCounts

    def mults(kernel, n):
        counts = OpCounts()
        kernel.execute([np.zeros(n)], {"n": n}, counts)
        return counts.mul

    assert mults(IMPLEMENTATIONS["split-radix"], 1024) < mults(
        IMPLEMENTATIONS["rad4-fft"], 1024
    )
    # 5. the naive DFT explodes quadratically at scale
    assert series["naive-dft"][4096] > 50 * series["mix-fft"][4096]

    for name, curve in series.items():
        benchmark.extra_info[f"{name}@1024"] = curve.get(1024)
