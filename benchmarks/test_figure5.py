"""Figure 5: the six models on {ARM, Intel} x {GCC, Clang}.

Paper observations reproduced here:

* HCG's code is the fastest in every panel;
* panel (b) — Intel + GCC — is "quite different from the others" for
  the batch models, because Simulink Coder's scattered SIMD makes
  memory latency the bottleneck under GCC;
* Clang recovers most of that loss (panel d), because it keeps the
  scattered values in vector registers.
"""

import pytest

from repro.bench import (
    benchmark_suite,
    compare_generators,
    render_figure5,
    render_figure5_bars,
    results_to_csv,
)

BATCH_MODELS = ("HighPass", "LowPass")


def _run_panels(arm, intel, gcc, clang):
    suite = benchmark_suite()
    panels = {}
    for label, arch, compiler in (
        ("(a) ARM + GCC", arm, gcc),
        ("(b) Intel + GCC", intel, gcc),
        ("(c) ARM + Clang", arm, clang),
        ("(d) Intel + Clang", intel, clang),
    ):
        panels[label] = {
            name: compare_generators(model, arch, compiler, steps=2)
            for name, model in suite.items()
        }
    return panels


def test_figure5(benchmark, arm, intel, gcc, clang):
    panels = benchmark.pedantic(
        _run_panels, args=(arm, intel, gcc, clang), rounds=1, iterations=1
    )
    print("\n=== Figure 5 (reproduced) ===")
    print(render_figure5(panels))
    print(render_figure5_bars(panels))
    for label, rows in panels.items():
        benchmark.extra_info.setdefault("csv", {})[label] = results_to_csv(rows)

    # HCG fastest in every cell of every panel
    for label, rows in panels.items():
        for name, results in rows.items():
            hcg = results["hcg"].seconds
            assert hcg < results["simulink_coder"].seconds, (label, name)
            assert hcg < results["dfsynth"].seconds, (label, name)

    # the Fig. 5(b) anomaly: for batch models, Simulink-Coder code is
    # relatively much worse on Intel+GCC than on Intel+Clang
    for name in BATCH_MODELS:
        gcc_ratio = (
            panels["(b) Intel + GCC"][name]["simulink_coder"].seconds
            / panels["(b) Intel + GCC"][name]["hcg"].seconds
        )
        clang_ratio = (
            panels["(d) Intel + Clang"][name]["simulink_coder"].seconds
            / panels["(d) Intel + Clang"][name]["hcg"].seconds
        )
        assert gcc_ratio > clang_ratio, name
        benchmark.extra_info[f"{name}_intel_gcc_ratio"] = round(gcc_ratio, 2)
        benchmark.extra_info[f"{name}_intel_clang_ratio"] = round(clang_ratio, 2)

    # on ARM the two compilers behave almost identically
    for name in panels["(a) ARM + GCC"]:
        a = panels["(a) ARM + GCC"][name]["hcg"].seconds
        c = panels["(c) ARM + Clang"][name]["hcg"].seconds
        assert abs(a - c) / a < 0.15, name
