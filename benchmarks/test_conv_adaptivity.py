"""Algorithm 1 adaptivity map: which Conv implementation wins where.

The Fig. 1 premise generalised to convolution: the winning
implementation depends on the actor's data sizes, and HCG's
pre-calculation finds the crossover without being told.  This bench
sweeps the (signal length, tap count) grid and prints the selection
matrix plus the measured crossover row.
"""

import pytest

from repro.arch import ARM_A72
from repro.codegen.hcg.history import SelectionHistory
from repro.codegen.hcg.intensive import IntensiveSynthesizer
from repro.dtypes import DataType
from repro.kernels import default_library
from repro.model.actor_defs import create_actor

SIGNALS = (64, 256, 1024)
TAPS = (4, 16, 64, 256, 1024)


def _selection_grid():
    synth = IntensiveSynthesizer(
        default_library(), ARM_A72.cost, ARM_A72.instruction_set, SelectionHistory()
    )
    grid = {}
    for n in SIGNALS:
        for m in TAPS:
            if m > n:
                continue
            actor = create_actor("c", "Conv", DataType.F32, {"n": n, "m": m})
            grid[(n, m)] = synth.select(actor).kernel_id
    return grid


def test_conv_adaptivity(benchmark):
    grid = benchmark.pedantic(_selection_grid, rounds=1, iterations=1)
    print("\n=== Algorithm 1 selection map for Conv(n, m) ===")
    corner = "n / m"
    header = f"{corner:>8s}" + "".join(f"{m:>18d}" for m in TAPS)
    print(header)
    for n in SIGNALS:
        cells = []
        for m in TAPS:
            kernel_id = grid.get((n, m), "-")
            cells.append(f"{kernel_id.replace('conv.', ''):>18s}")
        print(f"{n:8d}" + "".join(cells))

    # shape claims: direct wins thin kernels, FFT wins thick ones,
    # and the crossover moves with the signal length
    assert all("direct" in grid[(n, 4)] for n in SIGNALS)
    assert "fft" in grid[(1024, 1024)]
    assert "fft" in grid[(256, 256)]
    crossovers = {}
    for n in SIGNALS:
        for m in TAPS:
            if (n, m) in grid and "fft" in grid[(n, m)]:
                crossovers[n] = m
                break
    print(f"first FFT-winning tap count per n: {crossovers}")
    benchmark.extra_info["crossovers"] = crossovers
    assert crossovers, "FFT convolution never won anywhere"
