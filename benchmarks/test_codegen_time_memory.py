"""§4.1's secondary claims: code-generation time and memory usage.

The paper reports ~2 s for Simulink Coder and ~1 s for DFSynth/HCG per
model, and memory usage of the generated code within ±1% across tools.
"""

import time

import pytest

from repro.arch import ARM_A72
from repro.bench import benchmark_suite, make_generator


def _generation_times(arm):
    times = {}
    for gen_name in ("simulink_coder", "dfsynth", "hcg"):
        started = time.perf_counter()
        for model in benchmark_suite().values():
            make_generator(gen_name, arm).generate(model)
        times[gen_name] = time.perf_counter() - started
    return times


def test_codegen_time(benchmark, arm):
    times = benchmark.pedantic(_generation_times, args=(arm,), rounds=1, iterations=1)
    print("\n=== code generation wall time for all six models ===")
    for name, seconds in times.items():
        print(f"  {name:15s} {seconds:.3f}s")
        benchmark.extra_info[f"{name}_s"] = round(seconds, 3)
    # all tools finish in seconds, like the paper's 1-2 s (HCG pays for
    # Algorithm 1's pre-calculation on a cold history, so it is the
    # slowest of the three — still well within interactive range)
    assert max(times.values()) < 60.0
    assert times["hcg"] >= times["dfsynth"]


def _memory_table(arm):
    table = {}
    for name, model in benchmark_suite().items():
        table[name] = {
            gen_name: make_generator(gen_name, arm).generate(model).data_bytes()
            for gen_name in ("simulink_coder", "dfsynth", "hcg")
        }
    return table


def test_memory_usage(benchmark, arm):
    table = benchmark.pedantic(_memory_table, args=(arm,), rounds=1, iterations=1)
    print("\n=== generated-code data memory (bytes) ===")
    print(f"{'Model':10s} {'Simulink':>10s} {'DFSynth':>10s} {'HCG':>10s} {'HCG delta':>10s}")
    for name, sizes in table.items():
        base = sizes["simulink_coder"]
        delta = (sizes["hcg"] - base) / base * 100.0
        print(f"{name:10s} {base:10d} {sizes['dfsynth']:10d} {sizes['hcg']:10d} "
              f"{delta:9.1f}%")
        benchmark.extra_info[f"{name}_delta_pct"] = round(delta, 1)
        # the paper says ±1%; our layouts agree exactly on most models
        # and never diverge by more than one intermediate signal buffer
        assert abs(delta) <= 20.0, name
    exact = sum(
        1 for sizes in table.values() if sizes["hcg"] == sizes["simulink_coder"]
    )
    assert exact >= 4  # most models byte-identical
