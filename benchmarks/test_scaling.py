"""§4.3's scaling claim: "for the Simulink models with more intensive
and batch computing actors, we can achieve higher improvements."

This benchmark grows a batch-actor chain (2, 4, 8, 16 elementwise
actors over 1024-wide signals) and a bank of intensive actors (1, 2, 4
FFTs) and measures HCG's improvement over the Simulink-Coder baseline
at each size.
"""

import pytest

from repro.arch import ARM_A72
from repro.bench import benchmark_inputs, compare_generators, improvement
from repro.compiler import GCC
from repro.dtypes import DataType
from repro.model.builder import ModelBuilder


def chain_model(depth: int, n: int = 1024):
    """x -> Mul(c0) -> Add(x) -> Mul(c1) -> Add(x) -> ... (depth ops)."""
    b = ModelBuilder(f"chain{depth}", default_dtype=DataType.F32)
    x = b.inport("x", shape=n)
    current = x
    for index in range(depth):
        if index % 2 == 0:
            coeffs = b.const(f"c{index}", value=[0.5 + index * 0.01] * n)
            current = b.add_actor("Mul", f"op{index}", current, coeffs)
        else:
            current = b.add_actor("Add", f"op{index}", current, x)
    b.outport("y", current)
    return b.build()


def fft_bank_model(count: int, n: int = 256):
    """Several independent FFT actors fed by one signal."""
    b = ModelBuilder(f"bank{count}", default_dtype=DataType.F32)
    x = b.inport("x", shape=n)
    for index in range(count):
        scaled = b.add_actor("Gain", f"g{index}", x, gain=1.0 + index)
        spectrum = b.add_actor("FFT", f"fft{index}", scaled, n=n)
        b.outport(f"y{index}", spectrum)
    return b.build()


def _improvement(model):
    results = compare_generators(model, ARM_A72, GCC)
    return improvement(results["simulink_coder"].seconds, results["hcg"].seconds)


def test_scaling_with_batch_chain_depth(benchmark):
    def run():
        return {depth: _improvement(chain_model(depth)) for depth in (2, 4, 8, 16)}

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== §4.3 scaling: improvement vs batch-chain depth ===")
    for depth, value in rows.items():
        print(f"  {depth:3d} batch actors: {value:5.1f}% improvement")
        benchmark.extra_info[f"depth{depth}"] = round(value, 1)
    # monotone-ish growth: deeper chains fuse more work into registers
    assert rows[16] > rows[2]
    assert rows[8] > rows[2]


def test_scaling_with_intensive_count(benchmark):
    def run():
        return {count: _improvement(fft_bank_model(count)) for count in (1, 2, 4)}

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== §4.3 scaling: improvement vs intensive-actor count ===")
    for count, value in rows.items():
        print(f"  {count} FFT actor(s): {value:5.1f}% improvement")
        benchmark.extra_info[f"count{count}"] = round(value, 1)
    # every size shows a strong win; the share of optimisable work is
    # already ~100%, so the curve saturates rather than grows
    assert all(value > 40.0 for value in rows.values())
