"""Shared helpers for the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures.  The
pytest-benchmark timer measures the *harness* (code generation +
cost-modelled execution on the VM); the paper-comparable numbers —
modelled execution seconds, improvement percentages — are attached to
``benchmark.extra_info`` and printed to stdout (run with ``-s``).
"""

import pytest

from repro.arch import ARM_A72, INTEL_I7_8700
from repro.compiler import CLANG, GCC


@pytest.fixture(scope="session")
def arm():
    return ARM_A72


@pytest.fixture(scope="session")
def intel():
    return INTEL_I7_8700


@pytest.fixture(scope="session")
def gcc():
    return GCC


@pytest.fixture(scope="session")
def clang():
    return CLANG
