"""A real-hardware experiment: the generated code timed on the host CPU.

The paper's headline claim is that HCG's SIMD-synthesised code runs
substantially faster than the baselines' scalar / scattered code.  The
cost VM models that; when the host is an x86 machine with AVX2 (true
for the paper's own Intel target class), we can also *measure* it: this
benchmark compiles the DFSynth-style scalar code and HCG's AVX2 code
with the host GCC at -O2 and times both over many iterations.

Fairness note: the scalar baseline is compiled with vectorisation
disabled (``-fno-tree-vectorize``), because the question is what the
*generator* emitted — the paper's GCC-auto-vectorisation effects are
modelled separately (Fig. 5).  A second measurement leaves GCC's
auto-vectoriser on, showing how much of the gap a modern compiler can
recover on its own.
"""

import shutil
import subprocess
from pathlib import Path

import pytest

from repro.arch import INTEL_I7_8700
from repro.bench.models import benchmark_inputs, fir_model, highpass_model, lowpass_model
from repro.codegen import DfsynthGenerator, HcgGenerator
from repro.ir.cemit import emit_c, emit_timing_harness

GCC = shutil.which("gcc")


def _cpu_supports(flag: str) -> bool:
    try:
        return flag in Path("/proc/cpuinfo").read_text()
    except OSError:
        return False


pytestmark = pytest.mark.skipif(
    GCC is None or not _cpu_supports("avx2"),
    reason="needs host GCC and an AVX2 CPU",
)

ITERATIONS = 40_000


def _time_native(model, generator, tmp_path, tag, flags):
    inputs = benchmark_inputs(model)
    program = generator.generate(model)
    source = emit_c(program, INTEL_I7_8700.instruction_set)
    source += "\n" + emit_timing_harness(program, inputs, ITERATIONS)
    c_file = tmp_path / f"{tag}.c"
    c_file.write_text(source)
    binary = tmp_path / tag
    completed = subprocess.run(
        [GCC, "-O2", "-std=gnu99", *flags, str(c_file), "-o", str(binary), "-lm"],
        capture_output=True, text=True,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    best = None
    for _ in range(3):  # best-of-three to tame scheduler noise
        run = subprocess.run([str(binary)], capture_output=True, text=True, timeout=120)
        assert run.returncode == 0
        ns = int(run.stdout.split()[1])
        best = ns if best is None else min(best, ns)
    return best


def test_native_speedup(benchmark, tmp_path):
    def run():
        rows = {}
        for factory in (fir_model, highpass_model, lowpass_model):
            model = factory(1024)
            scalar = _time_native(
                model, DfsynthGenerator(INTEL_I7_8700), tmp_path,
                f"{model.name}_scalar", ("-fno-tree-vectorize",),
            )
            scalar_auto = _time_native(
                model, DfsynthGenerator(INTEL_I7_8700), tmp_path,
                f"{model.name}_scalar_auto", ("-O3", "-mavx2", "-mfma"),
            )
            hcg = _time_native(
                model, HcgGenerator(INTEL_I7_8700), tmp_path,
                f"{model.name}_hcg", ("-mavx2", "-mfma"),
            )
            rows[model.name] = {"scalar": scalar, "scalar_autovec": scalar_auto,
                                "hcg_avx2": hcg}
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n=== native x86 timing, {ITERATIONS:,} iterations, best of 3 ===")
    print(f"{'Model':10s} {'scalar':>12s} {'scalar -O3':>12s} {'HCG AVX2':>12s} "
          f"{'speedup':>8s}")
    for name, row in rows.items():
        speedup = row["scalar"] / row["hcg_avx2"]
        print(f"{name:10s} {row['scalar'] / 1e6:10.1f}ms {row['scalar_autovec'] / 1e6:10.1f}ms "
              f"{row['hcg_avx2'] / 1e6:10.1f}ms {speedup:7.2f}x")
        benchmark.extra_info[name] = {k: v / 1e6 for k, v in row.items()}
        # the paper's direction, on real silicon: HCG's generated SIMD
        # beats the baseline's scalar loops
        assert row["hcg_avx2"] < row["scalar"], name
