"""Ablation benchmarks for the design choices DESIGN.md calls out.

1. **SIMD threshold (§4.3)** — the paper notes that vectorising one or
   two narrow batch actors can lose to conventional code because of the
   memory/vector-register transfer cost, and proposes a threshold.
2. **Selection history (Alg. 1 lines 3-6)** — how much repeated
   code generation gains from the cache.
3. **Compound instructions (Alg. 2's preference for larger graphs)** —
   what happens when the instruction set is restricted to single-node
   patterns.
"""

import time

import pytest

from repro.arch import ARM_A72
from repro.bench import benchmark_inputs, benchmark_suite
from repro.codegen import HcgGenerator
from repro.codegen.hcg.history import SelectionHistory
from repro.compiler import GCC
from repro.dtypes import DataType
from repro.model.builder import ModelBuilder
from repro.vm import Machine


def _sandwich_model(n):
    """One lonely batch actor between foldable scalar actors.

    This is §4.3's bad case: conventional translation folds the whole
    chain into one loop with values in scalar registers, while SIMD
    synthesis forces the Add's operands and result through memory.
    """
    b = ModelBuilder("sandwich", default_dtype=DataType.F32)
    x = b.inport("x", shape=n)
    y = b.inport("y", shape=n)
    gx = b.add_actor("Gain", "gx", x, gain=0.5)
    gy = b.add_actor("Gain", "gy", y, gain=2.0)
    s = b.add_actor("Add", "s", gx, gy)
    out = b.add_actor("Gain", "out_scale", s, gain=0.25)
    b.outport("o", out)
    return b.build()


def _all_batch_model(n):
    """The same arithmetic expressed entirely with batch actors."""
    b = ModelBuilder("allbatch", default_dtype=DataType.F32)
    x = b.inport("x", shape=n)
    y = b.inport("y", shape=n)
    half = b.const("half", value=[0.5] * n)
    two = b.const("two", value=[2.0] * n)
    quarter = b.const("quarter", value=[0.25] * n)
    gx = b.add_actor("Mul", "gx", x, half)
    gy = b.add_actor("Mul", "gy", y, two)
    s = b.add_actor("Add", "s", gx, gy)
    out = b.add_actor("Mul", "out_scale", s, quarter)
    b.outport("o", out)
    return b.build()


def _cycles(model, **kwargs):
    program = GCC.compile(HcgGenerator(ARM_A72, **kwargs).generate(model))
    machine = Machine(program, ARM_A72, cost=GCC.effective_cost(ARM_A72))
    return machine.run(benchmark_inputs(model)).cycles


def test_ablation_simd_threshold(benchmark):
    def sweep():
        rows = {}
        for n in (8, 64, 256):
            rows[n] = {
                "sandwich_simd": _cycles(_sandwich_model(n)),
                "sandwich_conv": _cycles(_sandwich_model(n), simd_threshold=10**9),
                "allbatch_simd": _cycles(_all_batch_model(n)),
                "allbatch_conv": _cycles(_all_batch_model(n), simd_threshold=10**9),
            }
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\n=== §4.3 ablation: lone batch actor vs batch-rich model ===")
    print(f"{'width':>6s} {'sandw SIMD':>11s} {'sandw conv':>11s} "
          f"{'batch SIMD':>11s} {'batch conv':>11s}")
    for n, row in rows.items():
        print(f"{n:6d} {row['sandwich_simd']:11.1f} {row['sandwich_conv']:11.1f} "
              f"{row['allbatch_simd']:11.1f} {row['allbatch_conv']:11.1f}")
        benchmark.extra_info[f"w{n}"] = row
    # §4.3's observation: for a model with only one batch actor wedged
    # between scalar actors, SIMD synthesis can LOSE to conventional
    # code (memory <-> vector register transfers) ...
    assert rows[8]["sandwich_simd"] > rows[8]["sandwich_conv"]
    # ... and the proposed threshold check recovers the conventional
    # performance exactly
    assert rows[8]["sandwich_conv"] == _cycles(_sandwich_model(8), simd_threshold=10**9)
    # whereas models made of batch actors win with SIMD at every width
    for n, row in rows.items():
        assert row["allbatch_simd"] < row["allbatch_conv"], n


def test_ablation_selection_history(benchmark):
    suite = benchmark_suite()

    def run():
        cold_history = SelectionHistory()
        started = time.perf_counter()
        for model in suite.values():
            HcgGenerator(ARM_A72, history=cold_history).generate(model)
        cold = time.perf_counter() - started
        started = time.perf_counter()
        for model in suite.values():
            HcgGenerator(ARM_A72, history=cold_history).generate(model)
        warm = time.perf_counter() - started
        return cold, warm, cold_history

    cold, warm, history = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n=== Alg. 1 history ablation: cold {cold:.3f}s, warm {warm:.3f}s, "
          f"{history.hits} hits / {history.misses} misses ===")
    benchmark.extra_info["cold_s"] = round(cold, 3)
    benchmark.extra_info["warm_s"] = round(warm, 3)
    assert history.hits >= 3          # second pass served from history
    assert warm <= cold               # and is never slower


def test_ablation_compound_instructions(benchmark):
    """Restrict the ISA to single-node patterns: Algorithm 2 degrades
    to per-op vectorisation and the batch models slow down."""
    suite = benchmark_suite()
    basic_isa = ARM_A72.instruction_set.restricted(max_nodes=1)

    def run():
        rows = {}
        for name in ("HighPass", "LowPass", "FIR"):
            model = suite[name]
            rows[name] = {
                "full": _cycles(model),
                "basic_only": _cycles(model, instruction_set=basic_isa),
            }
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== compound-instruction ablation (cycles/step) ===")
    print(f"{'Model':10s} {'full ISA':>10s} {'basic-only':>10s} {'penalty':>8s}")
    for name, row in rows.items():
        penalty = row["basic_only"] / row["full"]
        print(f"{name:10s} {row['full']:10.1f} {row['basic_only']:10.1f} {penalty:7.2f}x")
        benchmark.extra_info[f"{name}_penalty"] = round(penalty, 2)
        assert row["basic_only"] >= row["full"], name
    # at least one model must genuinely exploit a compound instruction
    # (the win is bounded: loads dominate these memory-bound loops)
    assert any(row["basic_only"] > 1.02 * row["full"] for row in rows.values())


def test_ablation_branch_aware(benchmark):
    """§4.3: integrating DFSynth's branch scheduling into HCG.

    Branch-aware generation moves the Switch-exclusive batch group into
    the branch (skipping it when the bypass is taken) but must split
    batch groups at branch boundaries ("the batch computing actors must
    have the same branch information"), which costs extra vector
    loads/stores when the branch IS taken.  The measurement shows both
    sides of that trade-off.
    """
    import numpy as np

    from repro.bench import benchmark_inputs
    from repro.bench.models import highpass_model

    model = highpass_model()

    def run():
        rows = {}
        for ctrl, label in ((0.0, "bypass_taken"), (1.0, "filter_taken")):
            inputs = benchmark_inputs(model)
            inputs["ctrl"] = np.float32(ctrl)
            cell = {}
            for branch_aware in (False, True):
                program = GCC.compile(
                    HcgGenerator(ARM_A72, branch_aware=branch_aware).generate(model)
                )
                machine = Machine(program, ARM_A72, cost=GCC.effective_cost(ARM_A72))
                machine.run(inputs)  # warm state
                cell["branchy" if branch_aware else "plain"] = machine.run(inputs).cycles
            rows[label] = cell
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== branch-aware HCG ablation (HighPass, cycles/step) ===")
    for label, cell in rows.items():
        print(f"  {label:14s} plain={cell['plain']:8.1f}  branch-aware={cell['branchy']:8.1f}")
        benchmark.extra_info[label] = cell
    # the trade-off: wins when the guarded side is skipped ...
    assert rows["bypass_taken"]["branchy"] < rows["bypass_taken"]["plain"]
    # ... loses when it is taken (the group split costs memory traffic)
    assert rows["filter_taken"]["branchy"] > rows["filter_taken"]["plain"]
