"""Cost tables: how many cycles each IR construct costs on a target.

The reproduction cannot execute NEON/SSE binaries, so "execution time"
is defined as *modelled cycles*: the VM walks the generated program and
charges each operation according to the active :class:`CostTable`.
Values are calibrated against public instruction tables (Cortex-A72
software optimisation guide, Agner Fog's x86 tables) at the granularity
that matters for the paper's comparisons — relative costs of scalar ALU
ops, vector ops, memory accesses and loop overhead.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Mapping, Optional

from repro import ops
from repro.isa.spec import InstructionSpec


@dataclasses.dataclass(frozen=True)
class CostTable:
    """Per-architecture cycle costs (before compiler adjustments)."""

    #: multiplier on the op table's ``base_cost`` for scalar ALU ops
    scalar_scale: float = 1.0
    #: per-op overrides (cycles), e.g. integer division latency
    scalar_overrides: Mapping[str, float] = dataclasses.field(default_factory=dict)
    #: scalar L1 load / store cost
    scalar_load: float = 4.0
    scalar_store: float = 1.0
    #: vector register load / store / broadcast cost
    simd_load: float = 5.0
    simd_store: float = 2.0
    simd_broadcast: float = 2.0
    #: extra stall when a vector load reads a buffer vector-stored earlier
    #: in the same step (store-to-load forwarding limits); this is what
    #: makes scattered SIMD expensive on Intel+GCC (§4.2, Fig. 5(b))
    simd_reload_stall: float = 0.0
    #: multiplier on an instruction spec's ``cost`` field
    simd_scale: float = 1.0
    #: per-iteration loop bookkeeping (increment + compare + branch)
    loop_overhead: float = 2.0
    #: taken-branch / select cost
    branch: float = 2.0
    #: call + return + register save for a library kernel call
    call_overhead: float = 12.0
    #: global multiplier modelling issue width / superscalar execution
    #: (lower = wider core retiring more ops per cycle)
    throughput_factor: float = 1.0
    #: extra cycles per masked / VL-trimmed SIMD statement (vsetvli on
    #: RVV, kmov mask setup on AVX-512); charged only when ``vl`` is set
    mask_overhead: float = 0.0

    def scalar_op(self, op_name: str) -> float:
        """Cycles for one scalar elementwise op."""
        if op_name in self.scalar_overrides:
            return self.scalar_overrides[op_name]
        return ops.op_info(op_name).base_cost * self.scalar_scale

    def simd_op(self, spec: InstructionSpec) -> float:
        """Cycles for one SIMD instruction."""
        return spec.cost * self.simd_scale

    def scaled(self, cycles: float) -> float:
        """Apply the global throughput factor to raw cycle counts."""
        return cycles * self.throughput_factor


@dataclasses.dataclass
class CostBreakdown:
    """Mutable accumulator the VM fills while executing a program."""

    scalar_ops: float = 0.0
    scalar_mem: float = 0.0
    simd_ops: float = 0.0
    simd_mem: float = 0.0
    loop: float = 0.0
    branch: float = 0.0
    kernel: float = 0.0
    call: float = 0.0
    #: cross-backend boundary-buffer traffic (partitioned execution only)
    transfer: float = 0.0

    #: raw event counts, for reports and tests
    counts: Dict[str, int] = dataclasses.field(default_factory=dict)

    def charge(self, category: str, cycles: float, event: Optional[str] = None) -> None:
        setattr(self, category, getattr(self, category) + cycles)
        if event is not None:
            self.counts[event] = self.counts.get(event, 0) + 1

    @property
    def total(self) -> float:
        return (
            self.scalar_ops + self.scalar_mem + self.simd_ops + self.simd_mem
            + self.loop + self.branch + self.kernel + self.call + self.transfer
        )

    def merged(self, other: "CostBreakdown") -> "CostBreakdown":
        result = CostBreakdown()
        for field in ("scalar_ops", "scalar_mem", "simd_ops", "simd_mem",
                      "loop", "branch", "kernel", "call", "transfer"):
            setattr(result, field, getattr(self, field) + getattr(other, field))
        result.counts = dict(self.counts)
        for key, value in other.counts.items():
            result.counts[key] = result.counts.get(key, 0) + value
        return result

    def as_dict(self) -> Dict[str, float]:
        return {
            "scalar_ops": self.scalar_ops,
            "scalar_mem": self.scalar_mem,
            "simd_ops": self.simd_ops,
            "simd_mem": self.simd_mem,
            "loop": self.loop,
            "branch": self.branch,
            "kernel": self.kernel,
            "call": self.call,
            "transfer": self.transfer,
            "total": self.total,
        }
