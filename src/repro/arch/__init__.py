"""Architecture descriptors, cost tables and evaluation presets."""

from repro.arch.arch import Architecture
from repro.arch.cost import CostBreakdown, CostTable
from repro.arch.presets import (
    ARM_A72,
    INTEL_I7_8700,
    INTEL_I7_8700_SSE4,
    get_architecture,
    preset_names,
)

__all__ = [
    "ARM_A72",
    "Architecture",
    "CostBreakdown",
    "CostTable",
    "INTEL_I7_8700",
    "INTEL_I7_8700_SSE4",
    "get_architecture",
    "preset_names",
]
