"""The evaluation targets of the paper, as architecture presets.

* ``ARM_A72`` — the paper's embedded board (Debian 10, ARM Cortex-A72),
  NEON 128-bit.  In-order-ish modest core: throughput factor 1.0.
* ``INTEL_I7_8700`` — the paper's desktop (Arch Linux, i7-8700), AVX2
  256-bit.  Wide out-of-order core: much lower effective cycles per op,
  higher clock; the paper ran 10x the iterations on it to compensate.
* ``INTEL_I7_8700_SSE4`` — the same core restricted to 128-bit SSE4,
  for ablations.
* ``RISCV_U74`` — a SiFive U74-class embedded core with a 256-bit RVV
  1.0 vector unit (scalable VL).  Dual-issue in-order, slower clock and
  memory pipe than the A72; ``mask_overhead`` models the ``vsetvli``
  issued when the tail trims the active vector length.
* ``INTEL_XEON_8380`` — an Ice Lake server core with AVX-512 (per-lane
  mask registers).  i7-like out-of-order engine, lower clock, one extra
  cycle of ZMM load latency; ``mask_overhead`` models ``kmov`` mask
  setup at predicated tails.

Calibration sources: ARM Cortex-A72 Software Optimisation Guide, Agner
Fog's instruction tables (Skylake, Ice Lake) and the SiFive U74 core
manual.  Only *relative* magnitudes matter for reproducing the paper's
comparisons.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.arch.arch import Architecture
from repro.arch.cost import CostTable

ARM_A72 = Architecture(
    name="arm_a72",
    isa_name="neon",
    clock_ghz=1.5,
    cost=CostTable(
        scalar_scale=1.0,
        scalar_overrides={"Div": 20.0, "Recp": 20.0, "Sqrt": 24.0, "Mul": 3.0},
        scalar_load=4.0,
        scalar_store=1.0,
        simd_load=7.0,
        simd_store=3.0,
        simd_broadcast=2.0,
        simd_scale=1.0,
        simd_reload_stall=2.0,
        loop_overhead=2.0,
        branch=2.0,
        call_overhead=12.0,
        throughput_factor=1.0,
    ),
    baseline_scattered_simd=False,
)

INTEL_I7_8700 = Architecture(
    name="intel_i7_8700",
    isa_name="avx2",
    clock_ghz=3.2,
    cost=CostTable(
        scalar_scale=0.8,
        scalar_overrides={"Div": 14.0, "Recp": 14.0, "Sqrt": 15.0, "Mul": 2.4},
        scalar_load=4.0,
        scalar_store=1.0,
        simd_load=6.0,
        simd_store=3.0,
        simd_broadcast=2.0,
        simd_scale=1.0,
        simd_reload_stall=14.0,
        loop_overhead=1.6,
        branch=1.6,
        call_overhead=10.0,
        throughput_factor=0.55,
    ),
    baseline_scattered_simd=True,
)

INTEL_I7_8700_SSE4 = Architecture(
    name="intel_i7_8700_sse4",
    isa_name="sse4",
    clock_ghz=3.2,
    cost=INTEL_I7_8700.cost,
    baseline_scattered_simd=True,
)

RISCV_U74 = Architecture(
    name="riscv_u74",
    isa_name="rvv",
    clock_ghz=1.2,
    cost=CostTable(
        scalar_scale=1.1,
        scalar_overrides={"Div": 24.0, "Recp": 24.0, "Sqrt": 28.0, "Mul": 3.0},
        scalar_load=3.0,
        scalar_store=1.0,
        simd_load=6.0,
        simd_store=3.0,
        simd_broadcast=2.0,
        simd_scale=1.0,
        simd_reload_stall=2.0,
        loop_overhead=2.0,
        branch=2.0,
        call_overhead=12.0,
        throughput_factor=1.0,
        mask_overhead=1.0,
    ),
    baseline_scattered_simd=False,
)

INTEL_XEON_8380 = Architecture(
    name="intel_xeon_8380",
    isa_name="avx512",
    clock_ghz=2.3,
    cost=CostTable(
        scalar_scale=0.8,
        scalar_overrides={"Div": 14.0, "Recp": 14.0, "Sqrt": 15.0, "Mul": 2.4},
        scalar_load=4.0,
        scalar_store=1.0,
        simd_load=7.0,
        simd_store=3.0,
        simd_broadcast=2.0,
        simd_scale=1.0,
        simd_reload_stall=14.0,
        loop_overhead=1.6,
        branch=1.6,
        call_overhead=10.0,
        throughput_factor=0.5,
        mask_overhead=1.0,
    ),
    baseline_scattered_simd=True,
)

_PRESETS: Dict[str, Architecture] = {
    a.name: a
    for a in (ARM_A72, INTEL_I7_8700, INTEL_I7_8700_SSE4, RISCV_U74,
              INTEL_XEON_8380)
}


def get_architecture(name: str) -> Architecture:
    """Look up a preset by name (``arm_a72``, ``intel_i7_8700``, ...)."""
    try:
        return _PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown architecture {name!r}; presets: {sorted(_PRESETS)}"
        ) from None


def preset_names() -> Tuple[str, ...]:
    return tuple(sorted(_PRESETS))
