"""``BackendSpec`` — one execution backend of a partitioned deployment.

The partitioner (``repro.sched.partition``) splits a model's dataflow
graph across two or more backends, each standing in for one piece of a
heterogeneous board: the host CPU, a DSP, a vector accelerator.  A
backend is an (architecture preset, cost-table overrides, transfer
cost) triple:

* ``arch`` names a preset from :mod:`repro.arch.presets` — it fixes the
  ISA the partition's program is generated for;
* ``cost_overrides`` replaces individual :class:`CostTable` fields so
  the same ISA can model, say, a scalar-weak vector array
  (``scalar_scale=4.0``) next to a general-purpose core;
* ``transfer_cost_per_byte`` is charged for every byte that crosses
  into or out of this backend per step — model inputs it consumes,
  model outputs it produces, and handoff buffers on a partition
  boundary.  The host CPU conventionally has transfer cost 0 (data is
  already in its memory).

Specs parse from the CLI grammar::

    --backends cpu=arm_a72,accel=arm_a72:scalar_scale=4:transfer=0.5
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Optional, Tuple

from repro.arch.cost import CostTable
from repro.errors import ReproError

#: CLI shorthand for the transfer field
_TRANSFER_KEY = "transfer"

#: CostTable fields a spec may override (numeric fields only; the
#: per-op scalar_overrides mapping is not expressible in the grammar)
_OVERRIDABLE = tuple(
    f.name for f in dataclasses.fields(CostTable) if f.name != "scalar_overrides"
)


@dataclasses.dataclass(frozen=True)
class BackendSpec:
    """One backend of a heterogeneous deployment, as a frozen value."""

    #: role label, unique within one partition request ("cpu", "accel")
    name: str
    #: architecture preset the backend's programs are generated for
    arch: str = "arm_a72"
    #: (CostTable field, value) replacements applied to the preset table
    cost_overrides: Tuple[Tuple[str, float], ...] = ()
    #: cycles charged per byte crossing this backend's memory boundary
    transfer_cost_per_byte: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ReproError("backend spec needs a name")
        from repro.arch.presets import preset_names

        if self.arch not in preset_names():
            raise ReproError(
                f"unknown arch {self.arch!r} in backend {self.name!r}; "
                f"choose from {preset_names()}"
            )
        for field, value in self.cost_overrides:
            if field not in _OVERRIDABLE:
                raise ReproError(
                    f"backend {self.name!r}: unknown cost field {field!r}; "
                    f"choose from {_OVERRIDABLE}"
                )
            if not isinstance(value, (int, float)) or value < 0:
                raise ReproError(
                    f"backend {self.name!r}: cost field {field!r} must be "
                    "a non-negative number"
                )
        if self.transfer_cost_per_byte < 0:
            raise ReproError(
                f"backend {self.name!r}: transfer cost must be >= 0"
            )

    # ------------------------------------------------------------------
    def architecture(self):
        """The resolved :class:`~repro.arch.arch.Architecture` preset."""
        from repro.arch.presets import get_architecture

        return get_architecture(self.arch)

    def cost_table(self) -> CostTable:
        """The preset's cost table with this spec's overrides applied."""
        table = self.architecture().cost
        if self.cost_overrides:
            table = dataclasses.replace(table, **dict(self.cost_overrides))
        return table

    def transfer_cycles(self, nbytes: int) -> float:
        """Cycles to move ``nbytes`` across this backend's boundary."""
        return float(nbytes) * self.transfer_cost_per_byte

    def describe(self) -> str:
        parts = [f"{self.name}={self.arch}"]
        for field, value in self.cost_overrides:
            parts.append(f"{field}={value:g}")
        if self.transfer_cost_per_byte:
            parts.append(f"{_TRANSFER_KEY}={self.transfer_cost_per_byte:g}")
        return ":".join(parts)

    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "BackendSpec":
        """Parse one ``[name=]arch[:field=value]*`` spec."""
        text = str(text).strip()
        if not text:
            raise ReproError("empty backend spec")
        head, *options = text.split(":")
        if "=" in head:
            name, _, arch = head.partition("=")
        else:
            name, arch = head, head
        overrides = []
        transfer = 0.0
        for option in options:
            key, sep, value_text = option.partition("=")
            if not sep:
                raise ReproError(
                    f"bad backend option {option!r} in {text!r}; "
                    "expected field=value"
                )
            try:
                value = float(value_text)
            except ValueError:
                raise ReproError(
                    f"backend option {key!r} needs a numeric value, "
                    f"got {value_text!r}"
                )
            if key == _TRANSFER_KEY:
                transfer = value
            else:
                overrides.append((key, value))
        return cls(name=name, arch=arch, cost_overrides=tuple(overrides),
                   transfer_cost_per_byte=transfer)

    @classmethod
    def parse_list(cls, text: str) -> Tuple["BackendSpec", ...]:
        """Parse a comma-separated ``--backends`` argument."""
        specs = tuple(cls.parse(part) for part in str(text).split(",") if part.strip())
        if not specs:
            raise ReproError("--backends needs at least one backend spec")
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ReproError(f"duplicate backend names in {text!r}")
        return specs

    # ------------------------------------------------------------------
    def to_wire(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "arch": self.arch,
            "cost_overrides": [list(item) for item in self.cost_overrides],
            "transfer_cost_per_byte": self.transfer_cost_per_byte,
        }

    @classmethod
    def from_wire(cls, wire: Dict[str, Any]) -> "BackendSpec":
        if not isinstance(wire, dict):
            raise ReproError("backend spec must be a JSON object")
        overrides = tuple(
            (str(field), float(value))
            for field, value in wire.get("cost_overrides", ())
        )
        return cls(
            name=str(wire.get("name", "")),
            arch=str(wire.get("arch", "arm_a72")),
            cost_overrides=overrides,
            transfer_cost_per_byte=float(wire.get("transfer_cost_per_byte", 0.0)),
        )


def example_backend_pair(arch: str = "arm_a72") -> Tuple[BackendSpec, BackendSpec]:
    """A canonical host-CPU + vector-accelerator pair on one ISA.

    The accelerator executes SIMD work in a quarter of the host's
    cycles but has no scalar pipeline to speak of (4x scalar cost) and
    pays per-byte transfer for everything crossing its memory — the
    shape of trade-off that makes cutting a model between a batch
    group and its scalar epilogue profitable.
    """
    from repro.arch.presets import get_architecture

    host_cost = get_architecture(arch).cost
    accel = BackendSpec(
        name="accel",
        arch=arch,
        cost_overrides=(
            ("simd_scale", host_cost.simd_scale * 0.25),
            ("simd_load", host_cost.simd_load * 0.5),
            ("simd_store", host_cost.simd_store * 0.5),
            ("scalar_scale", host_cost.scalar_scale * 4.0),
            ("call_overhead", host_cost.call_overhead * 4.0),
        ),
        transfer_cost_per_byte=0.25,
    )
    return BackendSpec(name="cpu", arch=arch), accel
