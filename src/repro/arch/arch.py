"""Architecture descriptors: ISA + clock + cost table."""

from __future__ import annotations

import dataclasses

from repro.arch.cost import CostTable
from repro.isa.registry import load_builtin
from repro.isa.spec import InstructionSet


@dataclasses.dataclass(frozen=True)
class Architecture:
    """One deployment target (e.g. an ARM Cortex-A72 board)."""

    name: str
    isa_name: str
    clock_ghz: float
    cost: CostTable
    #: whether the vendor toolchain setup vectorises float batch actors in
    #: the Simulink-Coder-like baseline ("scattered SIMD", §4.2)
    baseline_scattered_simd: bool = False

    @property
    def instruction_set(self) -> InstructionSet:
        return load_builtin(self.isa_name)

    @property
    def vector_bits(self) -> int:
        return self.instruction_set.vector_bits

    def cycles_to_seconds(self, cycles: float, iterations: int = 1) -> float:
        """Convert modelled cycles for one step into wall-clock seconds."""
        return cycles * iterations / (self.clock_ghz * 1e9)
