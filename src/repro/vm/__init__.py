"""Virtual machine: execute generated programs under a cost model."""

from repro.vm.machine import ExecutionResult, Machine, run_program
from repro.vm.profile import (
    compare_report,
    event_histogram,
    profile_report,
    simd_coverage,
)

__all__ = [
    "ExecutionResult",
    "Machine",
    "compare_report",
    "event_histogram",
    "profile_report",
    "run_program",
    "simd_coverage",
]
