"""The virtual machine: executes IR programs and accounts cycles.

The VM is the reproduction's stand-in for running the generated C on a
real board: it interprets the program over numpy storage (so outputs
can be checked against the model's reference semantics bit-for-bit) and
charges every operation to a :class:`~repro.arch.cost.CostBreakdown`
according to the active architecture + compiler cost table.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro import ops
from repro.arch.arch import Architecture
from repro.arch.cost import CostBreakdown, CostTable
from repro.errors import VmError, VmTypeError
from repro.ir.expr import Cmp, Const, Expr, Load, ScalarOp, Select, Var
from repro.ir.program import Program
from repro.ir.stmt import (
    AssignVar,
    Comment,
    CopyBuffer,
    For,
    If,
    KernelCall,
    SimdBroadcast,
    SimdLoad,
    SimdOp,
    SimdStore,
    Stmt,
    Store,
)
from repro.ir.types import BufferKind
from repro.isa.spec import InstructionSet
from repro.kernels.base import kernel_cycles
from repro.kernels.library import CodeLibrary, default_library


@dataclasses.dataclass
class ExecutionResult:
    """Outputs plus the cycle accounting of one program run."""

    outputs: Dict[str, np.ndarray]
    cost: CostBreakdown
    #: raw modelled cycles (throughput factor applied)
    cycles: float
    #: peak working-set bytes the step needed: live vector registers
    #: (loop-scoped — registers defined inside a For die at its exit)
    #: plus every LOCAL scratch buffer written so far.  Fixed model
    #: storage (inputs, outputs, state, constants) is excluded; this is
    #: the quantity ``CodegenOptions.memory_budget`` bounds.
    peak_live_bytes: int = 0

    def seconds(self, arch: Architecture, iterations: int = 1) -> float:
        return arch.cycles_to_seconds(self.cycles, iterations)


class Machine:
    """Interprets one :class:`Program` for a given architecture."""

    def __init__(
        self,
        program: Program,
        arch: Architecture,
        cost: Optional[CostTable] = None,
        library: Optional[CodeLibrary] = None,
        instruction_set: Optional[InstructionSet] = None,
    ) -> None:
        self.program = program
        self.arch = arch
        self.cost = cost if cost is not None else arch.cost
        self.library = library if library is not None else default_library()
        self.iset = instruction_set if instruction_set is not None else arch.instruction_set
        # persistent storage (STATE buffers keep values across run() calls)
        self.memory: Dict[str, np.ndarray] = {}
        #: bytes of each LOCAL scratch buffer, for working-set profiling
        self._local_sizes: Dict[str, int] = {}
        for decl in program.buffers:
            data = np.zeros(decl.length, dtype=decl.dtype.numpy_dtype)
            if decl.init is not None:
                data[:] = np.asarray(decl.init, dtype=decl.dtype.numpy_dtype)
            self.memory[decl.name] = data
            if decl.kind is BufferKind.LOCAL:
                self._local_sizes[decl.name] = decl.length * decl.dtype.byte_width

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self, inputs: Optional[Mapping[str, Any]] = None) -> ExecutionResult:
        """Execute one step of the program."""
        inputs = dict(inputs or {})
        for decl in self.program.inputs:
            if decl.name in inputs:
                value = np.asarray(inputs.pop(decl.name), dtype=decl.dtype.numpy_dtype).ravel()
                if value.size != decl.length:
                    raise VmTypeError(
                        f"input {decl.name!r}: expected {decl.length} elements, got {value.size}"
                    )
                self.memory[decl.name][:] = value
        if inputs:
            raise VmError(f"unknown input buffer(s): {sorted(inputs)}")

        breakdown = CostBreakdown()
        scalars: Dict[str, Any] = {}
        vectors: Dict[str, np.ndarray] = {}
        self._vector_written: set = set()
        # Working-set profiling: live vector-register bytes (with
        # For-scope death) plus LOCAL buffers written so far.
        self._vector_live: Dict[str, int] = {}
        self._live_vector_bytes = 0
        self._live_local_bytes = 0
        self._written_locals: set = set()
        self._peak_live_bytes = 0
        self._exec_block(self.program.body, scalars, vectors, breakdown)

        outputs = {
            decl.name: np.array(self.memory[decl.name].reshape(decl.shape or (decl.length,)), copy=True)
            if decl.shape
            else np.array(self.memory[decl.name], copy=True)
            for decl in self.program.outputs
        }
        return ExecutionResult(
            outputs=outputs,
            cost=breakdown,
            cycles=self.cost.scaled(breakdown.total),
            peak_live_bytes=self._peak_live_bytes,
        )

    # ------------------------------------------------------------------
    # Working-set accounting
    # ------------------------------------------------------------------
    def _account_register(self, name: str, dtype, lanes: int) -> None:
        """A vector register was (re)defined: count its full width."""
        nbytes = lanes * dtype.byte_width
        self._live_vector_bytes += nbytes - self._vector_live.get(name, 0)
        self._vector_live[name] = nbytes
        self._note_peak()

    def _account_local_write(self, buffer: str) -> None:
        """First write to a LOCAL buffer brings it into the working set."""
        if buffer in self._local_sizes and buffer not in self._written_locals:
            self._written_locals.add(buffer)
            self._live_local_bytes += self._local_sizes[buffer]
            self._note_peak()

    def _note_peak(self) -> None:
        live = self._live_vector_bytes + self._live_local_bytes
        if live > self._peak_live_bytes:
            self._peak_live_bytes = live

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def _eval(self, expr: Expr, scalars: Dict[str, Any], breakdown: CostBreakdown) -> Any:
        if isinstance(expr, Const):
            return np.asarray(expr.value, dtype=expr.dtype.numpy_dtype)[()]
        if isinstance(expr, Var):
            try:
                return scalars[expr.name]
            except KeyError:
                raise VmError(f"read of undefined scalar {expr.name!r}") from None
        if isinstance(expr, Load):
            index = int(self._eval(expr.index, scalars, breakdown))
            buffer = self._buffer(expr.buffer)
            if not 0 <= index < buffer.size:
                raise VmError(f"load out of bounds: {expr.buffer}[{index}] (size {buffer.size})")
            breakdown.charge("scalar_mem", self.cost.scalar_load, "load")
            return buffer[index]
        if isinstance(expr, ScalarOp):
            args = [self._eval(a, scalars, breakdown) for a in expr.args]
            breakdown.charge("scalar_ops", self.cost.scalar_op(expr.op), f"op:{expr.op}")
            arrays = [np.asarray(a) for a in args]
            if expr.op != "Cast":
                arrays = [a.astype(expr.dtype.numpy_dtype, copy=False) for a in arrays]
            return ops.apply_op(expr.op, expr.dtype, arrays, expr.imm)[()]
        if isinstance(expr, Cmp):
            lhs = self._eval(expr.lhs, scalars, breakdown)
            rhs = self._eval(expr.rhs, scalars, breakdown)
            breakdown.charge("scalar_ops", self.cost.scalar_op("Add"), "cmp")
            table = {
                "<": lhs < rhs, "<=": lhs <= rhs, ">": lhs > rhs,
                ">=": lhs >= rhs, "==": lhs == rhs, "!=": lhs != rhs,
            }
            return bool(table[expr.op])
        if isinstance(expr, Select):
            cond = self._eval(expr.cond, scalars, breakdown)
            breakdown.charge("branch", self.cost.branch, "select")
            # C ternary evaluates only the chosen side; the cost model
            # charges the branch, and we evaluate lazily like hardware
            # with a predicated select would.
            chosen = expr.if_true if cond else expr.if_false
            return self._eval(chosen, scalars, breakdown)
        raise VmTypeError(f"cannot evaluate expression node {type(expr).__name__}")

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def _exec_block(
        self,
        block: Sequence[Stmt],
        scalars: Dict[str, Any],
        vectors: Dict[str, np.ndarray],
        breakdown: CostBreakdown,
    ) -> None:
        for stmt in block:
            self._exec(stmt, scalars, vectors, breakdown)

    def _exec(
        self,
        stmt: Stmt,
        scalars: Dict[str, Any],
        vectors: Dict[str, np.ndarray],
        breakdown: CostBreakdown,
    ) -> None:
        if isinstance(stmt, Comment):
            return
        if isinstance(stmt, AssignVar):
            scalars[stmt.name] = np.asarray(
                self._eval(stmt.expr, scalars, breakdown), dtype=stmt.dtype.numpy_dtype
            )[()]
            return
        if isinstance(stmt, Store):
            index = int(self._eval(stmt.index, scalars, breakdown))
            value = self._eval(stmt.expr, scalars, breakdown)
            buffer = self._buffer(stmt.buffer)
            if not 0 <= index < buffer.size:
                raise VmError(f"store out of bounds: {stmt.buffer}[{index}] (size {buffer.size})")
            buffer[index] = value
            self._account_local_write(stmt.buffer)
            breakdown.charge("scalar_mem", self.cost.scalar_store, "store")
            return
        if isinstance(stmt, For):
            start = int(self._eval(stmt.start, scalars, breakdown))
            stop = int(self._eval(stmt.stop, scalars, breakdown))
            live_before = set(self._vector_live)
            for i in range(start, stop, stmt.step):
                scalars[stmt.var] = np.int32(i)
                breakdown.charge("loop", self.cost.loop_overhead, "loop_iter")
                self._exec_block(stmt.body, scalars, vectors, breakdown)
            # Registers first defined inside the loop are loop-local
            # temporaries in the emitted C; they die at loop exit (the
            # register values stay readable in ``vectors`` — only the
            # working-set accounting is scoped).
            for name in list(self._vector_live):
                if name not in live_before:
                    self._live_vector_bytes -= self._vector_live.pop(name)
            return
        if isinstance(stmt, If):
            cond = self._eval(stmt.cond, scalars, breakdown)
            breakdown.charge("branch", self.cost.branch, "if")
            self._exec_block(stmt.then_body if cond else stmt.else_body, scalars, vectors, breakdown)
            return
        if isinstance(stmt, SimdLoad):
            index = int(self._eval(stmt.index, scalars, breakdown))
            buffer = self._buffer(stmt.buffer)
            active = self._active_lanes(stmt.vl, stmt.lanes, "load")
            if not (0 <= index and index + active <= buffer.size):
                raise VmError(
                    f"SIMD load out of bounds: {stmt.buffer}[{index}:{index + active}] "
                    f"(size {buffer.size})"
                )
            # A masked/VL-trimmed register holds exactly the active
            # lanes: inactive lanes do not exist, so they can never
            # leak into an op or a store.
            vectors[stmt.dest] = np.array(buffer[index : index + active], copy=True)
            self._account_register(stmt.dest, stmt.dtype, stmt.lanes)
            cycles = self.cost.simd_load
            if stmt.vl is not None:
                cycles += self.cost.mask_overhead
            if stmt.buffer in self._vector_written:
                # store-to-load round trip through a freshly written buffer
                cycles += self.cost.simd_reload_stall
                breakdown.charge("simd_mem", 0.0, "vload_stall")
            breakdown.charge("simd_mem", cycles, "vload")
            return
        if isinstance(stmt, SimdStore):
            index = int(self._eval(stmt.index, scalars, breakdown))
            buffer = self._buffer(stmt.buffer)
            active = self._active_lanes(stmt.vl, stmt.lanes, "store")
            if not (0 <= index and index + active <= buffer.size):
                raise VmError(
                    f"SIMD store out of bounds: {stmt.buffer}[{index}:{index + active}] "
                    f"(size {buffer.size})"
                )
            src = self._vector(vectors, stmt.src, active)
            buffer[index : index + active] = src.astype(buffer.dtype, copy=False)
            self._vector_written.add(stmt.buffer)
            self._account_local_write(stmt.buffer)
            cycles = self.cost.simd_store
            if stmt.vl is not None:
                cycles += self.cost.mask_overhead
            breakdown.charge("simd_mem", cycles, "vstore")
            return
        if isinstance(stmt, SimdBroadcast):
            value = self._eval(stmt.scalar, scalars, breakdown)
            vectors[stmt.dest] = np.full(stmt.lanes, value, dtype=stmt.dtype.numpy_dtype)
            self._account_register(stmt.dest, stmt.dtype, stmt.lanes)
            breakdown.charge("simd_ops", self.cost.simd_broadcast, "vdup")
            return
        if isinstance(stmt, SimdOp):
            spec = self.iset.by_name(stmt.instruction)
            active = self._active_lanes(stmt.vl, spec.lanes, "op")
            named = {
                token: self._vector(vectors, arg, active)
                for token, arg in zip(spec.input_tokens, stmt.args)
            }
            if len(stmt.args) != spec.n_inputs:
                raise VmError(
                    f"instruction {stmt.instruction}: expected {spec.n_inputs} args, "
                    f"got {len(stmt.args)}"
                )
            # The pattern semantics are elementwise, so evaluating the
            # active-lane prefix is exactly the masked instruction:
            # inactive lanes are never computed (no spurious faults).
            vectors[stmt.dest] = spec.evaluate(named, imm=stmt.imm)
            self._account_register(stmt.dest, stmt.dtype, stmt.lanes)
            cycles = self.cost.simd_op(spec)
            if stmt.vl is not None:
                cycles += self.cost.mask_overhead
            breakdown.charge("simd_ops", cycles, f"vop:{stmt.instruction}")
            return
        if isinstance(stmt, KernelCall):
            self._exec_kernel(stmt, breakdown)
            return
        if isinstance(stmt, CopyBuffer):
            dst_off = int(self._eval(stmt.dst_offset, scalars, breakdown))
            src_off = int(self._eval(stmt.src_offset, scalars, breakdown))
            dst = self._buffer(stmt.dst)
            src = self._buffer(stmt.src)
            dst[dst_off : dst_off + stmt.count] = src[src_off : src_off + stmt.count].astype(
                dst.dtype, copy=False
            )
            self._account_local_write(stmt.dst)
            # memcpy moves cache lines, not scalar elements
            breakdown.charge(
                "scalar_mem",
                stmt.count * (self.cost.scalar_load + self.cost.scalar_store) * 0.25,
                "memcpy",
            )
            return
        raise VmTypeError(f"cannot execute statement node {type(stmt).__name__}")

    # ------------------------------------------------------------------
    def _exec_kernel(self, stmt: KernelCall, breakdown: CostBreakdown) -> None:
        params = stmt.params_dict()
        kernel = self.library.by_id(stmt.kernel_id)
        in_shapes = params.get("in_shapes")
        out_shapes = params.get("out_shapes")
        inputs: List[np.ndarray] = []
        for position, name in enumerate(stmt.inputs):
            flat = np.array(self._buffer(name), copy=True)
            if in_shapes is not None:
                shape = tuple(in_shapes[position])
                count = int(np.prod(shape))
                # shared (capacity-sized) buffers: the kernel sees the
                # logical prefix, exactly like a C pointer would
                flat = flat[:count].reshape(shape)
            inputs.append(flat)
        decl = self.program.buffer(stmt.inputs[0]) if stmt.inputs else self.program.buffer(stmt.outputs[0])
        run = kernel.run(inputs, params, decl.dtype)
        if len(run.outputs) != len(stmt.outputs):
            raise VmError(
                f"kernel {stmt.kernel_id}: produced {len(run.outputs)} outputs, "
                f"statement expects {len(stmt.outputs)}"
            )
        for position, name in enumerate(stmt.outputs):
            buffer = self._buffer(name)
            flat = np.asarray(run.outputs[position]).ravel()
            if flat.size > buffer.size:
                raise VmError(
                    f"kernel {stmt.kernel_id}: output {position} has {flat.size} elements, "
                    f"buffer {name!r} holds only {buffer.size}"
                )
            buffer[: flat.size] = flat.astype(buffer.dtype, copy=False)
            self._account_local_write(name)
        lanes = self.iset.lanes_for(decl.dtype) if decl.dtype.bit_width <= self.iset.vector_bits else 1
        cycles = kernel_cycles(
            run.counts, self.cost, kernel.simd, lanes, kernel.vectorizable_fraction
        )
        breakdown.charge("kernel", cycles, f"kernel:{stmt.kernel_id}")

    # ------------------------------------------------------------------
    def _buffer(self, name: str) -> np.ndarray:
        try:
            return self.memory[name]
        except KeyError:
            raise VmError(f"program has no buffer {name!r}") from None

    @staticmethod
    def _active_lanes(vl: Optional[int], lanes: int, what: str) -> int:
        """The lane count a (possibly masked) SIMD access touches."""
        if vl is None:
            return lanes
        if not 1 <= vl <= lanes:
            raise VmError(
                f"SIMD {what}: vl={vl} out of range for a {lanes}-lane register"
            )
        return vl

    def _vector(self, vectors: Dict[str, np.ndarray], name: str, lanes: int) -> np.ndarray:
        try:
            value = vectors[name]
        except KeyError:
            raise VmError(f"read of undefined vector register {name!r}") from None
        if value.shape != (lanes,):
            raise VmTypeError(
                f"vector register {name!r} has {value.shape[0]} lanes, expected {lanes}"
            )
        return value


def run_program(
    program: Program,
    arch: Architecture,
    inputs: Optional[Mapping[str, Any]] = None,
    cost: Optional[CostTable] = None,
    library: Optional[CodeLibrary] = None,
) -> ExecutionResult:
    """One-shot convenience: build a machine and run one step."""
    return Machine(program, arch, cost=cost, library=library).run(inputs)
