"""Profiling reports over VM execution results.

Turns a :class:`~repro.arch.cost.CostBreakdown` into the kind of report
an engineer would read after running the generated code under perf:
where the cycles went, which instructions fired how often, and how two
programs compare category by category.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.arch.arch import Architecture
from repro.vm.machine import ExecutionResult

_CATEGORY_LABELS = {
    "scalar_ops": "scalar ALU",
    "scalar_mem": "scalar loads/stores",
    "simd_ops": "SIMD ALU",
    "simd_mem": "SIMD loads/stores",
    "loop": "loop bookkeeping",
    "branch": "branches/selects",
    "kernel": "library kernels",
    "call": "call overhead",
}


def simd_coverage(result: ExecutionResult) -> float:
    """Percent of modelled cycles spent in SIMD ALU + SIMD memory ops.

    The bench harness records this per (model, ISA, generator) cell: it
    is the cheapest single-number proxy for "how much of the program
    Algorithm 2 actually vectorised" that is comparable across targets.
    """
    total = result.cost.total
    if total <= 0:
        return 0.0
    return (result.cost.simd_ops + result.cost.simd_mem) / total * 100.0


def profile_report(
    result: ExecutionResult,
    arch: Optional[Architecture] = None,
    top_events: int = 8,
) -> str:
    """One run's cycle budget: per-category shares and hottest events."""
    breakdown = result.cost
    total = breakdown.total or 1.0
    lines = [f"total modelled cycles: {result.cycles:,.1f}"]
    if arch is not None:
        lines[0] += f"  ({result.seconds(arch, 1) * 1e6:.2f} us/step on {arch.name})"
    lines.append("by category:")
    categories = sorted(
        _CATEGORY_LABELS, key=lambda c: getattr(breakdown, c), reverse=True
    )
    for category in categories:
        cycles = getattr(breakdown, category)
        if cycles == 0:
            continue
        share = cycles / total * 100.0
        bar = "#" * int(round(share / 4))
        lines.append(
            f"  {_CATEGORY_LABELS[category]:20s} {cycles:12,.1f}  {share:5.1f}% {bar}"
        )
    if breakdown.counts:
        lines.append(f"top events (of {len(breakdown.counts)}):")
        ranked = sorted(breakdown.counts.items(), key=lambda kv: kv[1], reverse=True)
        for event, count in ranked[:top_events]:
            lines.append(f"  {event:28s} x{count}")
    return "\n".join(lines)


def compare_report(results: Mapping[str, ExecutionResult]) -> str:
    """Side-by-side category comparison of several runs (e.g. the three
    generators on one model)."""
    names = list(results)
    header = f"{'category':20s} " + " ".join(f"{n:>15s}" for n in names)
    lines = [header]
    for category, label in _CATEGORY_LABELS.items():
        values = [getattr(results[n].cost, category) for n in names]
        if not any(values):
            continue
        lines.append(
            f"{label:20s} " + " ".join(f"{v:15,.1f}" for v in values)
        )
    lines.append(
        f"{'TOTAL':20s} " + " ".join(f"{results[n].cycles:15,.1f}" for n in names)
    )
    return "\n".join(lines)


def event_histogram(result: ExecutionResult, prefix: str = "") -> Dict[str, int]:
    """Event counts, optionally filtered by prefix (e.g. ``"vop:"``)."""
    return {
        event: count
        for event, count in sorted(result.cost.counts.items())
        if event.startswith(prefix)
    }
