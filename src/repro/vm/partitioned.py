"""Per-partition execution of one model split across backends.

The partitioner (``repro.sched.partition``) cuts a model into two (or
one) sub-models, each generated for its own backend — an ISA preset
plus a cost table standing in for a CPU or an accelerator.  This module
runs the resulting programs as one logical step:

1. each partition's :class:`~repro.vm.machine.Machine` runs in schedule
   order, fed its share of the model inputs plus any *handoff* buffers
   earlier partitions produced;
2. handoff outputs are copied to the consuming partition's inputs — the
   boundary-buffer contract;
3. every byte entering or leaving a backend's memory (model inputs it
   consumes, model outputs and handoffs it produces, handoffs it
   receives) is charged at that backend's ``transfer_cost_per_byte``
   into the :class:`~repro.arch.cost.CostBreakdown` ``transfer``
   category.

The merged :class:`~repro.vm.machine.ExecutionResult` reports the
original model's outputs, the summed per-backend cycles (each scaled by
its own throughput factor) plus transfer cycles, and the maximum
per-partition peak working set.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.arch.arch import Architecture
from repro.arch.cost import CostBreakdown, CostTable
from repro.dtypes import DataType
from repro.errors import VmError
from repro.ir.program import Program
from repro.ir.types import BufferKind
from repro.vm.machine import ExecutionResult, Machine


@dataclasses.dataclass(frozen=True)
class Handoff:
    """One boundary buffer of the partition contract."""

    #: wire name — the Outport in the producer, the Inport in the consumer
    name: str
    #: the original model's (actor, port) whose value crosses
    src_actor: str
    src_port: str
    #: backend names on either side of the boundary
    producer: str
    consumer: str
    dtype: DataType
    shape: Tuple[int, ...]

    @property
    def width(self) -> int:
        width = 1
        for extent in self.shape:
            width *= extent
        return width

    @property
    def nbytes(self) -> int:
        return self.width * self.dtype.byte_width

    def contract_entry(self) -> Dict[str, Any]:
        """One JSON-able row of the handoff contract."""
        return {
            "buffer": self.name,
            "source": f"{self.src_actor}.{self.src_port}",
            "producer": self.producer,
            "consumer": self.consumer,
            "dtype": self.dtype.value,
            "width": self.width,
            "bytes": self.nbytes,
        }


@dataclasses.dataclass(frozen=True)
class PartitionProgram:
    """One partition's executable: program + backend execution model."""

    backend_name: str
    arch: Architecture
    cost: CostTable
    transfer_cost_per_byte: float
    program: Program


class PartitionedMachine:
    """Runs a partitioned model as one step-per-call machine.

    State buffers (UnitDelay) persist inside each partition's machine
    across calls, exactly like the single-machine execution they
    replace.
    """

    def __init__(self, parts: Sequence[PartitionProgram],
                 handoffs: Sequence[Handoff] = ()) -> None:
        if not parts:
            raise VmError("partitioned machine needs at least one partition")
        self.parts = tuple(parts)
        self.handoffs = tuple(handoffs)
        self.machines = [
            Machine(part.program, part.arch, cost=part.cost)
            for part in parts
        ]
        self._handoff_names = {handoff.name for handoff in self.handoffs}
        #: per partition: INPUT buffer names its program expects
        self._input_names: List[Tuple[str, ...]] = [
            tuple(decl.name for decl in part.program.buffers
                  if decl.kind is BufferKind.INPUT)
            for part in parts
        ]
        self._output_names: List[Tuple[str, ...]] = [
            tuple(decl.name for decl in part.program.buffers
                  if decl.kind is BufferKind.OUTPUT)
            for part in parts
        ]

    # ------------------------------------------------------------------
    def transfer_cycles(self) -> float:
        """Per-step boundary traffic cost, from the contract alone."""
        total = 0.0
        for index, part in enumerate(self.parts):
            if part.transfer_cost_per_byte == 0.0:
                continue
            nbytes = 0
            crossing = 0
            for name in self._input_names[index]:
                nbytes += self._buffer_bytes(index, name)
                crossing += 1
            for name in self._output_names[index]:
                nbytes += self._buffer_bytes(index, name)
                crossing += 1
            if crossing:
                total += part.transfer_cost_per_byte * nbytes
        return total

    def _buffer_bytes(self, index: int, name: str) -> int:
        decl = self.parts[index].program.buffer(name)
        return decl.length * decl.dtype.byte_width

    # ------------------------------------------------------------------
    def run(self, inputs: Optional[Mapping[str, Any]] = None) -> ExecutionResult:
        """Execute one step across every partition, in order."""
        inputs = dict(inputs or {})
        values: Dict[str, Any] = dict(inputs)
        outputs: Dict[str, np.ndarray] = {}
        merged = CostBreakdown()
        cycles = 0.0
        peak = 0

        for index, machine in enumerate(self.machines):
            part_inputs = {}
            for name in self._input_names[index]:
                if name not in values:
                    raise VmError(
                        f"partition {self.parts[index].backend_name!r} needs "
                        f"input {name!r}, which neither the environment nor "
                        "an earlier partition provides"
                    )
                part_inputs[name] = values[name]
            result = machine.run(part_inputs)
            merged = merged.merged(result.cost)
            cycles += result.cycles
            peak = max(peak, result.peak_live_bytes)
            for name, value in result.outputs.items():
                if name in self._handoff_names:
                    values[name] = value
                else:
                    outputs[name] = value

        transfer = self.transfer_cycles()
        merged.charge("transfer", transfer)
        return ExecutionResult(
            outputs=outputs,
            cost=merged,
            cycles=cycles + transfer,
            peak_live_bytes=peak,
        )
