"""Exception hierarchy for the HCG reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch a single type at the API boundary.  Sub-hierarchies
mirror the package layout: model construction, scheduling, ISA parsing,
code generation and VM execution each have their own branch.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class ModelError(ReproError):
    """A Simulink-like model is structurally invalid."""


class PortError(ModelError):
    """A port reference is missing, duplicated, or incompatible."""


class ConnectionError_(ModelError):
    """A connection between ports is invalid (types, widths, fan-in)."""


class ModelParseError(ModelError):
    """A model XML file could not be parsed."""


class ScheduleError(ReproError):
    """The model cannot be scheduled (e.g. it contains an algebraic loop)."""


class IsaError(ReproError):
    """An instruction-set description is malformed or inconsistent."""


class IsaParseError(IsaError):
    """A ``.si`` instruction-set file could not be parsed."""


class CodegenError(ReproError):
    """Code generation failed.

    When raised by a strict-mode generation run, ``diagnostics`` holds
    every :class:`~repro.diagnostics.Diagnostic` the run collected, so
    callers see the full fault picture instead of only the first one.
    """

    def __init__(self, message: str, diagnostics=()) -> None:
        super().__init__(message)
        self.diagnostics = tuple(diagnostics)


class UnsupportedActorError(CodegenError):
    """A generator met an actor type it cannot translate."""


class VerificationError(ReproError):
    """Differential verification found a divergence (repro.verify).

    ``diagnostics`` holds the :class:`~repro.diagnostics.Diagnostic`
    records describing every mismatch, mirroring ``CodegenError``.
    """

    def __init__(self, message: str, diagnostics=()) -> None:
        super().__init__(message)
        self.diagnostics = tuple(diagnostics)


class HistoryError(ReproError):
    """A selection-history file or entry is malformed."""


class KernelError(ReproError):
    """An intensive-computing kernel was misused."""


class KernelDomainError(KernelError):
    """A kernel was invoked on a (dtype, size) it cannot handle."""


class VmError(ReproError):
    """The virtual machine hit an invalid program or state."""


class VmTypeError(VmError):
    """A VM operand had an unexpected type or shape."""
