"""Scalar expression nodes of the IR.

Expressions are immutable trees.  Arithmetic uses the shared op table in
:mod:`repro.ops`, so VM evaluation agrees with the model's reference
semantics by construction.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple, Union

from repro.dtypes import DataType


class Expr:
    """Base class for scalar expressions."""

    #: child expressions, for generic traversal
    def children(self) -> Tuple["Expr", ...]:
        return ()


@dataclasses.dataclass(frozen=True)
class Const(Expr):
    """A literal scalar constant."""

    value: Union[int, float]
    dtype: DataType

    def __str__(self) -> str:
        return repr(self.value)


@dataclasses.dataclass(frozen=True)
class Var(Expr):
    """Read of a scalar temporary (or loop index)."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclasses.dataclass(frozen=True)
class Load(Expr):
    """Read one element from a buffer: ``buffer[index]``."""

    buffer: str
    index: Expr

    def children(self) -> Tuple[Expr, ...]:
        return (self.index,)

    def __str__(self) -> str:
        return f"{self.buffer}[{self.index}]"


@dataclasses.dataclass(frozen=True)
class ScalarOp(Expr):
    """An elementwise op from :mod:`repro.ops` applied to scalars.

    ``imm`` carries the immediate for shift ops; ``dtype`` is the result
    type (also the type the operands are assumed to have, except Cast).
    """

    op: str
    args: Tuple[Expr, ...]
    dtype: DataType
    imm: Optional[int] = None

    def children(self) -> Tuple[Expr, ...]:
        return self.args

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        if self.imm is not None:
            inner += f", #{self.imm}"
        return f"{self.op}({inner})"


@dataclasses.dataclass(frozen=True)
class Cmp(Expr):
    """Comparison producing 0/1: ops are '<', '<=', '>', '>=', '==', '!='."""

    op: str
    lhs: Expr
    rhs: Expr

    _VALID = ("<", "<=", ">", ">=", "==", "!=")

    def __post_init__(self) -> None:
        if self.op not in self._VALID:
            raise ValueError(f"invalid comparison op {self.op!r}")

    def children(self) -> Tuple[Expr, ...]:
        return (self.lhs, self.rhs)

    def __str__(self) -> str:
        return f"({self.lhs} {self.op} {self.rhs})"


@dataclasses.dataclass(frozen=True)
class Select(Expr):
    """C ternary: ``cond ? if_true : if_false``."""

    cond: Expr
    if_true: Expr
    if_false: Expr

    def children(self) -> Tuple[Expr, ...]:
        return (self.cond, self.if_true, self.if_false)

    def __str__(self) -> str:
        return f"({self.cond} ? {self.if_true} : {self.if_false})"


# ---------------------------------------------------------------------------
# Construction helpers used heavily by the generators
# ---------------------------------------------------------------------------

def const_i(value: int) -> Const:
    """An i32 index/loop constant."""
    return Const(int(value), DataType.I32)


def add_index(base: Expr, offset: int) -> Expr:
    """``base + offset`` with folding of constant bases and zero offsets."""
    if offset == 0:
        return base
    if isinstance(base, Const):
        return Const(int(base.value) + offset, base.dtype)
    return ScalarOp("Add", (base, const_i(offset)), DataType.I32)
