"""Value types for the code-generation IR.

The IR is a small C-like language: scalar temporaries, fixed-length
memory buffers (the flattened model signals), and SIMD vector registers.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Optional, Tuple

from repro.dtypes import DataType


@dataclasses.dataclass(frozen=True)
class ScalarType:
    """A scalar temporary, e.g. ``int32_t``."""

    dtype: DataType

    def __str__(self) -> str:
        return self.dtype.value


@dataclasses.dataclass(frozen=True)
class VectorType:
    """A SIMD register value, e.g. ``int32x4_t`` (i32 x 4 lanes)."""

    dtype: DataType
    lanes: int

    def __post_init__(self) -> None:
        if self.lanes < 2:
            raise ValueError(f"vector type needs >= 2 lanes, got {self.lanes}")

    @property
    def bit_width(self) -> int:
        return self.dtype.bit_width * self.lanes

    def __str__(self) -> str:
        return f"{self.dtype.value}x{self.lanes}"


class BufferKind(enum.Enum):
    """Role of a memory buffer in a generated program."""

    INPUT = "input"       # written by the environment before each step
    OUTPUT = "output"     # read by the environment after each step
    STATE = "state"       # persists across steps (UnitDelay)
    CONST = "const"       # initialised once (Const actors, coefficients)
    LOCAL = "local"       # scratch signal storage within a step


@dataclasses.dataclass(frozen=True)
class BufferDecl:
    """A fixed-length flat memory buffer (a model signal in C)."""

    name: str
    dtype: DataType
    length: int
    kind: BufferKind
    #: Logical (possibly multi-dimensional) shape; flattened row-major.
    shape: Tuple[int, ...] = ()
    #: Initial contents for CONST / STATE buffers (flat tuple).
    init: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise ValueError(f"buffer {self.name!r}: length must be positive")
        if self.init is not None and len(self.init) != self.length:
            raise ValueError(
                f"buffer {self.name!r}: init has {len(self.init)} elements, "
                f"expected {self.length}"
            )

    @property
    def byte_size(self) -> int:
        return self.length * self.dtype.byte_width
