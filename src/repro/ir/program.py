"""Program container: buffers + a body of statements.

A :class:`Program` is the unit every generator emits: the fire code for
one synchronous step of a model, operating over named input/output/
state/const buffers (flattened model signals).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

from repro.errors import CodegenError
from repro.ir.stmt import Stmt, walk
from repro.ir.types import BufferDecl, BufferKind


@dataclasses.dataclass
class Program:
    """One generated step function plus its memory layout."""

    name: str
    buffers: List[BufferDecl] = dataclasses.field(default_factory=list)
    body: List[Stmt] = dataclasses.field(default_factory=list)
    #: which generator produced this ("hcg", "simulink_coder", "dfsynth")
    generator: str = ""
    #: architecture the SIMD instructions target ("" = scalar only)
    arch: str = ""

    # ------------------------------------------------------------------
    def add_buffer(self, decl: BufferDecl) -> BufferDecl:
        if any(b.name == decl.name for b in self.buffers):
            raise CodegenError(f"program {self.name!r}: duplicate buffer {decl.name!r}")
        self.buffers.append(decl)
        return decl

    def buffer(self, name: str) -> BufferDecl:
        for decl in self.buffers:
            if decl.name == name:
                return decl
        raise CodegenError(f"program {self.name!r} has no buffer {name!r}")

    def has_buffer(self, name: str) -> bool:
        return any(b.name == name for b in self.buffers)

    def buffers_of_kind(self, kind: BufferKind) -> Tuple[BufferDecl, ...]:
        return tuple(b for b in self.buffers if b.kind is kind)

    @property
    def inputs(self) -> Tuple[BufferDecl, ...]:
        return self.buffers_of_kind(BufferKind.INPUT)

    @property
    def outputs(self) -> Tuple[BufferDecl, ...]:
        return self.buffers_of_kind(BufferKind.OUTPUT)

    def all_statements(self) -> Tuple[Stmt, ...]:
        """Every statement in the body, recursively (pre-order)."""
        return walk(self.body)

    def data_bytes(self) -> int:
        """Total bytes of buffer storage the program declares.

        This is the figure the paper's "memory usage within ±1%" claim
        is checked against.
        """
        return sum(b.byte_size for b in self.buffers)


class NameAllocator:
    """Deterministic unique-name source for temporaries and registers."""

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}
        self._taken: set = set()

    def reserve(self, name: str) -> str:
        """Mark an externally chosen name as taken."""
        self._taken.add(name)
        return name

    def fresh(self, prefix: str) -> str:
        """A new unique name with ``prefix`` (``t0``, ``t1``, ...)."""
        while True:
            index = self._counters.get(prefix, 0)
            self._counters[prefix] = index + 1
            candidate = f"{prefix}{index}"
            if candidate not in self._taken:
                self._taken.add(candidate)
                return candidate
