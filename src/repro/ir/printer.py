"""Human-readable textual dump of IR programs (debugging, tests, docs)."""

from __future__ import annotations

from typing import List

from repro.ir.program import Program
from repro.ir.stmt import (
    AssignVar,
    Comment,
    CopyBuffer,
    For,
    If,
    KernelCall,
    SimdBroadcast,
    SimdLoad,
    SimdOp,
    SimdStore,
    Stmt,
    Store,
)


def format_stmt(stmt: Stmt, indent: int = 0) -> List[str]:
    pad = "  " * indent
    if isinstance(stmt, Comment):
        return [f"{pad}// {stmt.text}"]
    if isinstance(stmt, AssignVar):
        return [f"{pad}{stmt.dtype} {stmt.name} = {stmt.expr}"]
    if isinstance(stmt, Store):
        return [f"{pad}{stmt.buffer}[{stmt.index}] = {stmt.expr}"]
    if isinstance(stmt, For):
        lines = [f"{pad}for {stmt.var} in [{stmt.start}, {stmt.stop}) step {stmt.step}:"]
        for inner in stmt.body:
            lines.extend(format_stmt(inner, indent + 1))
        return lines
    if isinstance(stmt, If):
        lines = [f"{pad}if {stmt.cond}:"]
        for inner in stmt.then_body:
            lines.extend(format_stmt(inner, indent + 1))
        if stmt.else_body:
            lines.append(f"{pad}else:")
            for inner in stmt.else_body:
                lines.extend(format_stmt(inner, indent + 1))
        return lines
    if isinstance(stmt, SimdLoad):
        return [f"{pad}{stmt.dtype}x{stmt.lanes} {stmt.dest} = vload({stmt.buffer}[{stmt.index}])"]
    if isinstance(stmt, SimdStore):
        return [f"{pad}vstore({stmt.buffer}[{stmt.index}], {stmt.src})"]
    if isinstance(stmt, SimdBroadcast):
        return [f"{pad}{stmt.dtype}x{stmt.lanes} {stmt.dest} = vdup({stmt.scalar})"]
    if isinstance(stmt, SimdOp):
        args = ", ".join(stmt.args)
        imm = f", #{stmt.imm}" if stmt.imm is not None else ""
        return [f"{pad}{stmt.dtype}x{stmt.lanes} {stmt.dest} = {stmt.instruction}({args}{imm})"]
    if isinstance(stmt, KernelCall):
        return [
            f"{pad}{', '.join(stmt.outputs)} = kernel<{stmt.kernel_id}>({', '.join(stmt.inputs)})"
        ]
    if isinstance(stmt, CopyBuffer):
        return [
            f"{pad}memcpy({stmt.dst}[{stmt.dst_offset}], {stmt.src}[{stmt.src_offset}], {stmt.count})"
        ]
    return [f"{pad}<{type(stmt).__name__}>"]


def format_program(program: Program) -> str:
    lines = [f"program {program.name} (generator={program.generator}, arch={program.arch})"]
    for decl in program.buffers:
        init = " = {...}" if decl.init is not None else ""
        lines.append(f"  buffer {decl.kind.value:6s} {decl.dtype} {decl.name}[{decl.length}]{init}")
    lines.append("  body:")
    for stmt in program.body:
        lines.extend(format_stmt(stmt, 2))
    return "\n".join(lines)
