"""C source emitter: print a generated program as deployable C99.

The VM executes the IR directly; this module renders the *same* IR as
the C a user would compile for the real board — NEON intrinsics for the
ARM targets, SSE/AVX/AVX-512 intrinsics for the Intel targets, RVV
intrinsics for the RISC-V target, plain C99 for scalar code.
Intensive-actor kernel calls are emitted as calls into the (external)
kernel library, with a prototype block at the top.

Masked / VL-trimmed statements (``vl`` set — the predicated tail of
Algorithm 2) lower to ``vsetvl``-style trimmed intrinsics on RVV (the
``VL`` template token becomes the active lane count) and to
``_mm512_maskz_loadu_* / _mm512_mask_storeu_*`` with a literal lane
mask on AVX-512; fixed-width families reject them.
"""

from __future__ import annotations

import re
from typing import List, Optional, Set

from repro.dtypes import DataType, c_type_name
from repro.errors import CodegenError
from repro.ir.expr import Cmp, Const, Expr, Load, ScalarOp, Select, Var
from repro.ir.program import Program
from repro.ir.stmt import (
    AssignVar,
    Comment,
    CopyBuffer,
    For,
    If,
    KernelCall,
    SimdBroadcast,
    SimdLoad,
    SimdOp,
    SimdStore,
    Stmt,
    Store,
)
from repro.ir.types import BufferKind
from repro.isa.spec import InstructionSet


_NEON_SUFFIX = {
    DataType.I8: "s8", DataType.I16: "s16", DataType.I32: "s32", DataType.I64: "s64",
    DataType.U8: "u8", DataType.U16: "u16", DataType.U32: "u32", DataType.U64: "u64",
    DataType.F32: "f32", DataType.F64: "f64",
}


def _neon_vector_type(dtype: DataType, lanes: int) -> str:
    base = _NEON_SUFFIX[dtype]
    scalar = {"s": "int", "u": "uint", "f": "float"}[base[0]]
    return f"{scalar}{dtype.bit_width}x{lanes}_t"


def _x86_vector_type(dtype: DataType, bits: int) -> str:
    if dtype.is_float:
        if dtype is DataType.F32:
            return {128: "__m128", 256: "__m256", 512: "__m512"}[bits]
        return {128: "__m128d", 256: "__m256d", 512: "__m512d"}[bits]
    return {128: "__m128i", 256: "__m256i", 512: "__m512i"}[bits]


def _rvv_suffix(dtype: DataType) -> str:
    """RVV intrinsic type suffix at LMUL=1, e.g. ``i32m1``, ``f32m1``."""
    return f"{dtype}m1"


def _rvv_vector_type(dtype: DataType) -> str:
    if dtype.is_float:
        scalar = "float"
    elif str(dtype).startswith("u"):
        scalar = "uint"
    else:
        scalar = "int"
    return f"v{scalar}{dtype.bit_width}m1_t"


def _avx512_mask(lanes: int, vl: int) -> str:
    """A literal ``__mmask`` covering the first ``vl`` of ``lanes`` lanes."""
    return f"(__mmask{max(lanes, 8)})((1ULL << {vl}) - 1)"


#: the ``VL`` token in an RVV code template (replaced with the active
#: lane count; see docs/isa_format.md)
_VL_TOKEN_RE = re.compile(r"\bVL\b")


class CEmitter:
    """Renders one :class:`Program` as a C compilation unit."""

    def __init__(self, program: Program, instruction_set: Optional[InstructionSet] = None) -> None:
        self.program = program
        self.iset = instruction_set
        self._isa_family = instruction_set.arch if instruction_set is not None else ""

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def expr(self, node: Expr) -> str:
        if isinstance(node, Const):
            if node.dtype.is_float:
                suffix = "f" if node.dtype is DataType.F32 else ""
                return f"{float(node.value)!r}{suffix}".replace("'", "")
            return str(int(node.value))
        if isinstance(node, Var):
            return node.name
        if isinstance(node, Load):
            return f"{node.buffer}[{self.expr(node.index)}]"
        if isinstance(node, Cmp):
            return f"({self.expr(node.lhs)} {node.op} {self.expr(node.rhs)})"
        if isinstance(node, Select):
            return (
                f"({self.expr(node.cond)} ? {self.expr(node.if_true)}"
                f" : {self.expr(node.if_false)})"
            )
        if isinstance(node, ScalarOp):
            return self._scalar_op(node)
        raise CodegenError(f"cannot emit expression node {type(node).__name__}")

    def _scalar_op(self, node: ScalarOp) -> str:
        args = [self.expr(a) for a in node.args]
        is_f32 = node.dtype is DataType.F32
        infix = {
            "Add": "+", "Sub": "-", "Mul": "*", "Div": "/",
            "BitAnd": "&", "BitOr": "|", "BitXor": "^",
        }
        if node.op in infix:
            return f"({args[0]} {infix[node.op]} {args[1]})"
        if node.op == "Shr":
            return f"({args[0]} >> {node.imm})"
        if node.op == "Shl":
            return f"({args[0]} << {node.imm})"
        if node.op == "BitNot":
            return f"(~{args[0]})"
        if node.op == "Neg":
            return f"(-{args[0]})"
        if node.op == "Min":
            if node.dtype.is_float:
                fn = "fminf" if is_f32 else "fmin"
                return f"{fn}({args[0]}, {args[1]})"
            return f"(({args[0]} < {args[1]}) ? {args[0]} : {args[1]})"
        if node.op == "Max":
            if node.dtype.is_float:
                fn = "fmaxf" if is_f32 else "fmax"
                return f"{fn}({args[0]}, {args[1]})"
            return f"(({args[0]} > {args[1]}) ? {args[0]} : {args[1]})"
        if node.op == "Abs":
            if node.dtype.is_float:
                return f"{'fabsf' if is_f32 else 'fabs'}({args[0]})"
            return f"(({args[0]} < 0) ? -{args[0]} : {args[0]})"
        if node.op == "Abd":
            if node.dtype.is_float:
                return f"{'fabsf' if is_f32 else 'fabs'}({args[0]} - {args[1]})"
            return (
                f"((({args[0]} > {args[1]}) ? {args[0]} : {args[1]})"
                f" - (({args[0]} < {args[1]}) ? {args[0]} : {args[1]}))"
            )
        if node.op == "Recp":
            one = "1.0f" if is_f32 else "1.0"
            return f"({one} / {args[0]})"
        if node.op == "Sqrt":
            return f"{'sqrtf' if is_f32 else 'sqrt'}({args[0]})"
        if node.op == "Cast":
            return f"(({c_type_name(node.dtype)}){args[0]})"
        raise CodegenError(f"cannot emit scalar op {node.op!r}")

    # ------------------------------------------------------------------
    # SIMD helpers
    # ------------------------------------------------------------------
    def vector_type(self, dtype: DataType, lanes: int) -> str:
        if self._isa_family == "neon":
            return _neon_vector_type(dtype, lanes)
        if self._isa_family == "rvv":
            return _rvv_vector_type(dtype)
        bits = dtype.bit_width * lanes
        return _x86_vector_type(dtype, bits)

    def _check_vl(self, vl: Optional[int]) -> None:
        if vl is not None and self._isa_family not in ("rvv", "avx512"):
            raise CodegenError(
                f"masked SIMD statement (vl={vl}) cannot be emitted for the "
                f"fixed-width {self._isa_family or 'generic'} family"
            )

    def _vload(self, stmt: SimdLoad) -> str:
        address = f"&{stmt.buffer}[{self.expr(stmt.index)}]"
        vtype = self.vector_type(stmt.dtype, stmt.lanes)
        self._check_vl(stmt.vl)
        if self._isa_family == "neon":
            return f"{vtype} {stmt.dest} = vld1q_{_NEON_SUFFIX[stmt.dtype]}({address});"
        if self._isa_family == "rvv":
            active = stmt.vl if stmt.vl is not None else stmt.lanes
            sfx = _rvv_suffix(stmt.dtype)
            return (f"{vtype} {stmt.dest} = "
                    f"__riscv_vle{stmt.dtype.bit_width}_v_{sfx}({address}, {active});")
        bits = stmt.dtype.bit_width * stmt.lanes
        if self._isa_family == "avx512" and stmt.vl is not None:
            # Tail load: zero inactive lanes so they can never fault a
            # full-width op downstream (they are never stored back).
            mask = _avx512_mask(stmt.lanes, stmt.vl)
            if stmt.dtype is DataType.F32:
                return f"{vtype} {stmt.dest} = _mm512_maskz_loadu_ps({mask}, {address});"
            if stmt.dtype is DataType.F64:
                return f"{vtype} {stmt.dest} = _mm512_maskz_loadu_pd({mask}, {address});"
            return (f"{vtype} {stmt.dest} = "
                    f"_mm512_maskz_loadu_epi{stmt.dtype.bit_width}({mask}, {address});")
        prefix = {128: "_mm", 256: "_mm256", 512: "_mm512"}[bits]
        if stmt.dtype is DataType.F32:
            return f"{vtype} {stmt.dest} = {prefix}_loadu_ps({address});"
        if stmt.dtype is DataType.F64:
            return f"{vtype} {stmt.dest} = {prefix}_loadu_pd({address});"
        if bits == 512:
            return f"{vtype} {stmt.dest} = _mm512_loadu_si512((void const*){address});"
        integer_type = "__m128i" if bits == 128 else "__m256i"
        suffix = "si128" if bits == 128 else "si256"
        return f"{vtype} {stmt.dest} = {prefix}_loadu_{suffix}(({integer_type} const*){address});"

    def _vstore(self, stmt: SimdStore) -> str:
        address = f"&{stmt.buffer}[{self.expr(stmt.index)}]"
        self._check_vl(stmt.vl)
        if self._isa_family == "neon":
            return f"vst1q_{_NEON_SUFFIX[stmt.dtype]}({address}, {stmt.src});"
        if self._isa_family == "rvv":
            active = stmt.vl if stmt.vl is not None else stmt.lanes
            sfx = _rvv_suffix(stmt.dtype)
            return (f"__riscv_vse{stmt.dtype.bit_width}_v_{sfx}"
                    f"({address}, {stmt.src}, {active});")
        bits = stmt.dtype.bit_width * stmt.lanes
        if self._isa_family == "avx512" and stmt.vl is not None:
            mask = _avx512_mask(stmt.lanes, stmt.vl)
            if stmt.dtype is DataType.F32:
                return f"_mm512_mask_storeu_ps({address}, {mask}, {stmt.src});"
            if stmt.dtype is DataType.F64:
                return f"_mm512_mask_storeu_pd({address}, {mask}, {stmt.src});"
            return (f"_mm512_mask_storeu_epi{stmt.dtype.bit_width}"
                    f"({address}, {mask}, {stmt.src});")
        prefix = {128: "_mm", 256: "_mm256", 512: "_mm512"}[bits]
        if stmt.dtype is DataType.F32:
            return f"{prefix}_storeu_ps({address}, {stmt.src});"
        if stmt.dtype is DataType.F64:
            return f"{prefix}_storeu_pd({address}, {stmt.src});"
        if bits == 512:
            return f"_mm512_storeu_si512((void*){address}, {stmt.src});"
        integer_type = "__m128i" if bits == 128 else "__m256i"
        suffix = "si128" if bits == 128 else "si256"
        return f"{prefix}_storeu_{suffix}(({integer_type}*){address}, {stmt.src});"

    def _vdup(self, stmt: SimdBroadcast) -> str:
        vtype = self.vector_type(stmt.dtype, stmt.lanes)
        value = self.expr(stmt.scalar)
        if self._isa_family == "neon":
            return f"{vtype} {stmt.dest} = vdupq_n_{_NEON_SUFFIX[stmt.dtype]}({value});"
        if self._isa_family == "rvv":
            sfx = _rvv_suffix(stmt.dtype)
            fn = "vfmv_v_f" if stmt.dtype.is_float else "vmv_v_x"
            return (f"{vtype} {stmt.dest} = "
                    f"__riscv_{fn}_{sfx}({value}, {stmt.lanes});")
        bits = stmt.dtype.bit_width * stmt.lanes
        prefix = {128: "_mm", 256: "_mm256", 512: "_mm512"}[bits]
        if stmt.dtype is DataType.F32:
            return f"{vtype} {stmt.dest} = {prefix}_set1_ps({value});"
        if stmt.dtype is DataType.F64:
            return f"{vtype} {stmt.dest} = {prefix}_set1_pd({value});"
        return f"{vtype} {stmt.dest} = {prefix}_set1_epi{stmt.dtype.bit_width}({value});"

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def stmt(self, node: Stmt, indent: int) -> List[str]:
        pad = "    " * indent
        if isinstance(node, Comment):
            return [f"{pad}/* {node.text} */"]
        if isinstance(node, AssignVar):
            return [f"{pad}{c_type_name(node.dtype)} {node.name} = {self.expr(node.expr)};"]
        if isinstance(node, Store):
            return [f"{pad}{node.buffer}[{self.expr(node.index)}] = {self.expr(node.expr)};"]
        if isinstance(node, For):
            head = (
                f"{pad}for (int32_t {node.var} = {self.expr(node.start)}; "
                f"{node.var} < {self.expr(node.stop)}; {node.var} += {node.step}) {{"
            )
            lines = [head]
            for inner in node.body:
                lines.extend(self.stmt(inner, indent + 1))
            lines.append(f"{pad}}}")
            return lines
        if isinstance(node, If):
            lines = [f"{pad}if {self.expr(node.cond)} {{"]
            for inner in node.then_body:
                lines.extend(self.stmt(inner, indent + 1))
            if node.else_body:
                lines.append(f"{pad}}} else {{")
                for inner in node.else_body:
                    lines.extend(self.stmt(inner, indent + 1))
            lines.append(f"{pad}}}")
            return lines
        if isinstance(node, SimdLoad):
            return [pad + self._vload(node)]
        if isinstance(node, SimdStore):
            return [pad + self._vstore(node)]
        if isinstance(node, SimdBroadcast):
            return [pad + self._vdup(node)]
        if isinstance(node, SimdOp):
            if self.iset is None:
                raise CodegenError("emitting SIMD code requires an instruction set")
            self._check_vl(node.vl)
            spec = self.iset.by_name(node.instruction)
            inputs = {token: arg for token, arg in zip(spec.input_tokens, node.args)}
            vtype = self.vector_type(node.dtype, node.lanes)
            rendered = spec.render_code(node.dest, inputs, node.imm)
            if self._isa_family == "rvv":
                # Scalable templates carry the VL token; substitute the
                # active lane count (trimmed at the predicated tail).
                active = node.vl if node.vl is not None else node.lanes
                rendered = _VL_TOKEN_RE.sub(str(active), rendered)
            # On avx512 a trimmed SimdOp stays full-width: inactive
            # lanes hold zeros from the maskz load and are discarded by
            # the masked store.
            return [f"{pad}{vtype} {rendered};"]
        if isinstance(node, KernelCall):
            from repro.kernels.c_sources import specialized_name

            fn = specialized_name(node.kernel_id, node.params_dict())
            args = ", ".join(list(node.inputs) + list(node.outputs))
            return [f"{pad}{fn}({args});"]
        if isinstance(node, CopyBuffer):
            dtype = self.program.buffer(node.dst).dtype
            return [
                f"{pad}memcpy(&{node.dst}[{self.expr(node.dst_offset)}], "
                f"&{node.src}[{self.expr(node.src_offset)}], "
                f"{node.count} * sizeof({c_type_name(dtype)}));"
            ]
        raise CodegenError(f"cannot emit statement node {type(node).__name__}")

    # ------------------------------------------------------------------
    # Kernel library section
    # ------------------------------------------------------------------
    def _kernel_section(self) -> List[str]:
        """Definitions (or typed prototypes) for every kernel call site."""
        from repro.kernels.c_sources import kernel_c_source, specialized_name

        seen: Set[str] = set()
        definitions: List[str] = []
        prototypes: List[str] = []
        for stmt in self.program.all_statements():
            if not isinstance(stmt, KernelCall):
                continue
            params = stmt.params_dict()
            name = specialized_name(stmt.kernel_id, params)
            if name in seen:
                continue
            seen.add(name)
            dtype = self.program.buffer(
                (stmt.inputs or stmt.outputs)[0]
            ).dtype
            source = kernel_c_source(stmt.kernel_id, params, dtype)
            if source is not None:
                definitions.append(source)
            else:
                ctype = c_type_name(dtype)
                args = [f"const {ctype}* in{i}" for i in range(len(stmt.inputs))]
                args += [f"{ctype}* out{i}" for i in range(len(stmt.outputs))]
                prototypes.append(
                    f"void {name}({', '.join(args)}); "
                    f"/* provided by the {stmt.kernel_id} library build */"
                )
        lines: List[str] = []
        if prototypes:
            lines.append("/* intensive-actor kernels linked from the code library */")
            lines.extend(prototypes)
            lines.append("")
        if definitions:
            lines.append("/* intensive-actor kernel definitions */")
            for definition in definitions:
                lines.append(definition)
                lines.append("")
        return lines

    # ------------------------------------------------------------------
    # Whole unit
    # ------------------------------------------------------------------
    def emit(self) -> str:
        lines: List[str] = [
            f"/* Generated by repro/{self.program.generator or 'unknown'} "
            f"for {self.program.arch or 'generic C'} */",
            "#include <stdint.h>",
            "#include <string.h>",
            "#include <math.h>",
        ]
        uses_simd = any(
            isinstance(stmt, (SimdLoad, SimdStore, SimdBroadcast, SimdOp))
            for stmt in self.program.all_statements()
        )
        if uses_simd and self._isa_family == "neon":
            lines.append("#include <arm_neon.h>")
        elif uses_simd and self._isa_family == "rvv":
            lines.append("#include <riscv_vector.h>")
        elif uses_simd and self._isa_family:
            lines.append("#include <immintrin.h>")
        lines.append("")

        lines.extend(self._kernel_section())

        for decl in self.program.buffers:
            ctype = c_type_name(decl.dtype)
            qualifier = {
                BufferKind.INPUT: "",
                BufferKind.OUTPUT: "",
                BufferKind.STATE: "static ",
                BufferKind.CONST: "static const ",
                BufferKind.LOCAL: "static ",
            }[decl.kind]
            init = ""
            if decl.init is not None:
                rendered = ", ".join(
                    f"{v:g}" if decl.dtype.is_float else str(int(v)) for v in decl.init
                )
                init = f" = {{{rendered}}}"
            lines.append(f"{qualifier}{ctype} {decl.name}[{decl.length}]{init}; "
                         f"/* {decl.kind.value} */")
        lines.append("")
        lines.append(f"void {self.program.name}(void) {{")
        for stmt in self.program.body:
            lines.extend(self.stmt(stmt, 1))
        lines.append("}")
        return "\n".join(lines) + "\n"


def emit_c(program: Program, instruction_set: Optional[InstructionSet] = None) -> str:
    """Render ``program`` as a C compilation unit."""
    return CEmitter(program, instruction_set).emit()


def emit_timing_harness(program: Program, inputs, iterations: int) -> str:
    """A ``main()`` that runs the step function ``iterations`` times and
    prints the elapsed nanoseconds plus an output checksum.

    Appended to :func:`emit_c` output this measures the generated code
    on the *host* CPU — a real-hardware counterpart to the cost model.
    The checksum accumulates across iterations so the loop cannot be
    optimised away.
    """
    import numpy as np

    lines: List[str] = ["#include <stdio.h>", "#include <time.h>", "",
                        "int main(void) {"]
    for decl in program.inputs:
        values = np.asarray(inputs.get(decl.name, 0))
        flat = np.broadcast_to(values, (decl.length,)) if values.ndim == 0 \
            else values.ravel()
        ctype = c_type_name(decl.dtype)
        rendered = ", ".join(
            f"{float(v)!r}".rstrip("0").rstrip(".") if decl.dtype.is_float
            else str(int(v))
            for v in flat
        )
        lines.append(f"    static const {ctype} {decl.name}_init[{decl.length}] = "
                     f"{{{rendered}}};")
        lines.append(f"    memcpy({decl.name}, {decl.name}_init, sizeof({decl.name}_init));")
    lines.append("    struct timespec t0, t1;")
    lines.append("    double checksum = 0.0;")
    lines.append("    clock_gettime(CLOCK_MONOTONIC, &t0);")
    lines.append(f"    for (long it = 0; it < {int(iterations)}L; ++it) {{")
    lines.append(f"        {program.name}();")
    if program.outputs:
        first = program.outputs[0]
        lines.append(f"        checksum += (double){first.name}[it % {first.length}];")
    lines.append("    }")
    lines.append("    clock_gettime(CLOCK_MONOTONIC, &t1);")
    lines.append("    long long ns = (long long)(t1.tv_sec - t0.tv_sec) * 1000000000LL"
                 " + (t1.tv_nsec - t0.tv_nsec);")
    lines.append('    printf("ns %lld\\n", ns);')
    lines.append('    printf("checksum %.9g\\n", checksum);')
    lines.append("    return 0;")
    lines.append("}")
    return "\n".join(lines) + "\n"


def emit_test_harness(program: Program, inputs) -> str:
    """A ``main()`` that loads fixed inputs, runs one step and prints
    every output element as ``<buffer> <index> <value>`` lines.

    Appended to :func:`emit_c` output this gives a self-contained,
    compilable executable whose stdout the tests compare against the
    VM's execution of the very same program.
    """
    import numpy as np

    lines: List[str] = ["#include <stdio.h>", "", "int main(void) {"]
    for decl in program.inputs:
        values = np.asarray(inputs.get(decl.name, 0))
        flat = np.broadcast_to(values, (decl.length,)) if values.ndim == 0 \
            else values.ravel()
        ctype = c_type_name(decl.dtype)
        rendered = ", ".join(
            f"{float(v)!r}".rstrip("0").rstrip(".") if decl.dtype.is_float
            else str(int(v))
            for v in flat
        )
        lines.append(f"    static const {ctype} {decl.name}_init[{decl.length}] = "
                     f"{{{rendered}}};")
        lines.append(f"    memcpy({decl.name}, {decl.name}_init, sizeof({decl.name}_init));")
    lines.append(f"    {program.name}();")
    for decl in program.outputs:
        if decl.dtype.is_float:
            fmt, cast = "%.9g", "(double)"
        else:
            fmt, cast = "%lld", "(long long)"
        lines.append(f"    for (int i = 0; i < {decl.length}; ++i) {{")
        lines.append(
            f'        printf("{decl.name} %d {fmt}\\n", i, {cast}{decl.name}[i]);'
        )
        lines.append("    }")
    lines.append("    return 0;")
    lines.append("}")
    return "\n".join(lines) + "\n"
