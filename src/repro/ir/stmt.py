"""Statement nodes of the IR."""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Optional, Tuple, Union

from repro.ir.expr import Expr
from repro.dtypes import DataType


class Stmt:
    """Base class for IR statements."""

    def blocks(self) -> Tuple[Tuple["Stmt", ...], ...]:
        """Nested statement blocks, for generic traversal."""
        return ()


@dataclasses.dataclass(frozen=True)
class Comment(Stmt):
    """A generated-code comment; free for the cost model."""

    text: str


@dataclasses.dataclass(frozen=True)
class AssignVar(Stmt):
    """Declare-or-assign a scalar temporary: ``dtype name = expr;``."""

    name: str
    expr: Expr
    dtype: DataType


@dataclasses.dataclass(frozen=True)
class Store(Stmt):
    """Write one element to a buffer: ``buffer[index] = expr;``."""

    buffer: str
    index: Expr
    expr: Expr


@dataclasses.dataclass(frozen=True)
class For(Stmt):
    """``for (int var = start; var < stop; var += step) body``.

    Bounds are expressions so generated loops can reference runtime
    offsets; in practice the generators emit constant bounds.
    """

    var: str
    start: Expr
    stop: Expr
    step: int
    body: Tuple[Stmt, ...]

    def blocks(self) -> Tuple[Tuple[Stmt, ...], ...]:
        return (self.body,)


@dataclasses.dataclass(frozen=True)
class If(Stmt):
    """``if (cond) { then_body } else { else_body }``."""

    cond: Expr
    then_body: Tuple[Stmt, ...]
    else_body: Tuple[Stmt, ...] = ()

    def blocks(self) -> Tuple[Tuple[Stmt, ...], ...]:
        return (self.then_body, self.else_body)


# ---------------------------------------------------------------------------
# SIMD statements
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class SimdLoad(Stmt):
    """Load ``lanes`` consecutive elements into a vector register.

    C form: ``int32x4_t dest = vld1q_s32(&buffer[index]);``

    ``vl`` (when set) restricts the access to the first ``vl`` lanes —
    a masked / VL-trimmed load on ISAs with ``scalable`` or ``mask``
    features; lanes past ``vl`` are never read.
    """

    dest: str
    buffer: str
    index: Expr
    dtype: DataType
    lanes: int
    vl: Optional[int] = None


@dataclasses.dataclass(frozen=True)
class SimdStore(Stmt):
    """Store a vector register to ``lanes`` consecutive elements.

    C form: ``vst1q_s32(&buffer[index], src);``

    ``vl`` (when set) writes only the first ``vl`` lanes — a masked /
    VL-trimmed store; lanes past ``vl`` are never touched.
    """

    buffer: str
    index: Expr
    src: str
    dtype: DataType
    lanes: int
    vl: Optional[int] = None


@dataclasses.dataclass(frozen=True)
class SimdBroadcast(Stmt):
    """Fill all lanes of a vector register with one scalar.

    C form: ``int32x4_t dest = vdupq_n_s32(x);``
    """

    dest: str
    scalar: Expr
    dtype: DataType
    lanes: int


@dataclasses.dataclass(frozen=True)
class SimdOp(Stmt):
    """Apply one SIMD instruction from the active instruction set.

    ``instruction`` names an :class:`repro.isa.spec.InstructionSpec` in
    the program's instruction set; ``args`` are vector register names in
    the order of the instruction's inputs; ``imm`` carries a shift
    amount when the instruction's pattern requires one.

    C form: ``int32x4_t dest = vmlaq_s32(acc, a, b);``

    ``vl`` (when set) evaluates only the first ``vl`` lanes — the
    predicated-tail form on ``scalable``/``mask`` ISAs.  Operand
    registers must have been produced with the same ``vl``.
    """

    dest: str
    instruction: str
    args: Tuple[str, ...]
    dtype: DataType
    lanes: int
    imm: Optional[int] = None
    vl: Optional[int] = None


@dataclasses.dataclass(frozen=True)
class KernelCall(Stmt):
    """Invoke an intensive-computing library kernel.

    ``kernel_id`` identifies an implementation in the kernel code
    library (e.g. ``"fft.radix4"``).  Inputs and outputs are buffer
    names; ``params`` carries static configuration (sizes).
    """

    kernel_id: str
    inputs: Tuple[str, ...]
    outputs: Tuple[str, ...]
    params: Tuple[Tuple[str, Any], ...] = ()

    def params_dict(self) -> Dict[str, Any]:
        return dict(self.params)


@dataclasses.dataclass(frozen=True)
class CopyBuffer(Stmt):
    """memcpy: copy ``count`` elements between buffers."""

    dst: str
    dst_offset: Expr
    src: str
    src_offset: Expr
    count: int


Block = Tuple[Stmt, ...]


def walk(statements: Union[Block, list]) -> Tuple[Stmt, ...]:
    """All statements in a block, recursively, in pre-order."""
    out = []
    for stmt in statements:
        out.append(stmt)
        for block in stmt.blocks():
            out.extend(walk(block))
    return tuple(out)
