"""repro — a reproduction of HCG (DAC 2022).

HCG optimizes embedded code generation for Simulink models with SIMD
instruction synthesis: adaptive pre-calculated implementation selection
for intensive computing actors (Algorithm 1) and iterative dataflow-graph
mapping onto SIMD instructions for batch computing actors (Algorithm 2).

Public entry points:

* :mod:`repro.api` — **the stable facade**: one
  ``generate(GenerateRequest) -> GenerateResult`` entry point with
  on-disk caching, parallel batches and built-in verification
  (docs/api.md). Prefer it for programmatic use.
* :mod:`repro.model` — build or parse Simulink-like models.
* :mod:`repro.codegen` — the three generators (HCG, Simulink-Coder-like
  baseline, DFSynth-like baseline).
* :mod:`repro.arch` — architecture and compiler presets (ARM Cortex-A72,
  Intel i7-8700; GCC, Clang).
* :mod:`repro.vm` — execute generated programs under a cost model.
* :mod:`repro.bench` — the paper's benchmark models and harness.
"""

__version__ = "1.0.0"
