"""FFT kernel implementations (the paper's Fig. 1 code library).

Five algorithms with genuinely different operation counts:

* ``naive``    — textbook O(n^2) DFT, any length;
* ``radix2``   — iterative Cooley-Tukey, length 2^k (the paper's
  "Rad-2 FFT");
* ``radix4``   — radix-4 butterflies, length 4^k (~25% fewer
  multiplies than radix-2);
* ``mixed``    — recursive mixed-radix Cooley-Tukey, any length,
  efficient on large composite n but with per-call machinery that makes
  it lose on small n (the paper's "Mix-FFT" behaviour);
* ``bluestein`` — chirp-z over three power-of-two FFTs, any length
  (stands in for the generic "Galois FFT" comparator).

``radix2``, ``mixed`` and ``bluestein`` are real implementations — the
butterfly/recursion structure executes (vectorised per stage with
numpy).  ``naive`` and ``radix4`` compute the transform and derive
their counts from the algorithm's exact loop structure.

Complex signals are carried as ``(2, n)`` arrays of [real; imag].
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Sequence

import numpy as np

from repro.dtypes import DataType
from repro.kernels.base import Kernel, OpCounts, SimdVariant


def _is_pow(n: int, base: int) -> bool:
    if n < 1:
        return False
    while n % base == 0:
        n //= base
    return n == 1


def _smallest_factor(n: int) -> int:
    for candidate in (4, 2, 3, 5, 7):
        if n % candidate == 0 and n != candidate:
            return candidate
    # fall back to any factor; n prime -> return n (single generic stage)
    i = 3
    while i * i <= n:
        if n % i == 0:
            return i
        i += 2
    return n


def _to_complex(inputs: Sequence[np.ndarray], inverse: bool) -> np.ndarray:
    data = np.asarray(inputs[0], dtype=np.float64)
    if inverse:
        return data[0] + 1j * data[1]
    return data.astype(np.complex128)


def _from_complex(values: np.ndarray, dtype_like: np.ndarray) -> List[np.ndarray]:
    stacked = np.stack([values.real, values.imag])
    return [stacked.astype(np.asarray(dtype_like).dtype)]


class FftKernel(Kernel):
    """Base class: handles the forward/inverse plumbing and registration."""

    def __init__(self, inverse: bool) -> None:
        self.inverse = inverse
        self.actor_key = "ifft" if inverse else "fft"
        self.kernel_id = f"{self.actor_key}.{self.algorithm}"

    algorithm: str = ""

    def can_handle(self, dtype: DataType, params: Dict[str, Any]) -> bool:
        return dtype.is_float and self._supports_length(int(params["n"]))

    def _supports_length(self, n: int) -> bool:
        return n >= 1

    def execute(
        self,
        inputs: Sequence[np.ndarray],
        params: Dict[str, Any],
        counts: OpCounts,
    ) -> List[np.ndarray]:
        n = int(params["n"])
        x = _to_complex(inputs, self.inverse)
        if self.inverse:
            # IFFT(x) = conj(FFT(conj(x))) / n
            result = np.conj(self._transform(np.conj(x), counts)) / n
            counts.mul += 2 * n       # the 1/n scaling
            counts.misc += n
        else:
            result = self._transform(x, counts)
        return _from_complex(result, inputs[0])

    def _transform(self, x: np.ndarray, counts: OpCounts) -> np.ndarray:
        raise NotImplementedError


class FftNaive(FftKernel):
    """O(n^2) direct DFT: every output is a full dot product."""

    algorithm = "naive"
    description = "direct O(n^2) DFT"

    def _transform(self, x: np.ndarray, counts: OpCounts) -> np.ndarray:
        n = len(x)
        # Counts of the doubly nested C loop: per (k, j) term one complex
        # multiply (4 mul + 2 add) and one complex accumulate (2 add),
        # plus data + twiddle-table loads.
        counts.mul += 4.0 * n * n
        counts.add += 4.0 * n * n
        counts.load += 4.0 * n * n
        counts.store += 2.0 * n
        counts.misc += 2.0 * n * n
        if n <= 1024:
            k = np.arange(n)
            w = np.exp(-2j * np.pi * np.outer(k, k) / n)
            return w @ x
        return np.fft.fft(x)


class FftRadix2(FftKernel):
    """Iterative radix-2 Cooley-Tukey, executed stage by stage."""

    algorithm = "radix2"
    description = "iterative radix-2 Cooley-Tukey (n = 2^k)"

    def _supports_length(self, n: int) -> bool:
        return _is_pow(n, 2)

    def _transform(self, x: np.ndarray, counts: OpCounts) -> np.ndarray:
        n = len(x)
        if n == 1:
            return np.array(x, copy=True)
        stages = int(math.log2(n))
        # bit-reversal permutation
        indices = np.arange(n)
        reversed_indices = np.zeros(n, dtype=np.int64)
        for bit in range(stages):
            reversed_indices |= ((indices >> bit) & 1) << (stages - 1 - bit)
        data = np.array(x[reversed_indices], copy=True)
        counts.load += 2.0 * n
        counts.store += 2.0 * n
        counts.misc += 2.0 * n

        half = 1
        while half < n:
            span = half * 2
            k = np.arange(half)
            twiddle = np.exp(-2j * np.pi * k / span)
            starts = np.arange(0, n, span)[:, None]
            top = starts + k[None, :]
            bottom = top + half
            t = data[bottom] * twiddle[None, :]
            data[bottom] = data[top] - t
            data[top] = data[top] + t
            half = span
        butterflies = (n / 2) * stages
        # per butterfly: complex mul (4 mul + 2 add), two complex adds
        # (4 add), 4 data + 2 twiddle loads, 4 stores, index bookkeeping
        counts.mul += 4.0 * butterflies
        counts.add += 6.0 * butterflies
        counts.load += 6.0 * butterflies
        counts.store += 4.0 * butterflies
        counts.misc += 3.0 * butterflies
        return data


class FftRadix4(FftKernel):
    """Radix-4 butterflies: fewer multiplies, needs n = 4^k."""

    algorithm = "radix4"
    description = "radix-4 butterfly FFT (n = 4^k)"

    def _supports_length(self, n: int) -> bool:
        return _is_pow(n, 4)

    def _transform(self, x: np.ndarray, counts: OpCounts) -> np.ndarray:
        n = len(x)
        stages = int(round(math.log(n, 4))) if n > 1 else 0
        butterflies = (n / 4) * stages
        # per radix-4 butterfly: 3 twiddle complex muls (12 mul + 6 add)
        # and 8 complex adds (16 add); 8 data + 6 twiddle loads; 8 stores.
        counts.mul += 12.0 * butterflies
        counts.add += 22.0 * butterflies
        counts.load += 14.0 * butterflies
        counts.store += 8.0 * butterflies
        counts.misc += 5.0 * butterflies
        counts.load += 2.0 * n  # digit-reversal pass
        counts.store += 2.0 * n
        counts.misc += 2.0 * n
        return np.fft.fft(x)


class FftMixed(FftKernel):
    """Recursive mixed-radix Cooley-Tukey over factors 4/2/3/5/7/prime.

    The recursion executes for real; the per-call machinery (factor
    search, stride bookkeeping, twiddle generation) is charged as misc
    work, which is why this implementation loses on small inputs and
    wins on large composite ones — the paper's Fig. 1 Mix-FFT curve.
    """

    algorithm = "mixed"
    description = "recursive mixed-radix FFT (any n)"
    #: per-recursive-call fixed machinery (factorisation, setup)
    CALL_OVERHEAD = 40.0

    def _transform(self, x: np.ndarray, counts: OpCounts) -> np.ndarray:
        return self._recurse(np.asarray(x, dtype=np.complex128), counts)

    def _recurse(self, x: np.ndarray, counts: OpCounts) -> np.ndarray:
        n = len(x)
        counts.misc += self.CALL_OVERHEAD
        if n == 1:
            return np.array(x, copy=True)
        r = _smallest_factor(n)
        if r == n:
            # prime length: generic O(r^2) DFT stage
            counts.mul += 4.0 * n * n
            counts.add += 4.0 * n * n
            counts.load += 4.0 * n * n
            counts.store += 2.0 * n
            counts.misc += 2.0 * n * n
            k = np.arange(n)
            w = np.exp(-2j * np.pi * np.outer(k, k) / n)
            return w @ x
        m = n // r
        subs = np.stack([self._recurse(x[i::r], counts) for i in range(r)])
        # combine: out[k + j*m] = sum_i subs[i][k] * W_n^{i*(k + j*m)}
        k = np.arange(n)
        i = np.arange(r)[:, None]
        twiddle = np.exp(-2j * np.pi * (i * k[None, :]) / n)
        out = (subs[:, k % m] * twiddle).sum(axis=0)
        # Mix-FFT special-cases radix-2 and radix-4 passes with proper
        # butterflies (slightly more bookkeeping than a dedicated
        # radix-k FFT); other factors use the generic r-point stage.
        if r == 2:
            butterflies = n / 2
            counts.mul += 4.0 * butterflies
            counts.add += 6.0 * butterflies
            counts.load += 6.0 * butterflies
            counts.store += 4.0 * butterflies
            counts.misc += 6.0 * butterflies
        elif r == 4:
            butterflies = n / 4
            counts.mul += 12.0 * butterflies
            counts.add += 22.0 * butterflies
            counts.load += 14.0 * butterflies
            counts.store += 8.0 * butterflies
            counts.misc += 10.0 * butterflies
        else:
            # per output: r complex muls + (r-1) complex adds, table
            # loads, and generic strided-index arithmetic
            counts.mul += 4.0 * r * n
            counts.add += (2.0 * r + 2.0 * (r - 1)) * n
            counts.load += 4.0 * r * n
            counts.store += 2.0 * n
            counts.misc += 6.0 * n
        return out


class FftSplitRadix(FftKernel):
    """Split-radix FFT: the lowest known multiply count for n = 2^k.

    One half-size plus two quarter-size sub-transforms per level, with
    only two twiddle multiplies per output quartet — genuinely executed
    recursively.
    """

    algorithm = "splitradix"
    description = "recursive split-radix FFT (n = 2^k)"

    def _supports_length(self, n: int) -> bool:
        return _is_pow(n, 2)

    def _transform(self, x: np.ndarray, counts: OpCounts) -> np.ndarray:
        return self._recurse(np.asarray(x, dtype=np.complex128), counts)

    def _recurse(self, x: np.ndarray, counts: OpCounts) -> np.ndarray:
        n = len(x)
        if n == 1:
            return np.array(x, copy=True)
        if n == 2:
            counts.add += 4.0   # one complex butterfly
            counts.load += 4.0
            counts.store += 4.0
            return np.array([x[0] + x[1], x[0] - x[1]])
        quarter = n // 4
        even = self._recurse(x[0::2], counts)
        first = self._recurse(x[1::4], counts)
        third = self._recurse(x[3::4], counts)
        k = np.arange(quarter)
        w1 = np.exp(-2j * np.pi * k / n)
        w3 = np.exp(-2j * np.pi * 3 * k / n)
        t1 = w1 * first
        t3 = w3 * third
        sum_t = t1 + t3
        diff_t = -1j * (t1 - t3)
        out = np.empty(n, dtype=np.complex128)
        out[:quarter] = even[:quarter] + sum_t
        out[2 * quarter: 3 * quarter] = even[:quarter] - sum_t
        out[quarter: 2 * quarter] = even[quarter:] + diff_t
        out[3 * quarter:] = even[quarter:] - diff_t
        # per output quartet: two twiddle complex muls (8 mul + 4 add)
        # and six complex adds (12 add); twiddle loads + data traffic
        counts.mul += 8.0 * quarter
        counts.add += 16.0 * quarter
        counts.load += 12.0 * quarter
        counts.store += 8.0 * quarter
        counts.misc += 5.0 * quarter
        return out


class FftBluestein(FftKernel):
    """Chirp-z (Bluestein) FFT: any n via three 2^k convolution FFTs."""

    algorithm = "bluestein"
    description = "Bluestein chirp-z FFT (any n, 3 pow2 FFTs)"

    def _transform(self, x: np.ndarray, counts: OpCounts) -> np.ndarray:
        n = len(x)
        if n == 1:
            counts.misc += 4
            return np.array(x, copy=True)
        m = 1 << (2 * n - 1).bit_length()
        k = np.arange(n)
        chirp = np.exp(-1j * np.pi * (k * k % (2 * n)) / n)
        a = np.zeros(m, dtype=np.complex128)
        a[:n] = x * chirp
        b = np.zeros(m, dtype=np.complex128)
        b[:n] = np.conj(chirp)
        b[m - n + 1:] = np.conj(chirp[1:][::-1])
        counts.mul += 4.0 * n + 4.0 * n  # chirp setup muls
        counts.load += 8.0 * n
        counts.store += 4.0 * m
        counts.misc += 6.0 * n

        inner = FftRadix2(inverse=False)
        fa = inner._transform(a, counts)
        fb = inner._transform(b, counts)
        prod = fa * fb
        counts.mul += 4.0 * m
        counts.add += 2.0 * m
        counts.load += 4.0 * m
        counts.store += 2.0 * m
        conv = np.conj(inner._transform(np.conj(prod), counts)) / m
        counts.mul += 2.0 * m
        result = conv[:n] * chirp
        counts.mul += 4.0 * n
        counts.add += 2.0 * n
        counts.store += 2.0 * n
        return result


def make_fft_kernels(inverse: bool) -> List[Kernel]:
    """The FFT (or IFFT) code library entries."""
    naive = FftNaive(inverse)
    radix2 = FftRadix2(inverse)
    radix4 = FftRadix4(inverse)
    splitradix = FftSplitRadix(inverse)
    mixed = FftMixed(inverse)
    bluestein = FftBluestein(inverse)
    mixed.general = True  # the safe any-length scalar fallback
    kernels: List[Kernel] = [naive, radix2, radix4, splitradix, mixed, bluestein]
    kernels.append(SimdVariant(FftRadix2(inverse), vectorizable_fraction=0.85))
    kernels.append(SimdVariant(FftRadix4(inverse), vectorizable_fraction=0.85))
    # split-radix's irregular butterflies vectorise less cleanly
    kernels.append(SimdVariant(FftSplitRadix(inverse), vectorizable_fraction=0.7))
    kernels.append(SimdVariant(FftMixed(inverse), vectorizable_fraction=0.75))
    return kernels
