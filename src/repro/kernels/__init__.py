"""Intensive-actor implementation library (the paper's code library)."""

from repro.kernels.base import (
    Kernel,
    KernelRun,
    OpCounts,
    SimdVariant,
    kernel_cycles,
)
from repro.kernels.library import CodeLibrary, build_default_library, default_library

__all__ = [
    "CodeLibrary",
    "Kernel",
    "KernelRun",
    "OpCounts",
    "SimdVariant",
    "build_default_library",
    "default_library",
    "kernel_cycles",
]
