"""Intensive-actor implementation library (the paper's code library).

§3.2.1: Algorithm 1 selects among *multiple, genuinely different*
implementations per intensive actor type — five FFTs, three DCTs, two
convolutions, matrix and 2-D kernels — because no single one dominates
at every data scale (the paper's Fig. 1).  Each kernel computes real
results over numpy while counting the operations its C equivalent
would execute, so pre-calculation measures honest costs.
"""

from repro.kernels.base import (
    Kernel,
    KernelRun,
    OpCounts,
    SimdVariant,
    kernel_cycles,
)
from repro.kernels.library import CodeLibrary, build_default_library, default_library

__all__ = [
    "CodeLibrary",
    "Kernel",
    "KernelRun",
    "OpCounts",
    "SimdVariant",
    "build_default_library",
    "default_library",
    "kernel_cycles",
]
