"""Kernel ABC and cost accounting for intensive computing actors.

The paper's code library (§3.2.1) holds many C implementations per
intensive actor (e.g. Mix-FFT, Radix-2 FFT, Radix-4 FFT ...), some of
them SIMD-accelerated.  Here each implementation is a :class:`Kernel`
that

* computes the *real* result (with numpy doing the arithmetic), and
* fills an :class:`OpCounts` with the operation counts the equivalent C
  implementation would execute — derived from the algorithm's structure
  (butterfly counts, stage counts, loop bookkeeping), not guessed.

Modelled cycles are then ``counts x architecture cost table``, with a
lane-speedup applied to the vectorizable fraction of SIMD kernels.
This is what Algorithm 1's pre-calculation measures when it "runs" an
implementation on test input.
"""

from __future__ import annotations

import abc
import dataclasses
from typing import Any, Dict, List, Sequence

import numpy as np

from repro.arch.cost import CostTable
from repro.dtypes import DataType
from repro.errors import KernelDomainError


@dataclasses.dataclass
class OpCounts:
    """Operation counts for one kernel invocation (floating/int ops)."""

    add: float = 0.0      # additions / subtractions
    mul: float = 0.0      # multiplications
    div: float = 0.0      # divisions / reciprocals
    sqrt: float = 0.0
    load: float = 0.0     # scalar-element loads (including table reads)
    store: float = 0.0    # scalar-element stores
    misc: float = 0.0     # index arithmetic, compares, bookkeeping

    def scale(self, factor: float) -> "OpCounts":
        return OpCounts(*(getattr(self, f.name) * factor for f in dataclasses.fields(self)))

    def merge(self, other: "OpCounts") -> None:
        for field in dataclasses.fields(self):
            setattr(self, field.name, getattr(self, field.name) + getattr(other, field.name))

    @property
    def arithmetic(self) -> float:
        return self.add + self.mul + self.div + self.sqrt

    def cycles(self, cost: CostTable) -> float:
        """Scalar cycle estimate under a cost table."""
        return (
            self.add * cost.scalar_op("Add")
            + self.mul * cost.scalar_op("Mul")
            + self.div * cost.scalar_op("Div")
            + self.sqrt * cost.scalar_op("Sqrt")
            + self.load * cost.scalar_load
            + self.store * cost.scalar_store
            + self.misc * cost.scalar_scale
        )


#: Extra issue overhead of a vector op vs the ideal lanes-fold speedup
#: (shuffles, alignment, tail handling).
SIMD_EFFICIENCY_OVERHEAD = 1.6


def kernel_cycles(
    counts: OpCounts,
    cost: CostTable,
    simd: bool,
    lanes: int,
    vectorizable_fraction: float,
) -> float:
    """Cycles for a kernel run: scalar estimate, lane-sped-up if SIMD."""
    scalar = counts.cycles(cost)
    if not simd or lanes <= 1 or vectorizable_fraction <= 0.0:
        return scalar + cost.call_overhead
    vf = min(vectorizable_fraction, 1.0)
    vectorized = scalar * ((1.0 - vf) + vf * SIMD_EFFICIENCY_OVERHEAD / lanes)
    return vectorized + cost.call_overhead


class Kernel(abc.ABC):
    """One implementation of one intensive computing actor type."""

    #: unique id, e.g. ``"fft.radix4"``
    kernel_id: str = ""
    #: the actor library key this implements, e.g. ``"fft"``
    actor_key: str = ""
    #: human-readable description for reports
    description: str = ""
    #: True when the implementation uses SIMD intrinsics
    simd: bool = False
    #: fraction of the work that vectorises (0..1), for SIMD kernels
    vectorizable_fraction: float = 0.0
    #: True for the safe implementation every tool can fall back to;
    #: exactly one per actor key (Algorithm 1's getGeneralImplementation)
    general: bool = False

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def can_handle(self, dtype: DataType, params: Dict[str, Any]) -> bool:
        """Whether this implementation supports the (dtype, size) domain."""

    @abc.abstractmethod
    def execute(
        self,
        inputs: Sequence[np.ndarray],
        params: Dict[str, Any],
        counts: OpCounts,
    ) -> List[np.ndarray]:
        """Compute the result and accumulate operation counts."""

    # ------------------------------------------------------------------
    def run(
        self,
        inputs: Sequence[np.ndarray],
        params: Dict[str, Any],
        dtype: DataType,
    ) -> "KernelRun":
        """Execute with domain checking; returns outputs plus counts."""
        if not self.can_handle(dtype, params):
            raise KernelDomainError(
                f"kernel {self.kernel_id!r} cannot handle dtype={dtype} params={params}"
            )
        counts = OpCounts()
        outputs = self.execute(inputs, params, counts)
        return KernelRun(outputs=outputs, counts=counts)

    def measure_cycles(
        self,
        inputs: Sequence[np.ndarray],
        params: Dict[str, Any],
        dtype: DataType,
        cost: CostTable,
        lanes: int,
    ) -> float:
        """Modelled cycles of one invocation (Algorithm 1's cost probe)."""
        run = self.run(inputs, params, dtype)
        return kernel_cycles(run.counts, cost, self.simd, lanes, self.vectorizable_fraction)

    def __repr__(self) -> str:
        tag = " simd" if self.simd else ""
        return f"<Kernel {self.kernel_id}{tag}>"


class SimdVariant(Kernel):
    """A SIMD-accelerated build of a scalar kernel.

    The C library the paper deploys contains intrinsics versions of the
    structured FFT/DCT/Conv kernels; their arithmetic structure (and so
    the op counts) matches the scalar algorithm, and the vectorizable
    fraction of the work retires ``lanes`` elements per op.
    """

    def __init__(self, base: "Kernel", vectorizable_fraction: float) -> None:
        self.base = base
        self.kernel_id = f"{base.kernel_id}_simd"
        self.actor_key = base.actor_key
        self.description = f"{base.description} (SIMD intrinsics)"
        self.simd = True
        self.vectorizable_fraction = vectorizable_fraction
        self.general = False

    def can_handle(self, dtype: DataType, params: Dict[str, Any]) -> bool:
        return self.base.can_handle(dtype, params)

    def execute(
        self,
        inputs: Sequence[np.ndarray],
        params: Dict[str, Any],
        counts: OpCounts,
    ) -> List[np.ndarray]:
        return self.base.execute(inputs, params, counts)


@dataclasses.dataclass
class KernelRun:
    """Result of one kernel invocation."""

    outputs: List[np.ndarray]
    counts: OpCounts


def as_float64(arrays: Sequence[np.ndarray]) -> List[np.ndarray]:
    """Working copies in f64, the precision C kernels accumulate in."""
    return [np.asarray(a, dtype=np.float64) for a in arrays]
