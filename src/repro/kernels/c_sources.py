"""C source bodies for the kernel code library.

The deployable output of the generators calls into the intensive-actor
code library.  This module renders those library functions as C99,
specialised to the actor's concrete sizes (the way an embedded build
bakes the FFT length into the kernel).  Every emitted body implements
the same algorithm the Python kernel models — the same loop structure
whose operations the cost model counts.

Kernels without a C body here (the SIMD intrinsics builds, the
recursive mixed-radix/Bluestein variants) are emitted as extern
prototypes; their scalar reference body can be requested instead via
``fallback_scalar=True``.

Complex (2, n) signals are laid out as ``out[0..n)`` = real plane,
``out[n..2n)`` = imaginary plane, matching the flat buffer layout the
generated step function uses.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Optional

from repro.dtypes import DataType, c_type_name


def specialized_name(kernel_id: str, params: Dict[str, Any]) -> str:
    """Function name with the actor's sizes baked in, e.g.
    ``fft_radix2_n1024``."""
    base = kernel_id.replace(".", "_")
    sizes = "_".join(
        f"{key}{int(params[key])}"
        for key in ("n", "m", "rows", "cols", "krows", "kcols")
        if key in params
    )
    return f"{base}_{sizes}" if sizes else base


def _sig(name: str, dtype: DataType, ins: int, outs: int) -> str:
    ctype = c_type_name(dtype)
    args = [f"const {ctype}* in{i}" for i in range(ins)]
    args += [f"{ctype}* out{i}" for i in range(outs)]
    return f"void {name}({', '.join(args)})"


# ---------------------------------------------------------------------------
# Individual kernel bodies
# ---------------------------------------------------------------------------

def _conv_direct(name: str, dtype: DataType, params: Dict[str, Any]) -> str:
    n, m = int(params["n"]), int(params["m"])
    ctype = c_type_name(dtype)
    acc = "double" if dtype.is_float else "int64_t"
    return f"""{_sig(name, dtype, 2, 1)} {{
    /* direct O(n*m) convolution, full output ({n}+{m}-1 taps) */
    for (int k = 0; k < {n + m - 1}; ++k) {{
        {acc} acc = 0;
        int lo = k - {m - 1} > 0 ? k - {m - 1} : 0;
        int hi = k < {n - 1} ? k : {n - 1};
        for (int j = lo; j <= hi; ++j) {{
            acc += ({acc})in0[j] * in1[k - j];
        }}
        out0[k] = ({ctype})acc;
    }}
}}"""


def _matmul_naive(name: str, dtype: DataType, params: Dict[str, Any]) -> str:
    n = int(params["n"])
    ctype = c_type_name(dtype)
    acc = "double" if dtype.is_float else "int64_t"
    return f"""{_sig(name, dtype, 2, 1)} {{
    /* triple-loop {n}x{n} matrix multiply */
    for (int i = 0; i < {n}; ++i) {{
        for (int j = 0; j < {n}; ++j) {{
            {acc} acc = 0;
            for (int k = 0; k < {n}; ++k) {{
                acc += ({acc})in0[i * {n} + k] * in1[k * {n} + j];
            }}
            out0[i * {n} + j] = ({ctype})acc;
        }}
    }}
}}"""


def _matmul_unrolled(name: str, dtype: DataType, params: Dict[str, Any]) -> str:
    n = int(params["n"])
    ctype = c_type_name(dtype)
    lines = [f"{_sig(name, dtype, 2, 1)} {{",
             f"    /* fully unrolled {n}x{n} multiply */"]
    for i in range(n):
        for j in range(n):
            terms = " + ".join(
                f"in0[{i * n + k}] * in1[{k * n + j}]" for k in range(n)
            )
            lines.append(f"    out0[{i * n + j}] = ({ctype})({terms});")
    lines.append("}")
    return "\n".join(lines)


def _matdet_cofactor(name: str, dtype: DataType, params: Dict[str, Any]) -> Optional[str]:
    n = int(params["n"])
    ctype = c_type_name(dtype)
    if n == 1:
        body = "    out0[0] = in0[0];"
    elif n == 2:
        body = "    out0[0] = in0[0] * in0[3] - in0[1] * in0[2];"
    elif n == 3:
        body = (
            "    out0[0] = in0[0] * (in0[4] * in0[8] - in0[5] * in0[7])\n"
            "            - in0[1] * (in0[3] * in0[8] - in0[5] * in0[6])\n"
            "            + in0[2] * (in0[3] * in0[7] - in0[4] * in0[6]);"
        )
    else:
        return None  # n == 4 expansion is long; keep it in the library
    return f"{_sig(name, dtype, 1, 1)} {{\n{body}\n}}"


def _matinv_cofactor(name: str, dtype: DataType, params: Dict[str, Any]) -> Optional[str]:
    n = int(params["n"])
    ctype = c_type_name(dtype)
    one = "1.0f" if dtype is DataType.F32 else "1.0"
    if n == 1:
        return f"""{_sig(name, dtype, 1, 1)} {{
    out0[0] = {one} / in0[0];
}}"""
    if n == 2:
        return f"""{_sig(name, dtype, 1, 1)} {{
    {ctype} det = in0[0] * in0[3] - in0[1] * in0[2];
    {ctype} rdet = {one} / det;
    out0[0] =  in0[3] * rdet;
    out0[1] = -in0[1] * rdet;
    out0[2] = -in0[2] * rdet;
    out0[3] =  in0[0] * rdet;
}}"""
    if n == 3:
        return f"""{_sig(name, dtype, 1, 1)} {{
    {ctype} c00 =  (in0[4] * in0[8] - in0[5] * in0[7]);
    {ctype} c01 = -(in0[3] * in0[8] - in0[5] * in0[6]);
    {ctype} c02 =  (in0[3] * in0[7] - in0[4] * in0[6]);
    {ctype} c10 = -(in0[1] * in0[8] - in0[2] * in0[7]);
    {ctype} c11 =  (in0[0] * in0[8] - in0[2] * in0[6]);
    {ctype} c12 = -(in0[0] * in0[7] - in0[1] * in0[6]);
    {ctype} c20 =  (in0[1] * in0[5] - in0[2] * in0[4]);
    {ctype} c21 = -(in0[0] * in0[5] - in0[2] * in0[3]);
    {ctype} c22 =  (in0[0] * in0[4] - in0[1] * in0[3]);
    {ctype} rdet = {one} / (in0[0] * c00 + in0[1] * c01 + in0[2] * c02);
    out0[0] = c00 * rdet; out0[1] = c10 * rdet; out0[2] = c20 * rdet;
    out0[3] = c01 * rdet; out0[4] = c11 * rdet; out0[5] = c21 * rdet;
    out0[6] = c02 * rdet; out0[7] = c12 * rdet; out0[8] = c22 * rdet;
}}"""
    return None


def _matinv_gauss(name: str, dtype: DataType, params: Dict[str, Any]) -> str:
    n = int(params["n"])
    ctype = c_type_name(dtype)
    return f"""{_sig(name, dtype, 1, 1)} {{
    /* Gauss-Jordan on the [A | I] tableau, partial pivoting */
    {ctype} a[{n}][{2 * n}];
    for (int i = 0; i < {n}; ++i) {{
        for (int j = 0; j < {n}; ++j) a[i][j] = in0[i * {n} + j];
        for (int j = 0; j < {n}; ++j) a[i][{n} + j] = (i == j) ? 1 : 0;
    }}
    for (int col = 0; col < {n}; ++col) {{
        int pivot = col;
        for (int r = col + 1; r < {n}; ++r) {{
            if ((a[r][col] < 0 ? -a[r][col] : a[r][col]) >
                (a[pivot][col] < 0 ? -a[pivot][col] : a[pivot][col])) pivot = r;
        }}
        for (int j = 0; j < {2 * n}; ++j) {{
            {ctype} tmp = a[col][j]; a[col][j] = a[pivot][j]; a[pivot][j] = tmp;
        }}
        {ctype} rp = 1 / a[col][col];
        for (int j = 0; j < {2 * n}; ++j) a[col][j] *= rp;
        for (int r = 0; r < {n}; ++r) {{
            if (r == col) continue;
            {ctype} f = a[r][col];
            for (int j = 0; j < {2 * n}; ++j) a[r][j] -= f * a[col][j];
        }}
    }}
    for (int i = 0; i < {n}; ++i)
        for (int j = 0; j < {n}; ++j) out0[i * {n} + j] = a[i][{n} + j];
}}"""


def _dct_naive(name: str, dtype: DataType, params: Dict[str, Any]) -> str:
    n = int(params["n"])
    ctype = c_type_name(dtype)
    cos = "cosf" if dtype is DataType.F32 else "cos"
    pi = "3.14159265358979323846"
    return f"""{_sig(name, dtype, 1, 1)} {{
    /* direct O(n^2) unnormalised DCT-II, basis evaluated on the fly */
    for (int k = 0; k < {n}; ++k) {{
        double acc = 0.0;
        for (int i = 0; i < {n}; ++i) {{
            acc += (double)in0[i] * {cos}({pi} * (2 * i + 1) * k / (2.0 * {n}));
        }}
        out0[k] = ({ctype})acc;
    }}
}}"""


def _fft_naive(name: str, dtype: DataType, params: Dict[str, Any]) -> str:
    n = int(params["n"])
    ctype = c_type_name(dtype)
    pi = "3.14159265358979323846"
    return f"""{_sig(name, dtype, 1, 1)} {{
    /* direct O(n^2) DFT; out0[0..{n}) = Re, out0[{n}..{2 * n}) = Im */
    for (int k = 0; k < {n}; ++k) {{
        double re = 0.0, im = 0.0;
        for (int j = 0; j < {n}; ++j) {{
            double angle = -2.0 * {pi} * j * k / {n};
            re += (double)in0[j] * cos(angle);
            im += (double)in0[j] * sin(angle);
        }}
        out0[k] = ({ctype})re;
        out0[{n} + k] = ({ctype})im;
    }}
}}"""


def _fft_radix2(name: str, dtype: DataType, params: Dict[str, Any]) -> Optional[str]:
    n = int(params["n"])
    if n & (n - 1):
        return None
    stages = max(int(math.log2(n)), 1)
    ctype = c_type_name(dtype)
    pi = "3.14159265358979323846"
    return f"""{_sig(name, dtype, 1, 1)} {{
    /* iterative radix-2 Cooley-Tukey, n = {n} = 2^{stages};
       out0[0..{n}) = Re, out0[{n}..{2 * n}) = Im */
    double re[{n}], im[{n}];
    for (int i = 0; i < {n}; ++i) {{
        unsigned r = 0, v = (unsigned)i;
        for (int b = 0; b < {stages}; ++b) {{ r = (r << 1) | (v & 1u); v >>= 1; }}
        re[r] = (double)in0[i];
        im[r] = 0.0;
    }}
    for (int half = 1; half < {n}; half <<= 1) {{
        int span = half << 1;
        for (int start = 0; start < {n}; start += span) {{
            for (int k = 0; k < half; ++k) {{
                double angle = -{pi} * k / half;
                double wr = cos(angle), wi = sin(angle);
                int top = start + k, bot = top + half;
                double tr = re[bot] * wr - im[bot] * wi;
                double ti = re[bot] * wi + im[bot] * wr;
                re[bot] = re[top] - tr; im[bot] = im[top] - ti;
                re[top] = re[top] + tr; im[top] = im[top] + ti;
            }}
        }}
    }}
    for (int i = 0; i < {n}; ++i) {{
        out0[i] = ({ctype})re[i];
        out0[{n} + i] = ({ctype})im[i];
    }}
}}"""


def _conv2d_direct(name: str, dtype: DataType, params: Dict[str, Any]) -> str:
    rows, cols = int(params["rows"]), int(params["cols"])
    krows, kcols = int(params["krows"]), int(params["kcols"])
    out_rows, out_cols = rows + krows - 1, cols + kcols - 1
    ctype = c_type_name(dtype)
    return f"""{_sig(name, dtype, 2, 1)} {{
    /* direct full 2-D convolution: {rows}x{cols} (*) {krows}x{kcols} */
    for (int i = 0; i < {out_rows * out_cols}; ++i) out0[i] = 0;
    for (int kr = 0; kr < {krows}; ++kr) {{
        for (int kc = 0; kc < {kcols}; ++kc) {{
            {ctype} w = in1[kr * {kcols} + kc];
            for (int r = 0; r < {rows}; ++r) {{
                for (int c = 0; c < {cols}; ++c) {{
                    out0[(r + kr) * {out_cols} + (c + kc)] += w * in0[r * {cols} + c];
                }}
            }}
        }}
    }}
}}"""


_EMITTERS = {
    "conv.direct": _conv_direct,
    "matmul.naive": _matmul_naive,
    "matmul.unrolled": _matmul_unrolled,
    "matdet.cofactor": _matdet_cofactor,
    "matinv.cofactor": _matinv_cofactor,
    "matinv.gauss": _matinv_gauss,
    "dct.naive": _dct_naive,
    "fft.naive": _fft_naive,
    "fft.radix2": _fft_radix2,
    "conv2d.direct": _conv2d_direct,
}

#: SIMD builds whose scalar reference body can stand in, with a note.
_SCALAR_FALLBACKS = {
    "conv.direct_simd": "conv.direct",
    "matmul.unrolled_simd": "matmul.unrolled",
    "matmul.naive_simd": "matmul.naive",
    "matinv.cofactor_simd": "matinv.cofactor",
    "conv2d.direct_simd": "conv2d.direct",
    "fft.radix2_simd": "fft.radix2",
}


def kernel_c_source(
    kernel_id: str,
    params: Dict[str, Any],
    dtype: DataType,
    fallback_scalar: bool = True,
) -> Optional[str]:
    """The C definition for one kernel call site, or None.

    ``fallback_scalar=True`` renders the scalar reference body for SIMD
    library builds (annotated), so emitted units stay self-contained;
    the production library would link the intrinsics build instead.
    """
    name = specialized_name(kernel_id, params)
    emitter = _EMITTERS.get(kernel_id)
    note = ""
    if emitter is None and fallback_scalar and kernel_id in _SCALAR_FALLBACKS:
        emitter = _EMITTERS[_SCALAR_FALLBACKS[kernel_id]]
        note = (
            f"/* scalar reference body for {kernel_id}; the shipped library\n"
            f"   provides an intrinsics build of the same algorithm. */\n"
        )
    if emitter is None:
        return None
    body = emitter(name, dtype, params)
    if body is None:
        return None
    return note + body


def has_c_source(kernel_id: str, params: Dict[str, Any]) -> bool:
    return kernel_c_source(kernel_id, params, DataType.F32) is not None
