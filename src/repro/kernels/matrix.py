"""Small-matrix kernels: multiplication, inversion, determinant.

The paper's Table 1 lists 2x2/3x3/4x4 matrix actors.  Each has a
general loop implementation plus fixed-size fully-unrolled / analytic
implementations, which is exactly the situation Algorithm 1's
pre-calculation arbitrates.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

import numpy as np

from repro.dtypes import DataType
from repro.kernels.base import Kernel, OpCounts, SimdVariant


class MatMulNaive(Kernel):
    """Triple loop i-j-k multiply."""

    actor_key = "matmul"
    kernel_id = "matmul.naive"
    description = "triple-loop matrix multiply (any n)"
    general = True

    def can_handle(self, dtype: DataType, params: Dict[str, Any]) -> bool:
        return dtype.is_float or dtype is DataType.I32

    def execute(
        self,
        inputs: Sequence[np.ndarray],
        params: Dict[str, Any],
        counts: OpCounts,
    ) -> List[np.ndarray]:
        a, b = inputs
        n = a.shape[0]
        dtype = np.asarray(a).dtype
        if np.issubdtype(dtype, np.floating):
            out = (np.asarray(a, np.float64) @ np.asarray(b, np.float64)).astype(dtype)
        else:
            out = (np.asarray(a, np.int64) @ np.asarray(b, np.int64)).astype(dtype)
        flops = float(n ** 3)
        counts.mul += flops
        counts.add += flops
        counts.load += 2.0 * flops
        counts.store += float(n * n)
        counts.misc += 3.0 * flops  # three nested loop counters
        return [out]


class MatMulUnrolled(Kernel):
    """Fully unrolled multiply for n <= 4: no loop bookkeeping, operands
    stay in registers (each A row loaded once)."""

    actor_key = "matmul"
    kernel_id = "matmul.unrolled"
    description = "fully unrolled multiply (n <= 4)"

    def can_handle(self, dtype: DataType, params: Dict[str, Any]) -> bool:
        return (dtype.is_float or dtype is DataType.I32) and int(params["n"]) <= 4

    def execute(
        self,
        inputs: Sequence[np.ndarray],
        params: Dict[str, Any],
        counts: OpCounts,
    ) -> List[np.ndarray]:
        a, b = inputs
        n = a.shape[0]
        dtype = np.asarray(a).dtype
        if np.issubdtype(dtype, np.floating):
            out = (np.asarray(a, np.float64) @ np.asarray(b, np.float64)).astype(dtype)
        else:
            out = (np.asarray(a, np.int64) @ np.asarray(b, np.int64)).astype(dtype)
        flops = float(n ** 3)
        counts.mul += flops
        counts.add += flops
        counts.load += 2.0 * n * n   # each element of A and B loaded once
        counts.store += float(n * n)
        return [out]


class MatInvGauss(Kernel):
    """Gauss-Jordan elimination with partial pivoting (any n)."""

    actor_key = "matinv"
    kernel_id = "matinv.gauss"
    description = "Gauss-Jordan inversion (any n)"
    general = True

    def can_handle(self, dtype: DataType, params: Dict[str, Any]) -> bool:
        return dtype.is_float

    def execute(
        self,
        inputs: Sequence[np.ndarray],
        params: Dict[str, Any],
        counts: OpCounts,
    ) -> List[np.ndarray]:
        a = np.asarray(inputs[0], dtype=np.float64)
        n = a.shape[0]
        out = np.linalg.inv(a)
        # Gauss-Jordan on the [A | I] tableau: ~2n^3 multiply-adds,
        # n divisions per pivot row, pivot search compares.
        counts.mul += 2.0 * n ** 3
        counts.add += 2.0 * n ** 3
        counts.div += float(n * n)
        counts.load += 4.0 * n ** 3
        counts.store += 2.0 * n ** 3
        counts.misc += 3.0 * n ** 3 + float(n * n)
        return [out.astype(np.asarray(inputs[0]).dtype)]


#: exact operation counts of the analytic adjugate formulas
_COFACTOR_INV_COUNTS = {
    1: dict(mul=1, add=0, div=1),
    2: dict(mul=6, add=1, div=1),
    3: dict(mul=30, add=14, div=1),
    4: dict(mul=160, add=80, div=1),
}

_COFACTOR_DET_COUNTS = {
    1: dict(mul=0, add=0),
    2: dict(mul=2, add=1),
    3: dict(mul=12, add=5),
    4: dict(mul=40, add=23),
}


class MatInvCofactor(Kernel):
    """Analytic adjugate/determinant inversion, unrolled for n <= 4."""

    actor_key = "matinv"
    kernel_id = "matinv.cofactor"
    description = "analytic adjugate inversion (n <= 4)"

    def can_handle(self, dtype: DataType, params: Dict[str, Any]) -> bool:
        return dtype.is_float and int(params["n"]) <= 4

    def execute(
        self,
        inputs: Sequence[np.ndarray],
        params: Dict[str, Any],
        counts: OpCounts,
    ) -> List[np.ndarray]:
        a = np.asarray(inputs[0], dtype=np.float64)
        n = a.shape[0]
        out = np.linalg.inv(a)
        ops = _COFACTOR_INV_COUNTS[n]
        counts.mul += ops["mul"] + float(n * n)  # adjugate * (1/det)
        counts.add += ops["add"]
        counts.div += ops["div"]
        counts.load += 2.0 * n * n
        counts.store += float(n * n)
        return [out.astype(np.asarray(inputs[0]).dtype)]


class MatDetLu(Kernel):
    """Determinant through LU factorisation (any n)."""

    actor_key = "matdet"
    kernel_id = "matdet.lu"
    description = "LU-based determinant (any n)"
    general = True

    def can_handle(self, dtype: DataType, params: Dict[str, Any]) -> bool:
        return dtype.is_float

    def execute(
        self,
        inputs: Sequence[np.ndarray],
        params: Dict[str, Any],
        counts: OpCounts,
    ) -> List[np.ndarray]:
        a = np.asarray(inputs[0], dtype=np.float64)
        n = a.shape[0]
        out = np.linalg.det(a)
        counts.mul += (2.0 / 3.0) * n ** 3 + float(n)
        counts.add += (2.0 / 3.0) * n ** 3
        counts.div += float(max(n - 1, 0))
        counts.load += (4.0 / 3.0) * n ** 3
        counts.store += (2.0 / 3.0) * n ** 3
        counts.misc += float(n * n)
        return [np.asarray(out, dtype=np.asarray(inputs[0]).dtype)]


class MatDetCofactor(Kernel):
    """Unrolled cofactor expansion for n <= 4."""

    actor_key = "matdet"
    kernel_id = "matdet.cofactor"
    description = "unrolled cofactor determinant (n <= 4)"

    def can_handle(self, dtype: DataType, params: Dict[str, Any]) -> bool:
        return dtype.is_float and int(params["n"]) <= 4

    def execute(
        self,
        inputs: Sequence[np.ndarray],
        params: Dict[str, Any],
        counts: OpCounts,
    ) -> List[np.ndarray]:
        a = np.asarray(inputs[0], dtype=np.float64)
        n = a.shape[0]
        out = np.linalg.det(a)
        ops = _COFACTOR_DET_COUNTS[n]
        counts.mul += ops["mul"]
        counts.add += ops["add"]
        counts.load += float(n * n)
        counts.store += 1.0
        return [np.asarray(out, dtype=np.asarray(inputs[0]).dtype)]


def make_matmul_kernels() -> List[Kernel]:
    kernels: List[Kernel] = [MatMulNaive(), MatMulUnrolled()]
    kernels.append(SimdVariant(MatMulUnrolled(), vectorizable_fraction=0.85))
    kernels.append(SimdVariant(MatMulNaive(), vectorizable_fraction=0.8))
    return kernels


def make_matinv_kernels() -> List[Kernel]:
    kernels: List[Kernel] = [MatInvGauss(), MatInvCofactor()]
    kernels.append(SimdVariant(MatInvCofactor(), vectorizable_fraction=0.6))
    return kernels


def make_matdet_kernels() -> List[Kernel]:
    return [MatDetLu(), MatDetCofactor()]
