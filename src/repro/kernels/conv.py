"""1-D convolution kernels.

* ``direct``   — the O(n*m) multiply-accumulate loop (generic fallback;
  also the only integer-capable implementation);
* ``fft``      — frequency-domain convolution over zero-padded 2^k FFTs
  (wins when both operands are long);
* SIMD variants of both.

Algorithm 1's pre-calculation picks ``fft`` over ``direct`` exactly
where the O(n*m) / O(N log N) curves cross for the actor's sizes.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

import numpy as np

from repro.dtypes import DataType
from repro.kernels.base import Kernel, OpCounts, SimdVariant
from repro.kernels.fft import FftRadix2


class ConvDirect(Kernel):
    """Sliding multiply-accumulate, the textbook C implementation."""

    actor_key = "conv"
    kernel_id = "conv.direct"
    description = "direct O(n*m) convolution"
    general = True

    def can_handle(self, dtype: DataType, params: Dict[str, Any]) -> bool:
        return dtype.is_float or dtype is DataType.I32

    def execute(
        self,
        inputs: Sequence[np.ndarray],
        params: Dict[str, Any],
        counts: OpCounts,
    ) -> List[np.ndarray]:
        signal, taps = inputs
        n, m = len(signal), len(taps)
        dtype = np.asarray(signal).dtype
        if np.issubdtype(dtype, np.floating):
            out = np.convolve(
                np.asarray(signal, dtype=np.float64), np.asarray(taps, dtype=np.float64)
            ).astype(dtype)
        else:
            out = np.convolve(
                np.asarray(signal, dtype=np.int64), np.asarray(taps, dtype=np.int64)
            ).astype(dtype)
        # inner loop body: one load of each operand, one mul, one add
        macs = float(n * m)
        counts.mul += macs
        counts.add += macs
        counts.load += 2.0 * macs
        counts.store += float(n + m - 1)
        counts.misc += 2.0 * macs
        return [out]


class ConvFft(Kernel):
    """Frequency-domain convolution via zero-padded radix-2 FFTs."""

    actor_key = "conv"
    kernel_id = "conv.fft"
    description = "FFT-based convolution (floats)"

    def can_handle(self, dtype: DataType, params: Dict[str, Any]) -> bool:
        return dtype.is_float

    def execute(
        self,
        inputs: Sequence[np.ndarray],
        params: Dict[str, Any],
        counts: OpCounts,
    ) -> List[np.ndarray]:
        signal = np.asarray(inputs[0], dtype=np.float64)
        taps = np.asarray(inputs[1], dtype=np.float64)
        n, m = len(signal), len(taps)
        out_len = n + m - 1
        size = 1 << max(out_len - 1, 1).bit_length()
        padded_a = np.zeros(size, dtype=np.complex128)
        padded_a[:n] = signal
        padded_b = np.zeros(size, dtype=np.complex128)
        padded_b[:m] = taps
        counts.load += float(n + m)
        counts.store += 2.0 * size
        fft = FftRadix2(inverse=False)
        fa = fft._transform(padded_a, counts)
        fb = fft._transform(padded_b, counts)
        product = fa * fb
        counts.mul += 4.0 * size
        counts.add += 2.0 * size
        counts.load += 4.0 * size
        counts.store += 2.0 * size
        spectrum = np.conj(fft._transform(np.conj(product), counts)) / size
        counts.mul += 2.0 * size
        out = spectrum[:out_len].real
        counts.store += float(out_len)
        return [out.astype(np.asarray(inputs[0]).dtype)]


def make_conv_kernels() -> List[Kernel]:
    kernels: List[Kernel] = [ConvDirect(), ConvFft()]
    kernels.append(SimdVariant(ConvDirect(), vectorizable_fraction=0.95))
    kernels.append(SimdVariant(ConvFft(), vectorizable_fraction=0.8))
    return kernels
