"""The code library: every implementation per intensive actor type.

Algorithm 1's ``loadCodeLibrary(ActorType)`` resolves here.  The library
is a one-to-many mapping from actor key (``"fft"``, ``"dct"``, ...) to
implementations, each of which can filter itself by data type and size.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import KernelError
from repro.kernels.base import Kernel
from repro.kernels.conv import make_conv_kernels
from repro.kernels.dct import make_dct_kernels, make_idct_kernels
from repro.kernels.fft import make_fft_kernels
from repro.kernels.matrix import (
    make_matdet_kernels,
    make_matinv_kernels,
    make_matmul_kernels,
)
from repro.kernels.transforms2d import (
    make_conv2d_kernels,
    make_dct2d_kernels,
    make_fft2d_kernels,
    make_idct2d_kernels,
)


class CodeLibrary:
    """All registered intensive-actor implementations, by actor key."""

    def __init__(self) -> None:
        self._by_key: Dict[str, List[Kernel]] = {}
        self._by_id: Dict[str, Kernel] = {}

    def register(self, kernel: Kernel) -> None:
        if kernel.kernel_id in self._by_id:
            raise KernelError(f"kernel id {kernel.kernel_id!r} registered twice")
        self._by_id[kernel.kernel_id] = kernel
        self._by_key.setdefault(kernel.actor_key, []).append(kernel)

    def implementations(self, actor_key: str) -> Tuple[Kernel, ...]:
        """Algorithm 1's ``loadCodeLibrary``: all impls for an actor type."""
        try:
            return tuple(self._by_key[actor_key])
        except KeyError:
            raise KernelError(
                f"no implementations registered for actor key {actor_key!r}; "
                f"known keys: {sorted(self._by_key)}"
            ) from None

    def general_implementation(self, actor_key: str) -> Kernel:
        """The safe fallback (``ImplList.getGeneralImplementation()``)."""
        for kernel in self.implementations(actor_key):
            if kernel.general:
                return kernel
        raise KernelError(f"actor key {actor_key!r} has no general implementation")

    def by_id(self, kernel_id: str) -> Kernel:
        try:
            return self._by_id[kernel_id]
        except KeyError:
            raise KernelError(f"unknown kernel id {kernel_id!r}") from None

    def has_id(self, kernel_id: str) -> bool:
        """Whether a kernel id is registered (stale-cache validation)."""
        return kernel_id in self._by_id

    def __contains__(self, kernel_id: str) -> bool:
        return self.has_id(kernel_id)

    def kernel_ids(self) -> Tuple[str, ...]:
        return tuple(sorted(self._by_id))

    def actor_keys(self) -> Tuple[str, ...]:
        return tuple(sorted(self._by_key))


def build_default_library() -> CodeLibrary:
    """The full shipped library (every Table 1(a) actor)."""
    library = CodeLibrary()
    for kernel in (
        make_fft_kernels(inverse=False)
        + make_fft_kernels(inverse=True)
        + make_dct_kernels()
        + make_idct_kernels()
        + make_conv_kernels()
        + make_matmul_kernels()
        + make_matinv_kernels()
        + make_matdet_kernels()
        + make_fft2d_kernels(inverse=False)
        + make_fft2d_kernels(inverse=True)
        + make_dct2d_kernels()
        + make_idct2d_kernels()
        + make_conv2d_kernels()
    ):
        library.register(kernel)
    return library


_DEFAULT: CodeLibrary = None  # type: ignore[assignment]


def default_library() -> CodeLibrary:
    """The process-wide default code library (built lazily)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = build_default_library()
    return _DEFAULT
