"""DCT / IDCT kernel implementations.

The reference transform (matching :mod:`repro.model.actor_defs`) is the
unnormalised DCT-II, ``X[k] = sum_i cos(pi*(2i+1)*k/(2n)) * x[i]``, and
its inverse (DCT-III scaled by 2/n with a halved DC term).

Library entries:

* ``naive``     — O(n^2) basis-matrix product, any n;
* ``fft``       — DCT-II via a 2n-point FFT (the generic fallback);
* ``lee``       — Lee's recursive O(n log n) real-arithmetic algorithm,
  n = 2^k, genuinely executed;
* SIMD variants of ``fft`` and ``lee``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

import numpy as np

from repro.dtypes import DataType
from repro.kernels.base import Kernel, OpCounts, SimdVariant
from repro.kernels.fft import FftMixed, _is_pow


def _dct2_matrix(n: int) -> np.ndarray:
    k = np.arange(n)[:, None]
    i = np.arange(n)[None, :]
    return np.cos(np.pi * (2 * i + 1) * k / (2 * n))


class DctKernel(Kernel):
    """Base class for forward DCT-II kernels."""

    actor_key = "dct"
    algorithm: str = ""

    def __init__(self) -> None:
        self.kernel_id = f"dct.{self.algorithm}"

    def can_handle(self, dtype: DataType, params: Dict[str, Any]) -> bool:
        return dtype.is_float and self._supports_length(int(params["n"]))

    def _supports_length(self, n: int) -> bool:
        return n >= 1

    def execute(
        self,
        inputs: Sequence[np.ndarray],
        params: Dict[str, Any],
        counts: OpCounts,
    ) -> List[np.ndarray]:
        x = np.asarray(inputs[0], dtype=np.float64)
        out = self._transform(x, counts)
        return [out.astype(np.asarray(inputs[0]).dtype)]

    def _transform(self, x: np.ndarray, counts: OpCounts) -> np.ndarray:
        raise NotImplementedError


class DctNaive(DctKernel):
    """O(n^2) product with the cosine basis matrix."""

    algorithm = "naive"
    description = "direct O(n^2) DCT-II"

    def _transform(self, x: np.ndarray, counts: OpCounts) -> np.ndarray:
        n = len(x)
        counts.mul += float(n * n)
        counts.add += float(n * (n - 1))
        counts.load += 2.0 * n * n   # data + basis table
        counts.store += float(n)
        counts.misc += float(n * n)
        return _dct2_matrix(n) @ x


class DctViaFft(DctKernel):
    """DCT-II through an n-point FFT (Makhoul's even/odd packing).

    This is the safe generic implementation every length supports, and
    the shape of code the baseline tools' generic DCT function has:
    ``v[j] = x[2j], v[n-1-j] = x[2j+1]``, one n-point FFT, then a phase
    rotation.  Counts follow that structure (one mixed-radix FFT of
    length n plus O(n) pre/post work); values evaluate the reference
    basis directly.
    """

    algorithm = "fft"
    description = "DCT-II via n-point FFT (any n)"
    general = True

    def _transform(self, x: np.ndarray, counts: OpCounts) -> np.ndarray:
        n = len(x)
        if n == 1:
            counts.misc += 4
            return np.array(x, copy=True)
        # packing pass
        counts.load += float(n)
        counts.store += float(n)
        counts.misc += 2.0 * n
        inner = FftMixed(inverse=False)
        inner._recurse(np.zeros(n, dtype=np.complex128), counts)
        # post: per output one complex-by-phase rotation + table load
        counts.mul += 4.0 * n
        counts.add += 2.0 * n
        counts.load += 4.0 * n
        counts.store += float(n)
        return _dct2_matrix(n) @ x


class DctLee(DctKernel):
    """Lee's recursive split: O(n log n) with real arithmetic, n = 2^k."""

    algorithm = "lee"
    description = "Lee recursive DCT-II (n = 2^k)"

    def _supports_length(self, n: int) -> bool:
        return _is_pow(n, 2)

    def _transform(self, x: np.ndarray, counts: OpCounts) -> np.ndarray:
        return self._recurse(np.asarray(x, dtype=np.float64), counts)

    def _recurse(self, x: np.ndarray, counts: OpCounts) -> np.ndarray:
        n = len(x)
        if n == 1:
            return np.array(x, copy=True)
        half = n // 2
        front = x[:half]
        back = x[half:][::-1]
        u = front + back
        i = np.arange(half)
        denominators = 2.0 * np.cos(np.pi * (2 * i + 1) / (2 * n))
        v = (front - back) / denominators
        # per element of this level: one add, one sub, one mul by the
        # precomputed 1/(2cos) table entry, plus loads/stores
        counts.add += 2.0 * half
        counts.mul += 1.0 * half
        counts.load += 3.0 * half
        counts.store += 2.0 * half
        counts.misc += 2.0 * half
        big = self._recurse(u, counts)      # -> even coefficients
        small = self._recurse(v, counts)    # -> odd via running sum
        out = np.empty(n, dtype=np.float64)
        out[0::2] = big
        out[1::2][: half - 1] = small[:-1] + small[1:]
        out[n - 1] = small[-1]
        counts.add += float(half - 1)
        counts.load += 2.0 * half
        counts.store += float(n)
        counts.misc += float(n)
        return out


class IdctKernel(Kernel):
    """Base class for inverse kernels (DCT-III scaled by 2/n, DC halved)."""

    actor_key = "idct"
    algorithm: str = ""

    def __init__(self) -> None:
        self.kernel_id = f"idct.{self.algorithm}"

    def can_handle(self, dtype: DataType, params: Dict[str, Any]) -> bool:
        return dtype.is_float and self._supports_length(int(params["n"]))

    def _supports_length(self, n: int) -> bool:
        return n >= 1

    def execute(
        self,
        inputs: Sequence[np.ndarray],
        params: Dict[str, Any],
        counts: OpCounts,
    ) -> List[np.ndarray]:
        x = np.asarray(inputs[0], dtype=np.float64)
        out = self._transform(x, counts)
        return [out.astype(np.asarray(inputs[0]).dtype)]

    def _transform(self, x: np.ndarray, counts: OpCounts) -> np.ndarray:
        raise NotImplementedError


class IdctNaive(IdctKernel):
    """O(n^2) inverse through the transposed basis."""

    algorithm = "naive"
    description = "direct O(n^2) IDCT"
    general = True

    def _transform(self, x: np.ndarray, counts: OpCounts) -> np.ndarray:
        n = len(x)
        coeffs = np.array(x, copy=True)
        coeffs[0] *= 0.5
        out = (2.0 / n) * (_dct2_matrix(n).T @ coeffs)
        counts.mul += float(n * n) + 2.0 * n
        counts.add += float(n * (n - 1))
        counts.load += 2.0 * n * n
        counts.store += float(n)
        counts.misc += float(n * n)
        return out


class IdctViaDct(IdctKernel):
    """IDCT computed through a forward fast DCT (flip + phase trick).

    Uses the identity between DCT-III and a permuted DCT-II to inherit
    an O(n log n) count; the arithmetic here evaluates the reference
    definition while the counts follow the fast structure.
    """

    algorithm = "fast"
    description = "IDCT via fast forward DCT (n = 2^k)"

    def _supports_length(self, n: int) -> bool:
        return _is_pow(n, 2)

    def _transform(self, x: np.ndarray, counts: OpCounts) -> np.ndarray:
        n = len(x)
        forward = DctLee()
        # Count the work of the fast structure (same-order pre/post pass).
        forward._recurse(np.zeros(n), counts)
        counts.mul += 3.0 * n
        counts.add += 2.0 * n
        counts.load += 2.0 * n
        counts.store += float(n)
        coeffs = np.array(x, copy=True)
        coeffs[0] *= 0.5
        return (2.0 / n) * (_dct2_matrix(n).T @ coeffs)


def make_dct_kernels() -> List[Kernel]:
    kernels: List[Kernel] = [DctNaive(), DctViaFft(), DctLee()]
    kernels.append(SimdVariant(DctViaFft(), vectorizable_fraction=0.8))
    kernels.append(SimdVariant(DctLee(), vectorizable_fraction=0.85))
    return kernels


def make_idct_kernels() -> List[Kernel]:
    kernels: List[Kernel] = [IdctNaive(), IdctViaDct()]
    kernels.append(SimdVariant(IdctViaDct(), vectorizable_fraction=0.85))
    return kernels
