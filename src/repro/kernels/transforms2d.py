"""2-D transform kernels: row-column decompositions over the 1-D library.

A 2-D FFT/DCT is rows x 1-D transforms followed by columns x 1-D
transforms; operation counts are therefore the 1-D kernel's counts
scaled by the number of rows/columns (1-D counts are deterministic per
length, so one probe run per dimension suffices).
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

import numpy as np

from repro.dtypes import DataType
from repro.kernels.base import Kernel, OpCounts, SimdVariant
from repro.kernels.dct import DctLee, DctViaFft, IdctNaive, _dct2_matrix
from repro.kernels.fft import FftKernel, FftMixed, FftRadix2


def _probe_counts(kernel, n: int) -> OpCounts:
    """Counts of one 1-D transform of length ``n`` (run on zeros)."""
    counts = OpCounts()
    kernel._transform(np.zeros(n, dtype=np.complex128), counts)
    return counts


def _probe_counts_real(kernel, n: int) -> OpCounts:
    counts = OpCounts()
    kernel._transform(np.zeros(n, dtype=np.float64), counts)
    return counts


class Fft2dRowCol(Kernel):
    """Row-column 2-D (I)FFT over a 1-D algorithm."""

    def __init__(self, inverse: bool, algorithm: str = "mixed") -> None:
        self.inverse = inverse
        self.algorithm = algorithm
        self.actor_key = "ifft2d" if inverse else "fft2d"
        self.kernel_id = f"{self.actor_key}.rowcol_{algorithm}"
        self.description = f"row-column 2-D transform over 1-D {algorithm} FFT"
        self.general = algorithm == "mixed"

    def _inner(self) -> FftKernel:
        if self.algorithm == "radix2":
            return FftRadix2(inverse=False)
        return FftMixed(inverse=False)

    def can_handle(self, dtype: DataType, params: Dict[str, Any]) -> bool:
        if not dtype.is_float:
            return False
        rows, cols = int(params["rows"]), int(params["cols"])
        inner = self._inner()
        return inner._supports_length(rows) and inner._supports_length(cols)

    def execute(
        self,
        inputs: Sequence[np.ndarray],
        params: Dict[str, Any],
        counts: OpCounts,
    ) -> List[np.ndarray]:
        rows, cols = int(params["rows"]), int(params["cols"])
        data = np.asarray(inputs[0], dtype=np.float64)
        if self.inverse:
            complex_in = data[0] + 1j * data[1]
            result = np.fft.ifft2(complex_in)
            counts.mul += 2.0 * rows * cols  # 1/(rows*cols) scaling
        else:
            result = np.fft.fft2(data)
        inner = self._inner()
        counts.merge(_probe_counts(inner, cols).scale(rows))
        counts.merge(_probe_counts(inner, rows).scale(cols))
        counts.load += 2.0 * rows * cols   # transpose traffic
        counts.store += 2.0 * rows * cols
        stacked = np.stack([result.real, result.imag])
        return [stacked.astype(np.asarray(inputs[0]).dtype)]


class Dct2dRowCol(Kernel):
    """Row-column 2-D DCT over a 1-D algorithm."""

    def __init__(self, algorithm: str = "fft") -> None:
        self.algorithm = algorithm
        self.actor_key = "dct2d"
        self.kernel_id = f"dct2d.rowcol_{algorithm}"
        self.description = f"row-column 2-D DCT over 1-D {algorithm}"
        self.general = algorithm == "fft"

    def _inner(self):
        return DctLee() if self.algorithm == "lee" else DctViaFft()

    def can_handle(self, dtype: DataType, params: Dict[str, Any]) -> bool:
        if not dtype.is_float:
            return False
        rows, cols = int(params["rows"]), int(params["cols"])
        inner = self._inner()
        return inner._supports_length(rows) and inner._supports_length(cols)

    def execute(
        self,
        inputs: Sequence[np.ndarray],
        params: Dict[str, Any],
        counts: OpCounts,
    ) -> List[np.ndarray]:
        rows, cols = int(params["rows"]), int(params["cols"])
        data = np.asarray(inputs[0], dtype=np.float64)
        out = _dct2_matrix(rows) @ data @ _dct2_matrix(cols).T
        inner = self._inner()
        counts.merge(_probe_counts_real(inner, cols).scale(rows))
        counts.merge(_probe_counts_real(inner, rows).scale(cols))
        counts.load += 2.0 * rows * cols
        counts.store += 2.0 * rows * cols
        return [out.astype(np.asarray(inputs[0]).dtype)]


class Idct2dRowCol(Kernel):
    """Row-column 2-D inverse DCT (naive 1-D inner, general)."""

    actor_key = "idct2d"
    kernel_id = "idct2d.rowcol_naive"
    description = "row-column 2-D IDCT over naive 1-D"
    general = True

    def can_handle(self, dtype: DataType, params: Dict[str, Any]) -> bool:
        return dtype.is_float

    def execute(
        self,
        inputs: Sequence[np.ndarray],
        params: Dict[str, Any],
        counts: OpCounts,
    ) -> List[np.ndarray]:
        rows, cols = int(params["rows"]), int(params["cols"])
        data = np.asarray(inputs[0], dtype=np.float64)
        coeffs = np.array(data, copy=True)
        coeffs[0, :] *= 0.5
        coeffs[:, 0] *= 0.5
        out = (2.0 / rows) * (2.0 / cols) * (_dct2_matrix(rows).T @ coeffs @ _dct2_matrix(cols))
        inner = IdctNaive()
        counts.merge(_probe_counts_real(inner, cols).scale(rows))
        counts.merge(_probe_counts_real(inner, rows).scale(cols))
        counts.load += 2.0 * rows * cols
        counts.store += 2.0 * rows * cols
        return [out.astype(np.asarray(inputs[0]).dtype)]


class Conv2dDirect(Kernel):
    """Direct 2-D convolution (full output), the generic fallback."""

    actor_key = "conv2d"
    kernel_id = "conv2d.direct"
    description = "direct 2-D convolution"
    general = True

    def can_handle(self, dtype: DataType, params: Dict[str, Any]) -> bool:
        return dtype.is_float

    def execute(
        self,
        inputs: Sequence[np.ndarray],
        params: Dict[str, Any],
        counts: OpCounts,
    ) -> List[np.ndarray]:
        a = np.asarray(inputs[0], dtype=np.float64)
        k = np.asarray(inputs[1], dtype=np.float64)
        out_rows = a.shape[0] + k.shape[0] - 1
        out_cols = a.shape[1] + k.shape[1] - 1
        out = np.zeros((out_rows, out_cols), dtype=np.float64)
        for dr in range(k.shape[0]):
            for dc in range(k.shape[1]):
                out[dr : dr + a.shape[0], dc : dc + a.shape[1]] += k[dr, dc] * a
        macs = float(a.size * k.size)
        counts.mul += macs
        counts.add += macs
        counts.load += 2.0 * macs
        counts.store += float(out_rows * out_cols)
        counts.misc += 4.0 * macs
        return [out.astype(np.asarray(inputs[0]).dtype)]


def make_fft2d_kernels(inverse: bool) -> List[Kernel]:
    kernels: List[Kernel] = [
        Fft2dRowCol(inverse, "mixed"),
        Fft2dRowCol(inverse, "radix2"),
    ]
    kernels.append(SimdVariant(Fft2dRowCol(inverse, "radix2"), vectorizable_fraction=0.85))
    return kernels


def make_dct2d_kernels() -> List[Kernel]:
    kernels: List[Kernel] = [Dct2dRowCol("fft"), Dct2dRowCol("lee")]
    kernels.append(SimdVariant(Dct2dRowCol("lee"), vectorizable_fraction=0.85))
    return kernels


def make_idct2d_kernels() -> List[Kernel]:
    return [Idct2dRowCol()]


def make_conv2d_kernels() -> List[Kernel]:
    kernels: List[Kernel] = [Conv2dDirect()]
    kernels.append(SimdVariant(Conv2dDirect(), vectorizable_fraction=0.9))
    return kernels
