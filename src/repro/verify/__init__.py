"""Translation validation: differential verifier, fuzzer, shrinker.

The subsystem checks the paper's semantics-preservation promise by
construction: every generated program is executed on the cost-model VM
and compared against the model's reference semantics
(:mod:`repro.model.semantics`) over an adversarial input battery, and
HCG is additionally compared against the Simulink-Coder and DFSynth
baselines.  See docs/verification.md for the tour.

Import layout: this package is imported lazily from the code
generators (the fault hooks in :mod:`repro.verify.faults`), so the
package root stays dependency-free; pull the heavy pieces from their
modules —

* :mod:`repro.verify.runner` — ``verify_model`` / ``check_program`` /
  ``verified_generate``;
* :mod:`repro.verify.inputs` — the adversarial ``input_battery``;
* :mod:`repro.verify.fuzz` — random specs and ISA subsets;
* :mod:`repro.verify.shrink` — ``shrink_case``;
* :mod:`repro.verify.case` — ``ModelSpec`` / ``ReproCase`` persistence;
* :mod:`repro.verify.service` — the ``repro verify`` session driver.
"""

from __future__ import annotations

from repro.verify import faults

__all__ = ["faults"]
