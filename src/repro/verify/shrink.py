"""Greedy minimization of failing (model, ISA, input) triples.

Given a failing :class:`~repro.verify.case.ModelSpec` (plus an optional
ISA subset) and a ``check`` predicate that returns True while the case
still fails, the shrinker runs three reduction passes to a fixed point:

1. **drop nodes** — remove each non-inport node together with its
   dependent closure; keep the removal if the smaller spec still fails;
2. **narrow the signal** — try smaller widths, smallest first, so the
   surviving case is usually one vector register (or less) wide;
3. **drop ISA instructions** — remove instruction names one at a time
   from the subset.

Every ``check`` call costs one unit of ``budget``; when the budget runs
out the best-so-far spec is returned with ``exhausted=True`` so the
caller can attach the HCG405 diagnostic.  The predicate is expected to
swallow build errors for nonsense intermediate specs (the helpers in
:mod:`repro.verify.fuzz` always produce buildable specs, but dropping
nodes can e.g. orphan a Switch input) — :func:`checked` wraps a raw
predicate accordingly.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional, Sequence, Set, Tuple

from repro.errors import ReproError
from repro.observability.metrics import COUNTERS, SPANS
from repro.observability.tracer import NULL_TRACER
from repro.verify.case import ModelSpec

#: check(spec, isa_names) -> does the case still fail?
CheckFn = Callable[[ModelSpec, Optional[Tuple[str, ...]]], bool]


@dataclasses.dataclass
class ShrinkResult:
    """The minimized case plus bookkeeping for the repro file."""

    spec: ModelSpec
    isa_names: Optional[Tuple[str, ...]]
    steps: int          # accepted reductions
    checks: int         # predicate evaluations spent
    exhausted: bool     # True when the budget ran out mid-pass

    def to_dict(self) -> dict:
        return {"steps": self.steps, "checks": self.checks,
                "exhausted": self.exhausted}


def checked(check: CheckFn) -> CheckFn:
    """Wrap a predicate so structurally-invalid candidates count as
    non-failing instead of crashing the shrink loop."""

    def wrapper(spec: ModelSpec, isa_names: Optional[Tuple[str, ...]]) -> bool:
        try:
            return check(spec, isa_names)
        except (ReproError, KeyError):
            return False

    return wrapper


def _references(node: dict) -> List[str]:
    """Every node name this node consumes."""
    refs: List[str] = []
    for key in ("arg", "in1", "in2"):
        if key in node:
            refs.append(node[key])
    refs.extend(node.get("args", ()))
    return refs


def _drop_closure(spec: ModelSpec, victim: str) -> Optional[ModelSpec]:
    """The spec without ``victim`` and everything depending on it, or
    None when nothing computational would remain."""
    dropped: Set[str] = {victim}
    changed = True
    while changed:
        changed = False
        for node in spec.nodes:
            if node["name"] in dropped:
                continue
            if any(ref in dropped for ref in _references(node)):
                dropped.add(node["name"])
                changed = True
    kept = tuple(node for node in spec.nodes if node["name"] not in dropped)
    if not any(node["kind"] != "in" for node in kept):
        return None
    # Inports that nothing consumes any more are dead weight — drop them
    # too, but always keep at least one.
    used: Set[str] = set()
    for node in kept:
        used.update(_references(node))
    pruned = [node for node in kept
              if node["kind"] != "in" or node["name"] in used]
    if not any(node["kind"] == "in" for node in pruned):
        first_in = next(node for node in kept if node["kind"] == "in")
        pruned.insert(0, first_in)
    return dataclasses.replace(spec, nodes=tuple(pruned))


def _with_width(spec: ModelSpec, width: int) -> ModelSpec:
    """The spec rebuilt at a different signal width (consts re-sized)."""
    nodes = []
    for node in spec.nodes:
        if node["kind"] == "const":
            values = list(node["values"])
            cycled = [values[i % len(values)] for i in range(width)]
            node = {**node, "values": cycled}
        nodes.append(node)
    return dataclasses.replace(spec, width=width, nodes=tuple(nodes))


def _candidate_widths(width: int) -> List[int]:
    """Smaller widths to try, smallest first."""
    candidates = {1, 2, 3}
    candidates.update({width // 8, width // 4, width // 2,
                       width - 2, width - 1})
    return sorted(w for w in candidates if 1 <= w < width)


def shrink_case(
    spec: ModelSpec,
    isa_names: Optional[Sequence[str]],
    check: CheckFn,
    *,
    budget: int = 200,
    tracer=NULL_TRACER,
) -> ShrinkResult:
    """Minimize a failing case under a check budget.

    ``check`` must already return True for ``(spec, isa_names)``; the
    caller usually passes :func:`checked`-wrapped replay of the
    differential runner.
    """
    check = checked(check)
    current = spec
    isa: Optional[Tuple[str, ...]] = (
        None if isa_names is None else tuple(isa_names)
    )
    steps = 0
    checks = 0
    exhausted = False

    def spend(candidate_spec: ModelSpec,
              candidate_isa: Optional[Tuple[str, ...]]) -> bool:
        nonlocal checks, exhausted
        if checks >= budget:
            exhausted = True
            return False
        checks += 1
        still_failing = check(candidate_spec, candidate_isa)
        if still_failing:
            tracer.count(COUNTERS.VERIFY_SHRINK_STEPS)
        return still_failing

    with tracer.span(SPANS.VERIFY_SHRINK, model=spec.name) as span:
        progress = True
        while progress and not exhausted:
            progress = False
            # Pass 1: drop nodes, most recently added first (later nodes
            # usually depend on earlier ones, so this removes leaves).
            for node in reversed(list(current.nodes)):
                if node["kind"] == "in":
                    continue
                candidate = _drop_closure(current, node["name"])
                if candidate is None or candidate == current:
                    continue
                if spend(candidate, isa):
                    current = candidate
                    steps += 1
                    progress = True
            # Pass 2: narrow the signal width.
            for width in _candidate_widths(current.width):
                candidate = _with_width(current, width)
                if spend(candidate, isa):
                    current = candidate
                    steps += 1
                    progress = True
                    break
            # Pass 3: drop ISA instructions one at a time.
            if isa is not None and len(isa) > 1:
                for name in list(isa):
                    candidate_isa = tuple(n for n in isa if n != name)
                    if spend(current, candidate_isa):
                        isa = candidate_isa
                        steps += 1
                        progress = True
        span.set(steps=steps, checks=checks, exhausted=exhausted,
                 final_nodes=len(current.nodes), final_width=current.width)
    return ShrinkResult(spec=current, isa_names=isa, steps=steps,
                        checks=checks, exhausted=exhausted)
