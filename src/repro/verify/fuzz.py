"""Random model and ISA-subset generation for translation validation.

Two generators of stress, both deterministic in ``(seed, index)``:

* :func:`random_spec` — a random actor graph (elementwise chains with
  consts, gains, delays, switches and the occasional intensive actor)
  whose signal width is drawn from ``1 .. 3*lanes`` so every residue of
  ``width % lanes`` — the offset-prologue edge — occurs;
* :func:`random_isa_names` — a random subset of an architecture's
  instruction set.  Missing single-node instructions make dispatch
  demote actors to conventional translation, and missing compound
  instructions steer Algorithm 2 into different subgraph tilings; the
  emitted code must stay correct either way.

:func:`residue_sweep_specs` additionally produces one deterministic
elementwise model per residue class, per dtype — the fixed part of the
seed corpus committed under ``tests/verify/corpus/``.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro import ops
from repro.dtypes import DataType
from repro.errors import ReproError
from repro.isa.spec import InstructionSet
from repro.verify.case import ModelSpec

#: dtypes the fuzzer draws models from (all have .si instructions in at
#: least one preset; unsupported (dtype, ISA) pairs exercise demotion)
FUZZ_DTYPES: Tuple[DataType, ...] = (
    DataType.I8, DataType.U8, DataType.I16, DataType.U16,
    DataType.I32, DataType.U32, DataType.F32, DataType.F64,
)

#: elementwise actor types the fuzzer may instantiate
FUZZ_OPS: Tuple[str, ...] = (
    "Add", "Sub", "Mul", "Div", "Min", "Max", "Abs", "Abd", "Neg",
    "Shr", "Shl", "BitNot", "BitAnd", "BitOr", "BitXor", "Recp", "Sqrt",
)


def _supported_ops(dtype: DataType) -> List[str]:
    return [name for name in FUZZ_OPS if ops.op_info(name).supports(dtype)]


def _random_const_values(rng: np.random.Generator, dtype: DataType,
                         count: int) -> List:
    if dtype.is_float:
        return [round(float(v), 4) for v in rng.uniform(-8.0, 8.0, size=count)]
    info = np.iinfo(dtype.numpy_dtype)
    lo, hi = (0, 17) if info.min == 0 else (-16, 17)
    return [int(v) for v in rng.integers(lo, hi, size=count)]


def random_spec(seed: int, index: int, *, lanes: int = 4,
                allow_intensive: bool = True) -> ModelSpec:
    """One random, always-valid :class:`ModelSpec`.

    ``lanes`` should be the target ISA's lane count for a typical dtype;
    widths are drawn from ``1 .. 3*lanes`` so the remainder prologue is
    exercised at every residue.
    """
    rng = np.random.default_rng((seed, index, 0x4C47))
    dtype = FUZZ_DTYPES[int(rng.integers(len(FUZZ_DTYPES)))]
    width = int(rng.integers(1, 3 * max(lanes, 2) + 1))
    nodes: List[dict] = []
    #: names usable as (width,)-shaped operands
    stream: List[str] = []

    n_inports = int(rng.integers(1, 4))
    for i in range(n_inports):
        name = f"in{i}"
        nodes.append({"kind": "in", "name": name})
        stream.append(name)
    for i in range(int(rng.integers(0, 3))):
        name = f"c{i}"
        nodes.append({"kind": "const", "name": name,
                      "values": _random_const_values(rng, dtype, width)})
        stream.append(name)

    supported = _supported_ops(dtype)
    n_ops = int(rng.integers(1, 9))
    for i in range(n_ops):
        roll = float(rng.random())
        name = f"n{i}"
        if roll < 0.10:
            node = {"kind": "delay", "name": name,
                    "arg": stream[int(rng.integers(len(stream)))],
                    "initial": 0}
        elif roll < 0.18 and len(stream) >= 2:
            picks = rng.choice(len(stream), size=2, replace=False)
            low = 0 if (dtype.is_integer
                        and np.iinfo(dtype.numpy_dtype).min == 0) else -2
            node = {"kind": "switch", "name": name,
                    "in1": stream[int(picks[0])], "in2": stream[int(picks[1])],
                    "threshold": int(rng.integers(low, 3))}
        elif roll < 0.26:
            node = {"kind": "gain", "name": name,
                    "arg": stream[int(rng.integers(len(stream)))],
                    "gain": _random_const_values(rng, dtype, 1)[0]}
        else:
            op = supported[int(rng.integers(len(supported)))]
            info = ops.op_info(op)
            args = [stream[int(rng.integers(len(stream)))]
                    for _ in range(info.arity)]
            node = {"kind": "op", "name": name, "op": op, "args": args}
            if info.needs_imm:
                node["shift"] = int(rng.integers(0, dtype.bit_width))
        nodes.append(node)
        stream.append(name)

    if allow_intensive and float(rng.random()) < 0.12:
        arg = stream[int(rng.integers(len(stream)))]
        if dtype.is_float:
            op = ("DCT", "IDCT", "FFT")[int(rng.integers(3))]
            nodes.append({"kind": "intensive", "name": "k0", "op": op,
                          "arg": arg})
        elif dtype is DataType.I32:
            nodes.append({"kind": "intensive", "name": "k0", "op": "Conv",
                          "arg": arg,
                          "taps": _random_const_values(rng, dtype, 3)})

    return ModelSpec(
        name=f"fuzz_s{seed}_i{index}",
        dtype=dtype.name.lower(),
        width=width,
        nodes=tuple(nodes),
    )


# ---------------------------------------------------------------------------
# ISA subsets
# ---------------------------------------------------------------------------

def subset_instruction_set(base: InstructionSet,
                           names: Sequence[str]) -> InstructionSet:
    """The sub-ISA of ``base`` keeping only the named instructions."""
    wanted = set(names)
    unknown = wanted - {spec.name for spec in base.instructions}
    if unknown:
        raise ReproError(
            f"instruction set {base.arch!r} has no instruction(s) "
            f"{sorted(unknown)}"
        )
    kept = tuple(s for s in base.instructions if s.name in wanted)
    if not kept:
        raise ReproError("an ISA subset must keep at least one instruction")
    # features travel with the subset: a sub-ISA of a scalable/masked
    # set still supports the predicated tail
    return InstructionSet(base.arch, base.vector_bits, kept, base.features)


def random_isa_names(seed: int, index: int,
                     base: InstructionSet) -> Tuple[str, ...]:
    """A random non-empty subset of ``base``'s instruction names."""
    rng = np.random.default_rng((seed, index, 0x15A))
    names = [spec.name for spec in base.instructions]
    keep = float(rng.uniform(0.3, 0.95))
    kept = [name for name in names if float(rng.random()) < keep]
    if not kept:
        kept = [names[int(rng.integers(len(names)))]]
    return tuple(sorted(kept))


# ---------------------------------------------------------------------------
# Deterministic residue sweep (seed corpus)
# ---------------------------------------------------------------------------

def residue_sweep_specs(vector_bits: int,
                        dtypes: Sequence[DataType] = (DataType.F32,
                                                      DataType.I16),
                        ) -> List[ModelSpec]:
    """One elementwise model per ``width % lanes`` residue, per dtype.

    Each model is a Mul+Add chain over ``2*lanes + r`` elements — the
    smallest shape where the SIMD body and the scalar remainder prologue
    both execute for residue ``r``.
    """
    specs: List[ModelSpec] = []
    for dtype in dtypes:
        lanes = vector_bits // dtype.bit_width
        rng = np.random.default_rng((vector_bits, dtype.bit_width))
        for residue in range(lanes):
            width = 2 * lanes + residue
            specs.append(ModelSpec(
                name=f"residue_{dtype.name.lower()}_r{residue}",
                dtype=dtype.name.lower(),
                width=width,
                nodes=(
                    {"kind": "in", "name": "in0"},
                    {"kind": "in", "name": "in1"},
                    {"kind": "const", "name": "c0",
                     "values": _random_const_values(rng, dtype, width)},
                    {"kind": "op", "name": "n0", "op": "Mul",
                     "args": ["in0", "c0"]},
                    {"kind": "op", "name": "n1", "op": "Add",
                     "args": ["n0", "in1"]},
                ),
            ))
    return specs


@dataclasses.dataclass(frozen=True)
class FuzzCase:
    """One fuzz iteration: a model plus an optional ISA subset."""

    spec: ModelSpec
    arch: str
    isa_names: Optional[Tuple[str, ...]]


def fuzz_cases(count: int, seed: int, archs: Sequence[str],
               instruction_sets) -> List[FuzzCase]:
    """The deterministic fuzz schedule: ``count`` cases round-robin over
    ``archs``; every other case also randomizes the ISA subset.

    ``instruction_sets`` maps arch name -> its full InstructionSet.
    """
    cases: List[FuzzCase] = []
    for index in range(count):
        arch = archs[index % len(archs)]
        base = instruction_sets[arch]
        lanes = max(base.vector_bits // 32, 2)
        spec = random_spec(seed, index, lanes=lanes)
        isa_names: Optional[Tuple[str, ...]] = None
        if index % 2 == 1:
            isa_names = random_isa_names(seed, index, base)
        cases.append(FuzzCase(spec=spec, arch=arch, isa_names=isa_names))
    return cases
