"""The verification session behind ``repro verify``.

One session stitches the subsystem's pieces together, in order:

1. **named models** — the benchmark suite (quick scale) or the models
   the caller picked, differentially verified on every target arch;
2. **corpus replay** — committed repro cases under a corpus directory
   (``tests/verify/corpus/``), replayed bit-for-bit;
3. **fuzzing** — ``--fuzz N`` random (model, ISA subset) cases,
   round-robin over the target archs.

Any failure is minimized by the shrinker and written to the quarantine
directory as a repro case; the session records HCG404 (quarantined) and
HCG405 (shrink budget exhausted) diagnostics alongside the HCG401-403
mismatch diagnostics from the runner.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.arch.presets import get_architecture
from repro.diagnostics import DiagnosticsCollector
from repro.errors import VerificationError
from repro.observability.metrics import COUNTERS
from repro.observability.tracer import NULL_TRACER
from repro.verify.case import ModelSpec, ReproCase, load_corpus
from repro.verify.fuzz import FuzzCase, fuzz_cases, subset_instruction_set
from repro.verify.runner import VerifyReport, verify_model
from repro.verify.shrink import shrink_case

#: the five ISA presets, mirroring repro.bench.trajectory.ISA_MATRIX_ARCHS
#: (re-declared to keep this module importable without the bench package)
DEFAULT_ARCHS = ("arm_a72", "intel_i7_8700_sse4", "intel_i7_8700",
                 "riscv_u74", "intel_xeon_8380")

DEFAULT_GENERATORS = ("simulink_coder", "dfsynth", "hcg")


@dataclasses.dataclass
class SessionResult:
    """Everything one ``repro verify`` run observed."""

    reports: List[VerifyReport] = dataclasses.field(default_factory=list)
    quarantined: List[Path] = dataclasses.field(default_factory=list)
    diagnostics: DiagnosticsCollector = dataclasses.field(
        default_factory=lambda: DiagnosticsCollector(policy="permissive")
    )
    fuzz_count: int = 0
    corpus_count: int = 0

    @property
    def failures(self) -> List[VerifyReport]:
        return [r for r in self.reports if not r.ok]

    @property
    def ok(self) -> bool:
        # Failing reports surface as error diagnostics too, but a cell
        # that *crashed* (HCG212) leaves no report — only its diagnostic.
        return not self.failures and not self.diagnostics.has_errors()

    def summary(self) -> str:
        lines = [
            f"verified {len(self.reports)} case(s) "
            f"({self.corpus_count} corpus, {self.fuzz_count} fuzzed): "
            + ("all consistent" if self.ok
               else f"{len(self.failures)} FAILURE(S)")
        ]
        for report in self.failures:
            lines.append(f"  {report.summary()}")
            for mismatch in report.mismatches[:4]:
                lines.append(f"    {mismatch.format()}")
            if len(report.mismatches) > 4:
                lines.append(
                    f"    ... and {len(report.mismatches) - 4} more"
                )
        for path in self.quarantined:
            lines.append(f"  minimized repro written to {path}")
        return "\n".join(lines)


def _default_models() -> Dict[str, "object"]:
    from repro.bench.trajectory import quick_suite

    return quick_suite()


def run_session(
    *,
    models: Optional[Dict[str, object]] = None,
    archs: Sequence[str] = DEFAULT_ARCHS,
    generators: Sequence[str] = DEFAULT_GENERATORS,
    fuzz: int = 0,
    seed: int = 0,
    steps: int = 2,
    corpus: Optional[Union[str, Path]] = None,
    quarantine: Union[str, Path] = "verify_quarantine",
    shrink_budget: int = 120,
    tracer=NULL_TRACER,
    progress: Optional[Callable[[str], None]] = None,
    jobs: int = 1,
    service=None,
) -> SessionResult:
    """Run one full verification session (see module docstring).

    ``jobs > 1`` fans the named-model (arch, model) cells out over a
    worker pool; reports come back in the serial order regardless.  A
    cell that *crashes* (as opposed to reporting mismatches) is fault
    isolated: it becomes an HCG212 diagnostic and the session carries
    on.  With a :class:`~repro.service.service.CodegenService` attached,
    named-model cells generate through the facade and its codegen cache
    (fuzz cases keep the direct path — their ISA subsets are not
    expressible as options).
    """
    say = progress or (lambda message: None)
    result = SessionResult()
    if models is None:
        models = _default_models()

    # 1. Named models on every target architecture.
    from repro.service.executor import ParallelExecutor

    cells = [
        (arch_name, model_name, model)
        for arch_name in archs
        for model_name, model in models.items()
    ]

    def run_cell(cell):
        arch_name, _, model = cell
        # Workers must not share the session tracer (its span stack is
        # not thread-safe); cells trace only when running inline.
        return verify_model(
            model, arch_name, generators=generators, seed=seed,
            steps=steps, tracer=tracer if jobs == 1 else NULL_TRACER,
            service=service,
        )

    from repro.service.executor import TaskTimeoutError

    executor = ParallelExecutor(
        jobs, tracer, timeout_s=getattr(service, "task_timeout_s", None)
    )
    for outcome in executor.map(
        run_cell, cells, label=lambda index, cell: f"{cell[0]}/{cell[1]}"
    ):
        arch_name, model_name, _ = cells[outcome.index]
        if outcome.error is not None:
            timed_out = isinstance(outcome.error, TaskTimeoutError)
            result.diagnostics.report(
                "HCG213" if timed_out else "HCG212",
                f"verification of {model_name!r} "
                + ("timed out: " if timed_out else "crashed: ")
                + f"{type(outcome.error).__name__}: {outcome.error}",
                actor=model_name,
                location=arch_name,
            )
            say(f"{model_name} @ {arch_name}: "
                f"{'TIMED OUT' if timed_out else 'CRASHED'} ({outcome.error})")
            continue
        report = outcome.value
        result.reports.append(report)
        result.diagnostics.extend(report.to_diagnostics())
        say(report.summary())

    # 2. Corpus replay.
    if corpus is not None:
        for path, case in load_corpus(corpus):
            report = case.replay(tracer=tracer)
            result.reports.append(report)
            result.corpus_count += 1
            result.diagnostics.extend(report.to_diagnostics())
            say(f"corpus {path.name}: {report.summary()}")
            if not report.ok:
                # A committed corpus case regressed; quarantine the
                # failing replay as-is (it is already minimal).
                _quarantine(case, report, None, quarantine, result)

    # 3. Fuzzing, round-robin over archs, shrink-on-failure.
    if fuzz > 0:
        instruction_sets = {
            name: get_architecture(name).instruction_set for name in archs
        }
        for fuzz_case in fuzz_cases(fuzz, seed, tuple(archs),
                                    instruction_sets):
            tracer.count(COUNTERS.VERIFY_MODELS_FUZZED)
            report = _verify_fuzz_case(fuzz_case, generators, seed, steps,
                                       tracer)
            result.reports.append(report)
            result.fuzz_count += 1
            result.diagnostics.extend(report.to_diagnostics())
            if report.ok:
                continue
            say(f"fuzz failure: {report.summary()}")
            shrunk = _shrink_fuzz_case(fuzz_case, generators, seed, steps,
                                       shrink_budget, tracer)
            case = ReproCase(
                spec=shrunk.spec,
                arch=fuzz_case.arch,
                seed=seed,
                generators=tuple(generators),
                isa_names=shrunk.isa_names,
                faults=_active_faults(),
                steps=steps,
                mismatches=tuple(m.to_dict() for m in report.mismatches),
                shrink=shrunk.to_dict(),
            )
            path = _quarantine(case, report, shrunk, quarantine, result)
            say(f"  minimized to {shrunk.spec.actor_count} actor(s): {path}")
    return result


def _active_faults() -> Tuple[str, ...]:
    from repro.verify import faults

    return faults.active_faults()


def _verify_fuzz_case(fuzz_case: FuzzCase, generators: Sequence[str],
                      seed: int, steps: int, tracer) -> VerifyReport:
    instruction_set = None
    if fuzz_case.isa_names is not None:
        base = get_architecture(fuzz_case.arch).instruction_set
        instruction_set = subset_instruction_set(base, fuzz_case.isa_names)
    model = fuzz_case.spec.build()
    return verify_model(
        model, fuzz_case.arch, generators=generators,
        instruction_set=instruction_set, seed=seed, steps=steps,
        tracer=tracer,
    )


def _shrink_fuzz_case(fuzz_case: FuzzCase, generators: Sequence[str],
                      seed: int, steps: int, budget: int, tracer):
    base = get_architecture(fuzz_case.arch).instruction_set

    def still_fails(spec: ModelSpec,
                    isa_names: Optional[Tuple[str, ...]]) -> bool:
        instruction_set = None
        if isa_names is not None:
            instruction_set = subset_instruction_set(base, isa_names)
        report = verify_model(
            spec.build(), fuzz_case.arch, generators=generators,
            instruction_set=instruction_set, seed=seed, steps=steps,
        )
        return not report.ok

    return shrink_case(fuzz_case.spec, fuzz_case.isa_names, still_fails,
                       budget=budget, tracer=tracer)


def _quarantine(case: ReproCase, report: VerifyReport, shrunk,
                quarantine: Union[str, Path], result: SessionResult) -> Path:
    path = case.save(quarantine)
    result.quarantined.append(path)
    result.diagnostics.report(
        "HCG404",
        f"fuzz failure minimized and quarantined at {path}",
        actor=report.model,
        location=report.arch,
    )
    if shrunk is not None and shrunk.exhausted:
        result.diagnostics.report(
            "HCG405",
            f"shrink budget exhausted after {shrunk.checks} checks; "
            f"{path} may not be minimal",
            actor=report.model,
            location=report.arch,
        )
    return path
