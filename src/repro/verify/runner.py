"""The differential runner: generated programs vs reference semantics.

For every generator under test the runner executes the generated
program on the cost-model VM over the adversarial input battery
(:mod:`repro.verify.inputs`) and compares each step's outputs against
:class:`~repro.model.semantics.ModelEvaluator` — the package's
definition of what the model *means*.  When HCG and the baseline
generators are verified together, HCG's outputs are additionally
compared against each baseline (the paper's "computation results of
each execution are consistent" claim, §4).

Comparison discipline
---------------------
* integer signals — bit-exact (``np.array_equal``);
* float signals in models **without** intensive actors — bit-exact with
  ``equal_nan``: every elementwise path (reference, scalar translation,
  SIMD lanes) evaluates through the one shared op table in
  :mod:`repro.ops`, so any difference is a translation bug, not
  rounding;
* float signals in models **with** intensive actors — ``np.allclose``
  at the tolerance the bench harness already uses (a radix-2 FFT kernel
  and ``np.fft`` legitimately differ in the last bits).

A failed comparison becomes a :class:`Mismatch`; the
:class:`VerifyReport` maps them onto stable diagnostics (HCG401
reference divergence, HCG402 baseline divergence, HCG403 crash) and can
raise a :class:`~repro.errors.VerificationError` carrying all of them.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.arch.arch import Architecture
from repro.arch.presets import get_architecture
from repro.diagnostics import Diagnostic, DiagnosticsCollector
from repro.errors import ReproError, VerificationError
from repro.model.graph import Model
from repro.model.semantics import ModelEvaluator
from repro.observability.metrics import COUNTERS, SPANS
from repro.observability.tracer import NULL_TRACER
from repro.verify.inputs import InputCase, has_intensive, input_battery
from repro.vm.machine import Machine

#: the tolerance used for intensive-kernel float outputs, matching
#: repro.bench.runner.compare_generators
FLOAT_RTOL = 1e-4
FLOAT_ATOL = 1e-4

#: mismatch kind -> stable diagnostic code (docs/verification.md)
MISMATCH_CODES = {
    "reference": "HCG401",
    "baseline": "HCG402",
    "crash": "HCG403",
}


@dataclasses.dataclass(frozen=True)
class Mismatch:
    """One observed divergence (or crash) during verification."""

    kind: str        # "reference" | "baseline" | "crash"
    generator: str   # the generator whose program diverged
    case: str        # input-battery case name ("*" = independent of input)
    step: int        # 0-based step index (-1 for generation-time crashes)
    output: str      # outport name ("-" for crashes)
    detail: str      # human-readable description of the divergence

    @property
    def code(self) -> str:
        return MISMATCH_CODES[self.kind]

    def format(self) -> str:
        where = f"{self.case}/step{self.step}" if self.step >= 0 else self.case
        return (f"{self.code} [{self.generator}] {self.kind} at {where}, "
                f"output {self.output}: {self.detail}")

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


@dataclasses.dataclass
class VerifyReport:
    """The outcome of verifying one model on one architecture."""

    model: str
    arch: str
    generators: Tuple[str, ...]
    cases: int
    steps: int
    mismatches: List[Mismatch] = dataclasses.field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def to_diagnostics(self) -> List[Diagnostic]:
        collector = DiagnosticsCollector(policy="permissive")
        for mismatch in self.mismatches:
            collector.report(
                mismatch.code,
                mismatch.format(),
                actor=mismatch.generator,
                location=f"{self.model}@{self.arch}",
            )
        return list(collector)

    def raise_on_failure(self) -> None:
        if self.ok:
            return
        raise VerificationError(
            f"verification of {self.model!r} on {self.arch} failed: "
            f"{len(self.mismatches)} mismatch(es), first: "
            f"{self.mismatches[0].format()}",
            diagnostics=self.to_diagnostics(),
        )

    def summary(self) -> str:
        status = "ok" if self.ok else f"{len(self.mismatches)} MISMATCH(ES)"
        return (f"{self.model} @ {self.arch} "
                f"[{', '.join(self.generators)}] "
                f"{self.cases} case(s) x {self.steps} step(s): {status}")


# ---------------------------------------------------------------------------
# Comparison
# ---------------------------------------------------------------------------

def _compare_arrays(expected: np.ndarray, got: np.ndarray,
                    tolerant: bool) -> Optional[str]:
    """None when equal, else a short description of the divergence."""
    got = np.asarray(got)
    expected = np.asarray(expected)
    if got.shape != expected.shape:
        try:
            got = got.reshape(expected.shape)
        except ValueError:
            return f"shape {got.shape} != expected {expected.shape}"
    if expected.dtype.kind in "fc":
        if tolerant:
            if np.allclose(got, expected, rtol=FLOAT_RTOL, atol=FLOAT_ATOL,
                           equal_nan=True):
                return None
            with np.errstate(invalid="ignore"):
                err = float(np.nanmax(np.abs(
                    got.astype(np.float64) - expected.astype(np.float64))))
            return f"max abs error {err:g} beyond tolerance"
        if np.array_equal(got, expected, equal_nan=True):
            return None
        diverged = ~((got == expected) | (np.isnan(got) & np.isnan(expected)))
        index = int(np.argmax(diverged.ravel()))
        return (f"{int(np.count_nonzero(diverged))} element(s) differ, "
                f"first at flat index {index}: "
                f"got {got.ravel()[index]!r}, expected "
                f"{expected.ravel()[index]!r}")
    if np.array_equal(got, expected):
        return None
    diverged = got != expected
    index = int(np.argmax(diverged.ravel()))
    return (f"{int(np.count_nonzero(diverged))} element(s) differ, "
            f"first at flat index {index}: got {got.ravel()[index]!r}, "
            f"expected {expected.ravel()[index]!r}")


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------

def _reference_outputs(model: Model, battery: Sequence[InputCase]
                       ) -> Dict[str, List[Dict[str, np.ndarray]]]:
    """case name -> per-step outport dict, from the model evaluator."""
    outputs: Dict[str, List[Dict[str, np.ndarray]]] = {}
    # Adversarial inputs legitimately overflow/invalidate — both sides
    # compute through the same op table, so silence numpy's advisories.
    with np.errstate(all="ignore"):
        for case in battery:
            evaluator = ModelEvaluator(model)
            outputs[case.name] = [evaluator.step(step) for step in case.steps]
    return outputs


def _program_outputs(program, arch: Architecture, instruction_set,
                     battery: Sequence[InputCase], generator_name: str,
                     mismatches: List[Mismatch]
                     ) -> Dict[str, List[Dict[str, np.ndarray]]]:
    """case name -> per-step outport dict, from the VM (fresh state per
    case); execution crashes are recorded as ``crash`` mismatches."""
    outputs: Dict[str, List[Dict[str, np.ndarray]]] = {}
    for case in battery:
        machine = Machine(program, arch, instruction_set=instruction_set)
        per_step: List[Dict[str, np.ndarray]] = []
        try:
            with np.errstate(all="ignore"):
                for step in case.steps:
                    per_step.append(machine.run(step).outputs)
        except ReproError as exc:
            mismatches.append(Mismatch(
                kind="crash", generator=generator_name, case=case.name,
                step=len(per_step), output="-",
                detail=f"VM execution failed: {exc}",
            ))
            continue
        outputs[case.name] = per_step
    return outputs


def check_program(
    model: Model,
    program,
    arch: Union[str, Architecture],
    *,
    generator_name: str = "hcg",
    instruction_set=None,
    battery: Optional[Sequence[InputCase]] = None,
    seed: int = 0,
    steps: int = 2,
    tracer=NULL_TRACER,
) -> VerifyReport:
    """Differentially verify one already-generated program."""
    if isinstance(arch, str):
        arch = get_architecture(arch)
    if battery is None:
        battery = input_battery(model, seed=seed, steps=steps)
    tolerant = has_intensive(model)
    report = VerifyReport(
        model=model.name, arch=arch.name, generators=(generator_name,),
        cases=len(battery), steps=steps,
    )
    with tracer.span(SPANS.VERIFY_CASE, model=model.name, arch=arch.name,
                     generator=generator_name) as span:
        expected = _reference_outputs(model, battery)
        got = _program_outputs(program, arch, instruction_set, battery,
                               generator_name, report.mismatches)
        _compare_to_reference(expected, got, tolerant, generator_name,
                              report.mismatches)
        tracer.count(COUNTERS.VERIFY_CASES_RUN, len(battery))
        if not report.ok:
            tracer.count(COUNTERS.VERIFY_CASES_FAILED)
        span.set(mismatches=len(report.mismatches))
    return report


def _compare_to_reference(expected, got, tolerant, generator_name,
                          mismatches: List[Mismatch]) -> None:
    for case_name, steps_expected in expected.items():
        steps_got = got.get(case_name)
        if steps_got is None:
            continue  # the crash is already recorded
        for step, outports in enumerate(steps_expected):
            for out_name, value in outports.items():
                detail = _compare_arrays(value, steps_got[step][out_name],
                                         tolerant)
                if detail is not None:
                    mismatches.append(Mismatch(
                        kind="reference", generator=generator_name,
                        case=case_name, step=step, output=out_name,
                        detail=detail,
                    ))


# ---------------------------------------------------------------------------
# Whole-model verification across generators
# ---------------------------------------------------------------------------

def verify_model(
    model: Model,
    arch: Union[str, Architecture],
    *,
    generators: Sequence[str] = ("simulink_coder", "dfsynth", "hcg"),
    instruction_set=None,
    seed: int = 0,
    steps: int = 2,
    battery: Optional[Sequence[InputCase]] = None,
    tracer=NULL_TRACER,
    policy: str = "permissive",
    generator_kwargs: Optional[Mapping[str, Mapping[str, Any]]] = None,
    service=None,
) -> VerifyReport:
    """Differentially verify a model across the named generators.

    ``instruction_set`` (an ISA subset) only parameterizes HCG — the
    baselines emit scalar code regardless.  ``policy`` defaults to
    permissive so a mapping fault degrades to scalar code whose
    *correctness* is then what the runner actually checks.

    With a :class:`~repro.service.service.CodegenService` attached (and
    no ISA subset — subsets are not expressible as
    :class:`~repro.codegen.options.CodegenOptions`), programs come from
    the facade instead of direct generator construction, so verification
    shares the content-addressed codegen cache and the per-arch
    selection histories with the rest of the tool.
    """
    from repro.bench.runner import make_generator

    if isinstance(arch, str):
        arch = get_architecture(arch)
    if battery is None:
        battery = input_battery(model, seed=seed, steps=steps)
    tolerant = has_intensive(model)
    generator_kwargs = generator_kwargs or {}
    report = VerifyReport(
        model=model.name, arch=arch.name, generators=tuple(generators),
        cases=len(battery), steps=steps,
    )

    with tracer.span(SPANS.VERIFY, model=model.name, arch=arch.name) as span:
        expected = _reference_outputs(model, battery)
        outputs_by_generator: Dict[str, Dict[str, List[Dict[str, np.ndarray]]]] = {}
        use_service = service is not None and instruction_set is None
        for name in generators:
            if use_service:
                iset = arch.instruction_set if name == "hcg" else None
            else:
                kwargs: Dict[str, Any] = {"policy": policy}
                if name == "hcg" and instruction_set is not None:
                    kwargs["instruction_set"] = instruction_set
                kwargs.update(generator_kwargs.get(name, {}))
                generator = make_generator(name, arch, **kwargs)
                iset = getattr(generator, "iset", None)
            with tracer.span(SPANS.VERIFY_CASE, model=model.name,
                             arch=arch.name, generator=name) as case_span:
                try:
                    if use_service:
                        from repro.api import GenerateRequest
                        from repro.codegen.options import CodegenOptions

                        program = service.generate(GenerateRequest(
                            model=model, generator=name,
                            options=CodegenOptions(arch=arch.name,
                                                   policy=policy),
                        )).program
                    else:
                        program = generator.generate(model)
                except ReproError as exc:
                    report.mismatches.append(Mismatch(
                        kind="crash", generator=name, case="*", step=-1,
                        output="-", detail=f"generation failed: {exc}",
                    ))
                    case_span.set(mismatches=1)
                    continue
                before = len(report.mismatches)
                got = _program_outputs(
                    program, arch, iset,
                    battery, name, report.mismatches,
                )
                outputs_by_generator[name] = got
                _compare_to_reference(expected, got, tolerant, name,
                                      report.mismatches)
                tracer.count(COUNTERS.VERIFY_CASES_RUN, len(battery))
                case_span.set(mismatches=len(report.mismatches) - before)

        # HCG vs each baseline, over the cases both executed.
        if "hcg" in outputs_by_generator:
            hcg = outputs_by_generator["hcg"]
            for name, baseline in outputs_by_generator.items():
                if name == "hcg":
                    continue
                for case_name, steps_base in baseline.items():
                    steps_hcg = hcg.get(case_name)
                    if steps_hcg is None:
                        continue
                    for step, outports in enumerate(steps_base):
                        for out_name, value in outports.items():
                            detail = _compare_arrays(
                                value, steps_hcg[step][out_name], tolerant)
                            if detail is not None:
                                report.mismatches.append(Mismatch(
                                    kind="baseline", generator="hcg",
                                    case=case_name, step=step,
                                    output=out_name,
                                    detail=f"vs {name}: {detail}",
                                ))
        if not report.ok:
            tracer.count(COUNTERS.VERIFY_CASES_FAILED)
        span.set(generators=list(generators),
                 mismatches=len(report.mismatches))
    return report


def verified_generate(generator, model: Model, *, seed: int = 0,
                      steps: int = 2, tracer=None):
    """Generate with ``generator`` and verify before handing the program
    to the caller; raises :class:`VerificationError` on divergence.

    This is the implementation behind every generator's
    ``generate_verified`` method.
    """
    if tracer is None:
        tracer = getattr(generator, "tracer", None) or NULL_TRACER
    program = generator.generate(model)
    report = check_program(
        model, program, generator.arch,
        generator_name=generator.name,
        instruction_set=getattr(generator, "iset", None),
        seed=seed, steps=steps, tracer=tracer,
    )
    report.raise_on_failure()
    return program


def replay_case(case, tracer=None) -> VerifyReport:
    """Re-run the differential check recorded by a ReproCase."""
    from repro.verify import faults
    from repro.verify.fuzz import subset_instruction_set

    model = case.spec.build()
    instruction_set = None
    if case.isa_names is not None:
        arch = get_architecture(case.arch)
        instruction_set = subset_instruction_set(arch.instruction_set,
                                                 case.isa_names)
    kwargs: Dict[str, Any] = dict(
        generators=case.generators, instruction_set=instruction_set,
        seed=case.seed, steps=case.steps,
    )
    if tracer is not None:
        kwargs["tracer"] = tracer
    if case.faults:
        with faults.injected(*case.faults):
            return verify_model(model, case.arch, **kwargs)
    return verify_model(model, case.arch, **kwargs)
