"""Serializable model specs and minimized repro cases.

The fuzzer does not mutate :class:`~repro.model.graph.Model` objects
directly — it works on a :class:`ModelSpec`, a flat JSON-friendly
description that (a) builds a validated model deterministically via
``model/builder.py``, (b) survives a round trip to disk, and (c) the
shrinker can reduce by dropping nodes.  A failing triple is persisted
as a :class:`ReproCase`: the spec, the ISA subset, the target, the
seed, and a summary of every observed mismatch — everything needed to
replay the failure with ``load_case(path).replay()``.

Spec node kinds (each node is one dict in ``ModelSpec.nodes``):

========== =============================================================
``in``     an Inport of shape ``(width,)``
``const``  a Const; ``values`` holds exactly ``width`` numbers
``op``     an elementwise actor (``Add``, ``Shr``, ...); ``args`` name
           earlier nodes; shift ops carry ``shift``
``gain``   a Gain actor; ``gain`` is the scalar factor
``delay``  a UnitDelay; ``arg`` may name *any* node (feedback)
``switch`` a Switch over ``in1``/``in2`` with a fresh scalar ctrl
           inport named ``<name>_ctrl`` and a ``threshold``
``intensive`` one intensive actor (``DCT``, ``FFT``, or ``Conv`` with
           ``taps``) consuming ``arg``; terminal (outport only)
========== =============================================================
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.dtypes import DataType
from repro.errors import ReproError
from repro.model.builder import ActorRef, ModelBuilder
from repro.model.graph import Model

#: on-disk format of a repro case; bump when the layout changes
CASE_SCHEMA_VERSION = 1


@dataclasses.dataclass(frozen=True)
class ModelSpec:
    """A flat, shrinkable description of one fuzz model."""

    name: str
    dtype: str
    width: int
    nodes: Tuple[Dict[str, Any], ...]

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "dtype": self.dtype,
            "width": self.width,
            "nodes": [dict(node) for node in self.nodes],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ModelSpec":
        return cls(
            name=str(payload["name"]),
            dtype=str(payload["dtype"]),
            width=int(payload["width"]),
            nodes=tuple(dict(node) for node in payload["nodes"]),
        )

    # ------------------------------------------------------------------
    @property
    def actor_count(self) -> int:
        """Actors of the built model, counting auto ctrl inports and
        outports — the size the shrinker minimizes."""
        return len(self.build().actors)

    def node_names(self) -> List[str]:
        return [node["name"] for node in self.nodes]

    # ------------------------------------------------------------------
    def build(self) -> Model:
        """Construct and validate the model this spec describes."""
        dtype = DataType.from_name(self.dtype)
        builder = ModelBuilder(self.name, default_dtype=dtype)
        refs: Dict[str, ActorRef] = {}
        consumed: set = set()
        deferred: List[Tuple[str, str, str]] = []  # (src, dst, dst_port)
        terminal: set = set()  # nodes that may only feed an outport

        for node in self.nodes:
            kind, name = node["kind"], node["name"]
            if kind == "in":
                refs[name] = builder.inport(name, shape=self.width, dtype=dtype)
            elif kind == "const":
                refs[name] = builder.const(name, value=list(node["values"]),
                                           dtype=dtype)
            elif kind == "op":
                args = [refs[a] for a in node["args"]]
                params: Dict[str, Any] = {}
                if "shift" in node:
                    params["shift"] = int(node["shift"])
                refs[name] = builder.add_actor(node["op"], name, *args, **params)
                consumed.update(node["args"])
            elif kind == "gain":
                refs[name] = builder.add_actor("Gain", name, refs[node["arg"]],
                                               gain=node["gain"])
                consumed.add(node["arg"])
            elif kind == "delay":
                refs[name] = builder.add_actor(
                    "UnitDelay", name, dtype=dtype, shape=self.width,
                    initial=node.get("initial", 0),
                )
                deferred.append((node["arg"], name, "in1"))
                consumed.add(node["arg"])
            elif kind == "switch":
                ctrl = builder.inport(f"{name}_ctrl", dtype=dtype)
                refs[name] = builder.add_actor(
                    "Switch", name, refs[node["in1"]], dtype=dtype,
                    shape=self.width, threshold=node.get("threshold", 0),
                )
                builder.connect(ctrl, refs[name], "ctrl")
                builder.connect(refs[node["in2"]], refs[name], "in2")
                consumed.update((node["in1"], node["in2"]))
            elif kind == "intensive":
                op = node["op"]
                arg = refs[node["arg"]]
                if op == "Conv":
                    taps = builder.const(f"{name}_taps",
                                         value=list(node["taps"]), dtype=dtype)
                    refs[name] = builder.add_actor("Conv", name, arg, taps,
                                                   n=self.width,
                                                   m=len(node["taps"]))
                elif op in ("DCT", "IDCT", "FFT"):
                    refs[name] = builder.add_actor(op, name, arg, n=self.width)
                else:
                    raise ReproError(f"spec {self.name!r}: unsupported "
                                     f"intensive op {op!r}")
                consumed.add(node["arg"])
                terminal.add(name)
            else:
                raise ReproError(f"spec {self.name!r}: unknown node kind {kind!r}")

        for src, dst, dst_port in deferred:
            builder.connect(refs[src], refs[dst], dst_port)

        sinks = [node["name"] for node in self.nodes
                 if node["kind"] != "in" and (node["name"] not in consumed
                                              or node["name"] in terminal)]
        if not sinks:
            # Everything feeds a cycle through a delay; observe the last
            # non-inport node so the model still has a comparable output.
            candidates = [n["name"] for n in self.nodes if n["kind"] != "in"]
            sinks = candidates[-1:]
        if not sinks:  # inports only: observe the first inport directly
            sinks = [self.nodes[0]["name"]]
        for sink in sinks:
            builder.outport(f"y_{sink}", refs[sink])
        return builder.build()


@dataclasses.dataclass
class ReproCase:
    """One (model, ISA, input) failure, minimized or not."""

    spec: ModelSpec
    arch: str
    seed: int
    generators: Tuple[str, ...] = ("hcg",)
    isa_names: Optional[Tuple[str, ...]] = None
    faults: Tuple[str, ...] = ()
    steps: int = 2
    mismatches: Tuple[Dict[str, Any], ...] = ()
    shrink: Optional[Dict[str, Any]] = None

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": CASE_SCHEMA_VERSION,
            "kind": "REPRO_verify",
            "arch": self.arch,
            "seed": self.seed,
            "generators": list(self.generators),
            "isa_names": None if self.isa_names is None else list(self.isa_names),
            "faults": list(self.faults),
            "steps": self.steps,
            "model": self.spec.to_dict(),
            "mismatches": [dict(m) for m in self.mismatches],
            "shrink": dict(self.shrink) if self.shrink else None,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ReproCase":
        schema = payload.get("schema")
        if schema != CASE_SCHEMA_VERSION:
            raise ReproError(
                f"repro case schema {schema!r} != {CASE_SCHEMA_VERSION}"
            )
        isa_names = payload.get("isa_names")
        return cls(
            spec=ModelSpec.from_dict(payload["model"]),
            arch=str(payload["arch"]),
            seed=int(payload.get("seed", 0)),
            generators=tuple(payload.get("generators", ("hcg",))),
            isa_names=None if isa_names is None else tuple(isa_names),
            faults=tuple(payload.get("faults", ())),
            steps=int(payload.get("steps", 2)),
            mismatches=tuple(dict(m) for m in payload.get("mismatches", ())),
            shrink=payload.get("shrink"),
        )

    # ------------------------------------------------------------------
    def save(self, directory: Union[str, Path]) -> Path:
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"repro_{self.arch}_{self.spec.name}.json"
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True,
                                   allow_nan=False) + "\n")
        return path

    def replay(self, tracer=None):
        """Re-run the differential check this case records.

        Returns the fresh :class:`~repro.verify.runner.VerifyReport`; a
        fixed bug replays clean, an open one reproduces its mismatches.
        """
        from repro.verify.runner import replay_case

        return replay_case(self, tracer=tracer)


def load_case(path: Union[str, Path]) -> ReproCase:
    """Read one repro-case JSON file."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise ReproError(f"cannot read repro case {path}: {exc}") from exc
    return ReproCase.from_dict(payload)


def load_corpus(directory: Union[str, Path]) -> List[Tuple[Path, ReproCase]]:
    """Every ``*.json`` repro case under a corpus directory, sorted."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return [(path, load_case(path)) for path in sorted(directory.glob("*.json"))]
