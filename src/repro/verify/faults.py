"""Test-only fault injection for exercising the differential verifier.

The translation-validation subsystem (docs/verification.md) needs a way
to *prove* it catches real miscompiles: a fault that makes the pipeline
silently emit wrong code, without raising — a raised exception would be
gracefully demoted by the fault-isolation lattice (HCG201) and the
scalar fallback would still be correct.

This module keeps a process-global set of active fault names that a few
deliberately-placed hooks in the code generators consult.  Production
runs never install a fault; the registry exists so ``tests/verify`` and
``repro verify --inject-fault`` can demonstrate end-to-end that an
injected mapping bug is detected by the runner and minimized by the
shrinker.

Known faults
------------
``skip_remainder``
    Algorithm 2 drops the scalar remainder prologue, so the leading
    ``length % batch_size`` elements of every vectorised batch group
    are never computed — exactly the SimdBench-style edge-length bug
    class the verifier targets.  Harmless when every signal width is a
    multiple of the vector width, which is why naive testing misses it.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Tuple

#: every fault name a hook may consult; installs of unknown names fail
#: fast so a typo cannot silently disable an intended fault
KNOWN_FAULTS: Tuple[str, ...] = ("skip_remainder",)

_active: FrozenSet[str] = frozenset()


def install(*names: str) -> None:
    """Activate the named faults (process-global, additive)."""
    global _active
    for name in names:
        if name not in KNOWN_FAULTS:
            raise ValueError(f"unknown fault {name!r}; known: {KNOWN_FAULTS}")
    _active = _active | frozenset(names)


def clear() -> None:
    """Deactivate every fault (call from test teardown)."""
    global _active
    _active = frozenset()


def active(name: str) -> bool:
    """Is this fault currently installed? Hooks call this lazily."""
    return name in _active


def active_faults() -> Tuple[str, ...]:
    """The currently-installed fault names, sorted (for repro cases)."""
    return tuple(sorted(_active))


class injected:
    """Context manager installing faults for one ``with`` block::

        with injected("skip_remainder"):
            program = generator.generate(model)   # miscompiles
    """

    def __init__(self, *names: str) -> None:
        self.names = names

    def __enter__(self) -> "injected":
        install(*self.names)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        global _active
        _active = _active - frozenset(self.names)
        return False


def install_many(names: Iterable[str]) -> None:
    """Install from an iterable (CLI convenience)."""
    install(*tuple(names))
