"""The adversarial input battery for differential verification.

A battery is a list of named :class:`InputCase` instances, each giving
every inport of a model a value for ``steps`` consecutive steps.  The
cases are chosen to hit the classes of miscompile SimdBench documents
for SIMD code generators:

* ``zeros`` / ``ones`` — degenerate values that hide dropped terms;
* ``random`` / ``random_wide`` — seeded pseudo-random data, moderate
  and full-range magnitudes;
* ``boundary`` — dtype extremes (INT_MIN/INT_MAX, float max/lowest,
  denormal-adjacent tiny values) tiled across the signal;
* ``special`` — NaN / +-Inf / signed zeros, float models only;
* ``ctrl_low`` / ``ctrl_high`` — scalar (control) inports driven to
  either side of typical Switch thresholds so both branches execute.

Models containing intensive computing actors (FFT, DCT, Conv, ...) get
only the moderate cases: their kernels are compared under a relative
tolerance, and extreme magnitudes or non-finite values produce *honest*
float divergence between a radix-2 kernel and the numpy reference —
that is numerical error, not a translation bug (docs/verification.md
discusses the distinction).

Everything is deterministic in ``seed``, so a failing (model, ISA,
input) triple replays bit-for-bit from a repro case.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

import numpy as np

from repro.dtypes import DataType
from repro.model.actor_defs import ActorKind
from repro.model.graph import Model

#: one step's worth of inputs: inport name -> value
StepInputs = Dict[str, np.ndarray]


@dataclasses.dataclass(frozen=True)
class InputCase:
    """One named adversarial assignment, over several steps."""

    name: str
    steps: Tuple[StepInputs, ...]


def _boundary_values(dtype: DataType) -> List[float]:
    np_dtype = dtype.numpy_dtype
    if dtype.is_float:
        info = np.finfo(np_dtype)
        return [0.0, -0.0, 1.0, -1.0, float(info.max), float(info.min),
                float(info.tiny), -float(info.tiny), 0.5, -0.5]
    info = np.iinfo(np_dtype)
    values = [0, 1, info.max, info.min, info.max - 1, info.min + 1]
    if info.min < 0:
        values.append(-1)
    return values


def _special_values(dtype: DataType) -> List[float]:
    info = np.finfo(dtype.numpy_dtype)
    return [float("nan"), float("inf"), float("-inf"), 0.0, -0.0,
            float(info.max), 1.0]


def _tile(values: List[float], shape: Tuple[int, ...], dtype: DataType,
          rotate: int = 0) -> np.ndarray:
    """Cycle ``values`` across an array of ``shape`` (scalar-safe)."""
    size = int(np.prod(shape)) if shape else 1
    cycled = [values[(i + rotate) % len(values)] for i in range(size)]
    array = np.array(cycled, dtype=dtype.numpy_dtype)
    return array.reshape(shape) if shape else array.reshape(())


def _random_value(rng: np.random.Generator, dtype: DataType,
                  shape: Tuple[int, ...], wide: bool) -> np.ndarray:
    np_dtype = dtype.numpy_dtype
    if dtype.is_float:
        if wide:
            mantissa = rng.uniform(-1.0, 1.0, size=shape or ())
            exponent = rng.integers(-18, 19, size=shape or ())
            value = mantissa * np.power(10.0, exponent)
        else:
            value = rng.uniform(-1000.0, 1000.0, size=shape or ())
        return value.astype(np_dtype)
    info = np.iinfo(np_dtype)
    if wide:
        return rng.integers(info.min, info.max, size=shape or (),
                            dtype=np_dtype, endpoint=True)
    lo = max(-1000, info.min)
    hi = min(1000, info.max)
    return rng.integers(lo, hi, size=shape or (), dtype=np.int64,
                        endpoint=True).astype(np_dtype)


def _ctrl_level(dtype: DataType, high: bool) -> np.ndarray:
    """A scalar driving a Switch ctrl clearly above/below any plausible
    threshold, clamped to the dtype's range."""
    if dtype.is_float:
        return np.asarray(1000.0 if high else -1000.0,
                          dtype=dtype.numpy_dtype)
    info = np.iinfo(dtype.numpy_dtype)
    level = min(1000, info.max) if high else max(-1000, info.min)
    return np.asarray(level, dtype=dtype.numpy_dtype)


def has_intensive(model: Model) -> bool:
    """Does the model contain any intensive computing actor?"""
    return bool(model.actors_of_kind(ActorKind.INTENSIVE))


def _scalar_inports(model: Model) -> List[str]:
    return [a.name for a in model.inports if not a.output("out").shape]


def input_battery(model: Model, seed: int = 0, steps: int = 2) -> List[InputCase]:
    """The full adversarial battery for one model, seeded."""
    rng = np.random.default_rng(seed)
    intensive = has_intensive(model)
    scalars = set(_scalar_inports(model))
    inports = [(a.name, a.output("out").dtype, a.output("out").shape)
               for a in model.inports]
    float_model = any(dtype.is_float for _, dtype, _ in inports)

    def assign(kind: str, step: int) -> StepInputs:
        values: StepInputs = {}
        for name, dtype, shape in inports:
            if kind == "zeros":
                values[name] = np.zeros(shape or (), dtype=dtype.numpy_dtype)
            elif kind == "ones":
                values[name] = np.ones(shape or (), dtype=dtype.numpy_dtype)
            elif kind == "boundary":
                values[name] = _tile(_boundary_values(dtype), shape, dtype,
                                     rotate=step)
            elif kind == "special":
                if dtype.is_float:
                    values[name] = _tile(_special_values(dtype), shape, dtype,
                                         rotate=step)
                else:
                    values[name] = _tile(_boundary_values(dtype), shape, dtype,
                                         rotate=step)
            elif kind == "random_wide":
                values[name] = _random_value(rng, dtype, shape, wide=True)
            else:  # random
                values[name] = _random_value(rng, dtype, shape, wide=False)
        return values

    def case(name: str, kind: str) -> InputCase:
        return InputCase(name, tuple(assign(kind, s) for s in range(steps)))

    cases = [case("zeros", "zeros"), case("ones", "ones"),
             case("random", "random")]
    if not intensive:
        cases.append(case("random_wide", "random_wide"))
        cases.append(case("boundary", "boundary"))
        if float_model:
            cases.append(case("special", "special"))
    if scalars:
        # Drive every scalar inport to both sides of a Switch threshold,
        # with random data elsewhere, so both branches are compared.
        for kind in ("ctrl_low", "ctrl_high"):
            steps_values = []
            for step in range(steps):
                values = assign("random", step)
                for name, dtype, shape in inports:
                    if name in scalars:
                        values[name] = _ctrl_level(dtype, kind == "ctrl_high")
                steps_values.append(values)
            cases.append(InputCase(kind, tuple(steps_values)))
    return cases
