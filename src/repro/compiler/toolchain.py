"""Compiler presets: GCC and Clang as pass pipelines + cost tweaks.

The two compilers the paper evaluates differ, for our purposes, in:

* whether they forward scattered vector stores to later vector loads
  (Clang: yes; GCC: no — §4.2's explanation of Fig. 5(b));
* minor scalar scheduling / loop bookkeeping differences.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Tuple

from repro.arch.arch import Architecture
from repro.arch.cost import CostTable
from repro.compiler.passes import PassConfig, optimize_program
from repro.ir.program import Program


@dataclasses.dataclass(frozen=True)
class Compiler:
    """A C toolchain: optimization passes plus cost-table adjustments."""

    name: str
    passes: PassConfig
    #: multiplier on per-iteration loop bookkeeping cost
    loop_overhead_factor: float = 1.0
    #: multiplier on scalar ALU costs (instruction scheduling quality)
    scalar_factor: float = 1.0
    #: multiplier on SIMD op costs
    simd_factor: float = 1.0

    def compile(self, program: Program) -> Program:
        """Optimize a generated program the way this compiler would."""
        return optimize_program(program, self.passes)

    def effective_cost(self, arch: Architecture) -> CostTable:
        """The architecture cost table adjusted for this compiler."""
        base = arch.cost
        overrides = {
            op: cycles * self.scalar_factor
            for op, cycles in base.scalar_overrides.items()
        }
        return dataclasses.replace(
            base,
            scalar_scale=base.scalar_scale * self.scalar_factor,
            scalar_overrides=overrides,
            simd_scale=base.simd_scale * self.simd_factor,
            loop_overhead=base.loop_overhead * self.loop_overhead_factor,
        )


GCC = Compiler(
    name="gcc",
    passes=PassConfig(
        fold_constants=True,
        scalar_forwarding=True,
        vector_forwarding=False,   # cannot keep scattered SIMD in registers
        vector_dse=False,
    ),
    loop_overhead_factor=1.0,
    scalar_factor=1.0,
    simd_factor=1.0,
)

CLANG = Compiler(
    name="clang",
    passes=PassConfig(
        fold_constants=True,
        scalar_forwarding=True,
        vector_forwarding=True,    # organizes scattered SIMD together
        vector_dse=False,          # cannot prove no-alias for signal buffers
    ),
    loop_overhead_factor=0.85,
    scalar_factor=0.97,
    simd_factor=1.0,
)

#: An idealised compiler for ablations: every pass enabled.
PERFECT = Compiler(
    name="perfect",
    passes=PassConfig(
        fold_constants=True,
        scalar_forwarding=True,
        licm=True,
        unswitch=True,
        vector_forwarding=True,
        vector_dse=True,
    ),
    loop_overhead_factor=0.8,
    scalar_factor=0.95,
)

_PRESETS: Dict[str, Compiler] = {c.name: c for c in (GCC, CLANG, PERFECT)}


def get_compiler(name: str) -> Compiler:
    try:
        return _PRESETS[name]
    except KeyError:
        raise KeyError(f"unknown compiler {name!r}; presets: {sorted(_PRESETS)}") from None


def compiler_names() -> Tuple[str, ...]:
    return tuple(sorted(_PRESETS))
