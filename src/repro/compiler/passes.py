"""Compiler optimization passes over the IR.

The paper's evaluation (§4.2) hinges on what the C compiler does with
the generated code: GCC "cannot organize these [scattered Intel SIMD]
instructions together, which results in frequent data exchange between
memory and vector registers", whereas Clang does better.  We model the
compilers as pass pipelines over the IR:

* **constant folding** — fold constant scalar expressions;
* **scalar store-load forwarding** — inside one straight-line block, a
  load from a location just stored is replaced by the stored value;
* **vector store-load forwarding** — the same for SIMD load/store
  (Clang: on; GCC: off — the Fig. 5(b) mechanism);
* **vector dead-store elimination** — drop SIMD stores to local scratch
  buffers that are never read again (needs alias analysis; off for both
  by default, on for the idealised "perfect compiler" ablation).

Passes are semantics-preserving: every transformed program must produce
the same outputs (tested property-style in ``tests/compiler``).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ir.expr import Cmp, Const, Expr, Load, ScalarOp, Select, Var
from repro.ir.program import Program
from repro.ir.stmt import (
    AssignVar,
    CopyBuffer,
    For,
    If,
    KernelCall,
    SimdBroadcast,
    SimdLoad,
    SimdOp,
    SimdStore,
    Stmt,
    Store,
)
from repro.ir.types import BufferKind
from repro import ops


@dataclasses.dataclass(frozen=True)
class PassConfig:
    """Which optimizations a compiler performs on the generated code."""

    fold_constants: bool = True
    scalar_forwarding: bool = True
    #: hoist loop-invariant constant-index loads out of loops
    licm: bool = True
    #: pull loop-invariant select conditions out of loops (-O3)
    unswitch: bool = True
    vector_forwarding: bool = False
    vector_dse: bool = False


# ---------------------------------------------------------------------------
# Expression helpers
# ---------------------------------------------------------------------------

def fold_expr(expr: Expr) -> Expr:
    """Recursively fold constant sub-expressions."""
    if isinstance(expr, ScalarOp):
        args = tuple(fold_expr(a) for a in expr.args)
        if all(isinstance(a, Const) for a in args):
            import numpy as np

            values = [np.asarray(a.value, dtype=expr.dtype.numpy_dtype) for a in args]
            if expr.op == "Cast":
                values = [np.asarray(args[0].value)]
            try:
                result = ops.apply_op(expr.op, expr.dtype, values, expr.imm)
            except (ValueError, ZeroDivisionError):
                return ScalarOp(expr.op, args, expr.dtype, expr.imm)
            scalar = result.item() if hasattr(result, "item") else result
            return Const(scalar, expr.dtype)
        return ScalarOp(expr.op, args, expr.dtype, expr.imm)
    if isinstance(expr, Load):
        return Load(expr.buffer, fold_expr(expr.index))
    if isinstance(expr, Cmp):
        return Cmp(expr.op, fold_expr(expr.lhs), fold_expr(expr.rhs))
    if isinstance(expr, Select):
        return Select(fold_expr(expr.cond), fold_expr(expr.if_true), fold_expr(expr.if_false))
    return expr


def _map_exprs(stmt: Stmt, fn) -> Stmt:
    """Rebuild a statement with ``fn`` applied to its scalar expressions."""
    if isinstance(stmt, AssignVar):
        return AssignVar(stmt.name, fn(stmt.expr), stmt.dtype)
    if isinstance(stmt, Store):
        return Store(stmt.buffer, fn(stmt.index), fn(stmt.expr))
    if isinstance(stmt, For):
        return For(stmt.var, fn(stmt.start), fn(stmt.stop), stmt.step,
                   tuple(_map_exprs(s, fn) for s in stmt.body))
    if isinstance(stmt, If):
        return If(fn(stmt.cond),
                  tuple(_map_exprs(s, fn) for s in stmt.then_body),
                  tuple(_map_exprs(s, fn) for s in stmt.else_body))
    if isinstance(stmt, SimdLoad):
        return SimdLoad(stmt.dest, stmt.buffer, fn(stmt.index), stmt.dtype,
                        stmt.lanes, stmt.vl)
    if isinstance(stmt, SimdStore):
        return SimdStore(stmt.buffer, fn(stmt.index), stmt.src, stmt.dtype,
                         stmt.lanes, stmt.vl)
    if isinstance(stmt, SimdBroadcast):
        return SimdBroadcast(stmt.dest, fn(stmt.scalar), stmt.dtype, stmt.lanes)
    if isinstance(stmt, CopyBuffer):
        return CopyBuffer(stmt.dst, fn(stmt.dst_offset), stmt.src, fn(stmt.src_offset), stmt.count)
    return stmt


def constant_folding(body: Sequence[Stmt]) -> List[Stmt]:
    return [_map_exprs(stmt, fold_expr) for stmt in body]


# ---------------------------------------------------------------------------
# Store-load forwarding
# ---------------------------------------------------------------------------

def _loads_in(expr: Expr) -> List[Load]:
    found: List[Load] = []
    if isinstance(expr, Load):
        found.append(expr)
    for child in expr.children():
        found.extend(_loads_in(child))
    return found


def _replace_load(expr: Expr, key: Tuple[str, Expr], replacement: Expr) -> Expr:
    if isinstance(expr, Load) and (expr.buffer, expr.index) == key:
        return replacement
    if isinstance(expr, ScalarOp):
        return ScalarOp(
            expr.op,
            tuple(_replace_load(a, key, replacement) for a in expr.args),
            expr.dtype,
            expr.imm,
        )
    if isinstance(expr, Cmp):
        return Cmp(expr.op, _replace_load(expr.lhs, key, replacement),
                   _replace_load(expr.rhs, key, replacement))
    if isinstance(expr, Select):
        return Select(
            _replace_load(expr.cond, key, replacement),
            _replace_load(expr.if_true, key, replacement),
            _replace_load(expr.if_false, key, replacement),
        )
    return expr


def _expr_reads_var(expr: Expr, name: str) -> bool:
    if isinstance(expr, Var) and expr.name == name:
        return True
    return any(_expr_reads_var(c, name) for c in expr.children())


def scalar_forwarding(body: Sequence[Stmt]) -> List[Stmt]:
    """Forward scalar stores to later loads inside each straight-line block.

    Only stores of *cheap* expressions (variables, constants) are
    forwarded, matching what a compiler does without rematerialisation.
    Invalidations are conservative: any store to the same buffer kills
    the recorded value; assigning a variable kills values that read it.
    """
    out: List[Stmt] = []
    available: Dict[Tuple[str, Expr], Expr] = {}

    def forward(expr: Expr) -> Expr:
        result = expr
        for key, value in available.items():
            result = _replace_load(result, key, value)
        return result

    for stmt in body:
        if isinstance(stmt, (For, If)):
            # Recurse into nested blocks with a fresh window; a block
            # boundary invalidates everything (the compiler cannot know
            # iteration counts in general).
            if isinstance(stmt, For):
                new_stmt: Stmt = For(stmt.var, stmt.start, stmt.stop, stmt.step,
                                     tuple(scalar_forwarding(stmt.body)))
            else:
                new_stmt = If(forward(stmt.cond),
                              tuple(scalar_forwarding(stmt.then_body)),
                              tuple(scalar_forwarding(stmt.else_body)))
            available.clear()
            out.append(new_stmt)
            continue

        stmt = _map_exprs(stmt, forward)

        if isinstance(stmt, Store):
            # Invalidate previous knowledge about this buffer.
            for key in [k for k in available if k[0] == stmt.buffer]:
                del available[key]
            if isinstance(stmt.expr, (Var, Const)):
                available[(stmt.buffer, stmt.index)] = stmt.expr
        elif isinstance(stmt, AssignVar):
            # A reassigned variable invalidates forwarded values using it.
            for key in [
                k for k, v in available.items()
                if _expr_reads_var(v, stmt.name)
                or _expr_reads_var(k[1], stmt.name)
            ]:
                del available[key]
        elif isinstance(stmt, (SimdStore, CopyBuffer, KernelCall)):
            # Conservative: vector/bulk writes invalidate scalar knowledge
            # of the touched buffers.
            touched = set()
            if isinstance(stmt, SimdStore):
                touched.add(stmt.buffer)
            elif isinstance(stmt, CopyBuffer):
                touched.add(stmt.dst)
            else:
                touched.update(stmt.outputs)
            for key in [k for k in available if k[0] in touched]:
                del available[key]

        out.append(stmt)
    return out


def vector_forwarding(body: Sequence[Stmt]) -> List[Stmt]:
    """Forward SIMD stores to later SIMD loads inside straight-line blocks.

    ``vst1q(&buf[i], r); ... x = vld1q(&buf[i]);`` becomes a register
    copy: the load is removed and ``x`` is renamed to ``r`` downstream.
    This is the pass GCC lacks for scattered vendor intrinsics in the
    paper's Fig. 5(b) observation.
    """

    def run_block(block: Sequence[Stmt]) -> List[Stmt]:
        out: List[Stmt] = []
        stored: Dict[Tuple[str, Expr, Optional[int]], str] = {}
        rename: Dict[str, str] = {}

        def resolve(name: str) -> str:
            seen = set()
            while name in rename and name not in seen:
                seen.add(name)
                name = rename[name]
            return name

        for stmt in block:
            if isinstance(stmt, For):
                out.append(For(stmt.var, stmt.start, stmt.stop, stmt.step,
                               tuple(run_block(stmt.body))))
                stored.clear()
                continue
            if isinstance(stmt, If):
                out.append(If(stmt.cond, tuple(run_block(stmt.then_body)),
                              tuple(run_block(stmt.else_body))))
                stored.clear()
                continue

            if isinstance(stmt, SimdOp):
                stmt = SimdOp(stmt.dest, stmt.instruction,
                              tuple(resolve(a) for a in stmt.args),
                              stmt.dtype, stmt.lanes, stmt.imm, stmt.vl)
                # Writing a register invalidates stored records built on it
                # (registers are single-assignment in generated code, but
                # stay safe under reuse).
                for key in [k for k, v in stored.items() if resolve(v) == stmt.dest]:
                    del stored[key]
                out.append(stmt)
                continue

            if isinstance(stmt, SimdStore):
                src = resolve(stmt.src)
                stmt = SimdStore(stmt.buffer, stmt.index, src, stmt.dtype,
                                 stmt.lanes, stmt.vl)
                for key in [k for k in stored if k[0] == stmt.buffer]:
                    del stored[key]
                # vl is part of the key: a masked store must never
                # forward to a full-width load (register shapes differ).
                stored[(stmt.buffer, stmt.index, stmt.vl)] = src
                out.append(stmt)
                continue

            if isinstance(stmt, SimdLoad):
                key = (stmt.buffer, stmt.index, stmt.vl)
                if key in stored:
                    rename[stmt.dest] = stored[key]
                    continue  # load eliminated
                out.append(stmt)
                continue

            if isinstance(stmt, (Store, CopyBuffer, KernelCall)):
                touched = set()
                if isinstance(stmt, Store):
                    touched.add(stmt.buffer)
                elif isinstance(stmt, CopyBuffer):
                    touched.add(stmt.dst)
                else:
                    touched.update(stmt.outputs)
                for key in [k for k in stored if k[0] in touched]:
                    del stored[key]
            out.append(stmt)
        return out

    return run_block(body)


# ---------------------------------------------------------------------------
# Loop-invariant code motion
# ---------------------------------------------------------------------------

def _written_buffer_names(block: Sequence[Stmt]) -> set:
    from repro.ir.stmt import walk

    written = set()
    for stmt in walk(list(block)):
        if isinstance(stmt, Store):
            written.add(stmt.buffer)
        elif isinstance(stmt, SimdStore):
            written.add(stmt.buffer)
        elif isinstance(stmt, CopyBuffer):
            written.add(stmt.dst)
        elif isinstance(stmt, KernelCall):
            written.update(stmt.outputs)
    return written


def loop_invariant_code_motion(program: Program, body: Sequence[Stmt]) -> List[Stmt]:
    """Hoist constant-index loads of loop-unmodified buffers out of loops.

    ``ctrl[0]`` read inside a 1024-iteration select loop becomes one
    load before the loop — every real compiler does this at -O2.
    """
    counter = [0]

    def fresh() -> str:
        counter[0] += 1
        return f"licm_{counter[0]}"

    def hoist_in(expr: Expr, written: set, hoisted: Dict[Tuple[str, object], Tuple[str, Expr]]) -> Expr:
        if isinstance(expr, Load) and isinstance(expr.index, Const) and expr.buffer not in written:
            key = (expr.buffer, expr.index.value)
            if key not in hoisted:
                hoisted[key] = (fresh(), expr)
            return Var(hoisted[key][0])
        if isinstance(expr, ScalarOp):
            return ScalarOp(
                expr.op,
                tuple(hoist_in(a, written, hoisted) for a in expr.args),
                expr.dtype, expr.imm,
            )
        if isinstance(expr, Cmp):
            return Cmp(expr.op, hoist_in(expr.lhs, written, hoisted),
                       hoist_in(expr.rhs, written, hoisted))
        if isinstance(expr, Select):
            return Select(
                hoist_in(expr.cond, written, hoisted),
                hoist_in(expr.if_true, written, hoisted),
                hoist_in(expr.if_false, written, hoisted),
            )
        if isinstance(expr, Load):
            return Load(expr.buffer, hoist_in(expr.index, written, hoisted))
        return expr

    def run_block(block: Sequence[Stmt]) -> List[Stmt]:
        out: List[Stmt] = []
        for stmt in block:
            if isinstance(stmt, If):
                out.append(If(stmt.cond, tuple(run_block(stmt.then_body)),
                              tuple(run_block(stmt.else_body))))
                continue
            if not isinstance(stmt, For):
                out.append(stmt)
                continue
            inner = run_block(stmt.body)
            written = _written_buffer_names(inner)
            hoisted: Dict[Tuple[str, object], Tuple[str, Expr]] = {}
            new_body = [
                _map_exprs(s, lambda e: hoist_in(e, written, hoisted)) for s in inner
            ]
            for name, load in hoisted.values():
                dtype = program.buffer(load.buffer).dtype
                out.append(AssignVar(name, load, dtype))
            out.append(For(stmt.var, stmt.start, stmt.stop, stmt.step, tuple(new_body)))
        return out

    return run_block(list(body))


# ---------------------------------------------------------------------------
# Loop unswitching
# ---------------------------------------------------------------------------

def _expr_vars(expr: Expr) -> set:
    names = set()
    if isinstance(expr, Var):
        names.add(expr.name)
    for child in expr.children():
        names |= _expr_vars(child)
    return names


def _expr_load_buffers(expr: Expr) -> set:
    return {load.buffer for load in _loads_in(expr)}


def _resolve_selects(expr: Expr, cond: Expr, take_true: bool) -> Expr:
    if isinstance(expr, Select) and expr.cond == cond:
        chosen = expr.if_true if take_true else expr.if_false
        return _resolve_selects(chosen, cond, take_true)
    if isinstance(expr, ScalarOp):
        return ScalarOp(expr.op,
                        tuple(_resolve_selects(a, cond, take_true) for a in expr.args),
                        expr.dtype, expr.imm)
    if isinstance(expr, Select):
        return Select(_resolve_selects(expr.cond, cond, take_true),
                      _resolve_selects(expr.if_true, cond, take_true),
                      _resolve_selects(expr.if_false, cond, take_true))
    if isinstance(expr, Cmp):
        return Cmp(expr.op, _resolve_selects(expr.lhs, cond, take_true),
                   _resolve_selects(expr.rhs, cond, take_true))
    if isinstance(expr, Load):
        return Load(expr.buffer, _resolve_selects(expr.index, cond, take_true))
    return expr


def _find_invariant_select_cond(loop: For) -> Optional[Expr]:
    """The condition of a Select in the loop body that cannot change
    across iterations, if any."""
    assigned = {loop.var}
    from repro.ir.stmt import walk

    for stmt in walk(list(loop.body)):
        if isinstance(stmt, AssignVar):
            assigned.add(stmt.name)
        elif isinstance(stmt, For):
            assigned.add(stmt.var)
    written = _written_buffer_names(loop.body)

    def selects_in(expr: Expr) -> List[Select]:
        found = [expr] if isinstance(expr, Select) else []
        for child in expr.children():
            found.extend(selects_in(child))
        return found

    for stmt in walk(list(loop.body)):
        exprs: List[Expr] = []
        if isinstance(stmt, Store):
            exprs = [stmt.expr, stmt.index]
        elif isinstance(stmt, AssignVar):
            exprs = [stmt.expr]
        for expr in exprs:
            for select in selects_in(expr):
                cond = select.cond
                if _expr_vars(cond) & assigned:
                    continue
                if _expr_load_buffers(cond) & written:
                    continue
                return cond
    return None


def loop_unswitching(body: Sequence[Stmt]) -> List[Stmt]:
    """Pull loop-invariant select conditions out of loops.

    ``for i: out[i] = c ? a[i] : b[i]`` with ``c`` invariant becomes
    ``if (c) for i: out[i] = a[i]; else for i: out[i] = b[i];`` — a
    standard -O3 transformation on both GCC and Clang, and the reason a
    scalar Switch over an array does not cost a branch per element.
    """

    def run_block(block: Sequence[Stmt]) -> List[Stmt]:
        out: List[Stmt] = []
        for stmt in block:
            if isinstance(stmt, If):
                out.append(If(stmt.cond, tuple(run_block(stmt.then_body)),
                              tuple(run_block(stmt.else_body))))
                continue
            if not isinstance(stmt, For):
                out.append(stmt)
                continue
            loop = For(stmt.var, stmt.start, stmt.stop, stmt.step,
                       tuple(run_block(stmt.body)))
            cond = _find_invariant_select_cond(loop)
            if cond is None:
                out.append(loop)
                continue
            then_loop = For(loop.var, loop.start, loop.stop, loop.step,
                            tuple(_map_exprs(s, lambda e: _resolve_selects(e, cond, True))
                                  for s in loop.body))
            else_loop = For(loop.var, loop.start, loop.stop, loop.step,
                            tuple(_map_exprs(s, lambda e: _resolve_selects(e, cond, False))
                                  for s in loop.body))
            unswitched = If(cond, tuple(run_block([then_loop])), tuple(run_block([else_loop])))
            out.append(unswitched)
        return out

    return run_block(list(body))


# ---------------------------------------------------------------------------
# Dead store elimination
# ---------------------------------------------------------------------------

def _buffers_read(body: Sequence[Stmt]) -> set:
    read = set()
    from repro.ir.stmt import walk

    def scan_expr(expr: Expr) -> None:
        for load in _loads_in(expr):
            read.add(load.buffer)

    for stmt in walk(list(body)):
        if isinstance(stmt, AssignVar):
            scan_expr(stmt.expr)
        elif isinstance(stmt, Store):
            scan_expr(stmt.index)
            scan_expr(stmt.expr)
        elif isinstance(stmt, SimdLoad):
            read.add(stmt.buffer)
            scan_expr(stmt.index)
        elif isinstance(stmt, SimdStore):
            scan_expr(stmt.index)
        elif isinstance(stmt, SimdBroadcast):
            scan_expr(stmt.scalar)
        elif isinstance(stmt, If):
            scan_expr(stmt.cond)
        elif isinstance(stmt, For):
            scan_expr(stmt.start)
            scan_expr(stmt.stop)
        elif isinstance(stmt, KernelCall):
            read.update(stmt.inputs)
        elif isinstance(stmt, CopyBuffer):
            read.add(stmt.src)
            scan_expr(stmt.src_offset)
            scan_expr(stmt.dst_offset)
    return read


def vector_dse(program: Program) -> List[Stmt]:
    """Drop SIMD stores into LOCAL buffers that no statement ever reads."""
    read = _buffers_read(program.body)
    local_names = {b.name for b in program.buffers if b.kind is BufferKind.LOCAL}
    dead = local_names - read

    def run_block(block: Sequence[Stmt]) -> List[Stmt]:
        out: List[Stmt] = []
        for stmt in block:
            if isinstance(stmt, SimdStore) and stmt.buffer in dead:
                continue
            if isinstance(stmt, For):
                out.append(For(stmt.var, stmt.start, stmt.stop, stmt.step,
                               tuple(run_block(stmt.body))))
                continue
            if isinstance(stmt, If):
                out.append(If(stmt.cond, tuple(run_block(stmt.then_body)),
                              tuple(run_block(stmt.else_body))))
                continue
            out.append(stmt)
        return out

    return run_block(program.body)


# ---------------------------------------------------------------------------
# Pipeline
# ---------------------------------------------------------------------------

def optimize_program(program: Program, config: PassConfig) -> Program:
    """Apply the configured passes, returning a new program."""
    body: List[Stmt] = list(program.body)
    if config.fold_constants:
        body = constant_folding(body)
    if config.scalar_forwarding:
        body = scalar_forwarding(body)
    if config.licm:
        body = loop_invariant_code_motion(program, body)
    if config.unswitch:
        body = loop_unswitching(body)
    if config.vector_forwarding:
        body = vector_forwarding(body)
    result = Program(
        name=program.name,
        buffers=list(program.buffers),
        body=body,
        generator=program.generator,
        arch=program.arch,
    )
    if config.vector_dse:
        result.body = vector_dse(result)
    return result
