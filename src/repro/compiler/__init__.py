"""The C-compiler model: optimization passes and GCC/Clang presets."""

from repro.compiler.passes import (
    PassConfig,
    constant_folding,
    optimize_program,
    scalar_forwarding,
    vector_dse,
    vector_forwarding,
)
from repro.compiler.toolchain import (
    CLANG,
    GCC,
    PERFECT,
    Compiler,
    compiler_names,
    get_compiler,
)

__all__ = [
    "CLANG",
    "Compiler",
    "GCC",
    "PERFECT",
    "PassConfig",
    "compiler_names",
    "constant_folding",
    "get_compiler",
    "optimize_program",
    "scalar_forwarding",
    "vector_dse",
    "vector_forwarding",
]
