"""Branch-region analysis (the DFSynth substrate).

DFSynth's contribution is well-structured control flow: actors whose
results are only needed on one side of a ``Switch`` are computed inside
that branch, not unconditionally.  This module finds, for each Switch
data input, the set of elementwise actors that *exclusively* feed it —
every consumer path from the actor ends at that one Switch port (or at
another member of the region).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Set, Tuple

from repro.model.actor_defs import ActorKind, actor_def
from repro.model.graph import Model

#: actor types that may move into a branch (pure, bufferless compute;
#: Switches may nest, giving structured nested control flow)
_MOVABLE_KINDS = (ActorKind.ELEMENTWISE,)
_MOVABLE_EXTRA = frozenset({"Gain", "Switch"})


@dataclasses.dataclass(frozen=True)
class BranchRegion:
    """Actors computed only when one side of a Switch is taken."""

    switch: str
    port: str                 # "in1" (then) or "in2" (else)
    members: Tuple[str, ...]  # in schedule-compatible (model) order


def _movable(model: Model, actor_name: str) -> bool:
    actor = model.actor(actor_name)
    defn = actor_def(actor.actor_type)
    return defn.kind in _MOVABLE_KINDS or actor.actor_type in _MOVABLE_EXTRA


def find_branch_regions(model: Model) -> List[BranchRegion]:
    """All single-level exclusive branch regions in the model.

    An actor joins the region of ``switch.port`` when every one of its
    output connections goes either to that port or to another region
    member.  Actors feeding both sides (or anything else) stay outside.
    Regions of different switches are disjoint by construction: an actor
    exclusively feeding two different switches is impossible.
    """
    regions: List[BranchRegion] = []
    claimed: Set[str] = set()

    # Model order processes upstream (inner) switches first: an inner
    # switch claims its exclusive feeders, then a downstream switch may
    # claim the inner switch itself — giving nested structured code.
    for actor in model.actors:
        if actor.actor_type != "Switch":
            continue
        for port in ("in1", "in2"):
            members: Set[str] = set()
            changed = True
            while changed:
                changed = False
                for candidate in model.actors:
                    name = candidate.name
                    if name in members or name in claimed or not _movable(model, name):
                        continue
                    outgoing = [
                        c for c in model.connections if c.src_actor == name
                    ]
                    if not outgoing:
                        continue
                    ok = all(
                        (c.dst_actor == actor.name and c.dst_port == port)
                        or c.dst_actor in members
                        for c in outgoing
                    )
                    if ok:
                        members.add(name)
                        changed = True
            if members:
                order = [a.name for a in model.actors if a.name in members]
                regions.append(BranchRegion(actor.name, port, tuple(order)))
                claimed.update(members)
    return regions


def region_membership(regions: List[BranchRegion]) -> Dict[str, BranchRegion]:
    """Map actor name -> its (unique) region."""
    membership: Dict[str, BranchRegion] = {}
    for region in regions:
        for name in region.members:
            membership[name] = region
    return membership
