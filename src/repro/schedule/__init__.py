"""Schedule analysis for Simulink-like models."""

from repro.schedule.scheduler import Schedule, compute_schedule

__all__ = ["Schedule", "compute_schedule"]
