"""Schedule analysis: a deterministic topological execution order.

This is step ② of the generic code-generation pipeline the paper
describes (model parse → schedule analysis → code synthesis → code
composition).  All three generators share it.

``UnitDelay`` actors break same-step dependencies: their output is the
*previous* step's input, so within one step they behave as sources and
their state update is deferred to the end of the step.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

from repro.errors import ScheduleError
from repro.model.graph import Model


@dataclasses.dataclass(frozen=True)
class Schedule:
    """The execution order for one step of the model.

    ``order`` lists every actor exactly once in a valid same-step
    topological order; ``state_updates`` lists the stateful actors whose
    state must be committed after all fire code has run.
    """

    order: Tuple[str, ...]
    state_updates: Tuple[str, ...]

    def position(self, actor_name: str) -> int:
        """Index of an actor in the firing order."""
        return self.order.index(actor_name)


def compute_schedule(model: Model) -> Schedule:
    """Compute a deterministic topological schedule for ``model``.

    Kahn's algorithm with insertion-order tie-breaking, so the schedule —
    and therefore all generated code — is stable across runs.
    """
    names = [a.name for a in model.actors]
    indegree: Dict[str, int] = {n: 0 for n in names}
    adjacency: Dict[str, List[str]] = {n: [] for n in names}

    for connection in model.connections:
        dst = model.actor(connection.dst_actor)
        if dst.actor_type == "UnitDelay":
            continue  # delay input is consumed at end of step
        adjacency[connection.src_actor].append(connection.dst_actor)
        indegree[connection.dst_actor] += 1

    # Insertion-order priority queue: scan ``names`` for ready actors.
    ready = [n for n in names if indegree[n] == 0]
    order: List[str] = []
    while ready:
        node = ready.pop(0)
        order.append(node)
        freed = []
        for nxt in adjacency[node]:
            indegree[nxt] -= 1
            if indegree[nxt] == 0:
                freed.append(nxt)
        # Keep deterministic order: newly freed actors sorted by insertion.
        ready.extend(sorted(freed, key=names.index))
        ready.sort(key=names.index)

    if len(order) != len(names):
        stuck = sorted(set(names) - set(order))
        raise ScheduleError(
            f"model {model.name!r} has no valid schedule; actors in a cycle: {stuck}"
        )

    state_updates = tuple(
        a.name for a in model.actors if a.actor_type == "UnitDelay"
    )
    return Schedule(order=tuple(order), state_updates=state_updates)
