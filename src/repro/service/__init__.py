"""The parallel, cache-aware code-generation service.

``repro.service`` is the layer between the stable :mod:`repro.api`
facade and the three generators.  It adds, without changing what any
generator emits:

* **content-addressed caching** — :class:`CodegenCache` memoizes full
  generation results on disk keyed by ``(model digest, ISA digest,
  generator, options digest)``, and :class:`TimingCache` memoizes
  Algorithm 1 candidate pre-calculation timings on top of the
  selection history (the paper's persistent-history idea pushed
  through the whole pipeline);
* **parallel execution** — :class:`ParallelExecutor` fans out Algorithm
  1 candidate measurement within one model and whole-model generation
  across the bench/verify matrices, with deterministic result ordering
  and per-task fault isolation;
* **a single cache root** — :mod:`repro.service.paths` resolves
  ``--cache-dir`` / ``REPRO_CACHE_DIR`` precedence for every on-disk
  artifact (codegen cache, selection histories, timing caches).

See docs/api.md and the caching/parallelism section of
docs/architecture.md.
"""

from repro.service.cache import CodegenCache, TimingCache
from repro.service.executor import ParallelExecutor, TaskOutcome
from repro.service.paths import resolve_cache_dir
from repro.service.service import CodegenService

__all__ = [
    "CodegenCache",
    "CodegenService",
    "ParallelExecutor",
    "TaskOutcome",
    "TimingCache",
    "resolve_cache_dir",
]
