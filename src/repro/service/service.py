"""The orchestrator behind :func:`repro.api.generate`.

:class:`CodegenService` owns the moving parts one generation run (or a
whole bench/verify matrix) needs:

* the content-addressed :class:`~repro.service.cache.CodegenCache`
  (coarse layer) and per-architecture
  :class:`~repro.service.cache.TimingCache`\\ s (fine layer);
* per-architecture :class:`~repro.codegen.hcg.history.SelectionHistory`
  instances — file-backed under the cache root when caching is on, so
  Algorithm 1 decisions persist across tool invocations;
* a :class:`~repro.service.executor.ParallelExecutor` for fanning out
  Algorithm 1 candidate pre-calculation and whole-model batches.

Every cache interaction is traced (``service.generate`` /
``service.cache`` spans, ``cache.*`` counters) and every recovery is a
stable diagnostic, folded into the returned result.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence

from repro.arch.presets import get_architecture
from repro.codegen.options import CodegenOptions
from repro.observability.metrics import SPANS
from repro.observability.tracer import NULL_TRACER
from repro.service import paths
from repro.service.cache import CacheEntry, CodegenCache, TimingCache
from repro.service.digest import (
    cache_key,
    isa_digest,
    model_digest,
    options_digest,
)
from repro.service.executor import ParallelExecutor


class CodegenService:
    """Parallel, cache-aware generation — the engine of ``repro.api``."""

    def __init__(
        self,
        cache: Optional[CodegenCache] = None,
        jobs: int = 1,
        tracer=None,
        cache_root=None,
        task_timeout_s: Optional[float] = None,
    ) -> None:
        self.cache = cache
        self.jobs = max(1, int(jobs))
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: cache root for histories/timings; None = keep them in memory
        self.cache_root = cache_root
        #: per-cell wall-clock budget for fanned-out batches (HCG213)
        self.task_timeout_s = task_timeout_s
        self._histories: Dict[str, object] = {}
        self._timings: Dict[str, TimingCache] = {}
        self._lock = threading.Lock()

    @classmethod
    def from_options(cls, options: CodegenOptions, tracer=None) -> "CodegenService":
        """The service one :class:`~repro.api.GenerateRequest` implies."""
        if tracer is None:
            tracer = options.tracer if options.tracer is not None else NULL_TRACER
        cache = None
        cache_root = None
        if options.use_cache:
            cache_root = paths.resolve_cache_dir(options.cache_dir)
            cache = CodegenCache(
                paths.codegen_cache_dir(options.cache_dir), tracer=tracer
            )
        return cls(cache=cache, jobs=options.jobs, tracer=tracer,
                   cache_root=cache_root,
                   task_timeout_s=options.task_timeout_s)

    # ------------------------------------------------------------------
    # Shared per-architecture state
    # ------------------------------------------------------------------
    def history_for(self, arch_name: str, options: CodegenOptions):
        """The (shared) Algorithm 1 selection history of one arch.

        Precedence: an explicit ``options.history_path`` wins; with a
        cache root active, the history is file-backed under it
        (``history/selection_<arch>.json``); otherwise it lives in
        memory for the service's lifetime.
        """
        from repro.codegen.hcg.history import SelectionHistory

        if options.history_path is not None:
            key = f"{arch_name}@{options.history_path}"
            with self._lock:
                if key not in self._histories:
                    self._histories[key] = SelectionHistory(options.history_path)
                return self._histories[key]
        with self._lock:
            if arch_name not in self._histories:
                if self.cache_root is not None:
                    path = paths.history_path(arch_name, self.cache_root)
                    path.parent.mkdir(parents=True, exist_ok=True)
                    self._histories[arch_name] = SelectionHistory(path)
                else:
                    self._histories[arch_name] = SelectionHistory()
            return self._histories[arch_name]

    def timings_for(self, arch_name: str) -> Optional[TimingCache]:
        """The candidate-timing cache of one arch (None when caching is
        off — timings are only worth keeping across invocations)."""
        if self.cache_root is None:
            return None
        with self._lock:
            if arch_name not in self._timings:
                self._timings[arch_name] = TimingCache(
                    paths.timings_path(arch_name, self.cache_root)
                )
            return self._timings[arch_name]

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------
    def generate(self, request) -> "object":
        """Serve one request: cache lookup, else generate and memoize."""
        from repro.api import GenerateResult

        options = request.options
        tracer = options.tracer if options.tracer is not None else self.tracer
        model = request.resolve_model()
        arch = get_architecture(options.arch)
        with tracer.span(
            SPANS.SERVICE_GENERATE,
            model=model.name, generator=request.generator, arch=arch.name,
        ) as span:
            key = None
            if self.cache is not None:
                with tracer.span(SPANS.SERVICE_CACHE) as cache_span:
                    key = cache_key(
                        model_digest(model),
                        isa_digest(arch.instruction_set),
                        request.generator,
                        options_digest(options),
                    )
                    entry = self.cache.lookup(key)
                    cache_span.set(hit=entry is not None, key=key[:12])
                if entry is not None:
                    span.set(from_cache=True)
                    entry = self._reverify_if_needed(request, model, arch,
                                                     entry, tracer)
                    metrics = dict(entry.metrics)
                    metrics["service.from_cache"] = 1
                    return GenerateResult(
                        model=model.name,
                        generator=request.generator,
                        arch=arch.name,
                        c_source=entry.c_source,
                        program=entry.program,
                        diagnostics=(tuple(entry.diagnostics)
                                     + self._cache_recoveries()),
                        metrics=metrics,
                        from_cache=True,
                        verified=entry.verified,
                        cache_key=key,
                    )

            generator = self._build_generator(request.generator, arch,
                                              options, tracer)
            program = generator.generate(model)
            from repro.ir.cemit import emit_c
            from repro.observability.metrics import generation_metrics

            c_source = emit_c(program, arch.instruction_set)
            collector = getattr(generator, "last_diagnostics", None)
            diagnostics = tuple(collector) if collector is not None else ()
            metrics = generation_metrics(generator)
            verified = False
            if request.verify:
                from repro.verify.runner import check_program

                report = check_program(
                    model, program, arch,
                    generator_name=request.generator,
                    instruction_set=getattr(generator, "iset", None),
                    seed=request.seed, steps=request.steps, tracer=tracer,
                )
                report.raise_on_failure()
                verified = True
            if self.cache is not None and key is not None:
                self.cache.store(CacheEntry(
                    key=key, model=model.name, generator=request.generator,
                    arch=arch.name, c_source=c_source, program=program,
                    diagnostics=diagnostics, metrics=dict(metrics),
                    verified=verified,
                ))
                diagnostics = diagnostics + self._cache_recoveries()
            span.set(from_cache=False)
            return GenerateResult(
                model=model.name,
                generator=request.generator,
                arch=arch.name,
                c_source=c_source,
                program=program,
                diagnostics=diagnostics,
                metrics=metrics,
                from_cache=False,
                verified=verified,
                cache_key=key,
            )

    def generate_many(self, requests: Sequence["object"],
                      jobs: Optional[int] = None) -> List["object"]:
        """Serve a batch of requests with deterministic result order.

        Workers run :meth:`generate` with tracing forced to the null
        sink (a shared tracer's span stack is not thread-safe); use
        per-request ``options.tracer`` objects when per-cell traces are
        needed.
        """
        executor = ParallelExecutor(jobs if jobs is not None else self.jobs,
                                    self.tracer,
                                    timeout_s=self.task_timeout_s)
        outcomes = executor.map(
            self.generate, list(requests),
            label=lambda index, req: f"{req.generator}:{index}",
        )
        executor.raise_first(outcomes)
        return [outcome.value for outcome in outcomes]

    def generate_outcomes(self, requests: Sequence["object"],
                          jobs: Optional[int] = None) -> List["object"]:
        """Serve a batch with per-request fault isolation.

        Like :meth:`generate_many` but returns the raw
        :class:`~repro.service.executor.TaskOutcome` list (input order)
        instead of raising on the first failure — one poisoned request
        must not fail its batchmates.  This is the entry point the
        daemon's request coalescer uses: a whole coalesced batch is one
        ``ParallelExecutor`` pass.
        """
        executor = ParallelExecutor(jobs if jobs is not None else self.jobs,
                                    self.tracer,
                                    timeout_s=self.task_timeout_s)
        return executor.map(
            self.generate, list(requests),
            label=lambda index, req: f"{req.generator}:{index}",
        )

    # ------------------------------------------------------------------
    def _build_generator(self, name: str, arch, options: CodegenOptions,
                         tracer):
        from repro.bench.runner import make_generator

        kwargs = options.generator_kwargs(name)
        kwargs["tracer"] = tracer if tracer is not NULL_TRACER else None
        if name == "hcg":
            kwargs["history"] = self.history_for(arch.name, options)
            kwargs["timings"] = self.timings_for(arch.name)
            if self.jobs > 1 or options.jobs > 1:
                kwargs["executor"] = ParallelExecutor(
                    max(self.jobs, options.jobs)
                )
        return make_generator(name, arch, **kwargs)

    def _reverify_if_needed(self, request, model, arch, entry: CacheEntry,
                            tracer) -> CacheEntry:
        """A hit for an unverified entry still honors ``verify=True``."""
        if not request.verify or entry.verified:
            return entry
        from repro.verify.runner import check_program

        report = check_program(
            model, entry.program, arch,
            generator_name=request.generator,
            instruction_set=(arch.instruction_set
                             if request.generator == "hcg" else None),
            seed=request.seed, steps=request.steps, tracer=tracer,
        )
        report.raise_on_failure()
        entry.verified = True
        if self.cache is not None:
            self.cache.store(entry)
        return entry

    def _cache_recoveries(self) -> tuple:
        """Drain cache-layer recoveries (HCG305/306) into the caller's
        result; they are always warnings and never abort generation."""
        if self.cache is None:
            return ()
        return tuple(self.cache.diagnostics.drain())

    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Persist every file-backed history and timing cache now.

        Stores already save on mutation; this is the drain-time
        backstop the daemon calls on SIGTERM so a shutdown never
        depends on one more request arriving (docs/robustness.md).
        All saves are atomic temp-file + ``os.replace`` writes.
        """
        with self._lock:
            histories = list(self._histories.values())
            timings = list(self._timings.values())
        for history in histories:
            path = getattr(history, "path", None)
            if path is not None:
                history.save(path)
        for timing in timings:
            timing.save()

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Cache/pool effectiveness counters for reports and tests."""
        stats: Dict[str, object] = {"jobs": self.jobs}
        if self.cache is not None:
            stats["codegen_cache"] = self.cache.stats()
        with self._lock:
            stats["histories"] = {
                name: history.stats()
                for name, history in self._histories.items()
            }
            stats["timings"] = {
                name: timings.stats()
                for name, timings in self._timings.items()
            }
        return stats
