"""One cache root for every on-disk artifact the tool keeps.

Precedence (first hit wins; documented in docs/api.md):

1. an explicit path (CLI ``--cache-dir`` or ``CodegenOptions.cache_dir``);
2. the ``REPRO_CACHE_DIR`` environment variable;
3. ``$XDG_CACHE_HOME/repro`` when ``XDG_CACHE_HOME`` is set;
4. ``~/.cache/repro``.

Everything lives under that root:

* ``codegen/``  — the content-addressed :class:`~repro.service.cache.CodegenCache`;
* ``history/``  — per-architecture Algorithm 1 selection histories
  (``selection_<arch>.json`` plus their ``.lock`` sidecars);
* ``timings/``  — per-architecture candidate-timing caches
  (``alg1_<arch>.json``).

This module is stdlib-only so :mod:`repro.codegen.hcg.history` can use
it without an import cycle.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional, Union

#: environment variable naming the cache root (precedence step 2)
ENV_CACHE_DIR = "REPRO_CACHE_DIR"

PathLike = Union[str, Path]


def resolve_cache_dir(explicit: Optional[PathLike] = None) -> Path:
    """The cache root, after applying the documented precedence."""
    if explicit is not None:
        return Path(explicit)
    env = os.environ.get(ENV_CACHE_DIR)
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    if xdg:
        return Path(xdg) / "repro"
    return Path.home() / ".cache" / "repro"


def codegen_cache_dir(explicit: Optional[PathLike] = None) -> Path:
    """Where :class:`~repro.service.cache.CodegenCache` entries live."""
    return resolve_cache_dir(explicit) / "codegen"


def history_path(arch_name: str, explicit: Optional[PathLike] = None) -> Path:
    """The selection-history file of one architecture under the root.

    The advisory-lock sidecar (``.lock``) and quarantine file
    (``.corrupt``) are derived from this path, so they follow the same
    root automatically.
    """
    return resolve_cache_dir(explicit) / "history" / f"selection_{arch_name}.json"


def timings_path(arch_name: str, explicit: Optional[PathLike] = None) -> Path:
    """The Algorithm 1 candidate-timing cache of one architecture."""
    return resolve_cache_dir(explicit) / "timings" / f"alg1_{arch_name}.json"
