"""Content digests behind the codegen cache key.

A cache entry is addressed by ``(model digest, ISA digest, generator
name, options digest)``:

* the **model digest** hashes the canonical XML serialization
  (:func:`repro.model.xml_io.model_to_string`) — any change to an
  actor, parameter, port width, dtype or connection changes the key;
* the **ISA digest** hashes the instruction set's ``.si`` dump plus its
  vector width — adding, removing or editing one instruction changes
  the key;
* the **options digest** hashes the semantic fields of
  :class:`~repro.codegen.options.CodegenOptions` (operational fields
  like ``jobs`` or ``tracer`` are excluded: they cannot change bytes).

The package version is folded into the final key so a new release
never replays entries written by older generator code.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from repro.codegen.options import CodegenOptions
from repro.model.graph import Model


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def model_digest(model: Model) -> str:
    """Digest of the model's canonical XML serialization."""
    from repro.model.xml_io import model_to_string

    return _sha256(model_to_string(model))


def isa_digest(instruction_set: Any) -> str:
    """Digest of an instruction set (its ``.si`` dump + vector width)."""
    from repro.isa.parser import dump_instruction_set

    return _sha256(
        f"vector_bits={instruction_set.vector_bits}\n"
        + dump_instruction_set(instruction_set)
    )


def options_digest(options: CodegenOptions) -> str:
    """Digest of the semantic (output-changing) option fields."""
    return _sha256(json.dumps(options.semantic_dict(), sort_keys=True))


def cache_key(
    model_dig: str, isa_dig: str, generator: str, options_dig: str
) -> str:
    """The final content address of one generation result."""
    from repro import __version__

    return _sha256(
        json.dumps(
            {
                "v": __version__,
                "model": model_dig,
                "isa": isa_dig,
                "generator": generator,
                "options": options_dig,
            },
            sort_keys=True,
        )
    )
