"""Deterministic, fault-isolated task fan-out.

:class:`ParallelExecutor` is the one concurrency primitive the service
uses: it maps a function over an item list with a bounded thread pool
(``concurrent.futures``) and returns :class:`TaskOutcome`\\ s **in input
order**, whatever order the workers finished in — callers get the same
result sequence at ``jobs=1`` and ``jobs=8``.

Fault isolation is per task: a worker that raises produces an outcome
carrying the exception instead of poisoning the pool; the caller
decides whether to degrade (report an HCG2xx diagnostic and continue)
or re-raise deterministically via :meth:`ParallelExecutor.raise_first`.

Task functions must not touch a shared :class:`~repro.observability.tracer.Tracer`
(its span stack is not thread-safe); the pattern used throughout the
service is "pure worker, main-thread bookkeeping": workers return data
and the caller emits spans/counters/diagnostics after the gather.  The
``pool.task.*`` counters emitted here follow that rule — they are
bumped on the calling thread only.
"""

from __future__ import annotations

import dataclasses
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, List, Optional, Sequence

from repro.errors import ReproError
from repro.observability.metrics import COUNTERS
from repro.observability.tracer import NULL_TRACER

#: hard ceiling on worker threads, whatever --jobs says
MAX_JOBS = 64


class TaskTimeoutError(ReproError):
    """A fanned-out task exceeded its per-task timeout.

    Python threads cannot be killed, so the worker may still be running
    when this surfaces; its eventual result is discarded.  Callers
    degrade the timed-out cell (HCG213) instead of waiting forever.
    """

    def __init__(self, label: str, timeout_s: float) -> None:
        super().__init__(
            f"task {label!r} did not finish within {timeout_s:g}s"
        )
        self.label = label
        self.timeout_s = timeout_s


def effective_jobs(jobs: Optional[int]) -> int:
    """Clamp a requested parallelism degree to something sane.

    ``None`` or ``0`` means "pick for me": the CPU count, capped.
    """
    if not jobs:
        jobs = os.cpu_count() or 1
    return max(1, min(int(jobs), MAX_JOBS))


@dataclasses.dataclass
class TaskOutcome:
    """The result (or failure) of one fanned-out task."""

    index: int
    label: str
    value: Any = None
    error: Optional[BaseException] = None
    #: wall-clock seconds the task ran (0.0 for a timed-out task whose
    #: thread is still burning — the caller only sees the budget)
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None


class ParallelExecutor:
    """Bounded fan-out with deterministic collection order.

    ``timeout_s`` (``CodegenOptions.task_timeout_s``) bounds each task's
    wall clock: a task still running at the deadline produces an outcome
    carrying :class:`TaskTimeoutError` instead of hanging the whole
    batch.  Enforcement runs the task on a joinable daemon thread, so it
    applies at ``jobs=1`` too.
    """

    def __init__(self, jobs: int = 1, tracer=None,
                 timeout_s: Optional[float] = None) -> None:
        self.jobs = effective_jobs(jobs)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.timeout_s = timeout_s

    # ------------------------------------------------------------------
    def map(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        label: Optional[Callable[[int, Any], str]] = None,
    ) -> List[TaskOutcome]:
        """Run ``fn`` over ``items``; outcomes come back in input order.

        With ``jobs == 1`` (or one item) the tasks run inline on the
        calling thread — bitwise the same code path the pool executes,
        so serial and parallel runs can be compared for determinism.
        """
        label = label or (lambda index, item: str(index))
        outcomes: List[TaskOutcome] = []
        self.tracer.count(COUNTERS.POOL_TASKS_SUBMITTED, len(items))
        if self.jobs == 1 or len(items) <= 1:
            for index, item in enumerate(items):
                outcomes.append(self._run_one(fn, index, item, label))
        else:
            with ThreadPoolExecutor(max_workers=self.jobs) as pool:
                futures = [
                    pool.submit(self._run_one, fn, index, item, label)
                    for index, item in enumerate(items)
                ]
                outcomes = [future.result() for future in futures]
        outcomes.sort(key=lambda outcome: outcome.index)
        failed = sum(1 for outcome in outcomes if not outcome.ok)
        timed_out = sum(
            1 for outcome in outcomes
            if isinstance(outcome.error, TaskTimeoutError)
        )
        self.tracer.count(COUNTERS.POOL_TASKS_COMPLETED, len(outcomes) - failed)
        if failed:
            self.tracer.count(COUNTERS.POOL_TASKS_FAILED, failed)
        if timed_out:
            self.tracer.count(COUNTERS.POOL_TASKS_TIMEOUT, timed_out)
        return outcomes

    def _run_one(self, fn, index: int, item: Any, label) -> TaskOutcome:
        outcome = TaskOutcome(index=index, label=label(index, item))
        started = time.perf_counter()
        if self.timeout_s is None:
            try:
                outcome.value = fn(item)
            except BaseException as exc:  # fault-isolation: one task must not poison the pool
                outcome.error = exc
            outcome.elapsed_s = time.perf_counter() - started
            return outcome
        # Timed path: the task runs on a joinable daemon thread so a
        # hung cell cannot stall the batch (the thread itself cannot be
        # killed; its late result is discarded).
        def run() -> None:
            try:
                outcome.value = fn(item)
            except BaseException as exc:  # fault-isolation: one task must not poison the pool
                outcome.error = exc

        thread = threading.Thread(
            target=run, name=f"repro-task-{outcome.label}", daemon=True
        )
        thread.start()
        thread.join(self.timeout_s)
        if thread.is_alive():
            return TaskOutcome(
                index=index, label=outcome.label,
                error=TaskTimeoutError(outcome.label, self.timeout_s),
            )
        outcome.elapsed_s = time.perf_counter() - started
        return outcome

    # ------------------------------------------------------------------
    @staticmethod
    def raise_first(outcomes: Sequence[TaskOutcome]) -> None:
        """Re-raise the first (by input order) task failure, if any.

        This restores fail-fast semantics deterministically: the same
        task's exception surfaces at ``jobs=1`` and ``jobs=8``.
        """
        for outcome in outcomes:
            if outcome.error is not None:
                raise outcome.error
