"""On-disk memoization of generation work.

Two layers, both rooted under the resolved cache dir
(:mod:`repro.service.paths`):

* :class:`CodegenCache` — the coarse layer: one entry per
  ``(model, ISA, generator, options)`` content address, holding the
  full generation result (emitted C source, the IR program, the run's
  diagnostics and metrics).  A warm hit skips code generation entirely
  and returns byte-identical C source.
* :class:`TimingCache` — the fine layer on top of the selection
  history: Algorithm 1 candidate pre-calculation timings keyed by
  ``(selection key, kernel id, lanes)``.  Even when the coarse cache
  misses (say, one actor's width changed), unchanged candidates skip
  their measurement run.

Durability discipline matches :class:`~repro.codegen.hcg.history.SelectionHistory`:
atomic temp-file + ``os.replace`` writes, versioned payloads, and
corrupt entries demoted to misses (reported as HCG305 diagnostics) —
a cache problem must never abort generation.

The coarse entries are Python pickles (the IR is a tree of dataclasses;
JSON would need a parallel schema for every node type).  Treat the
cache directory with the same trust as the working tree: entries are
loaded with :mod:`pickle` and are not safe to share across trust
boundaries.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pickle
import tempfile
import threading
import time
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from repro.diagnostics import DiagnosticsCollector
from repro.observability.metrics import COUNTERS
from repro.observability.tracer import NULL_TRACER

#: bump when the pickled entry layout changes
ENTRY_SCHEMA_VERSION = 1

#: bump when the timing-cache JSON layout changes
TIMING_SCHEMA_VERSION = 1

#: default LRU size cap of the codegen cache (bytes)
DEFAULT_MAX_BYTES = 256 * 1024 * 1024


@dataclasses.dataclass
class CacheEntry:
    """One memoized generation result."""

    key: str
    model: str
    generator: str
    arch: str
    c_source: str
    program: Any  # repro.ir.program.Program
    diagnostics: Tuple[Any, ...] = ()
    metrics: Dict[str, Any] = dataclasses.field(default_factory=dict)
    verified: bool = False
    created: float = 0.0


class CodegenCache:
    """Content-addressed, LRU-capped store of generation results.

    Load/save recoveries are recorded on ``self.diagnostics`` (always
    permissive); the service drains them into the run's collector.
    """

    def __init__(
        self,
        root: Union[str, Path],
        max_bytes: int = DEFAULT_MAX_BYTES,
        tracer=None,
    ) -> None:
        self.root = Path(root)
        self.max_bytes = max_bytes
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.diagnostics = DiagnosticsCollector(policy="permissive")
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.write_failures = 0
        #: test/chaos-only hook called at the top of every store(); may
        #: raise OSError to simulate a full or read-only disk (the
        #: daemon's ``disk_full`` chaos fault and tests install it)
        self.inject_write_fault = None
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def entry_path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def lookup(self, key: str) -> Optional[CacheEntry]:
        """The memoized result, or ``None`` (miss).  A hit refreshes the
        entry's LRU timestamp; a corrupt entry is deleted and reported
        as HCG305, then treated as a miss."""
        path = self.entry_path(key)
        entry: Optional[CacheEntry] = None
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
            if (
                isinstance(payload, dict)
                and payload.get("schema") == ENTRY_SCHEMA_VERSION
                and isinstance(payload.get("entry"), CacheEntry)
                and payload["entry"].key == key
            ):
                entry = payload["entry"]
            else:
                raise ValueError(f"unexpected payload layout in {path.name}")
        except FileNotFoundError:
            pass
        except Exception as exc:  # fault-isolation: a corrupt cache entry is a miss, not a crash
            self.diagnostics.report(
                "HCG305",
                f"cache entry unreadable ({type(exc).__name__}: {exc}); "
                f"removed and regenerating",
                location=str(path),
            )
            with self._lock:
                try:
                    os.unlink(path)
                except OSError:
                    pass
        if entry is None:
            with self._lock:
                self.misses += 1
            self.tracer.count(COUNTERS.CACHE_MISSES)
            return None
        with self._lock:
            self.hits += 1
        self.tracer.count(COUNTERS.CACHE_HITS)
        try:
            os.utime(path)  # refresh the LRU clock
        except OSError:
            pass
        return entry

    def store(self, entry: CacheEntry) -> Optional[Path]:
        """Persist one entry atomically, then enforce the size cap.

        A failed write never fails the request that produced the entry:
        an ``OSError`` (disk full, read-only root, quota) is reported as
        HCG307 and the entry is simply dropped — the next lookup is a
        miss and regenerates; any other serialization fault (e.g. an
        unpicklable program node) is reported as HCG306.  Returns the
        entry path, or ``None`` when the entry was dropped."""
        path = self.entry_path(entry.key)
        if not entry.created:
            entry.created = time.time()
        payload = {"schema": ENTRY_SCHEMA_VERSION, "entry": entry}
        tmp_name = None
        try:
            if self.inject_write_fault is not None:
                self.inject_write_fault()
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                prefix=f".{path.name}.", suffix=".tmp", dir=str(path.parent)
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass  # cleanup must not mask the original fault
                raise
        except OSError as exc:
            with self._lock:
                self.write_failures += 1
            self.diagnostics.report(
                "HCG307",
                f"cache write failed ({exc}); entry dropped, next lookup "
                f"regenerates",
                location=str(path),
            )
            self.tracer.count(COUNTERS.CACHE_WRITE_FAILURES)
            return None
        except Exception as exc:  # fault-isolation: an unserializable entry must not fail the request
            with self._lock:
                self.write_failures += 1
            self.diagnostics.report(
                "HCG306",
                f"cache entry not persisted ({type(exc).__name__}: {exc})",
                location=str(path),
            )
            self.tracer.count(COUNTERS.CACHE_WRITE_FAILURES)
            return None
        self._evict_over_cap(keep=path)
        return path

    # ------------------------------------------------------------------
    def _entries_by_age(self):
        """Every entry file, oldest (least recently used) first."""
        files = []
        if not self.root.exists():
            return files
        for path in self.root.glob("*/*.pkl"):
            try:
                stat = path.stat()
            except OSError:
                continue
            files.append((stat.st_mtime, stat.st_size, path))
        files.sort(key=lambda item: (item[0], item[2].name))
        return files

    def _evict_over_cap(self, keep: Optional[Path] = None) -> None:
        files = self._entries_by_age()
        total = sum(size for _, size, _ in files)
        for _, size, path in files:
            if total <= self.max_bytes:
                break
            if keep is not None and path == keep:
                continue  # never evict the entry just written
            try:
                os.unlink(path)
            except OSError as exc:
                self.diagnostics.report(
                    "HCG306", f"cache eviction failed: {exc}", location=str(path)
                )
                continue
            total -= size
            with self._lock:
                self.evictions += 1
            self.tracer.count(COUNTERS.CACHE_EVICTIONS)

    # ------------------------------------------------------------------
    def size_bytes(self) -> int:
        return sum(size for _, size, _ in self._entries_by_age())

    def stats(self) -> Dict[str, Union[int, float]]:
        lookups = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "write_failures": self.write_failures,
            "hit_rate": self.hits / lookups if lookups else 0.0,
            "entries": len(self._entries_by_age()),
            "bytes": self.size_bytes(),
        }

    def clear(self) -> None:
        for _, _, path in self._entries_by_age():
            try:
                os.unlink(path)
            except OSError:
                pass


class TimingCache:
    """Algorithm 1 candidate-timing memoization (the fine cache layer).

    Keys are ``"<selection key>|<kernel id>|lanes=<n>"`` — everything a
    candidate's modelled measurement depends on besides the per-arch
    cost table, which is fixed by using one file per architecture
    (:func:`repro.service.paths.timings_path`).
    """

    def __init__(self, path: Optional[Union[str, Path]] = None) -> None:
        self.path = Path(path) if path is not None else None
        self.hits = 0
        self.misses = 0
        self.diagnostics = DiagnosticsCollector(policy="permissive")
        self._lock = threading.Lock()
        self._entries: Dict[str, float] = {}
        if self.path is not None and self.path.exists():
            self._load(self.path)

    @staticmethod
    def key_for(selection_key: str, kernel_id: str, lanes: int) -> str:
        return f"{selection_key}|{kernel_id}|lanes={lanes}"

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: str) -> Optional[float]:
        with self._lock:
            cost = self._entries.get(key)
            if cost is None:
                self.misses += 1
            else:
                self.hits += 1
            return cost

    def store(self, key: str, cost: float) -> None:
        with self._lock:
            self._entries[key] = float(cost)
        if self.path is not None:
            self.save()

    # ------------------------------------------------------------------
    def _load(self, path: Path) -> None:
        try:
            payload = json.loads(path.read_text())
            if (
                not isinstance(payload, dict)
                or payload.get("schema") != TIMING_SCHEMA_VERSION
                or not isinstance(payload.get("entries"), dict)
            ):
                raise ValueError("unexpected timing-cache layout")
            with self._lock:
                for key, cost in payload["entries"].items():
                    if isinstance(key, str) and isinstance(cost, (int, float)):
                        self._entries[key] = float(cost)
        except Exception as exc:  # fault-isolation: a corrupt timing cache is empty, not fatal
            self.diagnostics.report(
                "HCG305",
                f"timing cache unreadable ({type(exc).__name__}: {exc}); "
                f"starting empty",
                location=str(path),
            )

    def save(self) -> None:
        if self.path is None:
            return
        with self._lock:
            entries = dict(sorted(self._entries.items()))
        payload = {"schema": TIMING_SCHEMA_VERSION, "entries": entries}
        text = json.dumps(payload, indent=2)
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                prefix=f".{self.path.name}.", suffix=".tmp",
                dir=str(self.path.parent),
            )
            try:
                with os.fdopen(fd, "w") as handle:
                    handle.write(text)
                os.replace(tmp_name, self.path)
            except BaseException:
                os.unlink(tmp_name)
                raise
        except OSError as exc:
            self.diagnostics.report(
                "HCG306", f"timing cache not persisted: {exc}",
                location=str(self.path),
            )

    def stats(self) -> Dict[str, Union[int, float]]:
        lookups = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hits / lookups if lookups else 0.0,
            "entries": len(self._entries),
        }
