"""The Simulink-Coder-like baseline generator.

Reproduces the behaviour the paper attributes to the built-in Simulink
Coder:

* **expression folding** — single-consumer elementwise chains become one
  expression; multi-use signals are materialised once (variable reuse);
* **unrolled scalar code** for small widths (Fig. 2), scalar loops
  otherwise;
* **generic library functions** for intensive computing actors — it
  never adapts the implementation to the input scale;
* on targets whose toolchain setup vectorises float code
  (``arch.baseline_scattered_simd``), *scattered* SIMD for float
  elementwise actors: each actor gets its own load / single-instruction
  / store loop, with intermediates round-tripping through memory
  (§4.2's description of the Intel results).  Integer batch actors are
  not identified (the paper's FIR observation) and stay scalar.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.arch.arch import Architecture
from repro.codegen.common import (
    COPY_ACTOR_TYPES,
    CodegenContext,
    PortKey,
    UNROLL_LIMIT,
    element_expr,
    emit_copy_actor,
    emit_outport,
    emit_state_updates,
    fanout_materialization_points,
    is_foldable,
    kernel_call_for,
    mark_buffer_required_inputs,
    materialize_port,
)
from repro.diagnostics import DiagnosticsCollector
from repro.errors import CodegenError
from repro.observability.metrics import SPANS
from repro.observability.tracer import NULL_TRACER
from repro.ir.expr import Var, const_i
from repro.ir.program import Program
from repro.ir.stmt import Comment, For, SimdLoad, SimdOp, SimdStore, Stmt, Store
from repro.kernels.library import CodeLibrary, default_library
from repro.model.actor import Actor
from repro.model.actor_defs import ActorKind, actor_def
from repro.model.graph import Model


class SimulinkCoderGenerator:
    """Baseline #1: folding + variable reuse + generic kernels."""

    name = "simulink_coder"

    def __init__(
        self,
        arch: Architecture,
        library: Optional[CodeLibrary] = None,
        unroll_limit: int = UNROLL_LIMIT,
        variable_reuse: bool = True,
        policy: str = "strict",
        tracer=None,
    ) -> None:
        self.arch = arch
        self.library = library if library is not None else default_library()
        self.unroll_limit = unroll_limit
        self.variable_reuse = variable_reuse
        # The baseline has no degradation lattice, but it shares the
        # diagnostics interface so callers can treat generators uniformly.
        self.policy = policy
        # Shared tracer interface: the baseline emits only the top-level
        # generate span (it has no Algorithm 1/2 phases to time).
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.last_diagnostics: Optional[DiagnosticsCollector] = None

    # ------------------------------------------------------------------
    def generate(self, model: Model) -> Program:
        with self.tracer.span(
            SPANS.GENERATE, model=model.name, generator=self.name, arch=self.arch.name
        ):
            return self._generate(model)

    def generate_verified(self, model: Model, *, seed: int = 0,
                          steps: int = 2) -> Program:
        """Deprecated: use ``repro.api.generate(request, verify=True)``.

        Generate, then differentially verify the program against the
        model's reference semantics (docs/verification.md)."""
        import warnings

        warnings.warn(
            "SimulinkCoderGenerator.generate_verified() is deprecated; use "
            "repro.api.generate(GenerateRequest(..., verify=True))",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.verify.runner import verified_generate

        return verified_generate(self, model, seed=seed, steps=steps)

    def _generate(self, model: Model) -> Program:
        diagnostics = DiagnosticsCollector(self.policy)
        ctx = CodegenContext(
            model, f"{model.name}_step", self.name, diagnostics, tracer=self.tracer
        )
        self.last_diagnostics = diagnostics
        ctx.program.arch = self.arch.name

        scattered = self._scattered_actors(ctx) if self.arch.baseline_scattered_simd else set()
        points = fanout_materialization_points(ctx)
        mark_buffer_required_inputs(ctx, points)
        # Scattered-SIMD actors and their elementwise feeders need buffers.
        for actor_name in scattered:
            actor = ctx.model.actor(actor_name)
            points.add((actor_name, "out"))
            for port in actor.inputs:
                points.add(ctx.driver(actor_name, port.name))

        body: List[Stmt] = []
        pending_scattered: List[Actor] = []

        def flush_scattered() -> None:
            if pending_scattered:
                body.extend(self._emit_scattered_fused(ctx, list(pending_scattered)))
                pending_scattered.clear()

        for actor_name in ctx.schedule.order:
            actor = ctx.model.actor(actor_name)
            kind = actor_def(actor.actor_type).kind
            if actor.actor_type in ("Inport", "Const", "UnitDelay"):
                continue  # fixed buffers; delay updates run at step end
            if actor_name in scattered:
                if pending_scattered and (
                    pending_scattered[0].output("out").width != actor.output("out").width
                ):
                    flush_scattered()
                pending_scattered.append(actor)
                continue
            flush_scattered()
            if actor.actor_type in COPY_ACTOR_TYPES:
                body.extend(emit_copy_actor(ctx, actor))
                continue
            if kind is ActorKind.SINK:
                body.extend(emit_outport(ctx, actor, self.unroll_limit))
                continue
            if kind is ActorKind.INTENSIVE:
                kernel = self.library.general_implementation(
                    actor_def(actor.actor_type).kernel_key
                )
                body.append(Comment(f"{actor.name}: generic {kernel.kernel_id}"))
                body.append(kernel_call_for(ctx, actor, kernel.kernel_id))
                continue
            key = (actor_name, "out")
            if key in points and is_foldable(actor):
                body.extend(materialize_port(ctx, key, self.unroll_limit))
                continue
            if not is_foldable(actor):
                raise CodegenError(
                    f"Simulink-Coder baseline cannot translate actor type "
                    f"{actor.actor_type!r}"
                )
            # single-consumer foldable actor: folded into its consumer

        flush_scattered()
        body.extend(emit_state_updates(ctx, self.unroll_limit))
        ctx.program.body = body
        if self.variable_reuse:
            from repro.codegen.reuse import reuse_local_buffers

            shared, _ = reuse_local_buffers(ctx.program)
            return shared
        return ctx.program

    # ------------------------------------------------------------------
    def _scattered_actors(self, ctx: CodegenContext) -> Set[str]:
        """Float elementwise array actors the vendor toolchain vectorises.

        One single-instruction loop per actor; integer actors are missed
        (the paper's FIR example), as are ops with no single-node
        instruction for the dtype.
        """
        iset = self.arch.instruction_set
        chosen: Set[str] = set()
        for actor in ctx.model.actors:
            defn = actor_def(actor.actor_type)
            if defn.kind is not ActorKind.ELEMENTWISE or defn.op_name == "Cast":
                continue
            port = actor.output("out")
            if not port.dtype.is_float or not actor.has_array_input:
                continue
            lanes = iset.lanes_for(port.dtype)
            if port.width < lanes:
                continue
            if self._single_node_instruction(iset, defn.op_name, port.dtype) is None:
                continue
            chosen.add(actor.name)
        return chosen

    @staticmethod
    def _single_node_instruction(iset, op_name: str, dtype):
        for spec in iset.instructions:
            if spec.node_count == 1 and spec.root.op == op_name and spec.dtype is dtype:
                return spec
        return None

    def _emit_scattered_fused(self, ctx: CodegenContext, actors: List[Actor]) -> List[Stmt]:
        """One loop holding each actor's load / single-vop / store triple.

        The actors share the loop but not registers: every intermediate
        round-trips through its signal buffer, which is exactly the
        "scattered SIMD" code the paper observed from Simulink Coder on
        Intel.  A compiler with vector store-load forwarding (Clang) can
        clean it up; GCC pays the memory traffic.
        """
        from repro import ops as op_table

        iset = self.arch.instruction_set
        width = actors[0].output("out").width
        lanes = iset.lanes_for(actors[0].output("out").dtype)
        main = (width // lanes) * lanes

        names = ", ".join(a.name for a in actors)
        statements: List[Stmt] = [Comment(f"scattered SIMD loop: {names}")]
        loop_var = ctx.names.fresh("i")
        body: List[Stmt] = []
        for actor in actors:
            defn = actor_def(actor.actor_type)
            port = actor.output("out")
            spec = self._single_node_instruction(iset, defn.op_name, port.dtype)
            assert spec is not None, "actor pre-filtered by _scattered_actors"
            info = op_table.op_info(defn.op_name)
            imm = int(actor.params["shift"]) if info.needs_imm else None
            out_buffer = ctx.ensure_local(actor.name, "out")
            reg_args = []
            for position, in_port in enumerate(actor.inputs):
                src = ctx.buffer_of(*ctx.driver(actor.name, in_port.name))
                reg = ctx.names.fresh(f"v{position}_")
                body.append(SimdLoad(reg, src, Var(loop_var), port.dtype, lanes))
                reg_args.append(reg)
            dest_reg = ctx.names.fresh("vr_")
            body.append(SimdOp(dest_reg, spec.name, tuple(reg_args), port.dtype, lanes, imm))
            body.append(SimdStore(out_buffer, Var(loop_var), dest_reg, port.dtype, lanes))
        statements.append(For(loop_var, const_i(0), const_i(main), lanes, tuple(body)))

        # scalar tail for the remainder elements, one actor at a time
        for actor in actors:
            out_buffer = ctx.buffer_of(actor.name, "out")
            ctx.materialized.discard((actor.name, "out"))
            for index in range(main, width):
                statements.append(
                    Store(out_buffer, const_i(index),
                          element_expr(ctx, (actor.name, "out"), const_i(index)))
                )
            ctx.materialized.add((actor.name, "out"))
        return statements
