"""The DFSynth-like baseline generator.

Reproduces the code shape the paper attributes to DFSynth:

* **well-structured branch logic** — actors exclusively feeding one side
  of a ``Switch`` are computed inside that branch's ``if``/``else``
  (its TCAD'21 contribution), so untaken sides cost nothing;
* **cyclic computational code** — every elementwise actor becomes its
  own ``for`` loop over its signal, intermediates stored to memory (no
  expression folding, no SIMD);
* **generic library functions** for intensive actors, with the inputs
  staged into dedicated argument buffers before the call.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.arch.arch import Architecture
from repro.codegen.common import (
    COPY_ACTOR_TYPES,
    CodegenContext,
    element_expr,
    emit_copy_actor,
    emit_state_updates,
    kernel_call_for,
    sanitize,
)
from repro.diagnostics import DiagnosticsCollector
from repro.errors import CodegenError
from repro.ir.expr import Cmp, Const, Load, ScalarOp, Var, const_i
from repro.ir.program import Program
from repro.ir.stmt import Comment, CopyBuffer, For, If, KernelCall, Stmt, Store
from repro.ir.types import BufferDecl, BufferKind
from repro.kernels.library import CodeLibrary, default_library
from repro.model.actor import Actor
from repro.model.actor_defs import ActorKind, actor_def
from repro.model.graph import Model
from repro.observability.metrics import SPANS
from repro.observability.tracer import NULL_TRACER
from repro.schedule.regions import BranchRegion, find_branch_regions, region_membership


class DfsynthGenerator:
    """Baseline #2: structured branches + per-actor loops."""

    name = "dfsynth"

    def __init__(
        self,
        arch: Architecture,
        library: Optional[CodeLibrary] = None,
        variable_reuse: bool = True,
        policy: str = "strict",
        tracer=None,
    ) -> None:
        self.arch = arch
        self.library = library if library is not None else default_library()
        self.variable_reuse = variable_reuse
        # Shared diagnostics interface (the baseline never degrades).
        self.policy = policy
        # Shared tracer interface: the baseline emits only the top-level
        # generate span (it has no Algorithm 1/2 phases to time).
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.last_diagnostics: Optional[DiagnosticsCollector] = None
        self._regions: List[BranchRegion] = []

    # ------------------------------------------------------------------
    def generate(self, model: Model) -> Program:
        with self.tracer.span(
            SPANS.GENERATE, model=model.name, generator=self.name, arch=self.arch.name
        ):
            return self._generate(model)

    def generate_verified(self, model: Model, *, seed: int = 0,
                          steps: int = 2) -> Program:
        """Deprecated: use ``repro.api.generate(request, verify=True)``.

        Generate, then differentially verify the program against the
        model's reference semantics (docs/verification.md)."""
        import warnings

        warnings.warn(
            "DfsynthGenerator.generate_verified() is deprecated; use "
            "repro.api.generate(GenerateRequest(..., verify=True))",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.verify.runner import verified_generate

        return verified_generate(self, model, seed=seed, steps=steps)

    def _generate(self, model: Model) -> Program:
        diagnostics = DiagnosticsCollector(self.policy)
        ctx = CodegenContext(
            model, f"{model.name}_step", self.name, diagnostics, tracer=self.tracer
        )
        self.last_diagnostics = diagnostics
        ctx.program.arch = self.arch.name

        self._regions = find_branch_regions(model)
        membership = region_membership(self._regions)

        body: List[Stmt] = []
        for actor_name in ctx.schedule.order:
            if actor_name in membership:
                continue  # emitted inside its switch's branch
            actor = ctx.model.actor(actor_name)
            body.extend(self._emit_actor(ctx, actor))
        body.extend(emit_state_updates(ctx, unroll_limit=0))
        ctx.program.body = body
        if self.variable_reuse:
            from repro.codegen.reuse import reuse_local_buffers

            shared, _ = reuse_local_buffers(ctx.program)
            return shared
        return ctx.program

    # ------------------------------------------------------------------
    def _emit_actor(self, ctx: CodegenContext, actor: Actor) -> List[Stmt]:
        kind = actor_def(actor.actor_type).kind
        if actor.actor_type in ("Inport", "Const", "UnitDelay"):
            return []
        if actor.actor_type == "Switch":
            # handles nesting too: region members that are switches
            # recurse here with their own regions
            return self._emit_switch(ctx, actor, self._regions)
        if actor.actor_type in COPY_ACTOR_TYPES:
            return emit_copy_actor(ctx, actor)
        if kind is ActorKind.SINK:
            source = ctx.buffer_of(*ctx.driver(actor.name, "in1"))
            width = actor.input("in1").width
            return [CopyBuffer(ctx.outport_buffer(actor.name), const_i(0),
                               source, const_i(0), width)]
        if kind is ActorKind.INTENSIVE:
            return self._emit_intensive(ctx, actor)
        if kind is ActorKind.ELEMENTWISE or actor.actor_type == "Gain":
            return self._emit_elementwise_loop(ctx, actor)
        raise CodegenError(f"DFSynth baseline cannot translate actor type {actor.actor_type!r}")

    def _emit_elementwise_loop(self, ctx: CodegenContext, actor: Actor) -> List[Stmt]:
        """One cyclic computation per actor: load, compute, store."""
        from repro import ops as op_table

        port = actor.output("out")
        width = port.width
        out_buffer = ctx.ensure_local(actor.name, "out")

        def body_expr(index):
            if actor.actor_type == "Gain":
                gain = np.asarray(actor.params["gain"], dtype=port.dtype.numpy_dtype)
                source = ctx.buffer_of(*ctx.driver(actor.name, "in1"))
                return ScalarOp(
                    "Mul", (Load(source, index), Const(gain.reshape(()).item(), port.dtype)),
                    port.dtype,
                )
            defn = actor_def(actor.actor_type)
            info = op_table.op_info(defn.op_name)
            args = tuple(
                Load(ctx.buffer_of(*ctx.driver(actor.name, f"in{i + 1}")), index)
                for i in range(info.arity)
            )
            imm = int(actor.params["shift"]) if info.needs_imm else None
            return ScalarOp(defn.op_name, args, port.dtype, imm)

        statements: List[Stmt] = []
        ctx.materialized.add((actor.name, "out"))
        if width == 1:
            statements.append(Store(out_buffer, const_i(0), body_expr(const_i(0))))
        else:
            loop_var = ctx.names.fresh("i")
            statements.append(
                For(loop_var, const_i(0), const_i(width), 1,
                    (Store(out_buffer, Var(loop_var), body_expr(Var(loop_var))),))
            )
        return statements

    def _emit_intensive(self, ctx: CodegenContext, actor: Actor) -> List[Stmt]:
        """Stage arguments into call buffers, then invoke the generic kernel."""
        statements: List[Stmt] = [Comment(f"{actor.name}: DFSynth generic call")]
        staged: List[str] = []
        for port in actor.inputs:
            key = ctx.driver(actor.name, port.name)
            source = ctx.buffer_of(*key)
            arg_name = ctx.names.fresh(sanitize(f"{actor.name}_arg"))
            ctx.program.add_buffer(
                BufferDecl(arg_name, port.dtype, port.width, BufferKind.LOCAL, port.shape)
            )
            statements.append(CopyBuffer(arg_name, const_i(0), source, const_i(0), port.width))
            staged.append(arg_name)
        kernel = self.library.general_implementation(actor_def(actor.actor_type).kernel_key)
        outputs = []
        out_shapes = []
        for port in actor.outputs:
            outputs.append(ctx.ensure_local(actor.name, port.name))
            ctx.materialized.add((actor.name, port.name))
            out_shapes.append(tuple(port.shape or (1,)))
        params = dict(actor.params)
        params["in_shapes"] = tuple(tuple(p.shape or (1,)) for p in actor.inputs)
        params["out_shapes"] = tuple(out_shapes)
        statements.append(
            KernelCall(
                kernel_id=kernel.kernel_id,
                inputs=tuple(staged),
                outputs=tuple(outputs),
                params=tuple(sorted(params.items(), key=lambda kv: kv[0])),
            )
        )
        return statements

    # ------------------------------------------------------------------
    def _emit_switch(self, ctx: CodegenContext, actor: Actor,
                     regions: List[BranchRegion]) -> List[Stmt]:
        """Structured if/else with each side's exclusive region inside."""
        port = actor.output("out")
        width = port.width
        out_buffer = ctx.ensure_local(actor.name, "out")
        ctx.materialized.add((actor.name, "out"))

        ctrl_buffer = ctx.buffer_of(*ctx.driver(actor.name, "ctrl"))
        threshold = np.asarray(
            actor.params.get("threshold", 0), dtype=port.dtype.numpy_dtype
        ).reshape(()).item()
        condition = Cmp(">=", Load(ctrl_buffer, const_i(0)), Const(threshold, port.dtype))

        def side(port_name: str) -> tuple:
            statements: List[Stmt] = []
            for region in regions:
                if region.switch == actor.name and region.port == port_name:
                    ordered = sorted(region.members, key=ctx.schedule.position)
                    for member in ordered:
                        statements.extend(self._emit_actor(ctx, ctx.model.actor(member)))
            source = ctx.buffer_of(*ctx.driver(actor.name, port_name))
            statements.append(
                CopyBuffer(out_buffer, const_i(0), source, const_i(0), width)
            )
            return tuple(statements)

        return [If(condition, side("in1"), side("in2"))]
