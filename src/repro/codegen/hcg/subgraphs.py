"""Subgraph enumeration and instruction matching for Algorithm 2.

From the topmost-leftmost unmapped node, HCG extends candidate
subgraphs (bounded by the instruction set's maximum pattern size and
depth), keeps only *convex*, *independent*, single-result candidates,
orders them by computational cost (largest first), and searches the
instruction set for a pattern-isomorphic SIMD instruction.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro import ops
from repro.codegen.hcg.dfg import Dfg, DfgNode, ExtInput, NodeInput
from repro.isa.spec import InstructionSet, InstructionSpec, PatternNode


@dataclasses.dataclass(frozen=True)
class Subgraph:
    """A candidate set of nodes.

    ``sink`` is the single member whose value escapes the set, or
    ``None`` when several values escape — such candidates are
    enumerated (the paper's Fig. 4 lists Sub-Mul even though Sub's
    value is needed elsewhere) but can never match a one-output SIMD
    instruction, so matching discards them.
    """

    members: FrozenSet[str]
    sink: Optional[str]
    cost: float


@dataclasses.dataclass
class Match:
    """A successful instruction match for a subgraph."""

    spec: InstructionSpec
    subgraph: Subgraph
    #: value source per spec input token, in ``spec.input_tokens`` order
    args: Tuple[object, ...]
    imm: Optional[int]


# ---------------------------------------------------------------------------
# Node selection and enumeration
# ---------------------------------------------------------------------------

def top_left_node(dfg: Dfg, mapped: Set[str]) -> Optional[str]:
    """Line 12: the topmost-leftmost (earliest unmapped) node."""
    for node in dfg.nodes:
        if node.name not in mapped:
            return node.name
    return None


def _escapes(dfg: Dfg, name: str, members: FrozenSet[str]) -> bool:
    """Whether a member's value is needed outside the candidate set."""
    node = dfg.node(name)
    if node.needs_store:
        return True
    return any(consumer not in members for consumer in node.internal_consumers)


def _depth(dfg: Dfg, members: FrozenSet[str]) -> int:
    memo: Dict[str, int] = {}

    def depth_of(name: str) -> int:
        if name in memo:
            return memo[name]
        node = dfg.node(name)
        best = 0
        for ref in node.inputs:
            if isinstance(ref, NodeInput) and ref.node in members:
                best = max(best, depth_of(ref.node))
        memo[name] = best + 1
        return best + 1

    return max(depth_of(name) for name in members)


def is_convex(dfg: Dfg, members: FrozenSet[str]) -> bool:
    """No member depends, through outside nodes, on another member."""
    for start in members:
        frontier = [c for c in dfg.node(start).internal_consumers if c not in members]
        seen: Set[str] = set()
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            for consumer in dfg.node(current).internal_consumers:
                if consumer in members:
                    return False
                frontier.append(consumer)
    return True


def is_independent(dfg: Dfg, members: FrozenSet[str], mapped: Set[str]) -> bool:
    """Line 15: every input is already generated (external buffer or a
    previously mapped node's register) or produced inside the set."""
    for name in members:
        for ref in dfg.node(name).inputs:
            if isinstance(ref, NodeInput):
                if ref.node not in members and ref.node not in mapped:
                    return False
    return True


def subgraph_cost(dfg: Dfg, members: FrozenSet[str]) -> float:
    return sum(ops.op_info(dfg.node(name).op).base_cost for name in members)


def extend_subgraphs(
    dfg: Dfg,
    seed: str,
    mapped: Set[str],
    max_nodes: int,
    max_depth: int,
) -> List[Subgraph]:
    """Line 13: candidate subgraphs grown from the seed, largest first."""
    # enumerate connected supersets of {seed} over unmapped nodes
    all_sets: Set[FrozenSet[str]] = set()
    frontier: List[FrozenSet[str]] = [frozenset([seed])]
    while frontier:
        current = frontier.pop()
        if current in all_sets:
            continue
        all_sets.add(current)
        if len(current) >= max_nodes:
            continue
        neighbours: Set[str] = set()
        for name in current:
            node = dfg.node(name)
            for ref in node.inputs:
                if isinstance(ref, NodeInput) and ref.node not in mapped:
                    neighbours.add(ref.node)
            for consumer in node.internal_consumers:
                if consumer not in mapped:
                    neighbours.add(consumer)
        for neighbour in neighbours - current:
            frontier.append(current | {neighbour})

    candidates: List[Subgraph] = []
    for members in all_sets:
        if _depth(dfg, members) > max_depth:
            continue
        if not is_convex(dfg, members):
            continue
        if not is_independent(dfg, members, mapped):
            continue
        escaping = [name for name in members if _escapes(dfg, name, members)]
        sink = escaping[0] if len(escaping) == 1 else None
        candidates.append(
            Subgraph(members=members, sink=sink, cost=subgraph_cost(dfg, members))
        )
    # largest computational cost first; deterministic tie-break
    candidates.sort(key=lambda s: (-s.cost, tuple(sorted(s.members))))
    return candidates


# ---------------------------------------------------------------------------
# Instruction matching
# ---------------------------------------------------------------------------

def match_instruction(
    dfg: Dfg,
    subgraph: Subgraph,
    iset: InstructionSet,
    mapped: Set[str],
) -> Optional[Match]:
    """Line 17: find a pattern-isomorphic instruction for the subgraph.

    Among all matching instructions the cheapest wins.  Candidates with
    more than one escaping value (``sink is None``) never match: a SIMD
    instruction materialises exactly one result register.
    """
    if subgraph.sink is None:
        return None
    sink = dfg.node(subgraph.sink)
    lanes = iset.lanes_for(sink.dtype)
    best: Optional[Match] = None
    for spec in iset.instructions:
        if spec.node_count != len(subgraph.members):
            continue
        if spec.dtype is not sink.dtype or spec.lanes != lanes:
            continue
        binding = _try_match(dfg, subgraph, spec, mapped)
        if binding is None:
            continue
        args_map, imm = binding
        args = tuple(args_map[token] for token in spec.input_tokens)
        candidate = Match(spec=spec, subgraph=subgraph, args=args, imm=imm)
        if best is None or spec.cost < best.spec.cost:
            best = candidate
    return best


def _try_match(
    dfg: Dfg,
    subgraph: Subgraph,
    spec: InstructionSpec,
    mapped: Set[str],
):
    """Backtracking tree match of the pattern rooted at O1 against the
    subgraph rooted at its sink.  Returns (input binding, imm) or None."""
    members = subgraph.members

    def match_node(
        pattern: PatternNode,
        node: DfgNode,
        binding: Dict[str, object],
        used: Set[str],
        imm: Optional[int],
    ):
        if pattern.op != node.op or pattern.dtype is not node.dtype:
            return None
        if node.op == "Cast" and node.src_dtype is not None:
            if pattern.operand_dtype(0) is not node.src_dtype:
                return None
        new_imm = imm
        if pattern.imm_token is not None:
            if pattern.imm_token == "#imm":
                if imm is not None and imm != node.imm:
                    return None
                new_imm = node.imm
            elif int(pattern.imm_token[1:]) != node.imm:
                return None

        value_tokens = pattern.value_inputs
        orders = [tuple(node.inputs)]
        info = ops.op_info(node.op)
        if info.commutative and len(node.inputs) == 2:
            orders.append((node.inputs[1], node.inputs[0]))

        for operand_order in orders:
            trial_binding = dict(binding)
            trial_used = set(used)
            trial_imm = new_imm
            ok = True
            for position, (token, ref) in enumerate(zip(value_tokens, operand_order)):
                if token.startswith("T"):
                    producer = spec.producer_of(token)
                    assert producer is not None
                    if not isinstance(ref, NodeInput) or ref.node not in members:
                        ok = False
                        break
                    if ref.node in trial_used:
                        ok = False
                        break
                    trial_used.add(ref.node)
                    result = match_node(
                        producer, dfg.node(ref.node), trial_binding, trial_used, trial_imm
                    )
                    if result is None:
                        ok = False
                        break
                    trial_binding, trial_used, trial_imm = result
                else:  # I* token: must be an already-available value
                    if isinstance(ref, NodeInput):
                        if ref.node in members or ref.node not in mapped:
                            ok = False
                            break
                    expected = pattern.operand_dtype(position)
                    actual = _value_dtype(dfg, ref)
                    if expected is not actual:
                        ok = False
                        break
                    if token in trial_binding:
                        if trial_binding[token] != ref:
                            ok = False
                            break
                    else:
                        trial_binding[token] = ref
            if ok:
                return trial_binding, trial_used, trial_imm
        return None

    sink = dfg.node(subgraph.sink)
    result = match_node(spec.root, sink, {}, {subgraph.sink}, None)
    if result is None:
        return None
    binding, used, imm = result
    if used != set(members):
        return None  # pattern did not cover the whole subgraph
    return binding, imm


def _value_dtype(dfg: Dfg, ref) :
    if isinstance(ref, NodeInput):
        return dfg.node(ref.node).dtype
    assert isinstance(ref, ExtInput)
    return ref.dtype
