"""HCG: the paper's generator (Fig. 3's pipeline).

Model parse → actor dispatch → SIMD instruction synthesis:

* intensive computing actors go through Algorithm 1 (adaptive
  pre-calculated implementation selection, with history);
* batch computing actors are grouped and mapped onto SIMD instructions
  by Algorithm 2 (iterative dataflow-graph mapping);
* remaining basic actors use the conventional Simulink-Coder-style
  translation (expression folding, unrolled/looped scalar code).

``branch_aware=True`` enables the §4.3 extension: DFSynth's structured
branch scheduling is integrated into HCG.  Actors (and whole batch
groups) that exclusively feed one side of a Switch are generated inside
that branch, and group construction requires members to carry the same
branch information — the extra constraint the paper describes for
Ptolemy-style models.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.arch.arch import Architecture
from repro.arch.cost import CostTable
from repro.codegen.common import (
    COPY_ACTOR_TYPES,
    CodegenContext,
    PortKey,
    UNROLL_LIMIT,
    element_expr,
    emit_copy_actor,
    emit_outport,
    emit_state_updates,
    fanout_materialization_points,
    is_foldable,
    kernel_call_for,
    mark_buffer_required_inputs,
    materialize_port,
    store_elements,
)
from repro.codegen.hcg.batch import BatchSynthesizer
from repro.codegen.hcg.dispatch import BatchGroup, DispatchResult, Unit, dispatch
from repro.codegen.hcg.history import SelectionHistory
from repro.codegen.hcg.intensive import IntensiveSynthesizer
from repro.diagnostics import DiagnosticsCollector
from repro.errors import CodegenError
from repro.ir.expr import Cmp, Const, Load, const_i
from repro.ir.program import Program
from repro.ir.stmt import Comment, If, Stmt
from repro.isa.spec import InstructionSet
from repro.kernels.library import CodeLibrary, default_library
from repro.model.actor import Actor
from repro.observability.metrics import COUNTERS, SPANS
from repro.observability.tracer import NULL_TRACER
from repro.model.actor_defs import ActorKind, actor_def
from repro.model.graph import Model
from repro.schedule.regions import find_branch_regions, region_membership

#: branch key: (switch actor name, data port name)
BranchKey = Tuple[str, str]


class HcgGenerator:
    """The paper's contribution: SIMD instruction synthesis for Simulink."""

    name = "hcg"

    def __init__(
        self,
        arch: Architecture,
        library: Optional[CodeLibrary] = None,
        history: Optional[SelectionHistory] = None,
        instruction_set: Optional[InstructionSet] = None,
        cost: Optional[CostTable] = None,
        unroll_limit: int = UNROLL_LIMIT,
        simd_threshold: int = 0,
        matcher: str = "indexed",
        tail_mode: str = "auto",
        memory_budget: Optional[int] = None,
        branch_aware: bool = False,
        variable_reuse: bool = True,
        policy: str = "strict",
        tracer=None,
        timings=None,
        executor=None,
    ) -> None:
        self.arch = arch
        self.library = library if library is not None else default_library()
        self.history = history if history is not None else SelectionHistory()
        self.iset = instruction_set if instruction_set is not None else arch.instruction_set
        self.cost = cost if cost is not None else arch.cost
        self.unroll_limit = unroll_limit
        self.simd_threshold = simd_threshold
        #: Algorithm 2 subgraph matcher: "indexed" (fast path) or
        #: "naive" (the baseline enumerator, kept for cross-checking)
        self.matcher = matcher
        #: Algorithm 2 remainder strategy ("auto"/"offset"/"predicated");
        #: validated eagerly so a misconfigured run fails at construction
        from repro.codegen.options import TAIL_MODES

        if tail_mode not in TAIL_MODES:
            raise ValueError(
                f"unknown tail_mode {tail_mode!r}; choose from {TAIL_MODES}"
            )
        if tail_mode == "predicated" and not self.iset.supports_masked_tail:
            raise CodegenError(
                f"tail_mode 'predicated' requires a 'scalable' or 'mask' "
                f"instruction set; {self.iset.arch!r} declares "
                f"features={list(self.iset.features)}"
            )
        self.tail_mode = tail_mode
        #: peak live-buffer bytes per batch group; None = unbounded (see
        #: repro.sched and CodegenOptions.memory_budget)
        if memory_budget is not None and memory_budget < 0:
            raise ValueError(
                f"memory_budget must be >= 0 bytes, got {memory_budget}"
            )
        self.memory_budget = memory_budget
        self.branch_aware = branch_aware
        self.variable_reuse = variable_reuse
        #: fault policy: "strict" raises at the end of generate() when a
        #: fault forced a degradation; "permissive" degrades silently
        #: (the collected diagnostics describe what happened either way)
        self.policy = policy
        DiagnosticsCollector(policy)  # validate the policy name eagerly
        #: span/counter sink (see repro.observability); NULL_TRACER = off
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: optional candidate-timing cache (repro.service.cache.TimingCache)
        self.timings = timings
        #: optional worker pool for Algorithm 1 candidate measurement
        #: (repro.service.executor.ParallelExecutor)
        self.executor = executor
        #: populated by the last generate() call, for reports/tests
        self.last_dispatch: Optional[DispatchResult] = None
        self.last_intensive: Optional[IntensiveSynthesizer] = None
        self.last_batch: Optional[BatchSynthesizer] = None
        self.last_diagnostics: Optional[DiagnosticsCollector] = None

    # ------------------------------------------------------------------
    def generate(self, model: Model) -> Program:
        with self.tracer.span(
            SPANS.GENERATE, model=model.name, generator=self.name, arch=self.arch.name
        ):
            return self._generate(model)

    def generate_verified(self, model: Model, *, seed: int = 0,
                          steps: int = 2) -> Program:
        """Deprecated: use ``repro.api.generate(request, verify=True)``.

        Generate, then differentially verify the program against the
        model's reference semantics over the adversarial input battery;
        raises :class:`~repro.errors.VerificationError` on divergence
        (see docs/verification.md)."""
        import warnings

        warnings.warn(
            "HcgGenerator.generate_verified() is deprecated; use "
            "repro.api.generate(GenerateRequest(..., verify=True))",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.verify.runner import verified_generate

        return verified_generate(self, model, seed=seed, steps=steps)

    def _generate(self, model: Model) -> Program:
        tracer = self.tracer
        diagnostics = DiagnosticsCollector(self.policy)
        # Re-home recovery events the history recorded while loading
        # (corrupt file quarantined, bad entries skipped, ...).
        diagnostics.extend(self.history.diagnostics.drain())
        with tracer.span(SPANS.MODEL_PARSE) as span:
            ctx = CodegenContext(
                model, f"{model.name}_step", self.name, diagnostics, tracer=tracer
            )
            span.set(actors=len(model.actors), connections=len(model.connections))
        self.last_diagnostics = diagnostics
        ctx.program.arch = self.arch.name

        branch_of: Dict[str, BranchKey] = {}
        if self.branch_aware:
            membership = region_membership(find_branch_regions(model))
            branch_of = {
                name: (region.switch, region.port)
                for name, region in membership.items()
            }

        with tracer.span(SPANS.DISPATCH) as span:
            result = dispatch(model, ctx.schedule, self.iset, branch_of or None)
            result = self._demote_unprofitable_groups(result, diagnostics)
            span.set(
                intensive=len(result.intensive),
                groups=len(result.groups),
                units=len(result.units),
            )
        self.last_dispatch = result
        grouped: Set[str] = {m for g in result.groups for m in g.members}

        intensive = IntensiveSynthesizer(
            self.library, self.cost, self.iset, self.history, diagnostics,
            tracer=tracer, timings=self.timings, executor=self.executor,
        )
        self.last_intensive = intensive
        batch = BatchSynthesizer(
            ctx, self.iset, self.unroll_limit, self.simd_threshold,
            matcher=self.matcher, tail_mode=self.tail_mode,
            memory_budget=self.memory_budget,
        )
        self.last_batch = batch

        points = fanout_materialization_points(ctx)
        mark_buffer_required_inputs(ctx, points)
        # Batch groups read their external inputs with SIMD loads, so
        # those signals need real buffers.
        for group in result.groups:
            members = set(group.members)
            for name in group.members:
                actor = ctx.model.actor(name)
                for port in actor.inputs:
                    source = ctx.driver(name, port.name)
                    if source[0] not in members:
                        points.add(source)
        if self.branch_aware:
            # Switch conditions are hoisted out of any folding, so their
            # control signals need buffers too.
            for actor in model.actors:
                if actor.actor_type == "Switch":
                    points.add(ctx.driver(actor.name, "ctrl"))

        # Units exclusively feeding one Switch side are deferred into
        # that branch (branch-aware mode only).
        deferred: Dict[BranchKey, List[Unit]] = {}

        def branch_key_of(unit: Unit) -> Optional[BranchKey]:
            if not self.branch_aware:
                return None
            if isinstance(unit, BatchGroup):
                keys = {branch_of.get(member) for member in unit.members}
                assert len(keys) == 1, "grouping must respect branch info"
                return keys.pop()
            return branch_of.get(unit)

        self._deferred = deferred
        body: List[Stmt] = []
        for unit in result.units:
            key = branch_key_of(unit)
            if key is not None:
                deferred.setdefault(key, []).append(unit)
                continue
            body.extend(self._emit_unit(ctx, unit, batch, intensive, grouped, points))

        with tracer.span(SPANS.COMPOSE):
            body.extend(emit_state_updates(ctx, self.unroll_limit))
            ctx.program.body = body
        # Save-time recoveries (e.g. a read-only cache dir) accrue on the
        # history during generation; fold them into this run's report.
        diagnostics.extend(self.history.diagnostics.drain())
        # Strict policy: raise now, carrying everything we collected.
        diagnostics.finalize()
        if self.variable_reuse:
            from repro.codegen.reuse import reuse_local_buffers

            with tracer.span(SPANS.REUSE) as span:
                shared, renames = reuse_local_buffers(ctx.program)
                span.set(buffers_renamed=len(renames))
            return shared
        return ctx.program

    # ------------------------------------------------------------------
    def _emit_unit(
        self,
        ctx: CodegenContext,
        unit: Unit,
        batch: BatchSynthesizer,
        intensive: IntensiveSynthesizer,
        grouped: Set[str],
        points: Set[PortKey],
    ) -> List[Stmt]:
        if isinstance(unit, BatchGroup):
            state = ctx.checkpoint()
            n_matches = len(batch.matches)
            try:
                return batch.synthesize(unit)
            except Exception as exc:  # fault-isolation: demote the group, keep the run alive
                ctx.restore(state)
                del batch.matches[n_matches:]
                ctx.diagnostics.report(
                    "HCG201",
                    f"SIMD mapping failed ({type(exc).__name__}: {exc}); "
                    f"demoted to scalar translation",
                    actor=", ".join(unit.members),
                )
                return batch.conventional(unit, reason="mapping failed")
        actor = ctx.model.actor(unit)
        kind = actor_def(actor.actor_type).kind
        if actor.actor_type in ("Inport", "Const", "UnitDelay"):
            return []
        if self.branch_aware and actor.actor_type == "Switch":
            # nested switches recurse: their own deferred units emit
            # inside their branches
            return self._emit_branchy_switch(
                ctx, actor, self._deferred, batch, grouped, points
            )
        if actor.actor_type in COPY_ACTOR_TYPES:
            return emit_copy_actor(ctx, actor)
        if kind is ActorKind.SINK:
            if actor.name in ctx.satisfied_sinks:
                return []
            return emit_outport(ctx, actor, self.unroll_limit)
        if kind is ActorKind.INTENSIVE:
            try:
                kernel = intensive.select(actor)
            except Exception as exc:  # fault-isolation: degrade to the general implementation
                kernel = self.library.general_implementation(
                    actor_def(actor.actor_type).kernel_key
                )
                ctx.diagnostics.report(
                    "HCG203",
                    f"selection raised {type(exc).__name__}: {exc}; "
                    f"using general implementation {kernel.kernel_id!r}",
                    actor=actor.name,
                )
            return [
                Comment(f"{actor.name}: selected {kernel.kernel_id}"),
                kernel_call_for(ctx, actor, kernel.kernel_id),
            ]
        if unit in grouped:
            raise CodegenError("group member leaked into the unit list")
        key = (unit, "out")
        if is_foldable(actor):
            if key in points:
                return materialize_port(ctx, key, self.unroll_limit)
            return []  # folded into its single consumer
        raise CodegenError(f"HCG cannot translate actor type {actor.actor_type!r}")

    # ------------------------------------------------------------------
    def _emit_branchy_switch(
        self,
        ctx: CodegenContext,
        actor: Actor,
        deferred: Dict[BranchKey, List[Unit]],
        batch: BatchSynthesizer,
        grouped: Set[str],
        points: Set[PortKey],
    ) -> List[Stmt]:
        """DFSynth-style structured switch with its regions inside."""
        port = actor.output("out")
        consumers = ctx.consumers(actor.name, "out")
        sole_sink = (
            ctx.model.actor(consumers[0].dst_actor)
            if len(consumers) == 1 else None
        )
        if (
            sole_sink is not None
            and sole_sink.actor_type == "Outport"
            and sole_sink.name not in ctx.satisfied_sinks
        ):
            # write the selected value straight into the output buffer
            out_buffer = ctx.outport_buffer(sole_sink.name)
            ctx.alias_port(actor.name, "out", out_buffer)
            ctx.satisfied_sinks.add(sole_sink.name)
        else:
            out_buffer = ctx.ensure_local(actor.name, "out")
            ctx.materialized.add((actor.name, "out"))

        ctrl_buffer = ctx.buffer_of(*ctx.driver(actor.name, "ctrl"))
        threshold = np.asarray(
            actor.params.get("threshold", 0), dtype=port.dtype.numpy_dtype
        ).reshape(()).item()
        condition = Cmp(
            ">=", Load(ctrl_buffer, const_i(0)), Const(threshold, port.dtype)
        )

        def side(port_name: str) -> Tuple[Stmt, ...]:
            statements: List[Stmt] = []
            for unit in deferred.get((actor.name, port_name), []):
                statements.extend(
                    self._emit_unit(ctx, unit, batch, self.last_intensive, grouped, points)
                )
            driver_key = ctx.driver(actor.name, port_name)
            statements.extend(
                store_elements(
                    ctx, out_buffer, port.width,
                    lambda idx: element_expr(ctx, driver_key, idx),
                    self.unroll_limit,
                )
            )
            return tuple(statements)

        return [If(condition, side("in1"), side("in2"))]

    # ------------------------------------------------------------------
    def _demote_unprofitable_groups(
        self,
        result: DispatchResult,
        diagnostics: Optional[DiagnosticsCollector] = None,
    ) -> DispatchResult:
        """Drop groups that cannot (or should not) be vectorised.

        Groups narrower than one vector register fall back per Algorithm
        2 lines 3-4; groups below the §4.3 profitability threshold fall
        back too.  Demoted members become ordinary foldable actors, so
        the conventional translation can fold straight through them
        without forcing their inputs into buffers.
        """
        demoted: Set[str] = set()
        kept = []
        # A masked-tail ISA vectorises sub-register groups as one
        # predicated pass, so narrowness alone no longer demotes.
        masked_ok = (
            self.iset.supports_masked_tail and self.tail_mode != "offset"
        )
        for group in result.groups:
            batch_size = self.iset.vector_bits // group.bit_width
            if ((group.width // batch_size < 1 and not masked_ok)
                    or group.width < self.simd_threshold):
                demoted.update(group.members)
                self.tracer.count(COUNTERS.ALG2_GROUPS_SCALAR)
                if diagnostics is not None:
                    diagnostics.report(
                        "HCG211",
                        f"width {group.width} < {max(batch_size, self.simd_threshold)} "
                        f"required for SIMD; translated conventionally",
                        actor=", ".join(group.members),
                    )
            else:
                kept.append(group)
        if not demoted:
            return result
        units: List[Unit] = []
        for unit in result.units:
            if isinstance(unit, BatchGroup) and set(unit.members) <= demoted:
                units.extend(unit.members)
            else:
                units.append(unit)
        return DispatchResult(
            intensive=result.intensive, groups=tuple(kept), units=tuple(units)
        )
