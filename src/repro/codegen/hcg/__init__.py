"""HCG: actor dispatch + SIMD instruction synthesis (the paper's core).

The package mirrors Fig. 3's pipeline, one module per mechanism:
``dispatch`` (§3.1 actor classification and batch grouping),
``intensive`` + ``history`` (§3.2.1, Algorithm 1: adaptive
pre-calculated implementation selection), ``dfg`` + ``subgraphs`` +
``batch`` (§3.2.2-§3.3, Algorithm 2: iterative DFG-to-SIMD-instruction
mapping), and ``generator`` (the driver that composes them).
docs/architecture.md walks the whole pipeline; docs/observability.md
documents the spans and counters these stages emit.
"""

from repro.codegen.hcg.batch import BatchSynthesizer
from repro.codegen.hcg.dfg import Dfg, DfgNode, ExtInput, NodeInput, build_dfg
from repro.codegen.hcg.dispatch import (
    BatchGroup,
    DispatchResult,
    dispatch,
    is_batch_actor,
    is_intensive_actor,
    single_node_instruction,
)
from repro.codegen.hcg.generator import HcgGenerator
from repro.codegen.hcg.history import SelectionHistory, SelectionKey, size_signature
from repro.codegen.hcg.intensive import IntensiveSynthesizer, generate_test_input
from repro.codegen.hcg.subgraphs import (
    Match,
    Subgraph,
    extend_subgraphs,
    is_convex,
    is_independent,
    match_instruction,
    top_left_node,
)

__all__ = [
    "BatchGroup",
    "BatchSynthesizer",
    "Dfg",
    "DfgNode",
    "DispatchResult",
    "ExtInput",
    "HcgGenerator",
    "IntensiveSynthesizer",
    "Match",
    "NodeInput",
    "SelectionHistory",
    "SelectionKey",
    "Subgraph",
    "build_dfg",
    "dispatch",
    "extend_subgraphs",
    "generate_test_input",
    "is_batch_actor",
    "is_convex",
    "is_independent",
    "is_intensive_actor",
    "match_instruction",
    "single_node_instruction",
    "size_signature",
    "top_left_node",
]
