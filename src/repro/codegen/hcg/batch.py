"""Algorithm 2: SIMD synthesis for batch computing actors.

Given a batch group's dataflow graph, emit:

* remainder handling for the ``DataLength % BatchSize`` leftover
  elements — either the paper's scalar *remainder prologue* in front of
  the loop, or (on ``scalable``/``mask`` ISAs) a single *predicated
  tail* pass after it, VL-trimmed to the leftover lane count (see
  docs/algorithms.md, "Predicated remainder vs offset prologue");
* SIMD data-load statements for every external input;
* one SIMD instruction per mapped subgraph, chosen by iterative
  largest-first graph mapping;
* SIMD stores only for values consumed outside the group — everything
  else stays in vector registers.

When the input does not fill one vector register (``BatchCount < 1``)
— or is below the optional profitability threshold of §4.3 — the group
falls back to the conventional scalar translation; on a masked-tail ISA
a narrow group instead becomes one predicated pass.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from repro.codegen.common import (
    CodegenContext,
    UNROLL_LIMIT,
    materialize_port,
    sanitize,
)
from repro.codegen.hcg.dfg import Dfg, ExtInput, NodeInput, build_dfg
from repro.codegen.hcg.dispatch import BatchGroup
from repro.codegen.hcg.matchindex import make_matcher
from repro.codegen.hcg.subgraphs import Match, top_left_node
from repro.errors import CodegenError
from repro.ir.expr import Expr, Load, ScalarOp, Var, const_i
from repro.ir.stmt import AssignVar, Comment, For, SimdLoad, SimdOp, SimdStore, Stmt, Store
from repro.ir.types import BufferDecl, BufferKind
from repro.isa.spec import InstructionSet
from repro.observability.metrics import COUNTERS, SPANS


class BatchSynthesizer:
    """Algorithm 2, bound to one generation context."""

    def __init__(
        self,
        ctx: CodegenContext,
        iset: InstructionSet,
        unroll_limit: int = UNROLL_LIMIT,
        simd_threshold: int = 0,
        matcher: str = "indexed",
        tail_mode: str = "auto",
        memory_budget: Optional[int] = None,
    ) -> None:
        self.ctx = ctx
        self.iset = iset
        self.unroll_limit = unroll_limit
        #: minimum signal width for SIMD synthesis to be considered
        #: profitable (§4.3 discussion); 0 reproduces the paper's
        #: always-vectorise behaviour
        self.simd_threshold = simd_threshold
        #: subgraph matcher kind ("indexed" fast path or the "naive"
        #: baseline; see repro.codegen.hcg.matchindex)
        self.matcher = matcher
        #: remainder strategy (see repro.codegen.options.TAIL_MODES)
        self.tail_mode = tail_mode
        #: peak live-buffer budget in bytes; None = unbounded (the
        #: memory-aware scheduler of repro.sched is bypassed entirely)
        self.memory_budget = memory_budget
        if tail_mode == "predicated" and not iset.supports_masked_tail:
            raise CodegenError(
                f"tail_mode 'predicated' requires a 'scalable' or 'mask' "
                f"instruction set; {iset.arch!r} declares "
                f"features={list(iset.features)}"
            )
        #: resolved strategy: True = one VL-trimmed tail pass, False =
        #: the paper's scalar offset prologue
        self.tail_predicated = tail_mode == "predicated" or (
            tail_mode == "auto" and iset.supports_masked_tail
        )
        #: trace of emitted matches, for tests and reports
        self.matches: List[Match] = []
        #: candidate subgraphs enumerated across all groups (metrics)
        self.subgraphs_enumerated = 0

    # ------------------------------------------------------------------
    def synthesize(self, group: BatchGroup) -> List[Stmt]:
        with self.ctx.tracer.span(
            SPANS.ALG2_GROUP,
            members=list(group.members), width=group.width,
            bit_width=group.bit_width,
        ) as span:
            return self._synthesize(group, span)

    def _synthesize(self, group: BatchGroup, span) -> List[Stmt]:
        batch_size = self.iset.vector_bits // group.bit_width
        length = group.width
        batch_count = length // batch_size
        predicated = self.tail_predicated
        # Lines 3-4 (plus the §4.3 threshold): conventional fallback.  A
        # masked-tail ISA vectorises even sub-register groups — the whole
        # group is one predicated pass — so only the threshold applies.
        if (batch_count < 1 and not predicated) or length < self.simd_threshold:
            return self.conventional(group, reason="too narrow")

        dfg = build_dfg(self.ctx, group)
        plan = self._plan_memory(dfg, group)
        if plan is not None and plan.demoted:
            return self.conventional(group, reason="memory budget")
        offset = length % batch_size
        full = batch_count * batch_size
        matched_before = len(self.matches)
        enumerated_before = self.subgraphs_enumerated

        # Declare output buffers for every stored value.  A value whose
        # only consumer is an Outport is stored straight into the output
        # buffer, skipping the composition copy (variable reuse).
        for node in dfg.stored_nodes:
            target = self._direct_outport(node)
            if target is not None:
                self.ctx.alias_port(node.name, "out", self.ctx.outport_buffer(target))
                self.ctx.satisfied_sinks.add(target)
            else:
                self.ctx.ensure_local(node.name, "out")
        tail_note = "predicated" if predicated else "remainder"
        statements: List[Stmt] = [
            Comment(
                f"batch group [{', '.join(group.members)}]: "
                f"{batch_count} x {batch_size} lanes + {offset} {tail_note}"
            )
        ]

        # The fault hook lets the verifier's tests prove a silently
        # dropped tail is caught (repro.verify.faults); inert unless a
        # test installed it.
        from repro.verify import faults

        skip_tail = faults.active("skip_remainder")

        # Memory-aware scheduling: an over-budget group runs as several
        # full passes over the signal, one per tile of its dataflow
        # graph, with cross-tile values spilled to pooled local buffers.
        if plan is not None and plan.tiled:
            from repro.sched.tiling import tile_dfg

            self._declare_spill_slots(plan)
            graphs = [tile_dfg(dfg, tile.start, tile.stop) for tile in plan.tiles]
        else:
            graphs = [dfg]

        for index, graph in enumerate(graphs):
            if len(graphs) > 1:
                statements.append(Comment(
                    f"tile {index + 1}/{len(graphs)}: "
                    f"[{', '.join(node.name for node in graph.nodes)}]"
                ))
            statements.extend(self._emit_pass(
                graph, batch_size, batch_count, offset, full,
                predicated, skip_tail,
            ))

        for node in dfg.nodes:
            if node.needs_store:
                self.ctx.materialized.add((node.name, "out"))
        tracer = self.ctx.tracer
        tracer.count(COUNTERS.ALG2_GROUPS_VECTORIZED)
        tracer.count(COUNTERS.ALG2_NODES_MAPPED, len(dfg.nodes))
        if predicated and offset:
            tracer.count(COUNTERS.ALG2_TAIL_PREDICATED)
            if batch_count == 0:
                tracer.count(COUNTERS.ALG2_GROUPS_MASKED_NARROW)
        span.set(
            nodes=len(dfg.nodes),
            batch_count=batch_count,
            remainder=offset,
            tail=tail_note if offset else "none",
            tiles=len(graphs),
            subgraphs_enumerated=self.subgraphs_enumerated - enumerated_before,
            instructions_matched=len(self.matches) - matched_before,
        )
        return statements

    def _emit_pass(
        self,
        dfg: Dfg,
        batch_size: int,
        batch_count: int,
        offset: int,
        full: int,
        predicated: bool,
        skip_tail: bool,
    ) -> List[Stmt]:
        """One full pass over the signal for (a tile of) the group."""
        statements: List[Stmt] = []
        # Lines 24-26 (offset strategy): the remainder has the same
        # computation logic and goes in front of the loop code.
        if not predicated and offset and not skip_tail:
            statements.extend(self._remainder_code(dfg, offset))

        # Lines 5-23: the SIMD body over the full batches, looped when
        # BatchCount >= 2.  The offset strategy walks [offset, length);
        # the predicated strategy walks [0, full) and trims the tail.
        start = 0 if predicated else offset
        if batch_count >= 2:
            loop_var = self.ctx.names.fresh("i")
            body = self._simd_body(dfg, Var(loop_var), batch_size)
            statements.append(
                For(loop_var, const_i(start), const_i(start + full),
                    batch_size, tuple(body))
            )
        elif batch_count == 1:
            statements.extend(self._simd_body(dfg, const_i(start), batch_size))

        # Predicated tail: one more SIMD pass at index ``full`` with the
        # active vector length trimmed to the leftover element count.  A
        # sub-register group (batch_count == 0) is *only* this pass.
        if predicated and offset and not skip_tail:
            statements.append(
                Comment(f"predicated tail: {offset} of {batch_size} lanes")
            )
            statements.extend(
                self._simd_body(dfg, const_i(full), batch_size, vl=offset)
            )
        return statements

    # ------------------------------------------------------------------
    def _plan_memory(self, dfg: Dfg, group: BatchGroup):
        """Tile the group against the memory budget (None = unbounded)."""
        if self.memory_budget is None:
            return None
        from repro.sched.tiling import plan_tiles

        tracer = self.ctx.tracer
        with tracer.span(
            SPANS.SCHED_PLAN, members=list(group.members),
            budget=self.memory_budget,
        ) as span:
            plan = plan_tiles(
                dfg, width=group.width,
                lane_bytes=self.iset.vector_bits // 8,
                budget=self.memory_budget,
            )
            tracer.count(COUNTERS.SCHED_GROUPS_PLANNED)
            span.set(
                tiles=len(plan.tiles), demoted=plan.demoted,
                peak_bytes=plan.peak_bytes, spill_slots=len(plan.slots),
            )
        if plan.demoted:
            tracer.count(COUNTERS.SCHED_GROUPS_DEMOTED)
            self.ctx.diagnostics.report(
                "HCG221", plan.reason, actor=", ".join(group.members)
            )
        elif plan.tiled:
            tracer.count(COUNTERS.SCHED_GROUPS_TILED)
            tracer.count(COUNTERS.SCHED_TILES_EMITTED, len(plan.tiles))
            tracer.count(COUNTERS.SCHED_SPILL_SLOTS, len(plan.slots))
            tracer.count(COUNTERS.SCHED_SPILL_REUSED, plan.slots_reused)
            self.ctx.diagnostics.report(
                "HCG222",
                f"{len(plan.tiles)} tiles, {len(plan.slots)} spill slot(s) "
                f"({plan.slots_reused} reuse(s)), peak {plan.peak_bytes} of "
                f"{self.memory_budget} budget bytes",
                actor=", ".join(group.members),
            )
        return plan

    def _declare_spill_slots(self, plan) -> None:
        """LOCAL buffers for cross-tile values, one per pooled slot."""
        buffers: Dict[str, str] = {}
        for slot in plan.slots:
            # fresh(), not reserve(): several groups in one program each
            # plan their own slot 1, and buffer names must stay unique.
            name = self.ctx.names.fresh(slot.label)
            self.ctx.program.add_buffer(BufferDecl(
                name, slot.dtype, slot.length, BufferKind.LOCAL,
                (slot.length,),
            ))
            buffers[slot.label] = name
        for node_name, label in plan.spilled.items():
            self.ctx.alias_port(node_name, "out", buffers[label])

    # ------------------------------------------------------------------
    def _direct_outport(self, node) -> Optional[str]:
        """The Outport this node can write directly, if it is the sole
        consumer of the node's value."""
        consumers = self.ctx.consumers(node.name, "out")
        if len(consumers) != 1 or node.internal_consumers:
            return None
        sink = self.ctx.model.actor(consumers[0].dst_actor)
        if sink.actor_type != "Outport" or sink.name in self.ctx.satisfied_sinks:
            return None
        return sink.name

    # ------------------------------------------------------------------
    def _simd_body(self, dfg: Dfg, index: Expr, batch_size: int,
                   vl: Optional[int] = None) -> List[Stmt]:
        """One batch worth of loads, mapped instructions and stores.

        ``vl`` (predicated tail) trims every load, op and store to the
        first ``vl`` lanes; ``None`` emits the full-width body.
        """
        body: List[Stmt] = []
        registers: Dict[object, str] = {}

        # Line 9: data-preparation variables for the external inputs,
        # e.g. ``int32x4_t a_batch = vld1q_s32(a);``
        for ext in dfg.external_inputs:
            buffer = self.ctx.buffer_of(*ext.key)
            register = self.ctx.names.fresh(f"{sanitize(ext.key[0])}_batch")
            body.append(SimdLoad(register, buffer, index, ext.dtype, batch_size, vl))
            registers[ext] = register

        # Lines 10-22: iterative mapping, driven by the configured
        # matcher.  The alg2.match span covers the whole loop; the
        # alg2.match.wall_s counter accumulates matcher work only
        # (index construction, match queries, invalidation) so the two
        # matcher kinds compare head-to-head from a bench record alone,
        # undiluted by the statement emission both share.
        clock = time.perf_counter
        mapped: set = set()
        with self.ctx.tracer.span(
            SPANS.ALG2_MATCH, matcher=self.matcher, nodes=len(dfg.nodes)
        ) as span:
            started = clock()
            matcher = make_matcher(self.matcher, dfg, self.iset, self.ctx.tracer)
            match_wall = clock() - started
            while True:
                seed = top_left_node(dfg, mapped)
                if seed is None:
                    break
                started = clock()
                match: Optional[Match] = matcher.match_from(seed, mapped)
                match_wall += clock() - started
                if match is None:
                    raise CodegenError(
                        f"no instruction matches node {seed!r}; dispatch should have "
                        f"excluded unsupported batch actors"
                    )
                sink = dfg.node(match.subgraph.sink)
                destination = self.ctx.names.fresh(f"{sanitize(sink.name)}_batch")
                args = tuple(registers[ref] for ref in match.args)
                imm = match.imm if match.spec.has_wildcard_imm else None
                body.append(
                    SimdOp(destination, match.spec.name, args, sink.dtype,
                           batch_size, imm, vl)
                )
                registers[NodeInput(sink.name)] = destination
                mapped |= match.subgraph.members
                started = clock()
                matcher.invalidate(match.subgraph.members)
                match_wall += clock() - started
                self.matches.append(match)
                self.ctx.tracer.count(COUNTERS.ALG2_INSTRUCTIONS_MATCHED)
                # Line 23: store only what leaves the group.
                if sink.needs_store:
                    buffer = self.ctx.buffer_of(sink.name, "out")
                    body.append(SimdStore(buffer, index, destination,
                                          sink.dtype, batch_size, vl))
            span.set(
                subgraphs_enumerated=matcher.enumerated,
                match_wall_s=round(match_wall, 9),
            )
            matcher.flush_counters()
        self.subgraphs_enumerated += matcher.enumerated
        self.ctx.tracer.count(COUNTERS.ALG2_MATCH_WALL_S, match_wall)
        return body

    # ------------------------------------------------------------------
    def _remainder_code(self, dfg: Dfg, offset: int) -> List[Stmt]:
        """Scalar computation of elements [0, offset)."""
        statements: List[Stmt] = [Comment(f"remainder: {offset} scalar element(s)")]
        for element in range(offset):
            index = const_i(element)
            temps: Dict[str, str] = {}
            for node in dfg.nodes:
                args = []
                for ref in node.inputs:
                    if isinstance(ref, NodeInput):
                        args.append(Var(temps[ref.node]))
                    else:
                        assert isinstance(ref, ExtInput)
                        args.append(Load(self.ctx.buffer_of(*ref.key), index))
                temp = self.ctx.names.fresh(f"r_{sanitize(node.name)}_")
                temps[node.name] = temp
                statements.append(
                    AssignVar(temp, ScalarOp(node.op, tuple(args), node.dtype, node.imm), node.dtype)
                )
            for node in dfg.stored_nodes:
                statements.append(
                    Store(self.ctx.buffer_of(node.name, "out"), index, Var(temps[node.name]))
                )
        return statements

    # ------------------------------------------------------------------
    def conventional(self, group: BatchGroup, reason: str = "fallback") -> List[Stmt]:
        """Simulink-Coder-style scalar translation of the group.

        Used for groups too narrow to vectorise (Algorithm 2 lines 3-4)
        and as the degradation target when mapping fails outright.
        """
        tracer = self.ctx.tracer
        tracer.count(COUNTERS.ALG2_GROUPS_SCALAR)
        with tracer.span(
            SPANS.ALG2_FALLBACK, members=list(group.members), reason=reason
        ):
            return self._conventional(group, reason)

    def _conventional(self, group: BatchGroup, reason: str) -> List[Stmt]:
        statements: List[Stmt] = [
            Comment(f"batch group [{', '.join(group.members)}]: conventional ({reason})")
        ]
        members = set(group.members)
        for name in group.members:
            actor = self.ctx.model.actor(name)
            consumers = self.ctx.consumers(name, "out")
            external = [c for c in consumers if c.dst_actor not in members]
            if external or len(consumers) != 1 or not consumers:
                statements.extend(
                    materialize_port(self.ctx, (name, "out"), self.unroll_limit)
                )
        return statements
