"""The selection history of Algorithm 1 (lines 1-6 and 18).

Pre-calculation is expensive (every candidate implementation runs on
test data), so HCG caches decisions keyed by (actor type, data type,
data size) and answers repeats from the history.  The history can
persist to JSON so repeated tool invocations skip pre-calculation too.

The on-disk format is versioned (``{"schema": 2, "entries": {...}}``)
and the store is crash-safe:

* saves go through a temp file + ``os.replace`` so a crash mid-write
  never leaves a partial file behind;
* a corrupt, truncated or stale-schema file is *quarantined* (renamed
  to ``<name>.corrupt``) and the history rebuilt from scratch — it is
  only a cache, so losing it costs one pre-calculation pass, while
  crashing on it would cost the whole generation run;
* individual malformed entries are skipped (recorded as diagnostics)
  instead of discarding the surviving good entries;
* concurrent tool invocations sharing one history file are safe: loads
  and saves take an **advisory lock** on a ``<name>.lock`` sidecar
  (``fcntl.flock``, non-blocking with retry/backoff up to a timeout),
  and saves *merge* the entries already on disk instead of clobbering
  them — two generators racing on the same cache both keep their
  pre-calculated decisions.  Keys explicitly dropped in this process
  are excluded from the merge so a drop is not resurrected by a stale
  writer.  A lock that cannot be acquired within the timeout degrades
  to the old last-writer-wins behaviour and reports HCG304; contention
  on a cache must never abort generation.
"""

from __future__ import annotations

import contextlib
import dataclasses
import json
import os
import tempfile
import threading
import time
from pathlib import Path
from typing import Any, Dict, Optional, Set, Tuple, Union

try:  # POSIX only; on other platforms locking degrades gracefully
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None  # type: ignore[assignment]

from repro.diagnostics import DiagnosticsCollector
from repro.dtypes import DataType
from repro.errors import HistoryError

#: parameters that define an intensive actor's "data size"
_SIZE_PARAM_NAMES = ("n", "m", "rows", "cols", "krows", "kcols")

#: current on-disk format; bump when the payload layout changes
SCHEMA_VERSION = 2

#: advisory-lock acquisition: total budget and backoff bounds (seconds)
LOCK_TIMEOUT = 5.0
_LOCK_RETRY_INITIAL = 0.005
_LOCK_RETRY_MAX = 0.1


def size_signature(params: Dict[str, Any]) -> Tuple[Tuple[str, int], ...]:
    """The canonical size key of an intensive actor's parameters."""
    return tuple(
        (name, int(params[name])) for name in _SIZE_PARAM_NAMES if name in params
    )


@dataclasses.dataclass(frozen=True)
class SelectionKey:
    """Identity of one Algorithm 1 decision."""

    actor_key: str
    dtype: DataType
    size: Tuple[Tuple[str, int], ...]

    def to_str(self) -> str:
        size = ",".join(f"{k}={v}" for k, v in self.size)
        return f"{self.actor_key}|{self.dtype.value}|{size}"

    @classmethod
    def from_str(cls, text: str) -> "SelectionKey":
        try:
            actor_key, dtype_name, size_text = text.split("|")
            size = tuple(
                (k, int(v))
                for k, v in (part.split("=") for part in size_text.split(",") if part)
            )
            return cls(actor_key, DataType.from_name(dtype_name), size)
        except (ValueError, KeyError) as exc:
            raise HistoryError(f"malformed selection key {text!r}: {exc}") from exc


class SelectionHistory:
    """In-memory (optionally file-backed) implementation selections.

    Load- and save-time recoveries are recorded on ``self.diagnostics``
    (always permissive — a cache problem must never abort generation);
    the generator drains them into the run's collector.
    """

    def __init__(self, path: Optional[Union[str, Path]] = None,
                 lock_timeout: float = LOCK_TIMEOUT) -> None:
        self._entries: Dict[SelectionKey, str] = {}
        #: keys deliberately forgotten here; excluded from save merges
        self._dropped: Set[SelectionKey] = set()
        self.hits = 0
        self.misses = 0
        self.lock_timeout = lock_timeout
        #: in-process mutex: one history may be shared by the worker
        #: pool of a parallel bench/verify matrix (the fcntl sidecar
        #: below only serialises *across* processes).  Reentrant because
        #: store() holds it across the save()-time disk merge.
        self._mutex = threading.RLock()
        self.diagnostics = DiagnosticsCollector(policy="permissive")
        self.path = Path(path) if path is not None else None
        if self.path is not None and self.path.exists():
            self.load(self.path)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: SelectionKey) -> bool:
        return key in self._entries

    def lookup(self, key: SelectionKey) -> Optional[str]:
        """Lines 3-6: return the cached kernel id, if any."""
        with self._mutex:
            kernel_id = self._entries.get(key)
            if kernel_id is None:
                self.misses += 1
            else:
                self.hits += 1
            return kernel_id

    def store(self, key: SelectionKey, kernel_id: str) -> None:
        """Line 18: record the decision (and persist when file-backed)."""
        with self._mutex:
            self._entries[key] = kernel_id
            self._dropped.discard(key)
            if self.path is not None:
                self.save(self.path)

    def drop(self, key: SelectionKey) -> None:
        """Forget one decision (e.g. its kernel id left the library)."""
        with self._mutex:
            if self._entries.pop(key, None) is not None:
                self._dropped.add(key)
                if self.path is not None:
                    self.save(self.path)

    def prune_stale(self, known_ids) -> Tuple[SelectionKey, ...]:
        """Drop every entry whose kernel id is not in ``known_ids``."""
        with self._mutex:
            stale = tuple(k for k, v in self._entries.items() if v not in known_ids)
            for key in stale:
                self._entries.pop(key, None)
                self._dropped.add(key)
            if stale and self.path is not None:
                self.save(self.path)
            return stale

    def clear(self) -> None:
        with self._mutex:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    # ------------------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0.0 when unused)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def stats(self) -> Dict[str, Union[int, float]]:
        """Cache-effectiveness counters for bench records and reports."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "entries": len(self._entries),
        }

    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def _locked(self, path: Path):
        """Advisory lock on ``<path>.lock``; yields True when held.

        Non-blocking ``flock`` with exponential backoff until
        ``self.lock_timeout``.  On timeout (or a platform without
        ``fcntl``) the caller proceeds unlocked — a contended cache
        degrades to last-writer-wins, it never blocks generation — and
        HCG304 records the contention.
        """
        if fcntl is None:  # pragma: no cover - non-POSIX
            yield False
            return
        lock_path = path.with_name(path.name + ".lock")
        try:
            fd = os.open(str(lock_path), os.O_CREAT | os.O_RDWR, 0o644)
        except OSError as exc:
            self.diagnostics.report(
                "HCG304", f"history lock file unavailable: {exc}",
                location=str(lock_path),
            )
            yield False
            return
        acquired = False
        try:
            deadline = time.monotonic() + self.lock_timeout
            delay = _LOCK_RETRY_INITIAL
            while True:
                try:
                    fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                    acquired = True
                    break
                except OSError:
                    if time.monotonic() >= deadline:
                        break
                    time.sleep(delay)
                    delay = min(delay * 2, _LOCK_RETRY_MAX)
            if not acquired:
                self.diagnostics.report(
                    "HCG304",
                    f"history lock contention: not acquired within "
                    f"{self.lock_timeout:g}s, proceeding unlocked",
                    location=str(lock_path),
                )
            yield acquired
        finally:
            if acquired:
                fcntl.flock(fd, fcntl.LOCK_UN)
            os.close(fd)

    def _disk_entries(self, path: Path) -> Dict[SelectionKey, str]:
        """Best-effort read of the entries currently on disk (for the
        save-time merge).  Anything unreadable merges as empty — the
        load path owns corruption reporting/quarantine."""
        try:
            payload = json.loads(path.read_text())
        except (json.JSONDecodeError, UnicodeDecodeError, OSError):
            return {}
        if (
            not isinstance(payload, dict)
            or payload.get("schema") != SCHEMA_VERSION
            or not isinstance(payload.get("entries"), dict)
        ):
            return {}
        entries: Dict[SelectionKey, str] = {}
        for key_text, kernel_id in payload["entries"].items():
            try:
                key = SelectionKey.from_str(str(key_text))
            except HistoryError:
                continue
            if isinstance(kernel_id, str) and kernel_id:
                entries[key] = kernel_id
        return entries

    def save(self, path: Union[str, Path]) -> None:
        """Locked merge + atomic write.

        Under the advisory lock, entries another process persisted since
        our load are merged in (ours win on conflicts; keys this process
        dropped stay dropped), then the union is written via a temp file
        + ``os.replace`` so readers never observe a partial file.
        """
        path = Path(path)
        with self._mutex, self._locked(path) as held:
            if held:
                for key, kernel_id in self._disk_entries(path).items():
                    if key not in self._entries and key not in self._dropped:
                        self._entries[key] = kernel_id
            self._write(path)

    def _write(self, path: Path) -> None:
        payload = {
            "schema": SCHEMA_VERSION,
            "entries": {
                key.to_str(): kernel_id for key, kernel_id in self._entries.items()
            },
        }
        text = json.dumps(payload, indent=2, sort_keys=True)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                prefix=f".{path.name}.", suffix=".tmp", dir=str(path.parent)
            )
            try:
                with os.fdopen(fd, "w") as handle:
                    handle.write(text)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp_name, path)
            except BaseException:
                os.unlink(tmp_name)
                raise
        except OSError as exc:
            # A read-only cache directory must not abort generation.
            self.diagnostics.report(
                "HCG304", f"history not persisted: {exc}", location=str(path)
            )

    def load(self, path: Union[str, Path]) -> None:
        """Merge a history file; quarantine it wholesale if unreadable.

        Runs under the advisory lock so a reader never races a writer's
        quarantine rename (the atomic-replace save already guarantees
        the file content itself is never partial).
        """
        path = Path(path)
        with self._mutex, self._locked(path):
            self._load_unlocked(path)

    def _load_unlocked(self, path: Path) -> None:
        try:
            payload = json.loads(path.read_text())
        except (json.JSONDecodeError, UnicodeDecodeError, OSError) as exc:
            self._quarantine(path, f"unreadable history file: {exc}", code="HCG301")
            return
        if (
            not isinstance(payload, dict)
            or payload.get("schema") != SCHEMA_VERSION
            or not isinstance(payload.get("entries"), dict)
        ):
            found = payload.get("schema") if isinstance(payload, dict) else None
            self._quarantine(
                path,
                f"schema {found!r} != {SCHEMA_VERSION}; rebuilding",
                code="HCG303",
            )
            return
        for key_text, kernel_id in payload["entries"].items():
            try:
                key = SelectionKey.from_str(str(key_text))
                if not isinstance(kernel_id, str) or not kernel_id:
                    raise HistoryError(f"kernel id must be a string, got {kernel_id!r}")
            except HistoryError as exc:
                self.diagnostics.report("HCG302", str(exc), location=str(path))
                continue
            self._entries[key] = kernel_id

    # ------------------------------------------------------------------
    def _quarantine(self, path: Path, reason: str, code: str) -> None:
        """Move a bad file aside (``<name>.corrupt``) and start empty."""
        quarantine = path.with_name(path.name + ".corrupt")
        try:
            os.replace(path, quarantine)
            detail = f"{reason}; quarantined to {quarantine.name}"
        except OSError as exc:
            detail = f"{reason}; quarantine failed ({exc}), ignoring file"
        self.diagnostics.report(code, detail, location=str(path))
