"""The selection history of Algorithm 1 (lines 1-6 and 18).

Pre-calculation is expensive (every candidate implementation runs on
test data), so HCG caches decisions keyed by (actor type, data type,
data size) and answers repeats from the history.  The history can
persist to JSON so repeated tool invocations skip pre-calculation too.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from repro.dtypes import DataType

#: parameters that define an intensive actor's "data size"
_SIZE_PARAM_NAMES = ("n", "m", "rows", "cols", "krows", "kcols")


def size_signature(params: Dict[str, Any]) -> Tuple[Tuple[str, int], ...]:
    """The canonical size key of an intensive actor's parameters."""
    return tuple(
        (name, int(params[name])) for name in _SIZE_PARAM_NAMES if name in params
    )


@dataclasses.dataclass(frozen=True)
class SelectionKey:
    """Identity of one Algorithm 1 decision."""

    actor_key: str
    dtype: DataType
    size: Tuple[Tuple[str, int], ...]

    def to_str(self) -> str:
        size = ",".join(f"{k}={v}" for k, v in self.size)
        return f"{self.actor_key}|{self.dtype.value}|{size}"

    @classmethod
    def from_str(cls, text: str) -> "SelectionKey":
        actor_key, dtype_name, size_text = text.split("|")
        size = tuple(
            (k, int(v)) for k, v in (part.split("=") for part in size_text.split(",") if part)
        )
        return cls(actor_key, DataType.from_name(dtype_name), size)


class SelectionHistory:
    """In-memory (optionally file-backed) implementation selections."""

    def __init__(self, path: Optional[Union[str, Path]] = None) -> None:
        self._entries: Dict[SelectionKey, str] = {}
        self.hits = 0
        self.misses = 0
        self.path = Path(path) if path is not None else None
        if self.path is not None and self.path.exists():
            self.load(self.path)

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: SelectionKey) -> Optional[str]:
        """Lines 3-6: return the cached kernel id, if any."""
        kernel_id = self._entries.get(key)
        if kernel_id is None:
            self.misses += 1
        else:
            self.hits += 1
        return kernel_id

    def store(self, key: SelectionKey, kernel_id: str) -> None:
        """Line 18: record the decision (and persist when file-backed)."""
        self._entries[key] = kernel_id
        if self.path is not None:
            self.save(self.path)

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def save(self, path: Union[str, Path]) -> None:
        payload = {key.to_str(): kernel_id for key, kernel_id in self._entries.items()}
        Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))

    def load(self, path: Union[str, Path]) -> None:
        payload = json.loads(Path(path).read_text())
        for key_text, kernel_id in payload.items():
            self._entries[SelectionKey.from_str(key_text)] = kernel_id
