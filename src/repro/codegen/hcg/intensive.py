"""Algorithm 1: implementation selection for intensive computing actors.

For each intensive actor, HCG adaptively pre-calculates: it runs every
library implementation that can handle the actor's (data type, data
size) on randomly generated test input, measures the cost, and keeps
the cheapest.  Decisions are cached in the selection history.

Selection is fault-isolated per candidate: one implementation that
raises (anything — not just a domain refusal) is excluded and recorded
as a diagnostic, and if *every* candidate fails the library's general
implementation is still returned, so a broken library entry degrades
one actor's code instead of aborting the run.  Cached decisions are
validated against the library before use; a stale kernel id is dropped
and the actor re-selected.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

import numpy as np

from repro.arch.cost import CostTable
from repro.diagnostics import DiagnosticsCollector
from repro.dtypes import DataType
from repro.errors import KernelDomainError
from repro.codegen.hcg.history import SelectionHistory, SelectionKey, size_signature
from repro.isa.spec import InstructionSet
from repro.kernels.base import Kernel
from repro.kernels.library import CodeLibrary
from repro.model.actor import Actor
from repro.model.actor_defs import actor_def
from repro.observability.metrics import COUNTERS, SPANS
from repro.observability.tracer import NULL_TRACER


@dataclasses.dataclass
class SelectionRecord:
    """Trace of one Algorithm 1 run (for reports and tests)."""

    key: SelectionKey
    chosen: str
    from_history: bool
    measured: Dict[str, float] = dataclasses.field(default_factory=dict)
    #: kernel ids excluded because their measurement raised unexpectedly
    faulted: List[str] = dataclasses.field(default_factory=list)


def generate_test_input(actor: Actor, seed: int) -> List[np.ndarray]:
    """Line 10's ``generateTestInput``: random data of the actor's shapes.

    Matrix-inversion inputs are made diagonally dominant so the probe
    run does not hit a singular matrix.
    """
    rng = np.random.default_rng(seed)
    arrays: List[np.ndarray] = []
    for port in actor.inputs:
        shape = port.shape or (1,)
        data = rng.uniform(-1.0, 1.0, size=shape)
        if actor.actor_type in ("MatInv",) and len(shape) == 2 and shape[0] == shape[1]:
            data = data + np.eye(shape[0]) * shape[0]
        if port.dtype.is_integer:
            data = np.round(data * 100)
        arrays.append(data.astype(port.dtype.numpy_dtype))
    return arrays


class IntensiveSynthesizer:
    """Algorithm 1, parameterised by library, cost table and history."""

    def __init__(
        self,
        library: CodeLibrary,
        cost: CostTable,
        instruction_set: InstructionSet,
        history: Optional[SelectionHistory] = None,
        diagnostics: Optional[DiagnosticsCollector] = None,
        tracer=None,
    ) -> None:
        self.library = library
        self.cost = cost
        self.iset = instruction_set
        self.history = history if history is not None else SelectionHistory()
        self.diagnostics = (
            diagnostics if diagnostics is not None else DiagnosticsCollector("permissive")
        )
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.records: List[SelectionRecord] = []

    # ------------------------------------------------------------------
    def select(self, actor: Actor) -> Kernel:
        """Return the optimal implementation for this actor instance."""
        with self.tracer.span(SPANS.ALG1_SELECT, actor=actor.name) as span:
            return self._select(actor, span)

    def _select(self, actor: Actor, span) -> Kernel:
        defn = actor_def(actor.actor_type)
        assert defn.kernel_key is not None, "select() requires an intensive actor"
        dtype = actor.outputs[0].dtype
        key = SelectionKey(defn.kernel_key, dtype, size_signature(actor.params))

        # Lines 3-6: history short-circuit — but only if the cached id
        # still names a library kernel (the library may have changed
        # since the history file was written).
        cached = self.history.lookup(key)
        if cached is not None:
            if self.library.has_id(cached):
                self.tracer.count(COUNTERS.ALG1_HISTORY_HITS)
                span.set(cache_hit=True, chosen=cached)
                self.records.append(SelectionRecord(key, cached, from_history=True))
                return self.library.by_id(cached)
            self.history.drop(key)
            self.diagnostics.report(
                "HCG204",
                f"cached kernel {cached!r} no longer in library; re-selecting",
                actor=actor.name,
            )
        self.tracer.count(COUNTERS.ALG1_HISTORY_MISSES)

        # Lines 7-9: load the library, default to the general impl.
        implementations = self.library.implementations(defn.kernel_key)
        best = self.library.general_implementation(defn.kernel_key)
        min_cost = float("inf")
        lanes = self._lanes(dtype)

        # Line 10: random test input sized like the actor's ports.
        seed = abs(hash(key.to_str())) % (2 ** 32)
        test_input = generate_test_input(actor, seed)

        record = SelectionRecord(key, best.kernel_id, from_history=False)
        # Lines 11-17: filter, run, keep the cheapest.  Candidates are
        # fault-isolated: one that raises is excluded, not fatal.
        for impl in implementations:
            try:
                if not impl.can_handle(dtype, actor.params):
                    continue
                with self.tracer.span(
                    SPANS.ALG1_CANDIDATE, kernel=impl.kernel_id, actor=actor.name
                ) as candidate_span:
                    cost = impl.measure_cycles(
                        test_input, actor.params, dtype, self.cost, lanes
                    )
                    candidate_span.set(cost=cost)
            except KernelDomainError:
                continue  # expected: outside the impl's (dtype, size) domain
            except Exception as exc:  # fault-isolation: one candidate must not abort selection
                record.faulted.append(impl.kernel_id)
                self.tracer.count(COUNTERS.ALG1_CANDIDATES_FAULTED)
                self.diagnostics.report(
                    "HCG202",
                    f"candidate {impl.kernel_id!r} raised "
                    f"{type(exc).__name__} during pre-calculation: {exc}",
                    actor=actor.name,
                )
                continue
            self.tracer.count(COUNTERS.ALG1_CANDIDATES_MEASURED)
            record.measured[impl.kernel_id] = cost
            if cost < min_cost:
                best = impl
                min_cost = cost

        if record.faulted and not record.measured:
            # Every runnable candidate faulted — degraded to the general
            # implementation without a measurement backing the choice.
            self.diagnostics.report(
                "HCG203",
                f"all {len(record.faulted)} candidate(s) failed pre-calculation; "
                f"using general implementation {best.kernel_id!r}",
                actor=actor.name,
            )

        # Line 18: persist the decision (but never cache a degraded
        # fallback — the library fault may be transient).
        if record.measured or not record.faulted:
            self.history.store(key, best.kernel_id)
        record.chosen = best.kernel_id
        span.set(
            cache_hit=False,
            chosen=best.kernel_id,
            candidates=len(record.measured),
            faulted=len(record.faulted),
        )
        self.records.append(record)
        return best

    # ------------------------------------------------------------------
    def _lanes(self, dtype: DataType) -> int:
        if self.iset.vector_bits % dtype.bit_width != 0:
            return 1
        return self.iset.lanes_for(dtype)
