"""Algorithm 1: implementation selection for intensive computing actors.

For each intensive actor, HCG adaptively pre-calculates: it runs every
library implementation that can handle the actor's (data type, data
size) on randomly generated test input, measures the cost, and keeps
the cheapest.  Decisions are cached in the selection history.

Selection is fault-isolated per candidate: one implementation that
raises (anything — not just a domain refusal) is excluded and recorded
as a diagnostic, and if *every* candidate fails the library's general
implementation is still returned, so a broken library entry degrades
one actor's code instead of aborting the run.  Cached decisions are
validated against the library before use; a stale kernel id is dropped
and the actor re-selected.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

import numpy as np

from repro.arch.cost import CostTable
from repro.diagnostics import DiagnosticsCollector
from repro.dtypes import DataType
from repro.errors import KernelDomainError
from repro.codegen.hcg.history import SelectionHistory, SelectionKey, size_signature
from repro.isa.spec import InstructionSet
from repro.kernels.base import Kernel
from repro.kernels.library import CodeLibrary
from repro.model.actor import Actor
from repro.model.actor_defs import actor_def
from repro.observability.metrics import COUNTERS, SPANS
from repro.observability.tracer import NULL_TRACER


@dataclasses.dataclass
class SelectionRecord:
    """Trace of one Algorithm 1 run (for reports and tests)."""

    key: SelectionKey
    chosen: str
    from_history: bool
    measured: Dict[str, float] = dataclasses.field(default_factory=dict)
    #: kernel ids excluded because their measurement raised unexpectedly
    faulted: List[str] = dataclasses.field(default_factory=list)


def generate_test_input(actor: Actor, seed: int) -> List[np.ndarray]:
    """Line 10's ``generateTestInput``: random data of the actor's shapes.

    Matrix-inversion inputs are made diagonally dominant so the probe
    run does not hit a singular matrix.
    """
    rng = np.random.default_rng(seed)
    arrays: List[np.ndarray] = []
    for port in actor.inputs:
        shape = port.shape or (1,)
        data = rng.uniform(-1.0, 1.0, size=shape)
        if actor.actor_type in ("MatInv",) and len(shape) == 2 and shape[0] == shape[1]:
            data = data + np.eye(shape[0]) * shape[0]
        if port.dtype.is_integer:
            data = np.round(data * 100)
        arrays.append(data.astype(port.dtype.numpy_dtype))
    return arrays


class IntensiveSynthesizer:
    """Algorithm 1, parameterised by library, cost table and history."""

    def __init__(
        self,
        library: CodeLibrary,
        cost: CostTable,
        instruction_set: InstructionSet,
        history: Optional[SelectionHistory] = None,
        diagnostics: Optional[DiagnosticsCollector] = None,
        tracer=None,
        timings=None,
        executor=None,
    ) -> None:
        self.library = library
        self.cost = cost
        self.iset = instruction_set
        self.history = history if history is not None else SelectionHistory()
        self.diagnostics = (
            diagnostics if diagnostics is not None else DiagnosticsCollector("permissive")
        )
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: optional repro.service.cache.TimingCache — the fine cache
        #: layer: candidate measurements keyed by (selection key, kernel,
        #: lanes) survive even when the selection itself must be redone
        self.timings = timings
        #: optional repro.service.executor.ParallelExecutor fanning the
        #: candidate measurements of one selection out over a pool
        self.executor = executor
        self.records: List[SelectionRecord] = []

    # ------------------------------------------------------------------
    def select(self, actor: Actor) -> Kernel:
        """Return the optimal implementation for this actor instance."""
        with self.tracer.span(SPANS.ALG1_SELECT, actor=actor.name) as span:
            return self._select(actor, span)

    def _select(self, actor: Actor, span) -> Kernel:
        defn = actor_def(actor.actor_type)
        assert defn.kernel_key is not None, "select() requires an intensive actor"
        dtype = actor.outputs[0].dtype
        key = SelectionKey(defn.kernel_key, dtype, size_signature(actor.params))

        # Lines 3-6: history short-circuit — but only if the cached id
        # still names a library kernel (the library may have changed
        # since the history file was written).
        cached = self.history.lookup(key)
        if cached is not None:
            if self.library.has_id(cached):
                self.tracer.count(COUNTERS.ALG1_HISTORY_HITS)
                span.set(cache_hit=True, chosen=cached)
                self.records.append(SelectionRecord(key, cached, from_history=True))
                return self.library.by_id(cached)
            self.history.drop(key)
            self.diagnostics.report(
                "HCG204",
                f"cached kernel {cached!r} no longer in library; re-selecting",
                actor=actor.name,
            )
        self.tracer.count(COUNTERS.ALG1_HISTORY_MISSES)

        # Lines 7-9: load the library, default to the general impl.
        implementations = self.library.implementations(defn.kernel_key)
        best = self.library.general_implementation(defn.kernel_key)
        min_cost = float("inf")
        lanes = self._lanes(dtype)

        # Line 10: random test input sized like the actor's ports.
        seed = abs(hash(key.to_str())) % (2 ** 32)
        test_input = generate_test_input(actor, seed)

        record = SelectionRecord(key, best.kernel_id, from_history=False)
        # Lines 11-17: filter, run, keep the cheapest.  Candidates are
        # fault-isolated: one that raises is excluded, not fatal.  The
        # measurements may run on a worker pool; classification below is
        # always in implementations order, so the chosen kernel and the
        # diagnostics sequence are identical at jobs=1 and jobs=N.
        outcomes = self._measure_candidates(
            actor, key, implementations, dtype, lanes, test_input
        )
        for impl, status, payload in outcomes:
            if status == "skip":
                continue
            if status == "fault":
                record.faulted.append(impl.kernel_id)
                self.tracer.count(COUNTERS.ALG1_CANDIDATES_FAULTED)
                self.diagnostics.report(
                    "HCG202",
                    f"candidate {impl.kernel_id!r} raised "
                    f"{type(payload).__name__} during pre-calculation: {payload}",
                    actor=actor.name,
                )
                continue
            cost = payload
            if status == "measured":
                self.tracer.count(COUNTERS.ALG1_CANDIDATES_MEASURED)
                if self.timings is not None:
                    self.timings.store(
                        self.timings.key_for(key.to_str(), impl.kernel_id, lanes),
                        cost,
                    )
            record.measured[impl.kernel_id] = cost
            if cost < min_cost:
                best = impl
                min_cost = cost

        if record.faulted and not record.measured:
            # Every runnable candidate faulted — degraded to the general
            # implementation without a measurement backing the choice.
            self.diagnostics.report(
                "HCG203",
                f"all {len(record.faulted)} candidate(s) failed pre-calculation; "
                f"using general implementation {best.kernel_id!r}",
                actor=actor.name,
            )

        # Line 18: persist the decision (but never cache a degraded
        # fallback — the library fault may be transient).
        if record.measured or not record.faulted:
            self.history.store(key, best.kernel_id)
        record.chosen = best.kernel_id
        span.set(
            cache_hit=False,
            chosen=best.kernel_id,
            candidates=len(record.measured),
            faulted=len(record.faulted),
        )
        self.records.append(record)
        return best

    # ------------------------------------------------------------------
    def _measure_candidates(self, actor: Actor, key: SelectionKey,
                            implementations, dtype: DataType, lanes: int,
                            test_input):
        """Measure every candidate; results come back in library order.

        Each candidate resolves to one of ``(impl, status, payload)``:
        ``("cached", cost)`` — timing-cache hit, no run needed;
        ``("measured", cost)`` — freshly measured; ``("skip", None)`` —
        filtered out or a domain refusal; ``("fault", exc)`` — the
        measurement raised unexpectedly.

        Cache-missed candidates run on ``self.executor``'s pool when one
        is attached; workers are pure (no tracer, no diagnostics — both
        are emitted afterwards on the calling thread), so parallel and
        serial selections are observably identical apart from wall time.
        """
        key_str = key.to_str()
        results = [None] * len(implementations)
        pending = []
        for position, impl in enumerate(implementations):
            cached = None
            if self.timings is not None:
                cached = self.timings.lookup(
                    self.timings.key_for(key_str, impl.kernel_id, lanes)
                )
                self.tracer.count(
                    COUNTERS.ALG1_TIMING_HITS if cached is not None
                    else COUNTERS.ALG1_TIMING_MISSES
                )
            if cached is not None:
                results[position] = (impl, "cached", cached)
            else:
                pending.append((position, impl))

        fan_out = (
            self.executor is not None
            and getattr(self.executor, "jobs", 1) > 1
            and len(pending) > 1
        )
        if fan_out:
            def run(item):
                _, impl = item
                if not impl.can_handle(dtype, actor.params):
                    return None
                return impl.measure_cycles(
                    test_input, actor.params, dtype, self.cost, lanes
                )

            outcomes = self.executor.map(
                run, pending, label=lambda index, item: item[1].kernel_id
            )
            for (position, impl), outcome in zip(pending, outcomes):
                if outcome.error is not None:
                    if isinstance(outcome.error, KernelDomainError):
                        results[position] = (impl, "skip", None)
                    else:
                        results[position] = (impl, "fault", outcome.error)
                elif outcome.value is None:
                    results[position] = (impl, "skip", None)
                else:
                    with self.tracer.span(
                        SPANS.ALG1_CANDIDATE, kernel=impl.kernel_id,
                        actor=actor.name,
                    ) as candidate_span:
                        candidate_span.set(cost=outcome.value, parallel=True)
                    results[position] = (impl, "measured", outcome.value)
            return results

        for position, impl in pending:
            try:
                if not impl.can_handle(dtype, actor.params):
                    results[position] = (impl, "skip", None)
                    continue
                with self.tracer.span(
                    SPANS.ALG1_CANDIDATE, kernel=impl.kernel_id, actor=actor.name
                ) as candidate_span:
                    cost = impl.measure_cycles(
                        test_input, actor.params, dtype, self.cost, lanes
                    )
                    candidate_span.set(cost=cost)
            except KernelDomainError:
                results[position] = (impl, "skip", None)
            except Exception as exc:  # fault-isolation: one candidate must not abort selection
                results[position] = (impl, "fault", exc)
            else:
                results[position] = (impl, "measured", cost)
        return results

    # ------------------------------------------------------------------
    def _lanes(self, dtype: DataType) -> int:
        if self.iset.vector_bits % dtype.bit_width != 0:
            return 1
        return self.iset.lanes_for(dtype)
