"""The directed dataflow graph of a batch group (§3.2.2, Fig. 4(b)).

Each node is one batch computing actor; node inputs are either other
nodes' outputs or *external* values (signal buffers produced outside
the group — inports, constants, earlier units).  Nodes also remember
whether anything *outside* the group consumes their output: those
values must be stored back to memory, everything else lives entirely
in vector registers (the paper's key efficiency claim).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.dtypes import DataType
from repro.codegen.common import CodegenContext, PortKey
from repro.codegen.hcg.dispatch import BatchGroup
from repro.model.actor_defs import actor_def


@dataclasses.dataclass(frozen=True)
class ExtInput:
    """A value entering the group from outside: a signal buffer."""

    key: PortKey
    dtype: DataType


@dataclasses.dataclass(frozen=True)
class NodeInput:
    """A value produced by another node of the group."""

    node: str  # node (= actor) name


ValueRef = object  # ExtInput | NodeInput


@dataclasses.dataclass
class DfgNode:
    """One batch actor inside the group's dataflow graph."""

    name: str
    op: str
    dtype: DataType
    inputs: Tuple[ValueRef, ...]
    imm: Optional[int] = None
    #: group-internal consumers (node names)
    internal_consumers: Tuple[str, ...] = ()
    #: True when a non-group actor (or nothing at all) uses the output,
    #: so the value must be stored to its signal buffer
    needs_store: bool = False
    #: for Cast nodes: the operand dtype
    src_dtype: Optional[DataType] = None


class Dfg:
    """The group's dataflow graph, nodes in schedule order."""

    def __init__(self, nodes: List[DfgNode]) -> None:
        self.nodes = nodes
        self._by_name = {node.name: node for node in nodes}

    def node(self, name: str) -> DfgNode:
        return self._by_name[name]

    def __len__(self) -> int:
        return len(self.nodes)

    @property
    def external_inputs(self) -> Tuple[ExtInput, ...]:
        """Distinct external inputs, in first-use order."""
        seen: List[ExtInput] = []
        for node in self.nodes:
            for ref in node.inputs:
                if isinstance(ref, ExtInput) and ref not in seen:
                    seen.append(ref)
        return tuple(seen)

    @property
    def stored_nodes(self) -> Tuple[DfgNode, ...]:
        return tuple(node for node in self.nodes if node.needs_store)


def build_dfg(ctx: CodegenContext, group: BatchGroup) -> Dfg:
    """Construct the dataflow graph for one batch group."""
    from repro import ops as op_table

    members = set(group.members)
    nodes: List[DfgNode] = []
    consumers: Dict[str, List[str]] = {name: [] for name in group.members}

    for name in group.members:
        actor = ctx.model.actor(name)
        defn = actor_def(actor.actor_type)
        info = op_table.op_info(defn.op_name)
        refs: List[ValueRef] = []
        for position in range(info.arity):
            source = ctx.driver(name, f"in{position + 1}")
            src_actor, _src_port = source
            if src_actor in members:
                refs.append(NodeInput(src_actor))
                consumers[src_actor].append(name)
            else:
                src_dtype = ctx.model.actor(src_actor).output(_src_port).dtype
                refs.append(ExtInput(source, src_dtype))
        imm = int(actor.params["shift"]) if info.needs_imm else None
        src_dtype = actor.inputs[0].dtype if defn.op_name == "Cast" else None
        nodes.append(
            DfgNode(
                name=name,
                op=defn.op_name,
                dtype=actor.output("out").dtype,
                inputs=tuple(refs),
                imm=imm,
                src_dtype=src_dtype,
            )
        )

    for node in nodes:
        outside = [
            c for c in ctx.consumers(node.name, "out") if c.dst_actor not in members
        ]
        node.internal_consumers = tuple(consumers[node.name])
        node.needs_store = bool(outside) or not consumers[node.name]

    return Dfg(nodes)
