"""Indexed subgraph matching for Algorithm 2 (the fast path).

The naive mapping loop re-enumerates every convex subgraph around the
current seed on every round, walks the whole dependence cone of the
group per convexity check, and scans the whole instruction registry per
candidate.  On a group with hundreds of actors that adds up to tens of
milliseconds before matching even starts.  This module replaces it with
four ideas (docs/algorithms.md#indexed-matching):

* a :class:`PatternTrie` over the instruction set, keyed on the pattern
  root's op, dtype, lane count and node count, so matching a candidate
  touches only the handful of specs that could possibly bind;
* a one-time *candidate pool*: every connected single-sink node set of
  the group up to the instruction set's maximum pattern size, filtered
  for depth and convexity once.  Node sets are integer bitmasks over
  the group's topological order, and convexity is one bitwise-AND
  against precomputed reachability bitsets instead of a graph walk;
* memoized matching at two levels: per candidate (so a candidate that
  was matched once is never matched again) and per *structural
  signature* (so the hundredth ``Mul(prev, const)`` actor reuses the
  binding shape computed for the first);
* incremental re-matching: accepting a subgraph invalidates exactly the
  candidates that overlap it (and their memoized match results) instead
  of recomputing the group.

Selection is bit-exact with the naive enumerator: candidates are
ordered by the same ``(-cost, sorted members)`` key, trie leaves are
sorted cheapest-first with a stable sort so registry order breaks cost
ties exactly like the naive cheapest-wins scan, and the pool's
single-sink filter only drops sets the naive matcher enumerates and
then discards (a multi-output set can never match a one-result SIMD
instruction).  The differential verifier cross-checks this equivalence
(tests/codegen/test_matcher_equivalence.py).
"""

from __future__ import annotations

import functools
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from repro import ops
from repro.codegen.hcg.dfg import Dfg, NodeInput
from repro.codegen.hcg.subgraphs import (
    Match,
    Subgraph,
    _depth,
    _try_match,
    extend_subgraphs,
    match_instruction,
)
from repro.isa.spec import InstructionSet, InstructionSpec
from repro.observability.metrics import COUNTERS, SPANS
from repro.observability.tracer import NULL_TRACER

#: the matcher kinds CodegenOptions accepts
MATCHERS = ("indexed", "naive")

#: sentinel distinguishing "signature never seen" from "seen, no match"
_MISS = object()


# ---------------------------------------------------------------------------
# Pattern trie
# ---------------------------------------------------------------------------

class PatternTrie:
    """Instruction specs indexed by root op / dtype / lanes / node count.

    The four key components form a fixed-depth trie of nested dicts; a
    leaf holds every spec sharing that key path, sorted cheapest-first.
    The sort is stable, so specs of equal cost keep registry order and
    the first successful binding is exactly the one the naive
    cheapest-wins scan would keep.
    """

    def __init__(self, iset: InstructionSet) -> None:
        root: Dict[str, Dict] = {}
        for spec in iset.instructions:
            by_dtype = root.setdefault(spec.root.op, {})
            by_lanes = by_dtype.setdefault(spec.dtype, {})
            by_count = by_lanes.setdefault(spec.lanes, {})
            by_count.setdefault(spec.node_count, []).append(spec)
        for by_dtype in root.values():
            for by_lanes in by_dtype.values():
                for by_count in by_lanes.values():
                    for count in by_count:
                        by_count[count] = tuple(
                            sorted(by_count[count], key=lambda s: s.cost)
                        )
        self._root = root
        self._size = len(iset.instructions)

    def lookup(self, op, dtype, lanes: int, node_count: int) -> Tuple[InstructionSpec, ...]:
        """Specs whose pattern root carries this exact key, cheapest first."""
        by_dtype = self._root.get(op)
        if by_dtype is None:
            return ()
        by_lanes = by_dtype.get(dtype)
        if by_lanes is None:
            return ()
        by_count = by_lanes.get(lanes)
        if by_count is None:
            return ()
        return by_count.get(node_count, ())

    def sizes(self, op, dtype, lanes: int) -> Dict[int, Tuple[InstructionSpec, ...]]:
        """The node-count leaf map under an (op, dtype, lanes) prefix.

        Lets callers hoist the three outer dict hops when probing many
        node counts for the same root — ``size in trie.sizes(...)`` is
        then one membership test per candidate.
        """
        by_dtype = self._root.get(op)
        if by_dtype is None:
            return {}
        by_lanes = by_dtype.get(dtype)
        if by_lanes is None:
            return {}
        return by_lanes.get(lanes, {})

    def __len__(self) -> int:
        return self._size

    @property
    def leaves(self) -> int:
        """Number of distinct key paths."""
        return sum(
            len(by_count)
            for by_dtype in self._root.values()
            for by_lanes in by_dtype.values()
            for by_count in by_lanes.values()
        )


@functools.lru_cache(maxsize=32)
def pattern_trie(iset: InstructionSet) -> PatternTrie:
    """The trie of one instruction set, built once per process."""
    return PatternTrie(iset)


# ---------------------------------------------------------------------------
# Candidate pool
# ---------------------------------------------------------------------------

class Candidate:
    """One statically-enumerated convex single-sink subgraph.

    The :class:`~repro.codegen.hcg.subgraphs.Subgraph` value and the
    dependency frozenset are materialised lazily — the build loop only
    pays for the cheap tuple fields, and roughly half the pool is never
    queried before it dies to an overlapping acceptance.
    """

    __slots__ = ("member_names", "sink", "cost", "dep_names",
                 "deps_mask", "mask", "key", "_subgraph")

    def __init__(
        self,
        member_names: Tuple[str, ...],
        sink: str,
        cost,
        dep_names: Tuple[str, ...],
        deps_mask: int,
        mask: int,
        key: Tuple,
    ) -> None:
        #: member names in topological (= bit) order
        self.member_names = member_names
        self.sink = sink
        self.cost = cost
        #: producers outside the set feeding it; the set is *independent*
        #: exactly when every one of them is already mapped
        self.dep_names = dep_names
        self.deps_mask = deps_mask
        self.mask = mask
        #: largest-cost-first order key, identical to the naive sort
        self.key = key
        self._subgraph: Optional[Subgraph] = None

    @property
    def subgraph(self) -> Subgraph:
        subgraph = self._subgraph
        if subgraph is None:
            subgraph = self._subgraph = Subgraph(
                members=frozenset(self.member_names),
                sink=self.sink,
                cost=self.cost,
            )
        return subgraph

    @property
    def deps(self) -> FrozenSet[str]:
        return frozenset(self.dep_names)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Candidate({sorted(self.member_names)}, sink={self.sink!r})"


def _bits(mask: int) -> Iterator[int]:
    """Set bit indices of ``mask``, lowest first."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def group_adjacency(dfg: Dfg) -> Dict[str, Tuple[str, ...]]:
    """Undirected in-group neighbours of every node, computed once."""
    adjacency: Dict[str, Set[str]] = {node.name: set() for node in dfg.nodes}
    for node in dfg.nodes:
        for ref in node.inputs:
            if isinstance(ref, NodeInput):
                adjacency[node.name].add(ref.node)
        adjacency[node.name].update(node.internal_consumers)
    return {name: tuple(peers) for name, peers in adjacency.items()}


def _connected_masks(adjacency: List[int], max_nodes: int) -> List[int]:
    """Every connected node set with at most ``max_nodes`` members, as
    bitmasks over node indices.  Growth only ever crosses edges between
    final members, so this is the union of the naive per-seed
    enumerations."""
    if max_nodes <= 2:
        # Every packaged ISA tops out at two-node patterns, where the
        # answer is just singletons plus adjacent pairs — no worklist
        # or dedup needed (each pair appears once, from its lower end).
        out = []
        for i, adjacent in enumerate(adjacency):
            bit = 1 << i
            out.append(bit)
            if max_nodes < 2:
                continue
            rest = adjacent >> (i + 1)
            offset = i + 1
            while rest:
                low = rest & -rest
                out.append(bit | (low << offset))
                rest ^= low
        return out
    seen: Set[int] = set()
    out: List[int] = []
    frontier: List[int] = [1 << i for i in range(len(adjacency))]
    while frontier:
        current = frontier.pop()
        if current in seen:
            continue
        seen.add(current)
        out.append(current)
        if current.bit_count() >= max_nodes:
            continue
        neighbours = 0
        rest = current
        while rest:
            low = rest & -rest
            neighbours |= adjacency[low.bit_length() - 1]
            rest ^= low
        # Growing only with indices above the set's minimum still
        # reaches every connected set (build it from its lowest member
        # outward) while pruning duplicate frontier entries.
        neighbours &= ~current & ~((current & -current) - 1)
        while neighbours:
            low = neighbours & -neighbours
            frontier.append(current | low)
            neighbours ^= low
    return out


def connected_sets(dfg: Dfg, max_nodes: int) -> Set[FrozenSet[str]]:
    """Every connected node set of the group with at most ``max_nodes``
    members, as frozensets of node names (test/debug convenience; the
    matcher itself stays in bitmask form)."""
    names = [node.name for node in dfg.nodes]
    position = {name: i for i, name in enumerate(names)}
    adjacency = [0] * len(names)
    for name, peers in group_adjacency(dfg).items():
        mask = 0
        for peer in peers:
            mask |= 1 << position[peer]
        adjacency[position[name]] = mask
    return {
        frozenset(names[i] for i in _bits(mask))
        for mask in _connected_masks(adjacency, max_nodes)
    }


class IndexedGroupMatcher:
    """Incremental largest-first matcher over a static candidate pool.

    Build once per batch group, then drive the Algorithm 2 loop with
    :meth:`match_from` and :meth:`invalidate`.  The pool enumerates the
    group a single time; each round is a walk of the seed's (pre-sorted)
    candidate list with one bitmask independence test per candidate and
    memoized instruction matching.
    """

    kind = "indexed"

    def __init__(self, dfg: Dfg, iset: InstructionSet, tracer=NULL_TRACER) -> None:
        self.dfg = dfg
        self.iset = iset
        self.tracer = tracer
        self.trie = pattern_trie(iset)
        self._max_nodes = iset.max_node_count
        self._max_depth = iset.max_depth
        nodes = list(dfg.nodes)
        #: node order = schedule order = topological order (edges only
        #: ever point forward in dfg.nodes); bit ``i`` of every mask in
        #: this matcher refers to ``nodes[i]``
        self._names = [node.name for node in nodes]
        self._position = {node.name: i for i, node in enumerate(nodes)}
        self._node = {node.name: node for node in nodes}
        count = len(nodes)
        cons_mask = [0] * count
        dep_mask = [0] * count
        position = self._position
        for i, node in enumerate(nodes):
            mask = 0
            for consumer in node.internal_consumers:
                mask |= 1 << position[consumer]
            cons_mask[i] = mask
            mask = 0
            for ref in node.inputs:
                if isinstance(ref, NodeInput):
                    mask |= 1 << position[ref.node]
            dep_mask[i] = mask
        #: transitive in-group consumers of every node, as bitsets; a
        #: convexity check is then one AND per escaping edge
        reach = [0] * count
        for i in range(count - 1, -1, -1):
            acc = 0
            rest = cons_mask[i]
            while rest:
                low = rest & -rest
                acc |= low | reach[low.bit_length() - 1]
                rest ^= low
            reach[i] = acc
        self._cons_mask = cons_mask
        self._dep_mask = dep_mask
        self._reach = reach
        self._adj_mask = [cons_mask[i] | dep_mask[i] for i in range(count)]
        self._store = [node.needs_store for node in nodes]
        self._cost = [ops.op_info(node.op).base_cost for node in nodes]
        #: per node, the trie leaf map keyed by candidate size for the
        #: node as root — hoists the trie walk out of the build loop
        lanes_of: Dict[object, int] = {}
        sizes_of = []
        for node in nodes:
            lanes = lanes_of.get(node.dtype)
            if lanes is None:
                lanes = lanes_of[node.dtype] = iset.lanes_for(node.dtype)
            sizes_of.append(self.trie.sizes(node.op, node.dtype, lanes))
        self._sizes_of = sizes_of
        self._convexity: Dict[FrozenSet[str], bool] = {}
        self._match_memo: Dict[int, Optional[Match]] = {}
        self._sig_memo: Dict[Tuple, object] = {}
        self._pool: List[Candidate] = []
        self._alive: List[bool] = []
        self._by_node: Dict[str, List[int]] = {name: [] for name in self._names}
        self._mapped_mask = 0
        self._mapped_obj: Optional[Set[str]] = None
        self._mapped_count = -1
        #: single-sink convex candidates in the pool (metrics; the naive
        #: matcher's figure counts re-enumerations including sink-less
        #: sets, this one counts each matchable candidate once)
        self.enumerated = 0
        # Local counter accumulation — the mapping loop is the hot path,
        # so per-event tracer bumps are batched into one flush per group
        # (see flush_counters).
        self.rounds = 0
        self.trie_hits = 0
        self.trie_misses = 0
        self.memo_hits = 0
        self.memo_misses = 0
        self.invalidated = 0
        with tracer.span(SPANS.ALG2_MATCH_INDEX, nodes=len(nodes)) as span:
            self._build_pool()
            span.set(candidates=len(self._pool), trie_leaves=self.trie.leaves)

    # ------------------------------------------------------------------
    def _build_pool(self) -> None:
        names = self._names
        cons_mask = self._cons_mask
        dep_mask = self._dep_mask
        store = self._store
        cost_of = self._cost
        max_depth = self._max_depth
        sizes_of = self._sizes_of
        candidates: List[Candidate] = []
        for mask in _connected_masks(self._adj_mask, self._max_nodes):
            # Single-sink filter first: a set with several escaping
            # values can never match a one-output SIMD instruction (the
            # naive matcher enumerates and then discards them), so the
            # pool drops them before any other work.
            escaping = 0
            sink_index = -1
            size = 0
            rest = mask
            while rest:
                low = rest & -rest
                i = low.bit_length() - 1
                rest ^= low
                size += 1
                if store[i] or cons_mask[i] & ~mask:
                    escaping += 1
                    if escaping > 1:
                        break
                    sink_index = i
            if escaping != 1:
                continue
            # Trie-presence filter: when no instruction pattern roots at
            # the sink's (op, dtype, lanes, size) key, the candidate can
            # never match — the naive matcher discovers the same thing
            # by scanning the registry and finding nothing, so skipping
            # it here is selection-neutral.
            if size not in sizes_of[sink_index]:
                self.trie_misses += 1
                continue
            if size > 1 and not self._convex_mask(mask):
                continue
            member_names: List[str] = []
            deps_mask = 0
            cost = 0
            rest = mask
            while rest:
                low = rest & -rest
                i = low.bit_length() - 1
                rest ^= low
                member_names.append(names[i])
                deps_mask |= dep_mask[i]
                cost += cost_of[i]
            deps_mask &= ~mask
            # Depth can only exceed the bound when the set has more
            # nodes than the bound (depth <= |members|), so the walk is
            # skipped entirely for small pattern libraries.
            if size > max_depth and _depth(self.dfg, frozenset(member_names)) > max_depth:
                continue
            dep_names: List[str] = []
            rest = deps_mask
            while rest:
                low = rest & -rest
                dep_names.append(names[low.bit_length() - 1])
                rest ^= low
            candidates.append(
                Candidate(
                    tuple(member_names),
                    names[sink_index],
                    cost,
                    tuple(dep_names),
                    deps_mask,
                    mask,
                    (-cost, tuple(sorted(member_names))),
                )
            )
        candidates.sort(key=lambda c: c.key)
        self._pool = candidates
        self._alive = [True] * len(candidates)
        for cid, candidate in enumerate(candidates):
            for name in candidate.member_names:
                self._by_node[name].append(cid)  # stays key-sorted
        self.enumerated = len(candidates)

    # ------------------------------------------------------------------
    def is_convex(self, members: FrozenSet[str]) -> bool:
        """Memoized convexity: a path leaving and re-entering the set
        exists exactly when some outside consumer of a member can reach
        back into the set, which the precomputed reachability bitsets
        answer with one AND per escaping edge."""
        if len(members) == 1:
            return True  # a single node has no outside path to itself
        cached = self._convexity.get(members)
        if cached is None:
            mask = 0
            position = self._position
            for name in members:
                mask |= 1 << position[name]
            cached = self._convex_mask(mask)
            self._convexity[members] = cached
        return cached

    def _convex_mask(self, mask: int) -> bool:
        cons_mask = self._cons_mask
        reach = self._reach
        rest = mask
        while rest:
            low = rest & -rest
            outside = cons_mask[low.bit_length() - 1] & ~mask
            rest ^= low
            while outside:
                low_out = outside & -outside
                if reach[low_out.bit_length() - 1] & mask:
                    return False
                outside ^= low_out
        return True

    # ------------------------------------------------------------------
    def match_from(self, seed: str, mapped: Set[str]) -> Optional[Match]:
        """The best (largest-first, then cheapest) match containing the
        seed that is independent given ``mapped``, or None."""
        self.rounds += 1
        if mapped is not self._mapped_obj or len(mapped) != self._mapped_count:
            # Slow path for callers that advance ``mapped`` without
            # calling invalidate (the Algorithm 2 loop never does).
            mask = 0
            position = self._position
            for name in mapped:
                mask |= 1 << position[name]
            self._mapped_mask = mask
            self._mapped_obj = mapped
            self._mapped_count = len(mapped)
        unmapped = ~self._mapped_mask
        alive = self._alive
        pool = self._pool
        memo = self._match_memo
        for cid in self._by_node[seed]:
            if not alive[cid]:
                continue
            candidate = pool[cid]
            if candidate.deps_mask & unmapped:
                continue  # not independent yet; may become so later
            if cid in memo:
                self.memo_hits += 1
                match = memo[cid]
            else:
                self.memo_misses += 1
                match = self._match_structural(candidate)
                memo[cid] = match
            if match is not None:
                return match
        return None

    # ------------------------------------------------------------------
    def _signature(self, candidate: Candidate):
        """Structural signature of a candidate: member ops, dtypes,
        immediates and the shape of internal/external operand wiring.
        Two candidates with equal signatures bind any instruction
        identically, with their inputs in the same operand slots (the
        pattern match never looks at node names, and the memoized
        results here are computed with ``mapped = deps``, making the
        availability checks structural too)."""
        node_of = self._node
        names = candidate.member_names  # already in topological order
        member_index = {name: i for i, name in enumerate(names)}
        ordered = [node_of[name] for name in names]
        external_ids: Dict[object, int] = {}
        parts = []
        for node in ordered:
            operands: List[object] = []
            for ref in node.inputs:
                if isinstance(ref, NodeInput):
                    internal = member_index.get(ref.node)
                    if internal is not None:
                        operands.append(internal)  # in-set edge
                        continue
                    ref_dtype = node_of[ref.node].dtype
                else:
                    ref_dtype = ref.dtype
                ident = external_ids.setdefault(ref, len(external_ids))
                operands.append((ident, ref_dtype))
            parts.append((node.op, node.dtype, node.src_dtype, node.imm, tuple(operands)))
        return tuple(parts), ordered

    def _match_structural(self, candidate: Candidate) -> Optional[Match]:
        signature, ordered = self._signature(candidate)
        entry = self._sig_memo.get(signature, _MISS)
        if entry is _MISS:
            match = self._match_uncached(candidate)
            if match is None:
                self._sig_memo[signature] = None
            else:
                self._sig_memo[signature] = (
                    match.spec, _binding_paths(match.args, ordered), match.imm,
                )
            return match
        if entry is None:
            return None
        spec, paths, imm = entry
        args = tuple(
            ordered[member_idx].inputs[operand_idx]
            for member_idx, operand_idx in paths
        )
        return Match(spec=spec, subgraph=candidate.subgraph, args=args, imm=imm)

    def _match_uncached(self, candidate: Candidate) -> Optional[Match]:
        subgraph = candidate.subgraph
        if subgraph.sink is None:
            return None  # pool candidates always have one, but be safe
        sink = self._node[subgraph.sink]
        specs = self.trie.lookup(
            sink.op, sink.dtype,
            self.iset.lanes_for(sink.dtype), len(subgraph.members),
        )
        if specs:
            self.trie_hits += 1
        else:
            self.trie_misses += 1
        for spec in specs:  # cheapest first
            # Matching is independent of the mapped set once the
            # candidate *is* independent: every external producer an
            # I-token can reference lies in candidate.deps.  Passing the
            # deps set makes the memoized result valid for any later
            # mapped state that satisfies the subset test.
            binding = _try_match(self.dfg, subgraph, spec, candidate.deps)
            if binding is None:
                continue
            args_map, imm = binding
            args = tuple(args_map[token] for token in spec.input_tokens)
            return Match(spec=spec, subgraph=subgraph, args=args, imm=imm)
        return None

    # ------------------------------------------------------------------
    def invalidate(self, members: Iterable[str]) -> int:
        """Remove every candidate overlapping the accepted members and
        drop their memoized matches; returns how many died."""
        removed = 0
        alive = self._alive
        memo = self._match_memo
        by_node = self._by_node
        position = self._position
        accepted = 0
        for name in members:
            accepted |= 1 << position[name]
            for cid in by_node[name]:
                if alive[cid]:
                    alive[cid] = False
                    memo.pop(cid, None)
                    removed += 1
        self._mapped_count += (accepted & ~self._mapped_mask).bit_count()
        self._mapped_mask |= accepted
        self.invalidated += removed
        return removed

    def flush_counters(self) -> None:
        """Push the batched counters to the tracer, once per group."""
        count = self.tracer.count
        count(COUNTERS.ALG2_SUBGRAPHS_ENUMERATED, self.enumerated)
        count(COUNTERS.ALG2_MATCH_ROUNDS, self.rounds)
        count(COUNTERS.ALG2_MATCH_TRIE_HITS, self.trie_hits)
        count(COUNTERS.ALG2_MATCH_TRIE_MISSES, self.trie_misses)
        count(COUNTERS.ALG2_MATCH_MEMO_HITS, self.memo_hits)
        count(COUNTERS.ALG2_MATCH_MEMO_MISSES, self.memo_misses)
        count(COUNTERS.ALG2_MATCH_INVALIDATED, self.invalidated)

    # ------------------------------------------------------------------
    @property
    def live_candidates(self) -> int:
        return sum(self._alive)


def _binding_paths(
    args: Tuple[object, ...], ordered: List
) -> Tuple[Tuple[int, int], ...]:
    """Where each bound input ref sits in the members' operand lists, as
    (member index, operand index) pairs.  A ref appearing in several
    slots is ambiguous only between slots holding *equal* refs, so any
    structurally identical candidate reads the same value either way."""
    paths: List[Tuple[int, int]] = []
    for ref in args:
        for member_idx, node in enumerate(ordered):
            operand_idx = -1
            for j, node_ref in enumerate(node.inputs):
                if node_ref == ref:
                    operand_idx = j
                    break
            if operand_idx >= 0:
                paths.append((member_idx, operand_idx))
                break
        else:  # pragma: no cover - bindings always come from operands
            raise AssertionError(f"bound ref {ref!r} not found in candidate operands")
    return tuple(paths)


class NaiveGroupMatcher:
    """The original per-seed re-enumerating matcher, kept verbatim so
    the differential verifier can cross-check the indexed fast path."""

    kind = "naive"

    def __init__(self, dfg: Dfg, iset: InstructionSet, tracer=NULL_TRACER) -> None:
        self.dfg = dfg
        self.iset = iset
        self.tracer = tracer
        self._max_nodes = iset.max_node_count
        self._max_depth = iset.max_depth
        #: candidates enumerated, summed over every round
        self.enumerated = 0
        self.rounds = 0

    def match_from(self, seed: str, mapped: Set[str]) -> Optional[Match]:
        self.rounds += 1
        candidates = extend_subgraphs(
            self.dfg, seed, mapped, self._max_nodes, self._max_depth
        )
        self.enumerated += len(candidates)
        for subgraph in candidates:
            match = match_instruction(self.dfg, subgraph, self.iset, mapped)
            if match is not None:
                return match
        return None

    def invalidate(self, members: Iterable[str]) -> int:
        return 0  # nothing cached; the next round re-enumerates

    def flush_counters(self) -> None:
        """Push the batched counters to the tracer, once per group."""
        self.tracer.count(COUNTERS.ALG2_SUBGRAPHS_ENUMERATED, self.enumerated)
        self.tracer.count(COUNTERS.ALG2_MATCH_ROUNDS, self.rounds)


def make_matcher(kind: str, dfg: Dfg, iset: InstructionSet, tracer=NULL_TRACER):
    """The matcher implementation selected by ``CodegenOptions.matcher``."""
    if kind == "indexed":
        return IndexedGroupMatcher(dfg, iset, tracer)
    if kind == "naive":
        return NaiveGroupMatcher(dfg, iset, tracer)
    raise ValueError(f"unknown matcher {kind!r}; choose from {MATCHERS}")
