"""Actor dispatch (§3.1): classify and group the model's actors.

* **Intensive computing actors** — array in/out, outputs depend on many
  inputs (FFT, DCT, Conv, Mat*).  Identified by actor kind.
* **Batch computing actors** — elementwise with an array input,
  identified by type + input scale, *and* expressible in the target
  instruction set (an op with no vector instruction for its dtype — e.g.
  integer division — is translated conventionally).
* **Basic actors** — everything else, handled by the conventional
  Simulink-Coder-style translation.

Connected batch actors with the same I/O scale and element bit-width
form a *batch group* (the unit Algorithm 2 maps).  Groups are made
schedulable as units: if fusing a group would create a cycle through
outside actors, the group is split until the condensed graph is acyclic.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.dtypes import DataType
from repro.errors import CodegenError
from repro.isa.spec import InstructionSet, InstructionSpec
from repro.model.actor import Actor
from repro.model.actor_defs import ActorKind, actor_def
from repro.model.graph import Model
from repro.schedule.scheduler import Schedule


@dataclasses.dataclass(frozen=True)
class BatchGroup:
    """A connected set of batch actors mapped together by Algorithm 2."""

    members: Tuple[str, ...]      # in schedule order
    width: int                    # elements per signal
    bit_width: int                # element bit width (uniform; Casts keep it)

    def __contains__(self, actor_name: str) -> bool:
        return actor_name in self.members


#: One schedulable unit: a plain actor or a whole batch group.
Unit = Union[str, BatchGroup]


@dataclasses.dataclass
class DispatchResult:
    """The classification of one model."""

    intensive: Tuple[str, ...]
    groups: Tuple[BatchGroup, ...]
    #: every unit (actor name or group) in a valid execution order
    units: Tuple[Unit, ...]


def single_node_instruction(
    iset: InstructionSet, op_name: str, dtype: DataType,
    src_dtype: Optional[DataType] = None,
) -> Optional[InstructionSpec]:
    """A 1-node instruction computing ``op_name`` on ``dtype``, if any."""
    for spec in iset.instructions:
        if spec.node_count != 1 or spec.root.op != op_name or spec.dtype is not dtype:
            continue
        if op_name == "Cast" and src_dtype is not None:
            if spec.root.operand_dtype(0) is not src_dtype:
                continue
        return spec
    return None


def is_batch_actor(model: Model, actor: Actor, iset: InstructionSet) -> bool:
    """§3.1's batch identification, plus ISA expressibility."""
    defn = actor_def(actor.actor_type)
    if defn.kind is not ActorKind.ELEMENTWISE:
        return False
    if not actor.has_array_input:
        return False
    port = actor.output("out")
    if iset.vector_bits % port.dtype.bit_width != 0:
        return False
    src_dtype = actor.inputs[0].dtype if defn.op_name == "Cast" else None
    return single_node_instruction(iset, defn.op_name, port.dtype, src_dtype) is not None


def is_intensive_actor(actor: Actor) -> bool:
    return actor_def(actor.actor_type).kind is ActorKind.INTENSIVE


def _connected_groups(
    model: Model,
    schedule: Schedule,
    batch_names: Set[str],
    branch_info: Optional[Dict[str, object]] = None,
) -> List[List[str]]:
    """Connected components of batch actors with equal width + bit width.

    With ``branch_info`` (actor name -> branch key), actors must also
    carry the *same branch information* to group — the extra constraint
    §4.3 describes for extending HCG to Ptolemy-style models, and the
    one branch-aware generation needs so a group's code lands inside a
    single branch.
    """
    def compatible(a: str, b: str) -> bool:
        pa = model.actor(a).output("out")
        pb = model.actor(b).output("out")
        if pa.width != pb.width or pa.dtype.bit_width != pb.dtype.bit_width:
            return False
        if branch_info is not None and branch_info.get(a) != branch_info.get(b):
            return False
        return True

    adjacency: Dict[str, Set[str]] = {n: set() for n in batch_names}
    for connection in model.connections:
        a, b = connection.src_actor, connection.dst_actor
        if a in batch_names and b in batch_names and compatible(a, b):
            adjacency[a].add(b)
            adjacency[b].add(a)

    seen: Set[str] = set()
    components: List[List[str]] = []
    for name in sorted(batch_names, key=schedule.position):
        if name in seen:
            continue
        stack, component = [name], []
        seen.add(name)
        while stack:
            node = stack.pop()
            component.append(node)
            for neighbour in adjacency[node]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    stack.append(neighbour)
        components.append(sorted(component, key=schedule.position))
    return components


def _order_units(
    model: Model, schedule: Schedule, groups: Sequence[BatchGroup]
) -> Optional[List[Unit]]:
    """Topological order of the condensed graph, or None if fusing a
    group created a cycle."""
    cluster_of: Dict[str, int] = {}
    units: List[Unit] = []
    for group in groups:
        index = len(units)
        units.append(group)
        for member in group.members:
            cluster_of[member] = index
    for actor in model.actors:
        if actor.name not in cluster_of:
            cluster_of[actor.name] = len(units)
            units.append(actor.name)

    n = len(units)
    edges: List[Set[int]] = [set() for _ in range(n)]
    indegree = [0] * n
    for connection in model.connections:
        if model.actor(connection.dst_actor).actor_type == "UnitDelay":
            continue  # delay inputs are end-of-step, not same-step edges
        src = cluster_of[connection.src_actor]
        dst = cluster_of[connection.dst_actor]
        if src != dst and dst not in edges[src]:
            edges[src].add(dst)
            indegree[dst] += 1

    def priority(unit_index: int) -> int:
        unit = units[unit_index]
        if isinstance(unit, BatchGroup):
            return min(schedule.position(m) for m in unit.members)
        return schedule.position(unit)

    ready = sorted((i for i in range(n) if indegree[i] == 0), key=priority)
    ordered: List[Unit] = []
    while ready:
        index = ready.pop(0)
        ordered.append(units[index])
        freed = []
        for nxt in edges[index]:
            indegree[nxt] -= 1
            if indegree[nxt] == 0:
                freed.append(nxt)
        ready.extend(freed)
        ready.sort(key=priority)
    if len(ordered) != n:
        return None
    return ordered


def dispatch(
    model: Model,
    schedule: Schedule,
    iset: InstructionSet,
    branch_info: Optional[Dict[str, object]] = None,
) -> DispatchResult:
    """Classify actors and produce schedulable units."""
    batch_names = {
        a.name for a in model.actors if is_batch_actor(model, a, iset)
    }
    intensive = tuple(
        a.name for a in model.actors if is_intensive_actor(a)
    )

    components = _connected_groups(model, schedule, batch_names, branch_info)
    groups: List[BatchGroup] = []
    for component in components:
        port = model.actor(component[0]).output("out")
        groups.append(BatchGroup(tuple(component), port.width, port.dtype.bit_width))

    # Split groups until the condensed graph is acyclic (fusing a group
    # that has an external path through a non-member would otherwise
    # deadlock the schedule).
    for _ in range(sum(len(g.members) for g in groups) + 1):
        ordered = _order_units(model, schedule, groups)
        if ordered is not None:
            return DispatchResult(intensive=intensive, groups=tuple(groups), units=tuple(ordered))
        # split the largest group (last member becomes its own group)
        splittable = [g for g in groups if len(g.members) > 1]
        if not splittable:
            raise CodegenError("condensed schedule is cyclic even with singleton groups")
        victim = max(splittable, key=lambda g: len(g.members))
        groups.remove(victim)
        head = BatchGroup(victim.members[:-1], victim.width, victim.bit_width)
        tail = BatchGroup(victim.members[-1:], victim.width, victim.bit_width)
        groups.extend([head, tail])
    raise CodegenError("group splitting failed to converge")
