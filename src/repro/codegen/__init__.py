"""Code generators: HCG and the two baselines."""

from repro.codegen.dfsynth import DfsynthGenerator
from repro.codegen.hcg import HcgGenerator
from repro.codegen.simulink_coder import SimulinkCoderGenerator

__all__ = ["DfsynthGenerator", "HcgGenerator", "SimulinkCoderGenerator"]
