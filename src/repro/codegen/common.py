"""Shared code-generation machinery.

Every generator follows the paper's four steps: ① model parse,
② schedule analysis, ③ per-actor code synthesis, ④ composition.  This
module holds the parts all three share:

* the signal-buffer layout (one flat buffer per materialised output
  port; inputs/consts/state/outputs have fixed kinds);
* *expression folding* — Simulink Coder's core optimization — realised
  as a recursive element-expression builder that folds single-consumer
  elementwise chains into one expression;
* the conventional scalar translation (unrolled below a width
  threshold, a ``for`` loop above it), which Simulink-Coder-style
  generation uses everywhere and HCG uses for basic actors (§3's
  "conventional translation method of the built-in Simulink Coder").
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.codegen.options import UNROLL_LIMIT, CodegenOptions
from repro.diagnostics import DiagnosticsCollector
from repro.errors import CodegenError, UnsupportedActorError
from repro.observability.tracer import NULL_TRACER
from repro.dtypes import DataType
from repro.ir.expr import Cmp, Const, Expr, Load, ScalarOp, Select, Var, const_i
from repro.ir.program import NameAllocator, Program
from repro.ir.stmt import CopyBuffer, For, KernelCall, Stmt, Store
from repro.ir.types import BufferDecl, BufferKind
from repro.model.actor import Actor
from repro.model.actor_defs import ActorKind, actor_def
from repro.model.graph import Model
from repro.schedule.scheduler import Schedule, compute_schedule

#: Ports of an actor's output are foldable when the actor is one of these.
FOLDABLE_TYPES_EXTRA = frozenset({"Gain", "Switch"})

# UNROLL_LIMIT now lives in repro.codegen.options (the consolidated
# options object); re-imported above so existing importers keep working.

_IDENT_RE = re.compile(r"[^0-9a-zA-Z_]")


def sanitize(name: str) -> str:
    """Make a model name safe as a C identifier."""
    cleaned = _IDENT_RE.sub("_", name)
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned or "_"


PortKey = Tuple[str, str]  # (actor name, output port name)


class CodegenContext:
    """Mutable state shared by one generation run."""

    def __init__(
        self,
        model: Model,
        program_name: str,
        generator: str,
        diagnostics: Optional[DiagnosticsCollector] = None,
        tracer=None,
        options: Optional[CodegenOptions] = None,
    ) -> None:
        model.validate()
        self.model = model
        self.schedule: Schedule = compute_schedule(model)
        self.program = Program(name=program_name, generator=generator)
        self.names = NameAllocator()
        #: the consolidated options of this run (repro.codegen.options);
        #: defaults keep legacy construction paths working unchanged
        self.options = options if options is not None else CodegenOptions()
        #: fault/degradation events of this run (see repro.diagnostics)
        self.diagnostics = diagnostics if diagnostics is not None else DiagnosticsCollector("permissive")
        #: span/counter sink of this run (see repro.observability); the
        #: default NULL_TRACER makes every instrumentation site a no-op
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._buffers: Dict[PortKey, str] = {}
        #: output ports that own a written buffer
        self.materialized: Set[PortKey] = set()
        #: Outport actors whose buffer is already written by generated
        #: code (e.g. a batch group storing straight into the output),
        #: so composition must not emit a copy for them
        self.satisfied_sinks: Set[str] = set()
        self._setup_fixed_buffers()

    # ------------------------------------------------------------------
    # Fault-isolation checkpoints
    # ------------------------------------------------------------------
    def checkpoint(self) -> Tuple:
        """Snapshot the mutable buffer/wiring state, so a failed
        synthesis attempt (e.g. an unmappable batch group) can be rolled
        back before retrying with a degraded strategy."""
        return (
            dict(self._buffers),
            set(self.materialized),
            set(self.satisfied_sinks),
            len(self.program.buffers),
        )

    def restore(self, state: Tuple) -> None:
        """Rewind to a :meth:`checkpoint` (buffer decls added since are
        dropped; allocator names stay reserved, which is harmless)."""
        buffers, materialized, satisfied, n_decls = state
        self._buffers = dict(buffers)
        self.materialized = set(materialized)
        self.satisfied_sinks = set(satisfied)
        del self.program.buffers[n_decls:]

    # ------------------------------------------------------------------
    # Buffer layout
    # ------------------------------------------------------------------
    def _setup_fixed_buffers(self) -> None:
        for actor in self.model.actors:
            kind = actor_def(actor.actor_type).kind
            if actor.actor_type == "Inport":
                self._declare(actor, actor.output("out"), BufferKind.INPUT, name=sanitize(actor.name))
            elif actor.actor_type == "Const":
                value = np.asarray(actor.params["value"]).ravel()
                self._declare(
                    actor, actor.output("out"), BufferKind.CONST,
                    init=tuple(float(v) for v in value),
                )
            elif actor.actor_type == "UnitDelay":
                port = actor.output("out")
                initial = np.broadcast_to(
                    np.asarray(actor.params.get("initial", 0), dtype=port.dtype.numpy_dtype),
                    port.shape or (1,),
                ).ravel()
                self._declare(
                    actor, port, BufferKind.STATE,
                    init=tuple(float(v) for v in initial),
                )
            elif kind is ActorKind.SINK:
                port = actor.input("in1")
                name = self.names.reserve(sanitize(actor.name))
                self.program.add_buffer(
                    BufferDecl(name, port.dtype, port.width, BufferKind.OUTPUT, port.shape)
                )

    def _declare(self, actor: Actor, port, kind: BufferKind,
                 init: Optional[Tuple[float, ...]] = None, name: Optional[str] = None) -> str:
        buffer_name = self.names.reserve(name or sanitize(f"{actor.name}__{port.name}"))
        self.program.add_buffer(
            BufferDecl(buffer_name, port.dtype, port.width, kind, port.shape, init)
        )
        self._buffers[(actor.name, port.name)] = buffer_name
        self.materialized.add((actor.name, port.name))
        return buffer_name

    def ensure_local(self, actor_name: str, port_name: str) -> str:
        """The LOCAL buffer of an output port, created on first use."""
        key = (actor_name, port_name)
        if key in self._buffers:
            return self._buffers[key]
        actor = self.model.actor(actor_name)
        port = actor.output(port_name)
        buffer_name = self.names.reserve(sanitize(f"{actor_name}__{port_name}"))
        self.program.add_buffer(
            BufferDecl(buffer_name, port.dtype, port.width, BufferKind.LOCAL, port.shape)
        )
        self._buffers[key] = buffer_name
        return buffer_name

    def alias_port(self, actor_name: str, port_name: str, buffer_name: str) -> None:
        """Make an output port write directly into an existing buffer
        (used to store batch-group results straight into an Outport)."""
        self._buffers[(actor_name, port_name)] = buffer_name
        self.materialized.add((actor_name, port_name))

    def buffer_of(self, actor_name: str, port_name: str) -> str:
        try:
            return self._buffers[(actor_name, port_name)]
        except KeyError:
            raise CodegenError(
                f"no buffer declared for port {actor_name}.{port_name}"
            ) from None

    def outport_buffer(self, actor_name: str) -> str:
        return sanitize(actor_name)

    # ------------------------------------------------------------------
    # Wiring helpers
    # ------------------------------------------------------------------
    def driver(self, actor_name: str, in_port: str) -> PortKey:
        connection = self.model.driver_of(actor_name, in_port)
        assert connection is not None, "validated models have driven inputs"
        return (connection.src_actor, connection.src_port)

    def consumers(self, actor_name: str, out_port: str):
        return self.model.consumers_of(actor_name, out_port)


# ---------------------------------------------------------------------------
# Expression folding
# ---------------------------------------------------------------------------

def is_foldable(actor: Actor) -> bool:
    """Whether this actor's output can fold into a consumer expression."""
    kind = actor_def(actor.actor_type).kind
    return kind is ActorKind.ELEMENTWISE or actor.actor_type in FOLDABLE_TYPES_EXTRA


def element_expr(ctx: CodegenContext, key: PortKey, index: Expr) -> Expr:
    """The scalar expression for element ``index`` of an output port.

    Materialised ports load from their buffer; foldable unmaterialised
    producers are folded in recursively (Simulink Coder's expression
    folding).
    """
    actor_name, port_name = key
    if key in ctx.materialized:
        return Load(ctx.buffer_of(actor_name, port_name), index)

    actor = ctx.model.actor(actor_name)
    defn = actor_def(actor.actor_type)
    if not is_foldable(actor):
        raise CodegenError(
            f"port {actor_name}.{port_name} is neither materialised nor foldable"
        )

    out_port = actor.output(port_name)

    def input_elem(in_port_name: str, elem_index: Expr) -> Expr:
        return element_expr(ctx, ctx.driver(actor_name, in_port_name), elem_index)

    if actor.actor_type == "Gain":
        gain = Const(_scalar_param(actor.params["gain"], out_port.dtype), out_port.dtype)
        return ScalarOp("Mul", (input_elem("in1", index), gain), out_port.dtype)
    if actor.actor_type == "Switch":
        threshold = Const(_scalar_param(actor.params["threshold"], out_port.dtype), out_port.dtype)
        condition = Cmp(">=", input_elem("ctrl", const_i(0)), threshold)
        return Select(condition, input_elem("in1", index), input_elem("in2", index))
    if defn.kind is ActorKind.ELEMENTWISE:
        from repro import ops

        info = ops.op_info(defn.op_name)
        args = tuple(input_elem(f"in{i + 1}", index) for i in range(info.arity))
        imm = int(actor.params["shift"]) if info.needs_imm else None
        return ScalarOp(defn.op_name, args, out_port.dtype, imm)
    raise UnsupportedActorError(f"cannot fold actor type {actor.actor_type!r}")


def _scalar_param(value, dtype: DataType):
    scalar = np.asarray(value, dtype=dtype.numpy_dtype)
    if scalar.ndim != 0 and scalar.size != 1:
        raise CodegenError(f"expected scalar parameter, got shape {scalar.shape}")
    return scalar.reshape(()).item()


# ---------------------------------------------------------------------------
# Conventional scalar synthesis
# ---------------------------------------------------------------------------

def store_elements(
    ctx: CodegenContext,
    dest_buffer: str,
    width: int,
    make_expr,
    unroll_limit: int = UNROLL_LIMIT,
    loop_var_hint: str = "i",
) -> List[Stmt]:
    """Emit ``dest[i] = make_expr(i)`` for all ``width`` elements.

    Below ``unroll_limit`` the stores are unrolled (Fig. 2's style);
    otherwise a ``for`` loop with a symbolic index is produced.
    """
    if width <= unroll_limit:
        return [
            Store(dest_buffer, const_i(i), make_expr(const_i(i)))
            for i in range(width)
        ]
    loop_var = ctx.names.fresh(loop_var_hint)
    body = (Store(dest_buffer, Var(loop_var), make_expr(Var(loop_var))),)
    return [For(loop_var, const_i(0), const_i(width), 1, body)]


def materialize_port(
    ctx: CodegenContext,
    key: PortKey,
    unroll_limit: int = UNROLL_LIMIT,
) -> List[Stmt]:
    """Compute a foldable port into its own (local) buffer."""
    actor_name, port_name = key
    actor = ctx.model.actor(actor_name)
    width = actor.output(port_name).width
    buffer_name = ctx.ensure_local(actor_name, port_name)

    # Temporarily un-materialise so the folded expression recurses into
    # this actor's own computation instead of loading the target buffer.
    ctx.materialized.discard(key)
    statements = store_elements(
        ctx, buffer_name, width, lambda idx: element_expr(ctx, key, idx), unroll_limit
    )
    ctx.materialized.add(key)
    return statements


def emit_outport(ctx: CodegenContext, actor: Actor, unroll_limit: int = UNROLL_LIMIT) -> List[Stmt]:
    """Write the folded driver expression into the OUTPUT buffer."""
    driver_key = ctx.driver(actor.name, "in1")
    width = actor.input("in1").width
    dest = ctx.outport_buffer(actor.name)
    if driver_key in ctx.materialized:
        source = ctx.buffer_of(*driver_key)
        return [CopyBuffer(dest, const_i(0), source, const_i(0), width)]
    return store_elements(
        ctx, dest, width, lambda idx: element_expr(ctx, driver_key, idx), unroll_limit
    )


def _state_reads(ctx: CodegenContext, key: PortKey,
                 seen: Optional[Set[PortKey]] = None) -> Set[str]:
    """UnitDelay names whose STATE buffer a commit of ``key`` would load.

    Materialised ports load their buffer directly (a state read iff the
    owner is a delay); unmaterialised foldable producers are traversed
    the same way :func:`element_expr` folds them.
    """
    seen = set() if seen is None else seen
    if key in seen:
        return set()
    seen.add(key)
    actor_name, _ = key
    actor = ctx.model.actor(actor_name)
    if key in ctx.materialized:
        return {actor_name} if actor.actor_type == "UnitDelay" else set()
    reads: Set[str] = set()
    for port in actor.inputs:
        reads |= _state_reads(ctx, ctx.driver(actor_name, port.name), seen)
    return reads


def emit_state_updates(ctx: CodegenContext, unroll_limit: int = UNROLL_LIMIT) -> List[Stmt]:
    """End-of-step commits of every UnitDelay's input into its state.

    Simulink semantics read a delay's *pre-update* output everywhere in
    the step, including inside other delays' updates.  When one delay's
    commit loads another delay's state buffer (a delay chain, or a
    delay feedback cycle), the read state is first snapshotted into a
    scratch buffer and the commit redirected to the snapshot, so the
    commit order cannot leak a freshly written value.  Independent
    delays emit exactly the code they always did.
    """
    delays = [a for a in ctx.model.actors if a.actor_type == "UnitDelay"]
    # States read by a *different* delay's commit need a snapshot.
    hazardous: Set[str] = set()
    for actor in delays:
        hazardous |= _state_reads(ctx, ctx.driver(actor.name, "in1")) - {actor.name}

    statements: List[Stmt] = []
    remapped: Dict[PortKey, str] = {}
    for actor in delays:
        if actor.name not in hazardous:
            continue
        key = (actor.name, "out")
        state_buffer = ctx.buffer_of(*key)
        port = actor.output("out")
        snapshot = ctx.names.reserve(sanitize(f"{actor.name}__prev"))
        ctx.program.add_buffer(
            BufferDecl(snapshot, port.dtype, port.width, BufferKind.LOCAL, port.shape)
        )
        statements.append(
            CopyBuffer(snapshot, const_i(0), state_buffer, const_i(0), port.width)
        )
        remapped[key] = state_buffer
        ctx._buffers[key] = snapshot
    try:
        for actor in delays:
            driver_key = ctx.driver(actor.name, "in1")
            width = actor.output("out").width
            key = (actor.name, "out")
            state_buffer = remapped.get(key) or ctx.buffer_of(*key)
            if driver_key in ctx.materialized:
                source = ctx.buffer_of(*driver_key)
                statements.append(CopyBuffer(state_buffer, const_i(0), source, const_i(0), width))
            else:
                statements.extend(
                    store_elements(
                        ctx, state_buffer, width,
                        lambda idx: element_expr(ctx, driver_key, idx), unroll_limit,
                    )
                )
    finally:
        for key, state_buffer in remapped.items():
            ctx._buffers[key] = state_buffer
    return statements


# ---------------------------------------------------------------------------
# Intensive actor plumbing shared by the generators
# ---------------------------------------------------------------------------

def kernel_call_for(
    ctx: CodegenContext,
    actor: Actor,
    kernel_id: str,
) -> KernelCall:
    """Build the KernelCall statement for an intensive actor.

    All of the actor's input drivers must already be materialised
    (generators mark them as materialisation points).
    """
    inputs = []
    in_shapes = []
    for port in actor.inputs:
        key = ctx.driver(actor.name, port.name)
        if key not in ctx.materialized:
            raise CodegenError(
                f"intensive actor {actor.name!r}: input {port.name} driver not materialised"
            )
        inputs.append(ctx.buffer_of(*key))
        in_shapes.append(tuple(port.shape or (1,)))
    outputs = []
    out_shapes = []
    for port in actor.outputs:
        outputs.append(ctx.ensure_local(actor.name, port.name))
        ctx.materialized.add((actor.name, port.name))
        out_shapes.append(tuple(port.shape or (1,)))
    params = dict(actor.params)
    params["in_shapes"] = tuple(in_shapes)
    params["out_shapes"] = tuple(out_shapes)
    return KernelCall(
        kernel_id=kernel_id,
        inputs=tuple(inputs),
        outputs=tuple(outputs),
        params=tuple(sorted(params.items(), key=lambda kv: kv[0])),
    )


#: basic actors translated as buffer copies (Simulink Selector/Concatenate)
COPY_ACTOR_TYPES = frozenset({"Slice", "Concat"})


def mark_buffer_required_inputs(ctx: CodegenContext, extra_points: Set[PortKey]) -> None:
    """Collect ports that must be materialised because a consumer needs a
    real buffer: intensive-actor inputs (kernel calls read memory) and
    copy-actor inputs (memcpy sources)."""
    for actor in ctx.model.actors:
        kind = actor_def(actor.actor_type).kind
        if kind is ActorKind.INTENSIVE or actor.actor_type in COPY_ACTOR_TYPES:
            for port in actor.inputs:
                extra_points.add(ctx.driver(actor.name, port.name))


def emit_copy_actor(ctx: CodegenContext, actor: Actor) -> List[Stmt]:
    """Translate a Slice/Concat actor as buffer copies."""
    out_buffer = ctx.ensure_local(actor.name, "out")
    ctx.materialized.add((actor.name, "out"))
    if actor.actor_type == "Slice":
        source = ctx.buffer_of(*ctx.driver(actor.name, "in1"))
        offset = int(actor.params["offset"])
        length = int(actor.params["length"])
        return [CopyBuffer(out_buffer, const_i(0), source, const_i(offset), length)]
    if actor.actor_type == "Concat":
        first = ctx.buffer_of(*ctx.driver(actor.name, "in1"))
        second = ctx.buffer_of(*ctx.driver(actor.name, "in2"))
        first_len = actor.input("in1").width
        second_len = actor.input("in2").width
        return [
            CopyBuffer(out_buffer, const_i(0), first, const_i(0), first_len),
            CopyBuffer(out_buffer, const_i(first_len), second, const_i(0), second_len),
        ]
    raise UnsupportedActorError(f"{actor.actor_type!r} is not a copy actor")


def fanout_materialization_points(ctx: CodegenContext) -> Set[PortKey]:
    """Foldable ports with more than one consumer (Simulink materialises
    multi-use signals instead of recomputing them)."""
    points: Set[PortKey] = set()
    for actor in ctx.model.actors:
        if not is_foldable(actor):
            continue
        for port in actor.outputs:
            if len(ctx.consumers(actor.name, port.name)) != 1:
                points.add((actor.name, port.name))
    return points
