"""Output-variable reuse (one of Simulink Coder's named optimizations).

After code synthesis, LOCAL signal buffers whose lifetimes do not
overlap can share storage.  This pass computes, per local buffer, the
interval of top-level statements between its first write and its last
read, then greedily assigns buffers with disjoint intervals (and equal
dtype) to shared storage, keeping the largest length in each slot.

The paper lists "output variable reuse" alongside expression folding
as Simulink Coder's main optimizations; HCG inherits both for its
conventional parts, and the §4.1 "memory within ±1%" comparison is
made with the pass applied to every generator.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Set, Tuple

from repro.ir.expr import Expr, Load
from repro.ir.program import Program
from repro.ir.stmt import (
    AssignVar,
    CopyBuffer,
    For,
    If,
    KernelCall,
    SimdBroadcast,
    SimdLoad,
    SimdOp,
    SimdStore,
    Stmt,
    Store,
)
from repro.ir.types import BufferDecl, BufferKind


def _expr_buffer_reads(expr: Expr, out: Set[str]) -> None:
    if isinstance(expr, Load):
        out.add(expr.buffer)
        _expr_buffer_reads(expr.index, out)
        return
    for child in expr.children():
        _expr_buffer_reads(child, out)


def _stmt_accesses(stmt: Stmt) -> Tuple[Set[str], Set[str]]:
    """(read buffers, written buffers) of one statement, recursively."""
    reads: Set[str] = set()
    writes: Set[str] = set()

    def visit(node: Stmt) -> None:
        if isinstance(node, AssignVar):
            _expr_buffer_reads(node.expr, reads)
        elif isinstance(node, Store):
            _expr_buffer_reads(node.index, reads)
            _expr_buffer_reads(node.expr, reads)
            writes.add(node.buffer)
        elif isinstance(node, SimdLoad):
            _expr_buffer_reads(node.index, reads)
            reads.add(node.buffer)
        elif isinstance(node, SimdStore):
            _expr_buffer_reads(node.index, reads)
            writes.add(node.buffer)
        elif isinstance(node, SimdBroadcast):
            _expr_buffer_reads(node.scalar, reads)
        elif isinstance(node, KernelCall):
            reads.update(node.inputs)
            writes.update(node.outputs)
        elif isinstance(node, CopyBuffer):
            _expr_buffer_reads(node.src_offset, reads)
            _expr_buffer_reads(node.dst_offset, reads)
            reads.add(node.src)
            writes.add(node.dst)
        elif isinstance(node, For):
            _expr_buffer_reads(node.start, reads)
            _expr_buffer_reads(node.stop, reads)
            for inner in node.body:
                visit(inner)
        elif isinstance(node, If):
            _expr_buffer_reads(node.cond, reads)
            for inner in node.then_body + node.else_body:
                visit(inner)

    visit(stmt)
    return reads, writes


@dataclasses.dataclass
class _Interval:
    name: str
    dtype: object
    length: int
    first: int
    last: int


def compute_live_intervals(program: Program) -> List[_Interval]:
    """Top-level-statement live intervals of every LOCAL buffer."""
    locals_ = {b.name: b for b in program.buffers if b.kind is BufferKind.LOCAL}
    first: Dict[str, int] = {}
    last: Dict[str, int] = {}
    for position, stmt in enumerate(program.body):
        reads, writes = _stmt_accesses(stmt)
        for name in (reads | writes) & set(locals_):
            first.setdefault(name, position)
            last[name] = position
    return [
        _Interval(name, locals_[name].dtype, locals_[name].length,
                  first[name], last[name])
        for name in first
    ]


def reuse_local_buffers(program: Program) -> Tuple[Program, Dict[str, str]]:
    """Share storage between non-overlapping local buffers.

    Returns the rewritten program and the rename map (old -> shared
    name).  Buffers never read or written keep their declarations.
    """
    intervals = sorted(compute_live_intervals(program), key=lambda iv: iv.first)
    #: shared slots: (dtype, list of (last_use, slot_name, capacity))
    slots: List[List] = []  # [dtype, last, name, capacity]
    rename: Dict[str, str] = {}

    for interval in intervals:
        placed = False
        for slot in slots:
            if slot[0] is interval.dtype and slot[1] < interval.first:
                slot[1] = interval.last
                slot[3] = max(slot[3], interval.length)
                rename[interval.name] = slot[2]
                placed = True
                break
        if not placed:
            slot_name = f"shared_{len(slots)}"
            slots.append([interval.dtype, interval.last, slot_name, interval.length])
            rename[interval.name] = slot_name

    # Identity outcome: every buffer got its own slot.
    if len(slots) == len(intervals):
        return program, {}

    buffers: List[BufferDecl] = [
        b for b in program.buffers if b.kind is not BufferKind.LOCAL
    ]
    kept_locals = [
        b for b in program.buffers
        if b.kind is BufferKind.LOCAL and b.name not in rename
    ]
    buffers.extend(kept_locals)
    for dtype, _last, name, capacity in slots:
        buffers.append(BufferDecl(name, dtype, capacity, BufferKind.LOCAL))

    renamed_body = [_rename_stmt(stmt, rename) for stmt in program.body]
    result = Program(
        name=program.name,
        buffers=buffers,
        body=renamed_body,
        generator=program.generator,
        arch=program.arch,
    )
    return result, rename


def _rename_expr(expr: Expr, rename: Dict[str, str]) -> Expr:
    from repro.ir.expr import Cmp, ScalarOp, Select

    if isinstance(expr, Load):
        return Load(rename.get(expr.buffer, expr.buffer),
                    _rename_expr(expr.index, rename))
    if isinstance(expr, ScalarOp):
        return ScalarOp(expr.op,
                        tuple(_rename_expr(a, rename) for a in expr.args),
                        expr.dtype, expr.imm)
    if isinstance(expr, Cmp):
        return Cmp(expr.op, _rename_expr(expr.lhs, rename),
                   _rename_expr(expr.rhs, rename))
    if isinstance(expr, Select):
        return Select(_rename_expr(expr.cond, rename),
                      _rename_expr(expr.if_true, rename),
                      _rename_expr(expr.if_false, rename))
    return expr


def _rename_stmt(stmt: Stmt, rename: Dict[str, str]) -> Stmt:
    if isinstance(stmt, AssignVar):
        return AssignVar(stmt.name, _rename_expr(stmt.expr, rename), stmt.dtype)
    if isinstance(stmt, Store):
        return Store(rename.get(stmt.buffer, stmt.buffer),
                     _rename_expr(stmt.index, rename),
                     _rename_expr(stmt.expr, rename))
    if isinstance(stmt, SimdLoad):
        return SimdLoad(stmt.dest, rename.get(stmt.buffer, stmt.buffer),
                        _rename_expr(stmt.index, rename), stmt.dtype,
                        stmt.lanes, stmt.vl)
    if isinstance(stmt, SimdStore):
        return SimdStore(rename.get(stmt.buffer, stmt.buffer),
                         _rename_expr(stmt.index, rename), stmt.src,
                         stmt.dtype, stmt.lanes, stmt.vl)
    if isinstance(stmt, SimdBroadcast):
        return SimdBroadcast(stmt.dest, _rename_expr(stmt.scalar, rename),
                             stmt.dtype, stmt.lanes)
    if isinstance(stmt, KernelCall):
        return KernelCall(
            stmt.kernel_id,
            tuple(rename.get(n, n) for n in stmt.inputs),
            tuple(rename.get(n, n) for n in stmt.outputs),
            stmt.params,
        )
    if isinstance(stmt, CopyBuffer):
        return CopyBuffer(rename.get(stmt.dst, stmt.dst),
                          _rename_expr(stmt.dst_offset, rename),
                          rename.get(stmt.src, stmt.src),
                          _rename_expr(stmt.src_offset, rename), stmt.count)
    if isinstance(stmt, For):
        return For(stmt.var, _rename_expr(stmt.start, rename),
                   _rename_expr(stmt.stop, rename), stmt.step,
                   tuple(_rename_stmt(s, rename) for s in stmt.body))
    if isinstance(stmt, If):
        return If(_rename_expr(stmt.cond, rename),
                  tuple(_rename_stmt(s, rename) for s in stmt.then_body),
                  tuple(_rename_stmt(s, rename) for s in stmt.else_body))
    return stmt
