"""The resilient codegen daemon (``repro serve``).

An asyncio HTTP service over :class:`~repro.service.service.CodegenService`
with bounded admission, per-request deadlines, retries with backoff,
per-generator circuit breakers, chaos fault injection, and graceful
SIGTERM drain.  Protocol: docs/api.md; failure modes: docs/robustness.md;
load + chaos harness: tools/loadgen.py.
"""

from repro.server.breaker import BreakerState, CircuitBreaker
from repro.server.chaos import KNOWN_CHAOS, ChaosFault, ChaosMonkey
from repro.server.daemon import CodegenDaemon, ServerConfig
from repro.server.retry import RetryPolicy, TransientFault, is_transient

__all__ = [
    "BreakerState",
    "ChaosFault",
    "ChaosMonkey",
    "CircuitBreaker",
    "CodegenDaemon",
    "KNOWN_CHAOS",
    "RetryPolicy",
    "ServerConfig",
    "TransientFault",
    "is_transient",
]
