"""The resilient codegen daemon (``repro serve``).

An asyncio HTTP service over :class:`~repro.service.service.CodegenService`
with bounded multi-tenant admission (token-bucket rate limits,
weighted-fair dequeue), request coalescing onto one executor pass,
per-request deadlines, retries with backoff, per-generator circuit
breakers, hot config reload (SIGHUP / ``POST /admin/reload``), chaos
fault injection, and graceful SIGTERM drain.  Protocol: docs/api.md;
failure modes: docs/robustness.md; load + chaos harness:
tools/loadgen.py.
"""

from repro.server.batch import BatchTask, compatible, run_batch
from repro.server.breaker import BreakerState, CircuitBreaker
from repro.server.chaos import KNOWN_CHAOS, ChaosFault, ChaosMonkey
from repro.server.config import (
    DEFAULT_TENANT,
    ConfigError,
    ServerConfig,
    TenantLimits,
    apply_overrides,
    load_config_overrides,
    parse_tenant_spec,
)
from repro.server.daemon import CodegenDaemon
from repro.server.retry import RetryPolicy, TransientFault, is_transient
from repro.server.tenants import ShedDecision, TenantTable, TokenBucket

__all__ = [
    "BatchTask",
    "BreakerState",
    "ChaosFault",
    "ChaosMonkey",
    "CircuitBreaker",
    "CodegenDaemon",
    "ConfigError",
    "DEFAULT_TENANT",
    "KNOWN_CHAOS",
    "RetryPolicy",
    "ServerConfig",
    "ShedDecision",
    "TenantLimits",
    "TenantTable",
    "TokenBucket",
    "TransientFault",
    "apply_overrides",
    "compatible",
    "is_transient",
    "load_config_overrides",
    "parse_tenant_spec",
    "run_batch",
]
