"""Multi-tenant admission control for the codegen daemon.

The daemon serves many independent clients from shared compute; without
isolation, one aggressive client starves everyone (the classic noisy
neighbour).  This module is the serving-side counterpart of the
compiler-side shared-capacity scheduling in PAPERS.md (MASIM's
multi-array scheduler): every request is accounted to a *tenant* (the
``X-Tenant`` header; anonymous traffic shares the ``default`` tenant)
and three mechanisms keep tenants inside their envelope:

* **token-bucket rate limits** — sustained admission rate with a burst
  allowance; a tenant over its rate is shed with 429 + an honest
  ``Retry-After`` computed from the bucket's refill time (HCG511);
* **per-tenant queue + concurrency quotas** — a tenant may only hold
  ``max_queued`` slots of the shared admission queue and occupy
  ``max_concurrency`` workers; beyond the queue quota it is shed with
  429 (HCG512) *before* it can push the global queue into backpressure
  for everyone else (global capacity remains HCG502);
* **weighted-fair dequeue** — workers pull from per-tenant FIFOs under
  deficit-style weighted round-robin, so a tenant with weight 2 gets
  twice the service share of a weight-1 tenant when both have work
  queued, and a backlog in one FIFO never delays another tenant's.

Everything here runs on the daemon's event-loop thread; the asyncio
condition only orders coroutines, never OS threads.  The clock is
injected and monotonic (tests drive a fake clock; a wall-clock jump can
never mint tokens).
"""

from __future__ import annotations

import asyncio
import dataclasses
import math
import time
from collections import OrderedDict, deque
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Tuple,
)

from repro.server.config import DEFAULT_TENANT, ServerConfig, TenantLimits

#: distinct tenants tracked before idle ones are evicted (a client
#: minting random X-Tenant values must not grow daemon memory unboundedly)
MAX_TRACKED_TENANTS = 1024


class TokenBucket:
    """Monotonic-clock token bucket: ``rate`` tokens/s, ``burst`` cap.

    Refill is lazy (computed at acquire time), the clock is injected,
    and time running backwards is ignored — tokens are only ever minted
    by forward monotonic progress.  Property-tested in
    ``tests/server/test_tenants_property.py``: over *any* acquire
    schedule the grants never exceed ``burst + rate * elapsed``, and an
    idle bucket refills to exactly ``burst``.
    """

    def __init__(self, rate: float, burst: float,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if not rate > 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        if not burst >= 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._updated = clock()

    def _refill(self, now: float) -> None:
        if now > self._updated:
            self._tokens = min(
                self.burst, self._tokens + (now - self._updated) * self.rate
            )
            self._updated = now
        # now <= self._updated: clock stalled or ran backwards — no refill

    @property
    def tokens(self) -> float:
        """Current token count (refilled to now)."""
        self._refill(self._clock())
        return self._tokens

    def try_acquire(self, n: float = 1.0) -> bool:
        """Take ``n`` tokens if available; never blocks."""
        self._refill(self._clock())
        if self._tokens >= n:
            self._tokens -= n
            return True
        return False

    def time_until(self, n: float = 1.0) -> float:
        """Seconds until ``n`` tokens will be available (honest
        ``Retry-After``; 0.0 if they already are)."""
        self._refill(self._clock())
        missing = n - self._tokens
        if missing <= 0:
            return 0.0
        return missing / self.rate

    def reconfigure(self, rate: float, burst: float) -> None:
        """Hot-reload the envelope; accrued tokens carry over, clamped
        to the new burst (a reload never mints a free burst)."""
        self._refill(self._clock())
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = min(self._tokens, self.burst)


@dataclasses.dataclass(frozen=True)
class ShedDecision:
    """Why one request was refused admission, and what to tell the client."""

    code: str           # HCG502 / HCG511 / HCG512
    status: int         # always 429 here
    retry_after_s: int  # honest estimate, >= 1
    message: str


class _TenantState:
    """Book-keeping of one tracked tenant (event-loop only)."""

    __slots__ = (
        "name", "limits", "bucket", "queue", "in_flight", "credit",
        "admitted", "served", "shed_rate", "shed_quota", "last_active",
    )

    def __init__(self, name: str, limits: TenantLimits,
                 clock: Callable[[], float]) -> None:
        self.name = name
        self.limits = limits
        self.bucket = TokenBucket(limits.rate, limits.burst, clock)
        self.queue: Deque[Any] = deque()
        self.in_flight = 0
        self.credit = 0
        self.admitted = 0
        self.served = 0
        self.shed_rate = 0
        self.shed_quota = 0
        self.last_active = clock()

    def idle(self) -> bool:
        return not self.queue and self.in_flight == 0

    def snapshot(self) -> Dict[str, object]:
        return {
            "queued": len(self.queue),
            "in_flight": self.in_flight,
            "tokens": round(self.bucket.tokens, 3),
            "admitted": self.admitted,
            "served": self.served,
            "shed_rate_limit": self.shed_rate,
            "shed_quota": self.shed_quota,
            "limits": self.limits.to_dict(),
        }


class TenantTable:
    """Per-tenant admission queue with weighted-fair dequeue.

    The daemon's replacement for its former single ``asyncio.Queue``:
    same lifecycle surface (``qsize``/``join``/forced drain) plus
    tenant accounting.  All methods run on the event-loop thread.
    """

    def __init__(self, config: ServerConfig,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self._config = config
        self._clock = clock
        self._states: "OrderedDict[str, _TenantState]" = OrderedDict()
        self._order: List[str] = []     # weighted round-robin ring
        self._cursor = 0
        self._tenant_of: Dict[Any, str] = {}
        self._total_queued = 0
        self._total_in_flight = 0
        self._unfinished = 0
        self._cond = asyncio.Condition()

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self._config.queue_size

    def reconfigure(self, config: ServerConfig) -> None:
        """Apply a hot-reloaded config: new capacity, limits, weights.

        Existing buckets keep their accrued tokens (clamped to the new
        burst) so a reload is never a free burst; queued and in-flight
        requests are untouched.
        """
        self._config = config
        for state in self._states.values():
            limits = config.limits_for(state.name)
            if limits != state.limits:
                state.limits = limits
                state.bucket.reconfigure(limits.rate, limits.burst)
                state.credit = min(state.credit, limits.weight)

    # ------------------------------------------------------------------
    # Admission (called from request coroutines)
    # ------------------------------------------------------------------
    def _state_for(self, tenant: str) -> _TenantState:
        state = self._states.get(tenant)
        if state is None:
            if len(self._states) >= MAX_TRACKED_TENANTS:
                self._evict_idle()
            state = _TenantState(tenant, self._config.limits_for(tenant),
                                 self._clock)
            self._states[tenant] = state
            self._order.append(tenant)
        return state

    def _evict_idle(self) -> None:
        for name in list(self._states):
            if name == DEFAULT_TENANT:
                continue
            if self._states[name].idle():
                del self._states[name]
                self._order.remove(name)
                if self._order:
                    self._cursor %= len(self._order)
                if len(self._states) < MAX_TRACKED_TENANTS:
                    return

    async def admit(self, tenant: str, item: Any,
                    backlog_retry_after_s: int) -> Optional[ShedDecision]:
        """Try to enqueue ``item`` for ``tenant``.

        Returns ``None`` on success, a :class:`ShedDecision` otherwise.
        Check order: global capacity (HCG502, the whole daemon is
        saturated), then the tenant's queue quota (HCG512), then its
        rate bucket (HCG511) — a token is only spent on requests that
        are actually admitted.
        """
        async with self._cond:
            state = self._state_for(tenant)
            state.last_active = self._clock()
            if self._total_queued >= self._config.queue_size:
                return ShedDecision(
                    code="HCG502", status=429,
                    retry_after_s=backlog_retry_after_s,
                    message=(
                        f"request queue at capacity "
                        f"({self._config.queue_size}); "
                        f"retry in ~{backlog_retry_after_s}s"
                    ),
                )
            if len(state.queue) >= state.limits.max_queued:
                retry_after = max(1, backlog_retry_after_s)
                return ShedDecision(
                    code="HCG512", status=429, retry_after_s=retry_after,
                    message=(
                        f"tenant {tenant!r} queue quota "
                        f"({state.limits.max_queued}) exhausted; "
                        f"retry in ~{retry_after}s"
                    ),
                )
            if not state.bucket.try_acquire():
                retry_after = max(1, math.ceil(state.bucket.time_until()))
                return ShedDecision(
                    code="HCG511", status=429, retry_after_s=retry_after,
                    message=(
                        f"tenant {tenant!r} rate limit "
                        f"({state.limits.rate:g}/s, burst "
                        f"{state.limits.burst}) exceeded; "
                        f"retry in ~{retry_after}s"
                    ),
                )
            state.queue.append(item)
            state.admitted += 1
            self._tenant_of[item] = tenant
            self._total_queued += 1
            self._unfinished += 1
            self._cond.notify_all()
            return None

    def record_shed(self, tenant: str, code: str) -> None:
        """Account a shed decision to its tenant (for /metrics)."""
        state = self._states.get(tenant)
        if state is None:
            return
        if code == "HCG511":
            state.shed_rate += 1
        elif code == "HCG512":
            state.shed_quota += 1

    # ------------------------------------------------------------------
    # Dequeue (called from worker coroutines)
    # ------------------------------------------------------------------
    def _serviceable(self, state: _TenantState) -> bool:
        return bool(state.queue) and state.in_flight < state.limits.max_concurrency

    def _take_from(self, state: _TenantState) -> Any:
        item = state.queue.popleft()
        state.in_flight += 1
        state.served += 1
        state.last_active = self._clock()
        self._total_queued -= 1
        self._total_in_flight += 1
        return item

    def _pick(self) -> Optional[Any]:
        """Deficit-weighted round-robin over serviceable tenants.

        The cursor stays on a tenant while it has both queued work and
        remaining credit (recharged to ``weight`` each turn), so a
        weight-2 tenant is served twice per ring pass of a weight-1
        tenant; tenants at their concurrency cap are skipped without
        losing their turn.
        """
        order = self._order
        if not order:
            return None
        for _ in range(len(order)):
            name = order[self._cursor % len(order)]
            state = self._states[name]
            if self._serviceable(state):
                if state.credit <= 0:
                    state.credit = state.limits.weight
                state.credit -= 1
                item = self._take_from(state)
                if state.credit <= 0 or not state.queue:
                    state.credit = 0
                    self._cursor = (self._cursor + 1) % len(order)
                return item
            self._cursor = (self._cursor + 1) % len(order)
        return None

    async def next(self) -> Any:
        """The next item to serve (waits until one is eligible)."""
        async with self._cond:
            while True:
                item = self._pick()
                if item is not None:
                    return item
                await self._cond.wait()

    async def collect_compatible(self, predicate: Callable[[Any], bool],
                                 limit: int, window_s: float) -> List[Any]:
        """Extract up to ``limit`` queued items matching ``predicate``.

        Used by the request batcher: waits up to ``window_s`` for
        matching items to arrive, honouring each tenant's concurrency
        quota (extracted items count as in-flight immediately).  Items
        are taken in ring order across tenants, FIFO within a tenant.
        """
        collected: List[Any] = []
        if limit <= 0 or window_s < 0:
            return collected
        deadline = self._clock() + window_s
        async with self._cond:
            while True:
                for name in list(self._order):
                    state = self._states[name]
                    room = state.limits.max_concurrency - state.in_flight
                    if room <= 0 or not state.queue:
                        continue
                    keep: Deque[Any] = deque()
                    while state.queue and room > 0 and len(collected) < limit:
                        item = state.queue.popleft()
                        if predicate(item):
                            state.in_flight += 1
                            state.served += 1
                            self._total_queued -= 1
                            self._total_in_flight += 1
                            collected.append(item)
                            room -= 1
                        else:
                            keep.append(item)
                    keep.extend(state.queue)
                    state.queue = keep
                    if len(collected) >= limit:
                        break
                remaining = deadline - self._clock()
                if len(collected) >= limit or remaining <= 0:
                    return collected
                try:
                    await asyncio.wait_for(self._cond.wait(),
                                           timeout=remaining)
                except asyncio.TimeoutError:
                    return collected

    async def done(self, item: Any) -> None:
        """An item handed out by :meth:`next`/:meth:`collect_compatible`
        finished service (answered, shed, or abandoned)."""
        async with self._cond:
            tenant = self._tenant_of.pop(item, None)
            if tenant is None:
                return
            state = self._states.get(tenant)
            if state is not None:
                state.in_flight = max(0, state.in_flight - 1)
                state.last_active = self._clock()
            self._total_in_flight = max(0, self._total_in_flight - 1)
            self._unfinished = max(0, self._unfinished - 1)
            self._cond.notify_all()

    # ------------------------------------------------------------------
    # Lifecycle (drain)
    # ------------------------------------------------------------------
    def qsize(self) -> int:
        return self._total_queued

    def in_flight(self) -> int:
        return self._total_in_flight

    async def join(self) -> None:
        """Wait until every admitted item has been marked done."""
        async with self._cond:
            while self._unfinished:
                await self._cond.wait()

    async def drain_items(self) -> List[Any]:
        """Forced drain: pop everything still queued (the caller answers
        them HCG508); in-flight items are untouched."""
        async with self._cond:
            abandoned: List[Any] = []
            for state in self._states.values():
                while state.queue:
                    item = state.queue.popleft()
                    self._tenant_of.pop(item, None)
                    self._total_queued -= 1
                    self._unfinished = max(0, self._unfinished - 1)
                    abandoned.append(item)
            self._cond.notify_all()
            return abandoned

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """JSON-ready per-tenant accounting for ``/metrics``."""
        return {
            name: state.snapshot()
            for name, state in sorted(self._states.items())
        }
