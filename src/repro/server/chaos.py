"""Chaos fault injection for the codegen daemon.

The daemon's resilience claims (docs/robustness.md) are only credible
if they are exercised: this module injects the four failure modes the
chaos harness (``tools/loadgen.py``) replays against a live daemon.

``worker_crash``
    The request worker raises mid-generation (:class:`ChaosFault`, a
    transient fault — the retry policy recovers isolated crashes, the
    circuit breaker trips on sustained ones).
``slow_generator``
    Generation stalls past the request deadline, proving deadline
    cancellation (HCG501).  The stall sleeps in small slices and exits
    early once the daemon abandons the attempt, so a cancelled request
    does not leak a pinned worker thread for the full stall.
``cache_corrupt``
    A random on-disk codegen-cache entry is overwritten with garbage,
    proving HCG305 corrupt-entry-to-miss recovery under live traffic.
``disk_full``
    Cache writes raise ``ENOSPC`` (via
    ``CodegenCache.inject_write_fault``), proving HCG307 write-failure-
    to-miss recovery.
``noisy_neighbor``
    Attempts accounted to one designated tenant (``noisy_tenant``,
    default ``"noisy"``) stall for ``slow_s`` while every other
    tenant's attempts run untouched — the multi-tenant fairness
    scenario: the noisy tenant burns its own concurrency quota and is
    rate-shed (HCG511/HCG512) while polite tenants' latency stays
    inside their deadline envelope (tools/loadgen.py
    ``--multi-tenant``).

Faults fire in seeded *bursts*, not i.i.d. coin flips: real incidents
are correlated (a bad deploy, a full disk), and bursts are what trips a
consecutive-failure circuit breaker.  ``rate`` is the long-run fraction
of injection points inside a burst; tests can pin exact behaviour with
an explicit per-fault ``plan`` of call indices instead.

Chaos targets only the *primary* generation path: once the breaker has
demoted a request to the fallback generator, injection is skipped —
the point of demotion is routing around the faulty path.
"""

from __future__ import annotations

import errno
import os
import random
import threading
import time
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.server.retry import TransientFault

#: every fault name the daemon accepts; unknown names fail fast
KNOWN_CHAOS: Tuple[str, ...] = (
    "worker_crash",
    "slow_generator",
    "cache_corrupt",
    "disk_full",
    "noisy_neighbor",
)

#: injection points per burst
BURST_LENGTH = 16


class ChaosFault(TransientFault):
    """An injected worker fault (transient: the retry policy applies)."""


class ChaosMonkey:
    """Seeded burst scheduler + the four fault implementations.

    One instance per daemon; ``on_attempt`` is called (in the worker
    thread) at the top of every non-demoted generation attempt.
    """

    def __init__(
        self,
        faults: Sequence[str] = (),
        rate: float = 0.25,
        seed: int = 0,
        slow_s: float = 1.0,
        burst_length: int = BURST_LENGTH,
        plan: Optional[Dict[str, Sequence[int]]] = None,
        noisy_tenant: str = "noisy",
    ) -> None:
        for name in tuple(faults) + tuple(plan or ()):
            if name not in KNOWN_CHAOS:
                raise ValueError(
                    f"unknown chaos fault {name!r}; known: {KNOWN_CHAOS}"
                )
        if not 0.0 < rate <= 1.0 and faults:
            raise ValueError(f"rate must be in (0, 1], got {rate}")
        self.faults = tuple(faults)
        self.rate = rate
        self.slow_s = slow_s
        self.noisy_tenant = noisy_tenant
        self.burst_length = max(1, burst_length)
        self.plan = {name: set(calls) for name, calls in (plan or {}).items()}
        self._rng = random.Random(seed)
        self._calls = 0
        self._lock = threading.Lock()
        self.injected: Dict[str, int] = {name: 0 for name in KNOWN_CHAOS}
        # Burst schedule per fault: first burst starts a short random
        # way in; gaps are sized so the long-run injected fraction ~rate.
        self._burst_start: Dict[str, int] = {}
        self._burst_end: Dict[str, int] = {}
        for name in self.faults:
            self._schedule_burst(name, self._rng.randint(1, self.burst_length))

    # ------------------------------------------------------------------
    def _schedule_burst(self, name: str, start: int) -> None:
        self._burst_start[name] = start
        self._burst_end[name] = start + self.burst_length

    def _gap(self) -> int:
        """Calls between bursts so bursts cover ~``rate`` of calls."""
        mean_gap = self.burst_length * max(1.0 / self.rate - 1.0, 0.0)
        return max(1, int(self._rng.uniform(0.5, 1.5) * mean_gap))

    def _active(self, name: str, call: int) -> bool:
        if name in self.plan:
            return call in self.plan[name]
        if name not in self.faults:
            return False
        if call >= self._burst_end[name]:
            self._schedule_burst(name, self._burst_end[name] + self._gap())
        return self._burst_start[name] <= call < self._burst_end[name]

    # ------------------------------------------------------------------
    def on_attempt(self, cache=None,
                   abandoned: Optional[Callable[[], bool]] = None,
                   tenant: Optional[str] = None) -> None:
        """Run in the worker thread at the top of one generation attempt.

        ``cache`` is the service's :class:`~repro.service.cache.CodegenCache`
        (or ``None``); ``abandoned`` reports whether the daemon already
        gave up on this attempt (deadline), ending a stall early;
        ``tenant`` is who the attempt is accounted to — the
        ``noisy_neighbor`` fault only fires for ``noisy_tenant``'s
        attempts (and only those count as injections).
        """
        with self._lock:
            call = self._calls
            self._calls += 1
            active = [
                name for name in KNOWN_CHAOS if self._active(name, call)
            ]
            if "noisy_neighbor" in active and tenant != self.noisy_tenant:
                active.remove("noisy_neighbor")
            for name in active:
                self.injected[name] += 1
        if "noisy_neighbor" in active:
            self._stall(abandoned)
        if "cache_corrupt" in active and cache is not None:
            self._corrupt_one_entry(cache)
        if "disk_full" in active and cache is not None:
            cache.inject_write_fault = _raise_enospc
        elif cache is not None and "disk_full" in self.faults:
            cache.inject_write_fault = None
        if "slow_generator" in active:
            self._stall(abandoned)
        if "worker_crash" in active:
            raise ChaosFault("chaos: injected worker crash")

    # ------------------------------------------------------------------
    def _stall(self, abandoned: Optional[Callable[[], bool]]) -> None:
        deadline = time.monotonic() + self.slow_s
        while time.monotonic() < deadline:
            if abandoned is not None and abandoned():
                return
            time.sleep(0.02)

    def _corrupt_one_entry(self, cache) -> None:
        entries = sorted(
            (path for _, _, path in cache._entries_by_age()),
            key=lambda p: p.name,
        )
        if not entries:
            return
        victim = entries[self._rng.randrange(len(entries))]
        try:
            victim.write_bytes(b"\x00chaos: corrupted cache entry\x00")
        except OSError:
            pass  # racing an eviction loses; the fault simply misses

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {
                "faults": list(self.faults),
                "rate": self.rate,
                "calls": self._calls,
                "injected": {
                    name: count
                    for name, count in self.injected.items()
                    if count
                },
            }


def _raise_enospc() -> None:
    raise OSError(errno.ENOSPC, os.strerror(errno.ENOSPC))
