"""Per-generator circuit breakers for the codegen daemon.

A breaker guards one generator's synthesis path.  While it is CLOSED,
requests flow to the generator normally.  ``threshold`` consecutive
final failures (crashes, deadline cancellations — not client errors)
trip it OPEN: traffic is demoted to the fallback generator (the
conventional scalar path, reusing the PR 1 degradation lattice) so the
daemon keeps serving *correct* code while the faulty path cools down.
After ``cooldown_s`` the breaker goes HALF_OPEN and lets exactly one
probe request through; a probe success closes the breaker (recovery), a
probe failure re-opens it for another cooldown.

Thread-safety: every public method takes an internal lock.  The daemon
mutates breakers from its event-loop thread, but the single-probe
admission in :meth:`allow` is a check-then-act that must stay atomic
under *any* caller interleaving (regression: tests/server/test_breaker.py
``test_half_open_single_probe_under_concurrency``) — two racing callers
both seeing ``probe_in_flight == False`` would both fly the probe, and
a probe double-fly defeats the whole point of half-open.

A probe that never reports back (its request was abandoned between
``allow()`` and ``record_*``, e.g. by the worker-crash answer path) is
*reclaimed* after another ``cooldown_s``: without reclaim a lost probe
would pin ``probe_in_flight`` forever and demote all traffic for the
rest of the daemon's life.
"""

from __future__ import annotations

import enum
import threading
import time
from typing import Callable, Dict, List, Optional, Tuple


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure breaker with a half-open probe."""

    def __init__(
        self,
        name: str,
        threshold: int = 5,
        cooldown_s: float = 2.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self.name = name
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._lock = threading.RLock()
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at: Optional[float] = None
        self._probe_in_flight = False
        self._probe_started: Optional[float] = None
        self.trips = 0
        self.recoveries = 0
        #: (timestamp, from-state, to-state) transition log, newest last
        self.transitions: List[Tuple[float, str, str]] = []

    # ------------------------------------------------------------------
    def _transition(self, new_state: BreakerState) -> None:
        self.transitions.append(
            (self._clock(), self._state.value, new_state.value)
        )
        self._state = new_state

    def _current_state(self) -> BreakerState:
        """State with the lazy OPEN→HALF_OPEN edge applied (lock held)."""
        if (
            self._state is BreakerState.OPEN
            and self._opened_at is not None
            and self._clock() - self._opened_at >= self.cooldown_s
        ):
            self._transition(BreakerState.HALF_OPEN)
            self._probe_in_flight = False
            self._probe_started = None
        return self._state

    @property
    def state(self) -> BreakerState:
        """Current state; an elapsed cooldown surfaces as HALF_OPEN."""
        with self._lock:
            return self._current_state()

    # ------------------------------------------------------------------
    def allow(self) -> bool:
        """May the next request use the guarded generator?

        CLOSED: yes.  OPEN: no (demote).  HALF_OPEN: yes for exactly one
        probe at a time; concurrent requests are demoted until the probe
        reports back.  A probe lost for a full ``cooldown_s`` (its
        request was abandoned before ``record_success``/``record_failure``)
        is reclaimed so the breaker cannot wedge in permanent demotion.
        """
        with self._lock:
            state = self._current_state()
            if state is BreakerState.CLOSED:
                return True
            if state is BreakerState.HALF_OPEN:
                if (
                    self._probe_in_flight
                    and self._probe_started is not None
                    and self._clock() - self._probe_started >= self.cooldown_s
                ):
                    self._probe_in_flight = False  # reclaim the lost probe
                    self._probe_started = None
                if not self._probe_in_flight:
                    self._probe_in_flight = True
                    self._probe_started = self._clock()
                    return True
            return False

    def record_success(self) -> None:
        """A request served by the guarded generator succeeded."""
        with self._lock:
            state = self._current_state()
            if state is BreakerState.OPEN:
                # A success reported while OPEN (e.g. a coalesced batch
                # whose members finished concurrently with the failure
                # that tripped us) must not clear the cooldown clock —
                # that would wedge the breaker OPEN with no HALF_OPEN
                # edge ever firing.
                self._consecutive_failures = 0
                return
            if state is BreakerState.HALF_OPEN:
                self.recoveries += 1
                self._transition(BreakerState.CLOSED)
            self._consecutive_failures = 0
            self._opened_at = None
            self._probe_in_flight = False
            self._probe_started = None

    def record_failure(self) -> None:
        """A request served by the guarded generator finally failed."""
        with self._lock:
            state = self._current_state()
            self._consecutive_failures += 1
            if state is BreakerState.HALF_OPEN:
                # The probe failed: straight back to OPEN for a new cooldown.
                self._transition(BreakerState.OPEN)
                self._opened_at = self._clock()
                self._probe_in_flight = False
                self._probe_started = None
                self.trips += 1
            elif (
                state is BreakerState.CLOSED
                and self._consecutive_failures >= self.threshold
            ):
                self._transition(BreakerState.OPEN)
                self._opened_at = self._clock()
                self.trips += 1

    # ------------------------------------------------------------------
    def reconfigure(self, threshold: int, cooldown_s: float) -> None:
        """Hot-reload the trip envelope without losing current state.

        An already-open breaker keeps its cooldown clock; a CLOSED
        breaker whose failure count now meets a *lowered* threshold
        trips on its next failure, not retroactively.
        """
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        with self._lock:
            self.threshold = int(threshold)
            self.cooldown_s = float(cooldown_s)

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """JSON-ready state for ``/metrics`` and the access log."""
        with self._lock:
            return {
                "state": self._current_state().value,
                "consecutive_failures": self._consecutive_failures,
                "threshold": self.threshold,
                "cooldown_s": self.cooldown_s,
                "trips": self.trips,
                "recoveries": self.recoveries,
            }
