"""Per-generator circuit breakers for the codegen daemon.

A breaker guards one generator's synthesis path.  While it is CLOSED,
requests flow to the generator normally.  ``threshold`` consecutive
final failures (crashes, deadline cancellations — not client errors)
trip it OPEN: traffic is demoted to the fallback generator (the
conventional scalar path, reusing the PR 1 degradation lattice) so the
daemon keeps serving *correct* code while the faulty path cools down.
After ``cooldown_s`` the breaker goes HALF_OPEN and lets exactly one
probe request through; a probe success closes the breaker (recovery), a
probe failure re-opens it for another cooldown.

The breaker is mutated only from the daemon's event-loop thread, so no
lock is needed; tests drive it with a fake clock.
"""

from __future__ import annotations

import enum
import time
from typing import Callable, Dict, List, Optional, Tuple


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure breaker with a half-open probe."""

    def __init__(
        self,
        name: str,
        threshold: int = 5,
        cooldown_s: float = 2.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self.name = name
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at: Optional[float] = None
        self._probe_in_flight = False
        self.trips = 0
        self.recoveries = 0
        #: (timestamp, from-state, to-state) transition log, newest last
        self.transitions: List[Tuple[float, str, str]] = []

    # ------------------------------------------------------------------
    def _transition(self, new_state: BreakerState) -> None:
        self.transitions.append(
            (self._clock(), self._state.value, new_state.value)
        )
        self._state = new_state

    @property
    def state(self) -> BreakerState:
        """Current state; an elapsed cooldown surfaces as HALF_OPEN."""
        if (
            self._state is BreakerState.OPEN
            and self._opened_at is not None
            and self._clock() - self._opened_at >= self.cooldown_s
        ):
            self._transition(BreakerState.HALF_OPEN)
            self._probe_in_flight = False
        return self._state

    # ------------------------------------------------------------------
    def allow(self) -> bool:
        """May the next request use the guarded generator?

        CLOSED: yes.  OPEN: no (demote).  HALF_OPEN: yes for exactly one
        probe at a time; concurrent requests are demoted until the probe
        reports back.
        """
        state = self.state
        if state is BreakerState.CLOSED:
            return True
        if state is BreakerState.HALF_OPEN and not self._probe_in_flight:
            self._probe_in_flight = True
            return True
        return False

    def record_success(self) -> None:
        """A request served by the guarded generator succeeded."""
        if self.state is BreakerState.HALF_OPEN:
            self.recoveries += 1
            self._transition(BreakerState.CLOSED)
        self._consecutive_failures = 0
        self._opened_at = None
        self._probe_in_flight = False

    def record_failure(self) -> None:
        """A request served by the guarded generator finally failed."""
        state = self.state
        self._consecutive_failures += 1
        if state is BreakerState.HALF_OPEN:
            # The probe failed: straight back to OPEN for a new cooldown.
            self._transition(BreakerState.OPEN)
            self._opened_at = self._clock()
            self._probe_in_flight = False
            self.trips += 1
        elif (
            state is BreakerState.CLOSED
            and self._consecutive_failures >= self.threshold
        ):
            self._transition(BreakerState.OPEN)
            self._opened_at = self._clock()
            self.trips += 1

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """JSON-ready state for ``/metrics`` and the access log."""
        return {
            "state": self.state.value,
            "consecutive_failures": self._consecutive_failures,
            "threshold": self.threshold,
            "cooldown_s": self.cooldown_s,
            "trips": self.trips,
            "recoveries": self.recoveries,
        }
