"""Retry policy for transiently-failed requests: backoff + jitter.

The daemon retries a request attempt only when the fault is *transient*
— an injected chaos fault, an ``OSError`` (disk hiccup), a resource
race — and only while the request's deadline still has room for the
backoff delay plus one more attempt.  Deterministic faults (model
errors, strict-mode ``CodegenError``, verification divergence) are
never retried: the same input would fail the same way.

Delays follow capped exponential backoff with equal jitter
(``d/2 + uniform(0, d/2)``), the standard shape that avoids
thundering-herd retry synchronization while keeping a floor under the
spacing.  The jitter source is an injected ``random.Random`` so tests
and the chaos harness stay reproducible.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Iterator

from repro.errors import ReproError


class TransientFault(RuntimeError):
    """Marker base for faults worth retrying (chaos faults derive
    from it; infrastructure code may raise it directly)."""


def is_transient(exc: BaseException) -> bool:
    """Should a failed attempt be retried?

    ``ReproError`` means the *input* is at fault — deterministic, never
    retried.  ``TransientFault`` (chaos) and ``OSError`` (I/O hiccups)
    are the retryable class.
    """
    if isinstance(exc, ReproError):
        return False
    return isinstance(exc, (TransientFault, OSError, ConnectionError))


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with equal jitter."""

    #: total tries per request (1 = no retries)
    attempts: int = 3
    #: delay before the first retry (seconds)
    base_s: float = 0.05
    #: ceiling on any single delay (seconds)
    max_s: float = 2.0
    #: growth factor between retries
    multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")
        if self.base_s < 0 or self.max_s < 0:
            raise ValueError("backoff delays must be >= 0")

    def delay_s(self, retry_index: int, rng: random.Random) -> float:
        """The jittered delay before retry ``retry_index`` (0-based)."""
        raw = min(self.base_s * (self.multiplier ** retry_index), self.max_s)
        return raw / 2 + rng.uniform(0, raw / 2)

    def delays(self, rng: random.Random) -> Iterator[float]:
        """The full backoff schedule: ``attempts - 1`` delays."""
        for index in range(self.attempts - 1):
            yield self.delay_s(index, rng)
