"""Daemon configuration: validated, frozen, and hot-reloadable.

:class:`ServerConfig` is every knob the codegen daemon owns.  It is a
frozen dataclass so a running daemon can swap the *whole object*
atomically — one attribute assignment on the event loop — and every
request admitted afterwards sees the new limits while requests already
in flight keep the deadlines and budgets they were admitted under.

Reload sources (docs/api.md#hot-config-reload):

* ``POST /admin/reload`` with a JSON body of overrides;
* ``SIGHUP`` re-reading the ``--config`` JSON file the daemon was
  started with.

Both paths go through :func:`apply_overrides`, which validates the
override document against the reloadable-field whitelist **before**
anything is swapped: a bad reload is rejected with :class:`ConfigError`
(HCG514) and the previous config stays in force — the daemon never
runs on a half-applied or invalid configuration.

Per-tenant limits are :class:`TenantLimits` values keyed by the
``X-Tenant`` request header; the ``default_tenant`` entry is the
envelope anonymous traffic (and any tenant without an explicit entry)
shares.  Enforcement lives in :mod:`repro.server.tenants`.
"""

from __future__ import annotations

import dataclasses
import json
import re
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.server.retry import RetryPolicy

#: tenant names accepted from the wire (X-Tenant) and config files
TENANT_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]{0,63}$")

#: the tenant anonymous requests (no X-Tenant header) are accounted to
DEFAULT_TENANT = "default"


class ConfigError(ValueError):
    """A config document (or reload override) failed validation."""


@dataclasses.dataclass(frozen=True)
class TenantLimits:
    """Admission envelope of one tenant (docs/robustness.md#multi-tenant-admission).

    The defaults are deliberately generous — an unconfigured daemon
    behaves like the single-tenant PR 5 daemon, bounded only by the
    global queue.  Operators tighten them per deployment (CLI flags,
    config file, or a hot reload).
    """

    #: sustained admission rate (token-bucket refill, requests/second)
    rate: float = 1000.0
    #: burst allowance (token-bucket capacity, requests)
    burst: int = 1000
    #: concurrent requests in service (workers a tenant may occupy)
    max_concurrency: int = 64
    #: queued requests (per-tenant backpressure before the global cap)
    max_queued: int = 256
    #: weighted-fair dequeue share relative to other tenants
    weight: int = 1

    def __post_init__(self) -> None:
        if not self.rate > 0:
            raise ConfigError(f"tenant rate must be > 0, got {self.rate}")
        if self.burst < 1:
            raise ConfigError(f"tenant burst must be >= 1, got {self.burst}")
        if self.max_concurrency < 1:
            raise ConfigError(
                f"tenant max_concurrency must be >= 1, got {self.max_concurrency}"
            )
        if self.max_queued < 1:
            raise ConfigError(
                f"tenant max_queued must be >= 1, got {self.max_queued}"
            )
        if self.weight < 1:
            raise ConfigError(f"tenant weight must be >= 1, got {self.weight}")

    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class ServerConfig:
    """Every daemon knob, with survivable defaults."""

    host: str = "127.0.0.1"
    #: 0 = pick an ephemeral port (reported by the ``listening`` event)
    port: int = 8337
    #: bounded request queue: admission beyond this is a 429
    queue_size: int = 64
    #: concurrent request workers (and generation threads)
    workers: int = 4
    #: default and maximum per-request wall-clock budget (seconds)
    deadline_s: float = 10.0
    #: how long a SIGTERM drain waits for accepted requests
    drain_grace_s: float = 30.0
    retry: RetryPolicy = RetryPolicy()
    #: consecutive final failures that trip a generator's breaker
    breaker_threshold: int = 5
    #: seconds an open breaker waits before its half-open probe
    breaker_cooldown_s: float = 2.0
    #: generator demoted-to while a breaker is open (the conventional
    #: scalar path — always available, never SIMD-synthesis-faulted)
    fallback_generator: str = "simulink_coder"
    #: admission envelope shared by anonymous / unconfigured tenants
    default_tenant: TenantLimits = TenantLimits()
    #: per-tenant overrides, keyed by X-Tenant header value
    tenants: Dict[str, TenantLimits] = dataclasses.field(default_factory=dict)
    #: coalescing window for compatible generate requests (seconds;
    #: 0 disables batching)
    batch_window_s: float = 0.01
    #: most requests one coalesced ParallelExecutor pass may carry
    batch_max: int = 8
    #: JSON overrides file re-read on SIGHUP (None = SIGHUP is a no-op)
    config_path: Optional[str] = None
    #: chaos fault names to inject (tools/loadgen.py --inject)
    chaos: Tuple[str, ...] = ()
    chaos_rate: float = 0.25
    chaos_seed: int = 0
    #: how long an injected slow_generator stall lasts (seconds)
    chaos_slow_s: float = 1.0
    #: tenant whose attempts the noisy_neighbor chaos fault stalls
    chaos_noisy_tenant: str = "noisy"

    def __post_init__(self) -> None:
        if self.queue_size < 1:
            raise ValueError(f"queue_size must be >= 1, got {self.queue_size}")
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.deadline_s <= 0:
            raise ValueError(f"deadline_s must be > 0, got {self.deadline_s}")
        if self.batch_window_s < 0:
            raise ValueError(
                f"batch_window_s must be >= 0, got {self.batch_window_s}"
            )
        if self.batch_max < 1:
            raise ValueError(f"batch_max must be >= 1, got {self.batch_max}")
        for name in self.tenants:
            if not TENANT_NAME_RE.match(name):
                raise ValueError(f"invalid tenant name {name!r}")

    # ------------------------------------------------------------------
    def limits_for(self, tenant: str) -> TenantLimits:
        """The admission envelope of one tenant (default when unlisted)."""
        return self.tenants.get(tenant, self.default_tenant)

    def public_dict(self) -> Dict[str, object]:
        """The reloadable view served by ``GET /admin/config``."""
        return {
            "queue_size": self.queue_size,
            "deadline_s": self.deadline_s,
            "drain_grace_s": self.drain_grace_s,
            "retry": dataclasses.asdict(self.retry),
            "breaker_threshold": self.breaker_threshold,
            "breaker_cooldown_s": self.breaker_cooldown_s,
            "fallback_generator": self.fallback_generator,
            "default_tenant": self.default_tenant.to_dict(),
            "tenants": {
                name: limits.to_dict()
                for name, limits in sorted(self.tenants.items())
            },
            "batch_window_s": self.batch_window_s,
            "batch_max": self.batch_max,
        }


#: fields a hot reload may change — everything else is boot-time only
RELOADABLE_FIELDS = (
    "queue_size",
    "deadline_s",
    "drain_grace_s",
    "retry",
    "breaker_threshold",
    "breaker_cooldown_s",
    "fallback_generator",
    "default_tenant",
    "tenants",
    "batch_window_s",
    "batch_max",
)

#: boot-time fields a reload must not mention (listeners, thread pool
#: and the seeded chaos schedule cannot be swapped under live traffic)
IMMUTABLE_FIELDS = (
    "host", "port", "workers", "config_path",
    "chaos", "chaos_rate", "chaos_seed", "chaos_slow_s",
    "chaos_noisy_tenant",
)


def _tenant_limits_from(base: TenantLimits, overrides: object,
                        where: str) -> TenantLimits:
    if not isinstance(overrides, dict):
        raise ConfigError(f"{where} must be a JSON object of limit fields")
    known = {f.name for f in dataclasses.fields(TenantLimits)}
    unknown = set(overrides) - known
    if unknown:
        raise ConfigError(
            f"{where}: unknown limit field(s) {sorted(unknown)}; "
            f"known: {sorted(known)}"
        )
    for key, value in overrides.items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ConfigError(f"{where}.{key} must be a number, got {value!r}")
    try:
        return dataclasses.replace(base, **overrides)
    except ConfigError:
        raise
    except (TypeError, ValueError) as exc:
        raise ConfigError(f"{where}: {exc}")


def apply_overrides(config: ServerConfig,
                    overrides: dict) -> Tuple[ServerConfig, List[str]]:
    """Validate ``overrides`` against ``config``; return the new config.

    Returns ``(new_config, changed_field_names)``.  Raises
    :class:`ConfigError` — and leaves ``config`` untouched — on any
    unknown field, immutable field, or invalid value, so the caller can
    swap atomically only after full validation (HCG514 otherwise).
    """
    if not isinstance(overrides, dict):
        raise ConfigError("config overrides must be a JSON object")
    immutable = sorted(set(overrides) & set(IMMUTABLE_FIELDS))
    if immutable:
        raise ConfigError(
            f"field(s) {immutable} cannot be changed by a reload "
            f"(boot-time only: restart the daemon)"
        )
    unknown = sorted(set(overrides) - set(RELOADABLE_FIELDS))
    if unknown:
        raise ConfigError(
            f"unknown config field(s) {unknown}; "
            f"reloadable: {list(RELOADABLE_FIELDS)}"
        )
    changes: Dict[str, object] = {}
    for name, value in overrides.items():
        if name == "retry":
            if not isinstance(value, dict):
                raise ConfigError("retry must be a JSON object")
            known = {f.name for f in dataclasses.fields(RetryPolicy)}
            unknown_retry = set(value) - known
            if unknown_retry:
                raise ConfigError(
                    f"retry: unknown field(s) {sorted(unknown_retry)}"
                )
            try:
                changes["retry"] = dataclasses.replace(config.retry, **value)
            except (TypeError, ValueError) as exc:
                raise ConfigError(f"retry: {exc}")
        elif name == "default_tenant":
            changes["default_tenant"] = _tenant_limits_from(
                config.default_tenant, value, "default_tenant")
        elif name == "tenants":
            if not isinstance(value, dict):
                raise ConfigError("tenants must be a JSON object")
            merged = dict(config.tenants)
            for tenant, limits in value.items():
                if not TENANT_NAME_RE.match(str(tenant)):
                    raise ConfigError(f"invalid tenant name {tenant!r}")
                if limits is None:
                    merged.pop(tenant, None)  # null removes the override
                    continue
                base = merged.get(tenant, config.default_tenant)
                merged[tenant] = _tenant_limits_from(
                    base, limits, f"tenants[{tenant!r}]")
            changes["tenants"] = merged
        else:
            changes[name] = value
    try:
        new_config = dataclasses.replace(config, **changes)
    except ConfigError:
        raise
    except (TypeError, ValueError) as exc:
        raise ConfigError(str(exc))
    changed = [
        name for name in sorted(changes)
        if getattr(new_config, name) != getattr(config, name)
    ]
    return new_config, changed


def load_config_overrides(path: str) -> dict:
    """Read a JSON overrides document (the ``--config`` / SIGHUP file)."""
    try:
        text = Path(path).read_text()
    except OSError as exc:
        raise ConfigError(f"cannot read config file {path}: {exc}")
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ConfigError(f"config file {path} is not valid JSON: {exc}")
    if not isinstance(document, dict):
        raise ConfigError(f"config file {path} must hold a JSON object")
    return document


def parse_tenant_spec(text: str) -> Tuple[str, Dict[str, object]]:
    """Parse one ``--tenant NAME:k=v,...`` CLI spec.

    Example: ``noisy:rate=5,burst=10,max_concurrency=2,weight=1``.
    Returns ``(name, override_dict)`` ready for :func:`apply_overrides`.
    """
    name, sep, rest = text.partition(":")
    name = name.strip()
    if not sep or not TENANT_NAME_RE.match(name):
        raise ConfigError(
            f"bad --tenant spec {text!r}; expected NAME:key=value[,...]"
        )
    fields = {f.name: f.type for f in dataclasses.fields(TenantLimits)}
    overrides: Dict[str, object] = {}
    for part in filter(None, (p.strip() for p in rest.split(","))):
        key, eq, value = part.partition("=")
        key = key.strip()
        if not eq or key not in fields:
            raise ConfigError(
                f"bad --tenant field {part!r}; known: {sorted(fields)}"
            )
        try:
            overrides[key] = float(value) if key == "rate" else int(value)
        except ValueError:
            raise ConfigError(f"--tenant {key} must be a number, got {value!r}")
    if not overrides:
        raise ConfigError(f"--tenant spec {text!r} sets no limits")
    return name, overrides
