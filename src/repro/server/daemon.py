"""`repro serve`: the resilient codegen daemon.

An asyncio HTTP front end over :class:`~repro.service.service.CodegenService`
— the "codegen as a service" story of the ROADMAP, built for survival
under overload and partial failure rather than raw feature count:

* **bounded admission** — requests enter a bounded queue; when it is
  full the daemon answers ``429`` with a ``Retry-After`` estimate
  (HCG502) instead of buffering unboundedly, and a queued request whose
  deadline lapses before a worker picks it up is shed (HCG503) instead
  of wasting a worker on an answer nobody is waiting for;
* **deadlines** — every request carries a wall-clock budget (client
  ``deadline_s``, capped by the server default); work still running at
  the deadline is cancelled and answered ``504`` with HCG501;
* **retries** — transiently-failed attempts (chaos faults, I/O
  hiccups) are retried with capped exponential backoff + jitter while
  the deadline has room (HCG506 per retry, HCG507 on exhaustion);
* **circuit breakers** — consecutive final failures of one generator
  trip its breaker; traffic demotes to the conventional scalar
  fallback generator (HCG504) until a half-open probe succeeds,
  reusing the PR 1 degradation lattice at the service boundary;
* **graceful drain** — SIGTERM stops accepting, serves every accepted
  request, persists selection histories and timing caches atomically,
  then exits 0.  No accepted request is lost.

Every failure mode surfaces as a stable ``HCG5xx`` diagnostic
(docs/robustness.md); ``/healthz`` and ``/metrics`` expose the queue,
breaker and latency state fed by the span tracer's counters.  The
protocol is documented in docs/api.md; ``tools/loadgen.py`` is the
load + chaos harness that replays thousands of mixed requests against
a live daemon.

Threading model: the event loop owns all daemon state (queue, breakers,
counters, log); generation runs on a bounded thread pool and touches
only the thread-safe :class:`CodegenService`.
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses
import json
import math
import random
import signal
import sys
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.diagnostics import DIAGNOSTIC_CODES, Diagnostic
from repro.errors import ReproError
from repro.observability.metrics import COUNTERS
from repro.observability.tracer import Tracer
from repro.server.breaker import CircuitBreaker
from repro.server.chaos import ChaosMonkey
from repro.server.http import (
    HttpProtocolError,
    HttpRequest,
    read_request,
    response_bytes,
)
from repro.server.retry import RetryPolicy, is_transient

#: benchmark models the protocol can instantiate at a requested scale
#: (mirrors repro.bench.trajectory.quick_suite)
def _scaled_model_builders() -> Dict[str, Callable[[int], Any]]:
    from repro.bench.models import (
        conv_model,
        dct_model,
        fft_model,
        fir_model,
        highpass_model,
        lowpass_model,
    )

    return {
        "FFT": fft_model,
        "DCT": dct_model,
        "Conv": lambda n: conv_model(n, max(n // 16, 2)),
        "HighPass": highpass_model,
        "LowPass": lowpass_model,
        "FIR": fir_model,
    }


#: semantic option overrides a request body may carry
_OPTION_KEYS = (
    "policy", "branch_aware", "variable_reuse", "unroll_limit",
    "simd_threshold",
)

#: status code each terminal HCG5xx diagnostic maps to
_STATUS_OF_CODE = {
    "HCG501": 504,
    "HCG502": 429,
    "HCG503": 504,
    "HCG505": 500,
    "HCG507": 500,
    "HCG508": 503,
}


@dataclasses.dataclass(frozen=True)
class ServerConfig:
    """Every daemon knob, with survivable defaults."""

    host: str = "127.0.0.1"
    #: 0 = pick an ephemeral port (reported by the ``listening`` event)
    port: int = 8337
    #: bounded request queue: admission beyond this is a 429
    queue_size: int = 64
    #: concurrent request workers (and generation threads)
    workers: int = 4
    #: default and maximum per-request wall-clock budget (seconds)
    deadline_s: float = 10.0
    #: how long a SIGTERM drain waits for accepted requests
    drain_grace_s: float = 30.0
    retry: RetryPolicy = RetryPolicy()
    #: consecutive final failures that trip a generator's breaker
    breaker_threshold: int = 5
    #: seconds an open breaker waits before its half-open probe
    breaker_cooldown_s: float = 2.0
    #: generator demoted-to while a breaker is open (the conventional
    #: scalar path — always available, never SIMD-synthesis-faulted)
    fallback_generator: str = "simulink_coder"
    #: chaos fault names to inject (tools/loadgen.py --inject)
    chaos: Tuple[str, ...] = ()
    chaos_rate: float = 0.25
    chaos_seed: int = 0
    #: how long an injected slow_generator stall lasts (seconds)
    chaos_slow_s: float = 1.0

    def __post_init__(self) -> None:
        if self.queue_size < 1:
            raise ValueError(f"queue_size must be >= 1, got {self.queue_size}")
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.deadline_s <= 0:
            raise ValueError(f"deadline_s must be > 0, got {self.deadline_s}")


class _BadRequest(Exception):
    """The request body failed validation (a 400, never retried)."""


@dataclasses.dataclass
class _RequestSpec:
    """One validated generation request, ready for a worker."""

    model: Any                  # name, path, or deferred scaled builder
    model_name: str
    scale: Optional[int]
    generator: str
    options: Any                # CodegenOptions
    verify: bool
    seed: int
    steps: int
    deadline_s: float
    include_source: bool


@dataclasses.dataclass(eq=False)  # identity hash: items live in sets
class _Pending:
    """One admitted request waiting for (or being served by) a worker."""

    spec: _RequestSpec
    deadline: float             # monotonic
    enqueued: float             # monotonic
    future: "asyncio.Future"

    def resolve(self, status: int, payload: dict,
                headers: Tuple[Tuple[str, str], ...] = ()) -> None:
        if not self.future.done():
            self.future.set_result((status, payload, headers))


def _diag(code: str, message: str, **kwargs: str) -> Diagnostic:
    severity = DIAGNOSTIC_CODES[code][0]
    return Diagnostic(code=code, severity=severity, message=message, **kwargs)


def _diag_dicts(diagnostics) -> List[dict]:
    return [
        {
            "code": d.code,
            "severity": d.severity.label(),
            "message": d.message,
            "actor": d.actor,
            "location": d.location,
        }
        for d in diagnostics
    ]


class CodegenDaemon:
    """The asyncio daemon; one instance per ``repro serve`` process."""

    def __init__(self, service, config: ServerConfig = ServerConfig(),
                 base_options=None, tracer: Optional[Tracer] = None,
                 log_stream=None) -> None:
        from repro.codegen.options import CodegenOptions

        self.service = service
        self.config = config
        self.base_options = (base_options if base_options is not None
                             else CodegenOptions(policy="permissive"))
        self.tracer = tracer if tracer is not None else Tracer()
        self._log_stream = log_stream if log_stream is not None else sys.stderr
        self.chaos: Optional[ChaosMonkey] = None
        if config.chaos:
            self.chaos = ChaosMonkey(
                faults=config.chaos, rate=config.chaos_rate,
                seed=config.chaos_seed, slow_s=config.chaos_slow_s,
            )
        self._clock = time.monotonic
        self._retry_rng = random.Random(config.chaos_seed ^ 0x5EED)
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._breaker_logged: Dict[str, int] = {}
        self._latencies_ms: Deque[float] = deque(maxlen=20000)
        self._ewma_ms = 50.0
        self._started_at = 0.0
        self._draining = False
        self.drained = False
        self.bound_port: Optional[int] = None
        self._ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._queue: Optional[asyncio.Queue] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections: set = set()
        self._in_flight: set = set()
        self._done: Optional[asyncio.Event] = None
        self._pool: Optional[ThreadPoolExecutor] = None
        self._worker_tasks: List[asyncio.Task] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def run(self) -> int:
        """Serve until drained (SIGTERM/SIGINT); returns the exit code."""
        try:
            asyncio.run(self._main())
        finally:
            self._ready.set()  # never leave wait_ready() hanging
        return 0 if self.drained else 1

    def wait_ready(self, timeout: float = 30.0) -> int:
        """Block (from another thread) until listening; returns the port."""
        if not self._ready.wait(timeout):
            raise TimeoutError("daemon did not start listening in time")
        if self.bound_port is None:
            raise RuntimeError("daemon exited before binding its socket")
        return self.bound_port

    def request_drain_threadsafe(self) -> None:
        """Trigger the SIGTERM drain path from another thread (tests)."""
        loop = self._loop
        if loop is not None and not loop.is_closed():
            loop.call_soon_threadsafe(self.request_drain)

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue(maxsize=self.config.queue_size)
        self._done = asyncio.Event()
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.workers * 2 + 2,
            thread_name_prefix="repro-serve",
        )
        self._started_at = self._clock()
        with contextlib.suppress(NotImplementedError, RuntimeError, ValueError):
            # Only possible on the main thread of a POSIX process; the
            # threaded test harness drives request_drain directly.
            self._loop.add_signal_handler(signal.SIGTERM, self.request_drain)
            self._loop.add_signal_handler(signal.SIGINT, self.request_drain)
        self._server = await asyncio.start_server(
            self._handle_client, host=self.config.host, port=self.config.port
        )
        self.bound_port = self._server.sockets[0].getsockname()[1]
        self._worker_tasks = [
            self._loop.create_task(self._worker(index))
            for index in range(self.config.workers)
        ]
        self._log({
            "event": "listening", "host": self.config.host,
            "port": self.bound_port, "workers": self.config.workers,
            "queue_size": self.config.queue_size,
            "deadline_s": self.config.deadline_s,
            "chaos": list(self.config.chaos),
        })
        self._ready.set()
        try:
            await self._done.wait()
        finally:
            for task in self._worker_tasks:
                task.cancel()
            await asyncio.gather(*self._worker_tasks, return_exceptions=True)
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._server.close()
            await self._server.wait_closed()

    # ------------------------------------------------------------------
    # Drain
    # ------------------------------------------------------------------
    def request_drain(self) -> None:
        """Stop accepting, serve what was accepted, persist, exit."""
        if self._draining:
            return
        self._draining = True
        self._log({"event": "drain.start",
                   "queue_depth": self._queue.qsize(),
                   "in_flight": len(self._in_flight)})
        assert self._server is not None
        self._server.close()
        assert self._loop is not None
        self._loop.create_task(self._drain())

    async def _drain(self) -> None:
        grace = self.config.drain_grace_s
        deadline = self._clock() + grace
        try:
            await asyncio.wait_for(self._queue.join(), timeout=grace)
            clean = True
        except asyncio.TimeoutError:
            clean = False
            # Forced drain: answer whatever is still pending so no
            # connection is left hanging, then shut down anyway.
            abandoned = []
            while not self._queue.empty():
                with contextlib.suppress(asyncio.QueueEmpty):
                    abandoned.append(self._queue.get_nowait())
                    self._queue.task_done()
            for item in list(self._in_flight):
                abandoned.append(item)
            for item in abandoned:
                diagnostic = _diag(
                    "HCG508",
                    f"drain grace of {grace:g}s exceeded; request abandoned",
                )
                item.resolve(503, {
                    "error": diagnostic.message,
                    "code": diagnostic.code,
                    "diagnostics": _diag_dicts([diagnostic]),
                })
        # Let connection handlers flush their final responses.
        while self._connections and self._clock() < deadline + 5.0:
            await asyncio.sleep(0.02)
        try:
            self.service.flush()
        except Exception as exc:  # fault-isolation: a flush fault must not block shutdown
            self._log({"event": "drain.flush_failed",
                       "error": f"{type(exc).__name__}: {exc}"})
        self.tracer.count(COUNTERS.SERVER_DRAINED)
        self.drained = clean or not self._in_flight
        self._log({
            "event": "drain.complete", "clean": clean,
            "served": self.tracer.counters.get(COUNTERS.SERVER_REQUESTS_OK, 0)
            + self.tracer.counters.get(COUNTERS.SERVER_REQUESTS_FAILED, 0),
            "shed": self.tracer.counters.get(COUNTERS.SERVER_SHED_QUEUE_FULL, 0)
            + self.tracer.counters.get(COUNTERS.SERVER_SHED_EXPIRED, 0)
            + self.tracer.counters.get(COUNTERS.SERVER_SHED_DRAINING, 0),
        })
        assert self._done is not None
        self._done.set()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._connections.add(task)
        try:
            while True:
                try:
                    request = await read_request(reader)
                except HttpProtocolError as exc:
                    writer.write(response_bytes(
                        exc.status, {"error": str(exc)}, keep_alive=False))
                    await writer.drain()
                    break
                if request is None:
                    break
                status, payload, headers = await self._dispatch(request)
                keep_alive = request.keep_alive and not self._draining
                writer.write(response_bytes(
                    status, payload, headers, keep_alive=keep_alive))
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # peer went away; nothing to answer
        except Exception as exc:  # fault-isolation: one connection must not kill the daemon
            self._log({"event": "connection.error",
                       "error": f"{type(exc).__name__}: {exc}"})
        finally:
            self._connections.discard(task)
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _dispatch(self, request: HttpRequest):
        route = (request.method, request.path.split("?", 1)[0])
        if route == ("GET", "/healthz"):
            return 200, self._healthz(), ()
        if route == ("GET", "/metrics"):
            return 200, self._metrics(), ()
        if route in (("POST", "/generate"), ("POST", "/verify")):
            started = self._clock()
            try:
                payload = request.json()
            except HttpProtocolError as exc:
                return exc.status, {"error": str(exc)}, ()
            if request.path.startswith("/verify"):
                payload = dict(payload, verify=True)
            try:
                spec = self._parse_spec(payload)
            except _BadRequest as exc:
                return 400, {"error": str(exc)}, ()
            status, body, headers = await self._admit_and_wait(spec)
            elapsed_ms = (self._clock() - started) * 1000.0
            self._observe_latency(status, elapsed_ms)
            self._log({
                "event": "request", "path": request.path, "status": status,
                "ms": round(elapsed_ms, 3), "model": spec.model_name,
                "generator": spec.generator,
                "codes": sorted({d["code"] for d in body.get("diagnostics", ())}),
            })
            return status, body, headers
        if request.path in ("/generate", "/verify", "/healthz", "/metrics"):
            return 405, {"error": f"{request.method} not allowed on {request.path}"}, ()
        return 404, {"error": f"no such endpoint {request.path!r}"}, ()

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def _parse_spec(self, payload: dict) -> _RequestSpec:
        from repro.api import GENERATOR_NAMES

        known = {
            "model", "scale", "generator", "arch", "verify", "seed",
            "steps", "deadline_s", "include_source", "options",
        }
        unknown = set(payload) - known
        if unknown:
            raise _BadRequest(f"unknown request field(s) {sorted(unknown)}")
        model = payload.get("model")
        if not isinstance(model, str) or not model:
            raise _BadRequest("'model' must be a benchmark name or model path")
        generator = payload.get("generator", "hcg")
        if generator not in GENERATOR_NAMES:
            raise _BadRequest(
                f"unknown generator {generator!r}; choose from {GENERATOR_NAMES}"
            )
        scale = payload.get("scale")
        if scale is not None:
            if not isinstance(scale, int) or not 2 <= scale <= 65536:
                raise _BadRequest("'scale' must be an int in [2, 65536]")
            if model not in _scaled_model_builders():
                raise _BadRequest(
                    f"'scale' only applies to benchmark names "
                    f"{sorted(_scaled_model_builders())}"
                )
        overrides = payload.get("options", {})
        if not isinstance(overrides, dict):
            raise _BadRequest("'options' must be a JSON object")
        bad = set(overrides) - set(_OPTION_KEYS)
        if bad:
            raise _BadRequest(
                f"unknown option(s) {sorted(bad)}; allowed: {_OPTION_KEYS}"
            )
        changes = dict(overrides)
        arch = payload.get("arch")
        if arch is not None:
            from repro.arch.presets import preset_names

            if arch not in preset_names():
                raise _BadRequest(
                    f"unknown arch {arch!r}; choose from {preset_names()}"
                )
            changes["arch"] = arch
        try:
            options = self.base_options.replace(**changes)
        except (TypeError, ValueError) as exc:
            raise _BadRequest(f"bad options: {exc}")
        deadline_s = payload.get("deadline_s", self.config.deadline_s)
        if not isinstance(deadline_s, (int, float)) or deadline_s <= 0:
            raise _BadRequest("'deadline_s' must be a positive number")
        deadline_s = min(float(deadline_s), self.config.deadline_s)
        verify = bool(payload.get("verify", False))
        try:
            seed = int(payload.get("seed", 0))
            steps = int(payload.get("steps", 2))
        except (TypeError, ValueError):
            raise _BadRequest("'seed' and 'steps' must be integers")
        return _RequestSpec(
            model=model, model_name=model, scale=scale, generator=generator,
            options=options, verify=verify, seed=seed, steps=steps,
            deadline_s=deadline_s,
            include_source=bool(payload.get("include_source", True)),
        )

    async def _admit_and_wait(self, spec: _RequestSpec):
        if self._draining:
            self.tracer.count(COUNTERS.SERVER_SHED_DRAINING)
            diagnostic = _diag("HCG508", "daemon is draining; retry elsewhere")
            return 503, {
                "error": diagnostic.message, "code": diagnostic.code,
                "diagnostics": _diag_dicts([diagnostic]),
            }, ()
        assert self._queue is not None and self._loop is not None
        now = self._clock()
        item = _Pending(
            spec=spec, deadline=now + spec.deadline_s, enqueued=now,
            future=self._loop.create_future(),
        )
        try:
            self._queue.put_nowait(item)
        except asyncio.QueueFull:
            self.tracer.count(COUNTERS.SERVER_SHED_QUEUE_FULL)
            retry_after = self._retry_after_s()
            diagnostic = _diag(
                "HCG502",
                f"request queue at capacity ({self.config.queue_size}); "
                f"retry in ~{retry_after}s",
            )
            return 429, {
                "error": diagnostic.message, "code": diagnostic.code,
                "diagnostics": _diag_dicts([diagnostic]),
            }, (("Retry-After", str(retry_after)),)
        self.tracer.count(COUNTERS.SERVER_REQUESTS_ACCEPTED)
        status, body, headers = await item.future
        return status, body, headers

    def _retry_after_s(self) -> int:
        backlog_s = (
            self._queue.qsize() * (self._ewma_ms / 1000.0)
            / max(1, self.config.workers)
        )
        return max(1, int(math.ceil(backlog_s)))

    def _observe_latency(self, status: int, elapsed_ms: float) -> None:
        self._latencies_ms.append(elapsed_ms)
        if status < 500:
            self._ewma_ms = 0.9 * self._ewma_ms + 0.1 * elapsed_ms

    # ------------------------------------------------------------------
    # Workers
    # ------------------------------------------------------------------
    async def _worker(self, index: int) -> None:
        assert self._queue is not None
        while True:
            item = await self._queue.get()
            self._in_flight.add(item)
            try:
                # No tracer span here: the span stack cannot handle
                # interleaved worker coroutines.  Counters + the access
                # log carry the per-request story instead.
                await self._serve_item(item)
            except Exception as exc:  # fault-isolation: a worker bug must answer, not hang the client
                diagnostic = _diag(
                    "HCG505", f"worker crashed: {type(exc).__name__}: {exc}"
                )
                self.tracer.count(COUNTERS.SERVER_REQUESTS_FAILED)
                item.resolve(500, {
                    "error": diagnostic.message, "code": diagnostic.code,
                    "diagnostics": _diag_dicts([diagnostic]),
                })
            finally:
                self._in_flight.discard(item)
                self._queue.task_done()

    def _breaker_for(self, generator: str) -> CircuitBreaker:
        if generator not in self._breakers:
            self._breakers[generator] = CircuitBreaker(
                generator,
                threshold=self.config.breaker_threshold,
                cooldown_s=self.config.breaker_cooldown_s,
                clock=self._clock,
            )
            self._breaker_logged[generator] = 0
        return self._breakers[generator]

    def _note_breaker(self, breaker: CircuitBreaker) -> None:
        """Log and count any state transitions since the last note."""
        logged = self._breaker_logged.get(breaker.name, 0)
        for when, old, new in breaker.transitions[logged:]:
            self._log({"event": "breaker", "generator": breaker.name,
                       "from": old, "to": new})
            if new == "open":
                self.tracer.count(COUNTERS.SERVER_BREAKER_TRIPS)
            elif new == "closed":
                self.tracer.count(COUNTERS.SERVER_BREAKER_RECOVERIES)
        self._breaker_logged[breaker.name] = len(breaker.transitions)

    async def _serve_item(self, item: _Pending) -> None:
        spec = item.spec
        now = self._clock()
        if now >= item.deadline:
            self.tracer.count(COUNTERS.SERVER_SHED_EXPIRED)
            diagnostic = _diag(
                "HCG503",
                f"deadline of {spec.deadline_s:g}s expired after "
                f"{now - item.enqueued:.3f}s in queue; shed before work started",
            )
            item.resolve(504, {
                "error": diagnostic.message, "code": diagnostic.code,
                "diagnostics": _diag_dicts([diagnostic]),
            })
            return

        breaker = self._breaker_for(spec.generator)
        demoted = not breaker.allow()
        self._note_breaker(breaker)
        extra: List[Diagnostic] = []
        generator = spec.generator
        if demoted:
            generator = self.config.fallback_generator
            self.tracer.count(COUNTERS.SERVER_BREAKER_DEMOTED)
            extra.append(_diag(
                "HCG504",
                f"breaker for {spec.generator!r} is "
                f"{breaker.state.value}; demoted to {generator!r}",
                actor=spec.generator,
            ))

        retry_index = 0
        while True:
            remaining = item.deadline - self._clock()
            if remaining <= 0:
                self._finish_deadline(item, breaker, demoted, extra)
                return
            abandoned = threading.Event()
            assert self._loop is not None and self._pool is not None
            work = self._loop.run_in_executor(
                self._pool, self._blocking_generate, spec, generator,
                demoted, abandoned,
            )
            try:
                result = await asyncio.wait_for(work, timeout=remaining)
            except asyncio.TimeoutError:
                abandoned.set()
                self._finish_deadline(item, breaker, demoted, extra)
                return
            except Exception as exc:  # fault-isolation: classify, retry or answer — never propagate
                delay = self.config.retry.delay_s(retry_index, self._retry_rng)
                can_retry = (
                    is_transient(exc)
                    and retry_index < self.config.retry.attempts - 1
                    and delay < item.deadline - self._clock()
                )
                if can_retry:
                    self.tracer.count(COUNTERS.SERVER_RETRY_ATTEMPTS)
                    extra.append(_diag(
                        "HCG506",
                        f"attempt {retry_index + 1} failed transiently "
                        f"({type(exc).__name__}: {exc}); retrying in "
                        f"{delay * 1000:.0f}ms",
                    ))
                    retry_index += 1
                    await asyncio.sleep(delay)
                    continue
                self._finish_failure(item, breaker, demoted, extra, exc,
                                     retry_index)
                return
            else:
                if not demoted:
                    breaker.record_success()
                    self._note_breaker(breaker)
                self._finish_success(item, spec, generator, demoted, extra,
                                     result)
                return

    def _blocking_generate(self, spec: _RequestSpec, generator: str,
                           demoted: bool, abandoned: threading.Event):
        """One generation attempt; runs on the thread pool."""
        from repro.api import GenerateRequest

        if self.chaos is not None and not demoted:
            self.chaos.on_attempt(
                cache=self.service.cache, abandoned=abandoned.is_set
            )
        model = spec.model
        if spec.scale is not None:
            model = _scaled_model_builders()[spec.model_name](spec.scale)
        request = GenerateRequest(
            model=model, generator=generator, options=spec.options,
            verify=spec.verify, seed=spec.seed, steps=spec.steps,
        )
        return self.service.generate(request)

    # ------------------------------------------------------------------
    # Terminal outcomes
    # ------------------------------------------------------------------
    def _finish_deadline(self, item: _Pending, breaker: CircuitBreaker,
                         demoted: bool, extra: List[Diagnostic]) -> None:
        self.tracer.count(COUNTERS.SERVER_DEADLINE_CANCELLED)
        self.tracer.count(COUNTERS.SERVER_REQUESTS_FAILED)
        if not demoted:
            breaker.record_failure()
            self._note_breaker(breaker)
        diagnostic = _diag(
            "HCG501",
            f"deadline of {item.spec.deadline_s:g}s exceeded; work cancelled",
        )
        item.resolve(504, {
            "error": diagnostic.message, "code": diagnostic.code,
            "diagnostics": _diag_dicts([diagnostic] + extra),
        })

    def _finish_failure(self, item: _Pending, breaker: CircuitBreaker,
                        demoted: bool, extra: List[Diagnostic],
                        exc: BaseException, retry_index: int) -> None:
        self.tracer.count(COUNTERS.SERVER_REQUESTS_FAILED)
        if isinstance(exc, ReproError):
            # Deterministic input/model fault: the client's to fix; the
            # breaker only counts infrastructure failures.
            detail = _diag_dicts(getattr(exc, "diagnostics", ()))
            item.resolve(422, {
                "error": f"{type(exc).__name__}: {exc}",
                "diagnostics": detail + _diag_dicts(extra),
            })
            return
        if not demoted:
            breaker.record_failure()
            self._note_breaker(breaker)
        if retry_index > 0:
            self.tracer.count(COUNTERS.SERVER_RETRY_EXHAUSTED)
            code, message = "HCG507", (
                f"retry budget ({self.config.retry.attempts} attempts) "
                f"exhausted; last fault: {type(exc).__name__}: {exc}"
            )
        else:
            code, message = "HCG505", (
                f"worker crashed: {type(exc).__name__}: {exc}"
            )
        diagnostic = _diag(code, message)
        item.resolve(_STATUS_OF_CODE[code], {
            "error": diagnostic.message, "code": diagnostic.code,
            "diagnostics": _diag_dicts([diagnostic] + extra),
        })

    def _finish_success(self, item: _Pending, spec: _RequestSpec,
                        generator: str, demoted: bool,
                        extra: List[Diagnostic], result) -> None:
        self.tracer.count(COUNTERS.SERVER_REQUESTS_OK)
        body = {
            "model": result.model,
            "generator": generator,
            "requested_generator": spec.generator,
            "demoted": demoted,
            "arch": result.arch,
            "from_cache": result.from_cache,
            "verified": result.verified,
            "cache_key": result.cache_key,
            "diagnostics": _diag_dicts(tuple(result.diagnostics) + tuple(extra)),
        }
        if spec.include_source:
            body["c_source"] = result.c_source
        item.resolve(200, body)

    # ------------------------------------------------------------------
    # Introspection endpoints
    # ------------------------------------------------------------------
    def _healthz(self) -> dict:
        assert self._queue is not None
        return {
            "status": "draining" if self._draining else "ok",
            "uptime_s": round(self._clock() - self._started_at, 3),
            "queue_depth": self._queue.qsize(),
            "queue_capacity": self.config.queue_size,
            "in_flight": len(self._in_flight),
            "workers": self.config.workers,
            "breakers": {
                name: breaker.state.value
                for name, breaker in sorted(self._breakers.items())
            },
        }

    def _metrics(self) -> dict:
        assert self._queue is not None
        latencies = sorted(self._latencies_ms)

        def percentile(p: float) -> float:
            if not latencies:
                return 0.0
            rank = min(len(latencies) - 1, int(p * (len(latencies) - 1)))
            return round(latencies[rank], 3)

        counters = self.tracer.counters
        accepted = counters.get(COUNTERS.SERVER_REQUESTS_ACCEPTED, 0)
        shed = (counters.get(COUNTERS.SERVER_SHED_QUEUE_FULL, 0)
                + counters.get(COUNTERS.SERVER_SHED_EXPIRED, 0)
                + counters.get(COUNTERS.SERVER_SHED_DRAINING, 0))
        offered = accepted + shed
        return {
            "schema": 1,
            "uptime_s": round(self._clock() - self._started_at, 3),
            "counters": {name: counters[name] for name in sorted(counters)},
            "latency_ms": {
                "count": len(latencies),
                "p50": percentile(0.50),
                "p90": percentile(0.90),
                "p99": percentile(0.99),
                "max": latencies[-1] if latencies else 0.0,
            },
            "shed_rate": round(shed / offered, 6) if offered else 0.0,
            "queue": {
                "depth": self._queue.qsize(),
                "capacity": self.config.queue_size,
                "in_flight": len(self._in_flight),
            },
            "breakers": {
                name: breaker.snapshot()
                for name, breaker in sorted(self._breakers.items())
            },
            "chaos": self.chaos.snapshot() if self.chaos is not None else None,
            "service": self.service.stats(),
        }

    # ------------------------------------------------------------------
    def _log(self, record: Dict[str, Any]) -> None:
        try:
            self._log_stream.write(json.dumps(record, sort_keys=True) + "\n")
            self._log_stream.flush()
        except (OSError, ValueError):
            pass  # a dead log pipe must not take the daemon down
