"""`repro serve`: the resilient codegen daemon.

An asyncio HTTP front end over :class:`~repro.service.service.CodegenService`
— the "codegen as a service" story of the ROADMAP, built for survival
under overload and partial failure rather than raw feature count:

* **bounded admission** — requests enter a bounded queue; when it is
  full the daemon answers ``429`` with a ``Retry-After`` estimate
  (HCG502) instead of buffering unboundedly, and a queued request whose
  deadline lapses before a worker picks it up is shed (HCG503) instead
  of wasting a worker on an answer nobody is waiting for;
* **deadlines** — every request carries a wall-clock budget (client
  ``deadline_s``, capped by the server default); work still running at
  the deadline is cancelled and answered ``504`` with HCG501;
* **retries** — transiently-failed attempts (chaos faults, I/O
  hiccups) are retried with capped exponential backoff + jitter while
  the deadline has room (HCG506 per retry, HCG507 on exhaustion);
* **circuit breakers** — consecutive final failures of one generator
  trip its breaker; traffic demotes to the conventional scalar
  fallback generator (HCG504) until a half-open probe succeeds,
  reusing the PR 1 degradation lattice at the service boundary;
* **graceful drain** — SIGTERM stops accepting, serves every accepted
  request, persists selection histories and timing caches atomically,
  then exits 0.  No accepted request is lost;
* **multi-tenant admission** — every request is accounted to the
  tenant named by its ``X-Tenant`` header (``default`` for anonymous
  traffic).  Per-tenant token-bucket rate limits and queue/concurrency
  quotas (:mod:`repro.server.tenants`) shed an aggressive tenant with
  429 + honest ``Retry-After`` (HCG511 rate, HCG512 quota — distinct
  from the global-backpressure HCG502) and weighted-fair dequeue keeps
  one tenant's backlog from starving another's;
* **request coalescing** — compatible queued generates are swept onto
  one :class:`~repro.service.executor.ParallelExecutor` pass within a
  short window (:mod:`repro.server.batch`); a poisoned batch member is
  isolated (HCG513) and re-served individually, its batchmates'
  byte-identical responses unaffected;
* **hot config reload** — ``POST /admin/reload`` (or SIGHUP with
  ``--config``) validates an override document and atomically swaps
  the active :class:`ServerConfig` (HCG515) without dropping in-flight
  requests; an invalid document is rejected whole (HCG514) and the
  previous config stays in force.

Every failure mode surfaces as a stable ``HCG5xx`` diagnostic
(docs/robustness.md); ``/healthz`` and ``/metrics`` expose the queue,
per-tenant, breaker and latency state fed by the span tracer's
counters.  The protocol is documented in docs/api.md;
``tools/loadgen.py`` is the load + chaos harness that replays
thousands of mixed (multi-tenant) requests against a live daemon.

Threading model: the event loop owns all daemon state (tenant table,
breakers, counters, config, log); generation runs on a bounded thread
pool and touches only the thread-safe :class:`CodegenService`.
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses
import json
import math
import random
import signal
import sys
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.diagnostics import DIAGNOSTIC_CODES, Diagnostic
from repro.errors import ReproError
from repro.observability.metrics import COUNTERS, SPANS
from repro.observability.tracer import Tracer
from repro.server.batch import BatchTask, compatible, run_batch, summarize
from repro.server.breaker import BreakerState, CircuitBreaker
from repro.server.chaos import ChaosMonkey
from repro.server.config import (
    DEFAULT_TENANT,
    TENANT_NAME_RE,
    ConfigError,
    ServerConfig,
    TenantLimits,
    apply_overrides,
    load_config_overrides,
)
from repro.server.http import (
    HttpProtocolError,
    HttpRequest,
    read_request,
    response_bytes,
)
from repro.server.retry import RetryPolicy, is_transient
from repro.server.tenants import ShedDecision, TenantTable

#: benchmark models the protocol can instantiate at a requested scale
def _scaled_model_builders() -> Dict[str, Callable[[int], Any]]:
    from repro.source import scaled_model_builders

    return scaled_model_builders()


#: semantic option overrides a request body may carry
_OPTION_KEYS = (
    "policy", "branch_aware", "variable_reuse", "unroll_limit",
    "simd_threshold",
)

#: status code each terminal HCG5xx diagnostic maps to
_STATUS_OF_CODE = {
    "HCG501": 504,
    "HCG502": 429,
    "HCG503": 504,
    "HCG505": 500,
    "HCG507": 500,
    "HCG508": 503,
    "HCG511": 429,
    "HCG512": 429,
}

#: counter bumped for each admission-shed diagnostic code
_SHED_COUNTER_OF_CODE = {
    "HCG502": COUNTERS.SERVER_SHED_QUEUE_FULL,
    "HCG511": COUNTERS.SERVER_SHED_TENANT_RATE,
    "HCG512": COUNTERS.SERVER_SHED_TENANT_QUOTA,
}


class _BadRequest(Exception):
    """The request body failed validation (a 400, never retried)."""


@dataclasses.dataclass
class _RequestSpec:
    """One validated generation request, ready for a worker."""

    model: Any                  # a repro.source.ModelSource (resolved lazily)
    model_name: str
    scale: Optional[int]
    generator: str
    options: Any                # CodegenOptions
    verify: bool
    seed: int
    steps: int
    deadline_s: float
    include_source: bool
    #: admission accounting identity (X-Tenant header, or "default")
    tenant: str = DEFAULT_TENANT


@dataclasses.dataclass(eq=False)  # identity hash: items live in sets
class _Pending:
    """One admitted request waiting for (or being served by) a worker."""

    spec: _RequestSpec
    deadline: float             # monotonic
    enqueued: float             # monotonic
    future: "asyncio.Future"

    def resolve(self, status: int, payload: dict,
                headers: Tuple[Tuple[str, str], ...] = ()) -> None:
        if not self.future.done():
            self.future.set_result((status, payload, headers))


def _diag(code: str, message: str, **kwargs: str) -> Diagnostic:
    severity = DIAGNOSTIC_CODES[code][0]
    return Diagnostic(code=code, severity=severity, message=message, **kwargs)


def _diag_dicts(diagnostics) -> List[dict]:
    return [
        {
            "code": d.code,
            "severity": d.severity.label(),
            "message": d.message,
            "actor": d.actor,
            "location": d.location,
        }
        for d in diagnostics
    ]


class CodegenDaemon:
    """The asyncio daemon; one instance per ``repro serve`` process."""

    def __init__(self, service, config: ServerConfig = ServerConfig(),
                 base_options=None, tracer: Optional[Tracer] = None,
                 log_stream=None) -> None:
        from repro.codegen.options import CodegenOptions

        self.service = service
        self.config = config
        self.base_options = (base_options if base_options is not None
                             else CodegenOptions(policy="permissive"))
        self.tracer = tracer if tracer is not None else Tracer()
        self._log_stream = log_stream if log_stream is not None else sys.stderr
        self.chaos: Optional[ChaosMonkey] = None
        if config.chaos:
            self.chaos = ChaosMonkey(
                faults=config.chaos, rate=config.chaos_rate,
                seed=config.chaos_seed, slow_s=config.chaos_slow_s,
                noisy_tenant=config.chaos_noisy_tenant,
            )
        self._clock = time.monotonic
        self._retry_rng = random.Random(config.chaos_seed ^ 0x5EED)
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._breaker_logged: Dict[str, int] = {}
        self._latencies_ms: Deque[float] = deque(maxlen=20000)
        self._ewma_ms = 50.0
        self._started_at = 0.0
        self._draining = False
        self.drained = False
        #: bumped on every successful hot reload (observable via
        #: GET /admin/config and /metrics)
        self.config_generation = 0
        self.bound_port: Optional[int] = None
        self._ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._table: Optional[TenantTable] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections: set = set()
        self._in_flight: set = set()
        self._done: Optional[asyncio.Event] = None
        self._pool: Optional[ThreadPoolExecutor] = None
        self._worker_tasks: List[asyncio.Task] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def run(self) -> int:
        """Serve until drained (SIGTERM/SIGINT); returns the exit code."""
        try:
            asyncio.run(self._main())
        finally:
            self._ready.set()  # never leave wait_ready() hanging
        return 0 if self.drained else 1

    def wait_ready(self, timeout: float = 30.0) -> int:
        """Block (from another thread) until listening; returns the port."""
        if not self._ready.wait(timeout):
            raise TimeoutError("daemon did not start listening in time")
        if self.bound_port is None:
            raise RuntimeError("daemon exited before binding its socket")
        return self.bound_port

    def request_drain_threadsafe(self) -> None:
        """Trigger the SIGTERM drain path from another thread (tests)."""
        loop = self._loop
        if loop is not None and not loop.is_closed():
            loop.call_soon_threadsafe(self.request_drain)

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._table = TenantTable(self.config, clock=self._clock)
        self._done = asyncio.Event()
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.workers * 2 + 2,
            thread_name_prefix="repro-serve",
        )
        self._started_at = self._clock()
        with contextlib.suppress(NotImplementedError, RuntimeError, ValueError):
            # Only possible on the main thread of a POSIX process; the
            # threaded test harness drives request_drain directly.
            self._loop.add_signal_handler(signal.SIGTERM, self.request_drain)
            self._loop.add_signal_handler(signal.SIGINT, self.request_drain)
            sighup = getattr(signal, "SIGHUP", None)
            if sighup is not None:
                self._loop.add_signal_handler(sighup, self._on_sighup)
        self._server = await asyncio.start_server(
            self._handle_client, host=self.config.host, port=self.config.port
        )
        self.bound_port = self._server.sockets[0].getsockname()[1]
        self._worker_tasks = [
            self._loop.create_task(self._worker(index))
            for index in range(self.config.workers)
        ]
        self._log({
            "event": "listening", "host": self.config.host,
            "port": self.bound_port, "workers": self.config.workers,
            "queue_size": self.config.queue_size,
            "deadline_s": self.config.deadline_s,
            "chaos": list(self.config.chaos),
        })
        self._ready.set()
        try:
            await self._done.wait()
        finally:
            for task in self._worker_tasks:
                task.cancel()
            await asyncio.gather(*self._worker_tasks, return_exceptions=True)
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._server.close()
            await self._server.wait_closed()

    # ------------------------------------------------------------------
    # Drain
    # ------------------------------------------------------------------
    def request_drain(self) -> None:
        """Stop accepting, serve what was accepted, persist, exit."""
        if self._draining:
            return
        self._draining = True
        self._log({"event": "drain.start",
                   "queue_depth": self._table.qsize(),
                   "in_flight": len(self._in_flight)})
        assert self._server is not None
        self._server.close()
        assert self._loop is not None
        self._loop.create_task(self._drain())

    async def _drain(self) -> None:
        grace = self.config.drain_grace_s
        deadline = self._clock() + grace
        try:
            await asyncio.wait_for(self._table.join(), timeout=grace)
            clean = True
        except asyncio.TimeoutError:
            clean = False
            # Forced drain: answer whatever is still pending so no
            # connection is left hanging, then shut down anyway.
            abandoned = await self._table.drain_items()
            for item in list(self._in_flight):
                abandoned.append(item)
            for item in abandoned:
                diagnostic = _diag(
                    "HCG508",
                    f"drain grace of {grace:g}s exceeded; request abandoned",
                )
                item.resolve(503, {
                    "error": diagnostic.message,
                    "code": diagnostic.code,
                    "diagnostics": _diag_dicts([diagnostic]),
                })
        # Let connection handlers flush their final responses.
        while self._connections and self._clock() < deadline + 5.0:
            await asyncio.sleep(0.02)
        try:
            self.service.flush()
        except Exception as exc:  # fault-isolation: a flush fault must not block shutdown
            self._log({"event": "drain.flush_failed",
                       "error": f"{type(exc).__name__}: {exc}"})
        self.tracer.count(COUNTERS.SERVER_DRAINED)
        self.drained = clean or not self._in_flight
        self._log({
            "event": "drain.complete", "clean": clean,
            "served": self.tracer.counters.get(COUNTERS.SERVER_REQUESTS_OK, 0)
            + self.tracer.counters.get(COUNTERS.SERVER_REQUESTS_FAILED, 0),
            "shed": self.tracer.counters.get(COUNTERS.SERVER_SHED_QUEUE_FULL, 0)
            + self.tracer.counters.get(COUNTERS.SERVER_SHED_EXPIRED, 0)
            + self.tracer.counters.get(COUNTERS.SERVER_SHED_DRAINING, 0),
        })
        assert self._done is not None
        self._done.set()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._connections.add(task)
        try:
            while True:
                try:
                    request = await read_request(reader)
                except HttpProtocolError as exc:
                    writer.write(response_bytes(
                        exc.status, {"error": str(exc)}, keep_alive=False))
                    await writer.drain()
                    break
                if request is None:
                    break
                status, payload, headers = await self._dispatch(request)
                keep_alive = request.keep_alive and not self._draining
                writer.write(response_bytes(
                    status, payload, headers, keep_alive=keep_alive))
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # peer went away; nothing to answer
        except Exception as exc:  # fault-isolation: one connection must not kill the daemon
            self._log({"event": "connection.error",
                       "error": f"{type(exc).__name__}: {exc}"})
        finally:
            self._connections.discard(task)
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _dispatch(self, request: HttpRequest):
        route = (request.method, request.path.split("?", 1)[0])
        if route == ("GET", "/healthz"):
            return 200, self._healthz(), ()
        if route == ("GET", "/metrics"):
            return 200, self._metrics(), ()
        if route == ("GET", "/admin/config"):
            return 200, {
                "generation": self.config_generation,
                "reloadable": self.config.public_dict(),
            }, ()
        if route == ("POST", "/admin/reload"):
            try:
                overrides = request.json()
            except HttpProtocolError as exc:
                return exc.status, {"error": str(exc)}, ()
            if not overrides:
                if self.config.config_path is None:
                    return 400, {
                        "error": "empty reload body and no --config file "
                                 "to re-read",
                    }, ()
                try:
                    overrides = load_config_overrides(self.config.config_path)
                except ConfigError as exc:
                    return self._reject_reload("admin", exc)
            status, body = self._apply_reload(overrides, source="admin")
            return status, body, ()
        if route in (("POST", "/generate"), ("POST", "/verify")):
            started = self._clock()
            tenant = request.headers.get("X-Tenant", DEFAULT_TENANT)
            if not TENANT_NAME_RE.match(tenant):
                return 400, {
                    "error": f"invalid X-Tenant {tenant!r}; must match "
                             f"{TENANT_NAME_RE.pattern}",
                }, ()
            try:
                payload = request.json()
            except HttpProtocolError as exc:
                return exc.status, {"error": str(exc)}, ()
            if request.path.startswith("/verify"):
                payload = dict(payload, verify=True)
            try:
                spec = self._parse_spec(payload, tenant)
            except _BadRequest as exc:
                return 400, {"error": str(exc)}, ()
            status, body, headers = await self._admit_and_wait(spec)
            elapsed_ms = (self._clock() - started) * 1000.0
            self._observe_latency(status, elapsed_ms)
            self._log({
                "event": "request", "path": request.path, "status": status,
                "ms": round(elapsed_ms, 3), "model": spec.model_name,
                "generator": spec.generator, "tenant": tenant,
                "codes": sorted({d["code"] for d in body.get("diagnostics", ())}),
            })
            return status, body, headers
        if request.path in ("/generate", "/verify", "/healthz", "/metrics",
                            "/admin/config", "/admin/reload"):
            return 405, {"error": f"{request.method} not allowed on {request.path}"}, ()
        return 404, {"error": f"no such endpoint {request.path!r}"}, ()

    # ------------------------------------------------------------------
    # Hot config reload
    # ------------------------------------------------------------------
    def _on_sighup(self) -> None:
        """SIGHUP: re-read the ``--config`` overrides file, if any."""
        if self.config.config_path is None:
            self._log({"event": "config.sighup_ignored",
                       "reason": "daemon started without --config"})
            return
        try:
            overrides = load_config_overrides(self.config.config_path)
        except ConfigError as exc:
            self._reject_reload("sighup", exc)
            return
        self._apply_reload(overrides, source="sighup")

    def _reject_reload(self, source: str, exc: Exception):
        """HCG514: the override document failed validation; keep serving
        on the previous config."""
        self.tracer.count(COUNTERS.SERVER_RELOAD_REJECTED)
        diagnostic = _diag("HCG514", f"config reload rejected: {exc}")
        self._log({"event": "config.reload_rejected", "source": source,
                   "error": str(exc)})
        return 400, {
            "error": diagnostic.message, "code": diagnostic.code,
            "diagnostics": _diag_dicts([diagnostic]),
        }, ()

    def _apply_reload(self, overrides: dict, source: str):
        """Validate ``overrides`` and atomically swap the active config.

        Runs synchronously on the event loop (so the ``server.reload``
        span nests correctly and no request observes a half-applied
        config): validation happens on a copy, and only a fully valid
        result is assigned to ``self.config``.  Requests already
        admitted keep the deadlines and limits they were admitted
        under; everything admitted afterwards sees the new config.
        """
        with self.tracer.span(SPANS.SERVER_RELOAD, source=source):
            try:
                new_config, changed = apply_overrides(self.config, overrides)
            except ConfigError as exc:
                status, body, _ = self._reject_reload(source, exc)
                return status, body
            self.config = new_config
            self.config_generation += 1
            assert self._table is not None
            self._table.reconfigure(new_config)
            for breaker in self._breakers.values():
                breaker.reconfigure(new_config.breaker_threshold,
                                    new_config.breaker_cooldown_s)
            self.tracer.count(COUNTERS.SERVER_RELOAD_OK)
            diagnostic = _diag(
                "HCG515",
                f"configuration hot-reloaded ({source}); "
                f"changed: {changed if changed else 'nothing'}",
            )
            self._log({"event": "config.reloaded", "source": source,
                       "generation": self.config_generation,
                       "changed": changed})
            return 200, {
                "reloaded": changed,
                "generation": self.config_generation,
                "config": new_config.public_dict(),
                "diagnostics": _diag_dicts([diagnostic]),
            }

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def _parse_spec(self, payload: dict,
                    tenant: str = DEFAULT_TENANT) -> _RequestSpec:
        from repro.api import GENERATOR_NAMES

        from repro.errors import ReproError
        from repro.source import ModelSource

        known = {
            "model", "scale", "source", "generator", "arch", "verify",
            "seed", "steps", "deadline_s", "include_source", "options",
        }
        unknown = set(payload) - known
        if unknown:
            raise _BadRequest(f"unknown request field(s) {sorted(unknown)}")
        generator = payload.get("generator", "hcg")
        if generator not in GENERATOR_NAMES:
            raise _BadRequest(
                f"unknown generator {generator!r}; choose from {GENERATOR_NAMES}"
            )
        source_wire = payload.get("source")
        if source_wire is not None:
            # The structured spelling: one ModelSource wire object.
            if payload.get("model") is not None or payload.get("scale") is not None:
                raise _BadRequest(
                    "'source' replaces 'model'/'scale'; send one spelling"
                )
            try:
                source = ModelSource.from_wire(source_wire)
            except ReproError as exc:
                raise _BadRequest(str(exc))
            model_name = source.describe()
        else:
            # Legacy spelling, mapped to a ModelSource without ceremony.
            model = payload.get("model")
            if not isinstance(model, str) or not model:
                raise _BadRequest(
                    "'model' must be a benchmark name or model path "
                    "(or send a structured 'source' object)"
                )
            scale = payload.get("scale")
            if scale is not None and not isinstance(scale, int):
                raise _BadRequest("'scale' must be an int in [2, 65536]")
            try:
                source = (ModelSource.builtin(model, scale)
                          if scale is not None else ModelSource.parse(model))
            except ReproError as exc:
                raise _BadRequest(str(exc))
            model_name = model
        scale = source.scale
        if scale is not None:
            if not 2 <= scale <= 65536:
                raise _BadRequest("'scale' must be an int in [2, 65536]")
            if source.kind == "builtin" and source.name not in _scaled_model_builders():
                raise _BadRequest(
                    f"'scale' only applies to benchmark names "
                    f"{sorted(_scaled_model_builders())}"
                )
        if source.kind == "builtin":
            from repro.bench.models import BENCHMARK_MODELS

            if source.name not in BENCHMARK_MODELS:
                raise _BadRequest(
                    f"unknown builtin model {source.name!r}; choose from "
                    f"{sorted(BENCHMARK_MODELS)}"
                )
        overrides = payload.get("options", {})
        if not isinstance(overrides, dict):
            raise _BadRequest("'options' must be a JSON object")
        bad = set(overrides) - set(_OPTION_KEYS)
        if bad:
            raise _BadRequest(
                f"unknown option(s) {sorted(bad)}; allowed: {_OPTION_KEYS}"
            )
        changes = dict(overrides)
        arch = payload.get("arch")
        if arch is not None:
            from repro.arch.presets import preset_names

            if arch not in preset_names():
                raise _BadRequest(
                    f"unknown arch {arch!r}; choose from {preset_names()}"
                )
            changes["arch"] = arch
        try:
            options = self.base_options.replace(**changes)
        except (TypeError, ValueError) as exc:
            raise _BadRequest(f"bad options: {exc}")
        deadline_s = payload.get("deadline_s", self.config.deadline_s)
        if not isinstance(deadline_s, (int, float)) or deadline_s <= 0:
            raise _BadRequest("'deadline_s' must be a positive number")
        deadline_s = min(float(deadline_s), self.config.deadline_s)
        verify = bool(payload.get("verify", False))
        try:
            seed = int(payload.get("seed", 0))
            steps = int(payload.get("steps", 2))
        except (TypeError, ValueError):
            raise _BadRequest("'seed' and 'steps' must be integers")
        return _RequestSpec(
            model=source, model_name=model_name, scale=scale, generator=generator,
            options=options, verify=verify, seed=seed, steps=steps,
            deadline_s=deadline_s,
            include_source=bool(payload.get("include_source", True)),
            tenant=tenant,
        )

    async def _admit_and_wait(self, spec: _RequestSpec):
        if self._draining:
            self.tracer.count(COUNTERS.SERVER_SHED_DRAINING)
            diagnostic = _diag("HCG508", "daemon is draining; retry elsewhere")
            return 503, {
                "error": diagnostic.message, "code": diagnostic.code,
                "diagnostics": _diag_dicts([diagnostic]),
            }, ()
        assert self._table is not None and self._loop is not None
        now = self._clock()
        item = _Pending(
            spec=spec, deadline=now + spec.deadline_s, enqueued=now,
            future=self._loop.create_future(),
        )
        decision = await self._table.admit(
            spec.tenant, item, backlog_retry_after_s=self._retry_after_s()
        )
        if decision is not None:
            return self._shed(spec.tenant, decision)
        self.tracer.count(COUNTERS.SERVER_REQUESTS_ACCEPTED)
        status, body, headers = await item.future
        return status, body, headers

    def _shed(self, tenant: str, decision: ShedDecision):
        """Answer one admission-shed request (HCG502/HCG511/HCG512)."""
        assert self._table is not None
        self.tracer.count(_SHED_COUNTER_OF_CODE[decision.code])
        self._table.record_shed(tenant, decision.code)
        diagnostic = _diag(decision.code, decision.message)
        return decision.status, {
            "error": diagnostic.message, "code": diagnostic.code,
            "tenant": tenant,
            "diagnostics": _diag_dicts([diagnostic]),
        }, (("Retry-After", str(decision.retry_after_s)),)

    def _retry_after_s(self) -> int:
        backlog_s = (
            self._table.qsize() * (self._ewma_ms / 1000.0)
            / max(1, self.config.workers)
        )
        return max(1, int(math.ceil(backlog_s)))

    def _observe_latency(self, status: int, elapsed_ms: float) -> None:
        self._latencies_ms.append(elapsed_ms)
        if status < 500:
            self._ewma_ms = 0.9 * self._ewma_ms + 0.1 * elapsed_ms

    # ------------------------------------------------------------------
    # Workers
    # ------------------------------------------------------------------
    async def _worker(self, index: int) -> None:
        assert self._table is not None
        while True:
            item = await self._table.next()
            batch = [item]
            for member in batch:
                self._in_flight.add(member)
            try:
                # No tracer span here: the span stack cannot handle
                # interleaved worker coroutines.  Counters + the access
                # log carry the per-request story instead.
                batch = await self._maybe_batch(item)
                for member in batch[1:]:
                    self._in_flight.add(member)
                if len(batch) == 1:
                    await self._serve_item(item)
                else:
                    await self._serve_batch(batch)
            except Exception as exc:  # fault-isolation: a worker bug must answer, not hang the client
                diagnostic = _diag(
                    "HCG505", f"worker crashed: {type(exc).__name__}: {exc}"
                )
                for member in batch:
                    if not member.future.done():
                        self.tracer.count(COUNTERS.SERVER_REQUESTS_FAILED)
                        member.resolve(500, {
                            "error": diagnostic.message,
                            "code": diagnostic.code,
                            "diagnostics": _diag_dicts([diagnostic]),
                        })
            finally:
                for member in batch:
                    self._in_flight.discard(member)
                    await self._table.done(member)

    async def _maybe_batch(self, item: _Pending) -> List[_Pending]:
        """Sweep compatible queued requests into ``item``'s batch.

        Batching only engages for plain generates (``verify=False``)
        whose generator's breaker is CLOSED — a demoted or probing
        request must go through the full single-request path so breaker
        accounting stays exact.  Members are extracted through the
        tenant table, so each one is already counted against its
        tenant's concurrency quota.
        """
        assert self._table is not None
        config = self.config
        spec = item.spec
        if (
            config.batch_window_s <= 0
            or config.batch_max < 2
            or spec.verify
            or self._clock() >= item.deadline
        ):
            return [item]
        breaker = self._breaker_for(spec.generator)
        if breaker.state is not BreakerState.CLOSED:
            return [item]

        def rides_along(other: _Pending) -> bool:
            return (
                compatible(spec, other.spec)
                and self._clock() < other.deadline
            )

        mates = await self._table.collect_compatible(
            rides_along, limit=config.batch_max - 1,
            window_s=config.batch_window_s,
        )
        return [item] + mates

    def _breaker_for(self, generator: str) -> CircuitBreaker:
        if generator not in self._breakers:
            self._breakers[generator] = CircuitBreaker(
                generator,
                threshold=self.config.breaker_threshold,
                cooldown_s=self.config.breaker_cooldown_s,
                clock=self._clock,
            )
            self._breaker_logged[generator] = 0
        return self._breakers[generator]

    def _note_breaker(self, breaker: CircuitBreaker) -> None:
        """Log and count any state transitions since the last note."""
        logged = self._breaker_logged.get(breaker.name, 0)
        for when, old, new in breaker.transitions[logged:]:
            self._log({"event": "breaker", "generator": breaker.name,
                       "from": old, "to": new})
            if new == "open":
                self.tracer.count(COUNTERS.SERVER_BREAKER_TRIPS)
            elif new == "closed":
                self.tracer.count(COUNTERS.SERVER_BREAKER_RECOVERIES)
        self._breaker_logged[breaker.name] = len(breaker.transitions)

    async def _serve_item(self, item: _Pending,
                          presets: Tuple[Diagnostic, ...] = ()) -> None:
        spec = item.spec
        now = self._clock()
        if now >= item.deadline:
            self._shed_expired(item, presets)
            return

        breaker = self._breaker_for(spec.generator)
        demoted = not breaker.allow()
        self._note_breaker(breaker)
        extra: List[Diagnostic] = list(presets)
        generator = spec.generator
        if demoted:
            generator = self.config.fallback_generator
            self.tracer.count(COUNTERS.SERVER_BREAKER_DEMOTED)
            extra.append(_diag(
                "HCG504",
                f"breaker for {spec.generator!r} is "
                f"{breaker.state.value}; demoted to {generator!r}",
                actor=spec.generator,
            ))

        retry_index = 0
        while True:
            remaining = item.deadline - self._clock()
            if remaining <= 0:
                self._finish_deadline(item, breaker, demoted, extra)
                return
            abandoned = threading.Event()
            assert self._loop is not None and self._pool is not None
            work = self._loop.run_in_executor(
                self._pool, self._blocking_generate, spec, generator,
                demoted, abandoned,
            )
            try:
                result = await asyncio.wait_for(work, timeout=remaining)
            except asyncio.TimeoutError:
                abandoned.set()
                self._finish_deadline(item, breaker, demoted, extra)
                return
            except Exception as exc:  # fault-isolation: classify, retry or answer — never propagate
                delay = self.config.retry.delay_s(retry_index, self._retry_rng)
                can_retry = (
                    is_transient(exc)
                    and retry_index < self.config.retry.attempts - 1
                    and delay < item.deadline - self._clock()
                )
                if can_retry:
                    self.tracer.count(COUNTERS.SERVER_RETRY_ATTEMPTS)
                    extra.append(_diag(
                        "HCG506",
                        f"attempt {retry_index + 1} failed transiently "
                        f"({type(exc).__name__}: {exc}); retrying in "
                        f"{delay * 1000:.0f}ms",
                    ))
                    retry_index += 1
                    await asyncio.sleep(delay)
                    continue
                self._finish_failure(item, breaker, demoted, extra, exc,
                                     retry_index)
                return
            else:
                if not demoted:
                    breaker.record_success()
                    self._note_breaker(breaker)
                self._finish_success(item, spec, generator, demoted, extra,
                                     result)
                return

    def _shed_expired(self, item: _Pending,
                      presets: Tuple[Diagnostic, ...] = ()) -> None:
        """HCG503: the deadline lapsed before any work started."""
        now = self._clock()
        self.tracer.count(COUNTERS.SERVER_SHED_EXPIRED)
        diagnostic = _diag(
            "HCG503",
            f"deadline of {item.spec.deadline_s:g}s expired after "
            f"{now - item.enqueued:.3f}s in queue; shed before work started",
        )
        item.resolve(504, {
            "error": diagnostic.message, "code": diagnostic.code,
            "diagnostics": _diag_dicts([diagnostic] + list(presets)),
        })

    def _request_for(self, spec: _RequestSpec, generator: str):
        """The :class:`GenerateRequest` one spec resolves to."""
        from repro.api import GenerateRequest

        return GenerateRequest(
            model=spec.model, generator=generator, options=spec.options,
            verify=spec.verify, seed=spec.seed, steps=spec.steps,
        )

    def _blocking_generate(self, spec: _RequestSpec, generator: str,
                           demoted: bool, abandoned: threading.Event):
        """One generation attempt; runs on the thread pool."""
        if self.chaos is not None and not demoted:
            self.chaos.on_attempt(
                cache=self.service.cache, abandoned=abandoned.is_set,
                tenant=spec.tenant,
            )
        return self.service.generate(self._request_for(spec, generator))

    # ------------------------------------------------------------------
    # Coalesced batches
    # ------------------------------------------------------------------
    def _blocking_batch(self, specs: List[_RequestSpec], generator: str,
                        abandoned: threading.Event):
        """One coalesced executor pass; runs on the thread pool."""
        tasks = [
            BatchTask(
                request=self._request_for(spec, generator),
                tenant=spec.tenant,
                abandoned=abandoned.is_set,
            )
            for spec in specs
        ]
        return run_batch(self.service, tasks, chaos=self.chaos,
                         cache=self.service.cache)

    async def _serve_batch(self, batch: List[_Pending]) -> None:
        """Serve one coalesced batch with per-member fault isolation.

        Success responses are byte-identical to unbatched serving (the
        same ``service.generate`` call produces them); a failed member
        is tagged HCG513 and re-served through the full single-request
        path (retries, breaker accounting, 422 classification) without
        touching its batchmates.
        """
        live: List[_Pending] = []
        for member in batch:
            if self._clock() >= member.deadline:
                self._shed_expired(member)
            else:
                live.append(member)
        if not live:
            return
        if len(live) == 1:
            await self._serve_item(live[0])
            return
        generator = live[0].spec.generator
        breaker = self._breaker_for(generator)
        self.tracer.count(COUNTERS.SERVER_BATCH_DISPATCHED)
        self.tracer.count(COUNTERS.SERVER_BATCH_REQUESTS, len(live))
        started = self._clock()
        max_remaining = max(m.deadline for m in live) - started
        abandoned = threading.Event()
        assert self._loop is not None and self._pool is not None
        work = self._loop.run_in_executor(
            self._pool, self._blocking_batch,
            [m.spec for m in live], generator, abandoned,
        )
        try:
            outcomes = await asyncio.wait_for(work, timeout=max_remaining)
        except asyncio.TimeoutError:
            # Every member's deadline has lapsed (the wait covered the
            # longest one): same terminal outcome as the single path.
            abandoned.set()
            for member in live:
                self._finish_deadline(member, breaker, demoted=False,
                                      extra=[])
            return
        except Exception as exc:  # fault-isolation: the whole pass failed; fall back per member
            self._log({"event": "batch.error",
                       "error": f"{type(exc).__name__}: {exc}"})
            for member in live:
                await self._serve_item(member, presets=(
                    self._isolation_diag(member, exc=None),))
            return
        elapsed_ms = (self._clock() - started) * 1000.0
        report = summarize(outcomes)
        with self.tracer.span(SPANS.SERVER_BATCH, generator=generator,
                              size=report["size"], ok=report["ok"],
                              isolated=report["isolated"],
                              ms=round(elapsed_ms, 3)):
            pass  # marker span: the pass itself ran on the thread pool
        self._log(dict(report, event="batch", generator=generator,
                       ms=round(elapsed_ms, 3)))
        for member, outcome in zip(live, outcomes):
            if outcome.ok:
                breaker.record_success()
                self._note_breaker(breaker)
                self._finish_success(member, member.spec, generator,
                                     demoted=False, extra=[],
                                     result=outcome.value)
                continue
            self.tracer.count(COUNTERS.SERVER_BATCH_ISOLATED)
            preset = self._isolation_diag(member, exc=outcome.error)
            if isinstance(outcome.error, ReproError):
                # Deterministic model/input fault: answering 422 now is
                # exactly what re-serving would produce, minus the
                # wasted re-generation.
                self._finish_failure(member, breaker, demoted=False,
                                     extra=[preset], exc=outcome.error,
                                     retry_index=0)
                continue
            # A transient fault inside the batch is an observed failure
            # of the guarded generator — count it now so a batch whose
            # members crash together can trip the breaker, instead of
            # the re-serves' retries outliving the fault burst and
            # resetting the streak with their eventual successes.
            breaker.record_failure()
            self._note_breaker(breaker)
            await self._serve_item(member, presets=(preset,))

    def _isolation_diag(self, member: _Pending,
                        exc: Optional[BaseException]) -> Diagnostic:
        detail = (f" ({type(exc).__name__}: {exc})"
                  if exc is not None else "")
        return _diag(
            "HCG513",
            f"fault isolated from batchmates{detail}; "
            f"request re-served individually",
        )

    # ------------------------------------------------------------------
    # Terminal outcomes
    # ------------------------------------------------------------------
    def _finish_deadline(self, item: _Pending, breaker: CircuitBreaker,
                         demoted: bool, extra: List[Diagnostic]) -> None:
        self.tracer.count(COUNTERS.SERVER_DEADLINE_CANCELLED)
        self.tracer.count(COUNTERS.SERVER_REQUESTS_FAILED)
        if not demoted:
            breaker.record_failure()
            self._note_breaker(breaker)
        diagnostic = _diag(
            "HCG501",
            f"deadline of {item.spec.deadline_s:g}s exceeded; work cancelled",
        )
        item.resolve(504, {
            "error": diagnostic.message, "code": diagnostic.code,
            "diagnostics": _diag_dicts([diagnostic] + extra),
        })

    def _finish_failure(self, item: _Pending, breaker: CircuitBreaker,
                        demoted: bool, extra: List[Diagnostic],
                        exc: BaseException, retry_index: int) -> None:
        self.tracer.count(COUNTERS.SERVER_REQUESTS_FAILED)
        if isinstance(exc, ReproError):
            # Deterministic input/model fault: the client's to fix; the
            # breaker only counts infrastructure failures.
            detail = _diag_dicts(getattr(exc, "diagnostics", ()))
            item.resolve(422, {
                "error": f"{type(exc).__name__}: {exc}",
                "diagnostics": detail + _diag_dicts(extra),
            })
            return
        if not demoted:
            breaker.record_failure()
            self._note_breaker(breaker)
        if retry_index > 0:
            self.tracer.count(COUNTERS.SERVER_RETRY_EXHAUSTED)
            code, message = "HCG507", (
                f"retry budget ({self.config.retry.attempts} attempts) "
                f"exhausted; last fault: {type(exc).__name__}: {exc}"
            )
        else:
            code, message = "HCG505", (
                f"worker crashed: {type(exc).__name__}: {exc}"
            )
        diagnostic = _diag(code, message)
        item.resolve(_STATUS_OF_CODE[code], {
            "error": diagnostic.message, "code": diagnostic.code,
            "diagnostics": _diag_dicts([diagnostic] + extra),
        })

    def _finish_success(self, item: _Pending, spec: _RequestSpec,
                        generator: str, demoted: bool,
                        extra: List[Diagnostic], result) -> None:
        self.tracer.count(COUNTERS.SERVER_REQUESTS_OK)
        body = {
            "model": result.model,
            "generator": generator,
            "requested_generator": spec.generator,
            "demoted": demoted,
            "arch": result.arch,
            "from_cache": result.from_cache,
            "verified": result.verified,
            "cache_key": result.cache_key,
            "diagnostics": _diag_dicts(tuple(result.diagnostics) + tuple(extra)),
        }
        if spec.include_source:
            body["c_source"] = result.c_source
        item.resolve(200, body)

    # ------------------------------------------------------------------
    # Introspection endpoints
    # ------------------------------------------------------------------
    def _healthz(self) -> dict:
        assert self._table is not None
        return {
            "status": "draining" if self._draining else "ok",
            "uptime_s": round(self._clock() - self._started_at, 3),
            "queue_depth": self._table.qsize(),
            "queue_capacity": self.config.queue_size,
            "in_flight": len(self._in_flight),
            "workers": self.config.workers,
            "config_generation": self.config_generation,
            "breakers": {
                name: breaker.state.value
                for name, breaker in sorted(self._breakers.items())
            },
        }

    def _metrics(self) -> dict:
        assert self._table is not None
        latencies = sorted(self._latencies_ms)

        def percentile(p: float) -> float:
            if not latencies:
                return 0.0
            rank = min(len(latencies) - 1, int(p * (len(latencies) - 1)))
            return round(latencies[rank], 3)

        counters = self.tracer.counters
        accepted = counters.get(COUNTERS.SERVER_REQUESTS_ACCEPTED, 0)
        shed = (counters.get(COUNTERS.SERVER_SHED_QUEUE_FULL, 0)
                + counters.get(COUNTERS.SERVER_SHED_EXPIRED, 0)
                + counters.get(COUNTERS.SERVER_SHED_DRAINING, 0)
                + counters.get(COUNTERS.SERVER_SHED_TENANT_RATE, 0)
                + counters.get(COUNTERS.SERVER_SHED_TENANT_QUOTA, 0))
        offered = accepted + shed
        return {
            "schema": 2,
            "uptime_s": round(self._clock() - self._started_at, 3),
            "counters": {name: counters[name] for name in sorted(counters)},
            "latency_ms": {
                "count": len(latencies),
                "p50": percentile(0.50),
                "p90": percentile(0.90),
                "p99": percentile(0.99),
                "max": latencies[-1] if latencies else 0.0,
            },
            "shed_rate": round(shed / offered, 6) if offered else 0.0,
            "queue": {
                "depth": self._table.qsize(),
                "capacity": self.config.queue_size,
                "in_flight": len(self._in_flight),
            },
            "tenants": self._table.snapshot(),
            "config": {
                "generation": self.config_generation,
                "batch_window_s": self.config.batch_window_s,
                "batch_max": self.config.batch_max,
                "deadline_s": self.config.deadline_s,
            },
            "breakers": {
                name: breaker.snapshot()
                for name, breaker in sorted(self._breakers.items())
            },
            "chaos": self.chaos.snapshot() if self.chaos is not None else None,
            "service": self.service.stats(),
        }

    # ------------------------------------------------------------------
    def _log(self, record: Dict[str, Any]) -> None:
        try:
            self._log_stream.write(json.dumps(record, sort_keys=True) + "\n")
            self._log_stream.flush()
        except (OSError, ValueError):
            pass  # a dead log pipe must not take the daemon down
