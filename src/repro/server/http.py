"""Minimal HTTP/1.1 framing over asyncio streams (stdlib only).

The daemon speaks just enough HTTP for its JSON protocol (docs/api.md):
request line + headers + ``Content-Length`` body in, status line +
JSON body out, with keep-alive.  No chunked encoding, no TLS, no
multipart — a reverse proxy owns those concerns in any real deployment.

Framing limits are deliberate backpressure: an oversized header block
or body is rejected before it is buffered, so a misbehaving client
cannot balloon daemon memory.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
from typing import Dict, Optional, Tuple

#: framing caps (bytes)
MAX_REQUEST_LINE = 8 * 1024
MAX_HEADER_BYTES = 32 * 1024
MAX_BODY_BYTES = 4 * 1024 * 1024

STATUS_PHRASES = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class HttpProtocolError(Exception):
    """The peer sent something this minimal parser rejects."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class Headers(Dict[str, str]):
    """Case-insensitive header mapping (RFC 9110 §5.1).

    Header field names are case-insensitive on the wire: ``X-Tenant``,
    ``x-tenant`` and ``X-TENANT`` are the same field.  Keys are folded
    to lowercase on every write, so lookups succeed whatever casing the
    peer (or the handler) used; iteration yields lowercase names.
    """

    def __init__(self, items: object = ()) -> None:
        super().__init__()
        pairs = items.items() if isinstance(items, dict) else items
        for name, value in pairs:  # type: ignore[union-attr]
            self[name] = value

    def __setitem__(self, name: str, value: str) -> None:
        super().__setitem__(name.lower(), value)

    def __getitem__(self, name: str) -> str:
        return super().__getitem__(name.lower())

    def __delitem__(self, name: str) -> None:
        super().__delitem__(name.lower())

    def __contains__(self, name: object) -> bool:
        return super().__contains__(str(name).lower())

    def get(self, name: str, default: Optional[str] = None) -> Optional[str]:
        return super().get(name.lower(), default)


@dataclasses.dataclass
class HttpRequest:
    """One parsed request."""

    method: str
    path: str
    headers: Headers
    body: bytes

    def json(self) -> dict:
        """The JSON body (an empty body parses as ``{}``)."""
        if not self.body:
            return {}
        try:
            payload = json.loads(self.body)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise HttpProtocolError(400, f"request body is not JSON: {exc}")
        if not isinstance(payload, dict):
            raise HttpProtocolError(400, "request body must be a JSON object")
        return payload

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"


async def read_request(reader: asyncio.StreamReader) -> Optional[HttpRequest]:
    """Parse one request; ``None`` on a cleanly closed connection."""
    try:
        line = await reader.readuntil(b"\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between requests
        raise HttpProtocolError(400, "truncated request line")
    except asyncio.LimitOverrunError:
        raise HttpProtocolError(400, "request line too long")
    if len(line) > MAX_REQUEST_LINE:
        raise HttpProtocolError(400, "request line too long")
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise HttpProtocolError(400, f"malformed request line {line!r}")
    method, path, _version = parts

    headers = Headers()
    total = 0
    while True:
        try:
            line = await reader.readuntil(b"\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            raise HttpProtocolError(400, "truncated headers")
        if line == b"\r\n":
            break
        total += len(line)
        if total > MAX_HEADER_BYTES:
            raise HttpProtocolError(400, "header block too large")
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise HttpProtocolError(400, f"malformed header line {line!r}")
        headers[name.strip()] = value.strip()

    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise HttpProtocolError(400, f"bad Content-Length {length_text!r}")
    if length < 0 or length > MAX_BODY_BYTES:
        raise HttpProtocolError(413, f"body of {length} bytes rejected")
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise HttpProtocolError(400, "truncated body")
    return HttpRequest(method=method, path=path, headers=headers, body=body)


def response_bytes(
    status: int,
    payload: dict,
    extra_headers: Tuple[Tuple[str, str], ...] = (),
    keep_alive: bool = True,
) -> bytes:
    """Serialize one JSON response."""
    body = (json.dumps(payload, sort_keys=True) + "\n").encode()
    phrase = STATUS_PHRASES.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {phrase}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    lines.extend(f"{name}: {value}" for name, value in extra_headers)
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body
