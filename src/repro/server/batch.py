"""Request coalescing: many queued generates, one executor pass.

Under heavy traffic most queued requests look alike — same generator,
small models, no verification — yet PR 5's daemon paid a full
thread-pool dispatch per request.  The coalescer lets a worker that
dequeues a batchable request sweep compatible requests out of the
admission queue within a short window (``ServerConfig.batch_window_s``,
at most ``batch_max`` requests) and serve them all on **one**
:class:`~repro.service.executor.ParallelExecutor` pass
(:meth:`CodegenService.generate_outcomes`), the serving-side analogue
of Algorithm 2 batching isomorphic actors into one SIMD instruction.

Contract (tests/server/test_batch.py):

* **byte-identical results** — a batched request's response body is
  exactly what unbatched serving returns (same fields, same cache
  keys), because each batch member is still served by the same
  ``service.generate`` call;
* **per-request fault isolation** — one poisoned batch member produces
  a failed :class:`TaskOutcome`; its batchmates' outcomes are
  untouched.  The daemon re-serves the failed member individually
  through the full retry/breaker path, tagged HCG513;
* **quota-respecting** — members are pulled via
  :meth:`TenantTable.collect_compatible`, which counts them in-flight
  immediately, so a batch can never carry a tenant past its
  concurrency quota.

Only ``verify=False`` requests with the same generator (and a CLOSED
breaker) coalesce: verification runs long and mixing generators would
entangle breaker accounting across batch members.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, List, Optional, Sequence

from repro.service.executor import MAX_JOBS, ParallelExecutor, TaskOutcome


def compatible(leader: Any, other: Any) -> bool:
    """May ``other`` ride in ``leader``'s batch?

    Both must be plain generate requests (``verify=False``) of the same
    generator — one batch is one breaker scope and one executor pass.
    """
    return (
        not leader.verify
        and not other.verify
        and other.generator == leader.generator
    )


@dataclasses.dataclass
class BatchTask:
    """One batch member, ready for the blocking executor pass."""

    request: Any                        # repro.api.GenerateRequest
    tenant: str
    #: polled by chaos stalls so an abandoned batch stops burning time
    abandoned: Callable[[], bool] = lambda: False


def run_batch(service: Any, tasks: Sequence[BatchTask],
              chaos: Any = None,
              cache: Any = None) -> List[TaskOutcome]:
    """Serve ``tasks`` as one ParallelExecutor pass (blocking).

    Runs on the daemon's thread pool, never the event loop.  Outcomes
    come back in input order with per-task fault isolation — exactly
    :meth:`ParallelExecutor.map` semantics.  With chaos enabled, each
    member gets its own injection roll (tenant-aware, so a
    ``noisy_neighbor`` fault stalls only the noisy tenant's members).
    """
    jobs = max(1, min(len(tasks), MAX_JOBS))
    if chaos is None:
        return service.generate_outcomes(
            [task.request for task in tasks], jobs=jobs)

    def attempt(task: BatchTask) -> Any:
        chaos.on_attempt(cache=cache, abandoned=task.abandoned,
                         tenant=task.tenant)
        return service.generate(task.request)

    executor = ParallelExecutor(jobs=jobs, timeout_s=service.task_timeout_s)
    return executor.map(
        attempt, list(tasks),
        label=lambda index, task: f"{task.request.generator}:{index}",
    )


def summarize(outcomes: Sequence[Optional[TaskOutcome]]) -> dict:
    """One JSON-ready line describing a finished batch (for the log)."""
    failed = sum(1 for o in outcomes if o is not None and not o.ok)
    return {
        "size": len(outcomes),
        "ok": sum(1 for o in outcomes if o is not None and o.ok),
        "isolated": failed,
    }
