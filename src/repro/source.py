"""``ModelSource`` — the one way to say *which model* a request means.

Historically the facade accepted three ad-hoc spellings of a model: a
builtin benchmark name (``"FIR"``), a model file path (``models/fir.xml``
or ``*.mdl``), or the bench CLI's ``--synthetic N`` flag.  Each entry
point re-implemented the dispatch and none of them could express a
scaled builtin or a seeded synthetic model.  :class:`ModelSource`
collapses all of them into one frozen value type that is

* **parseable** — :meth:`ModelSource.parse` understands the CLI
  grammar (``FIR``, ``FIR@256``, ``models/fir.xml``, ``synthetic:300``,
  ``synthetic:mixed:64:seed=3``);
* **resolvable** — :meth:`ModelSource.resolve` builds the actual
  :class:`~repro.model.graph.Model`;
* **wire-safe** — :meth:`ModelSource.to_wire` /
  :meth:`ModelSource.from_wire` round-trip through the daemon's JSON
  protocol (inline models excepted, by construction).

:class:`~repro.api.GenerateRequest` normalizes its ``model`` field to a
``ModelSource`` on construction; raw strings still work but warn with a
``DeprecationWarning`` exactly once per process, and raw ``Model``
objects are silently wrapped as ``kind="inline"``.
"""

from __future__ import annotations

import dataclasses
import warnings
from typing import Any, Callable, Dict, Optional, Tuple

from repro.errors import ReproError

#: recognised source kinds
SOURCE_KINDS = ("builtin", "file", "synthetic", "inline")

#: synthetic topologies bench/synthetic.py can build
SYNTHETIC_TOPOLOGIES = ("cascade", "multirate", "mixed")

#: deprecation shims that already warned this process (keyed by call path)
_WARNED: set = set()


def _warn_once(key: str, message: str) -> None:
    """Emit one ``DeprecationWarning`` per distinct legacy call path."""
    if key in _WARNED:
        return
    _WARNED.add(key)
    warnings.warn(message, DeprecationWarning, stacklevel=3)


def _reset_deprecation_warnings() -> None:
    """Test hook: forget which legacy call paths have warned."""
    _WARNED.clear()


def scaled_model_builders() -> Dict[str, Callable[[int], Any]]:
    """Builtin benchmark models that can be instantiated at a scale.

    Shared by :meth:`ModelSource.resolve` and the daemon wire protocol
    (which validates ``scale`` against this set before admission).
    """
    from repro.bench.models import (
        conv_model,
        dct_model,
        fft_model,
        fir_model,
        highpass_model,
        lowpass_model,
    )

    return {
        "FFT": fft_model,
        "DCT": dct_model,
        "Conv": lambda n: conv_model(n, max(n // 16, 2)),
        "HighPass": highpass_model,
        "LowPass": lowpass_model,
        "FIR": fir_model,
    }


@dataclasses.dataclass(frozen=True)
class ModelSource:
    """Where one model comes from, as an immutable, hashable value.

    Exactly one of the four kinds:

    * ``builtin`` — ``name`` is a benchmark name; ``scale`` optionally
      rebuilds it at a different signal width;
    * ``file`` — ``name`` is a ``.xml``/``.mdl`` path (``width`` is the
      default inport width for ``.mdl`` files, which don't declare one);
    * ``synthetic`` — ``name`` is a topology from
      :data:`SYNTHETIC_TOPOLOGIES`, ``scale`` the actor/stage count;
    * ``inline`` — ``model`` is an already-built Model object.
    """

    kind: str
    name: Optional[str] = None
    scale: Optional[int] = None
    width: Optional[int] = None
    seed: int = 0
    model: Any = None

    def __post_init__(self) -> None:
        if self.kind not in SOURCE_KINDS:
            raise ReproError(
                f"unknown model source kind {self.kind!r}; "
                f"choose from {SOURCE_KINDS}"
            )
        if self.kind == "inline":
            if self.model is None:
                raise ReproError("inline model source needs a model object")
        elif not self.name:
            raise ReproError(f"{self.kind} model source needs a name")
        if self.kind == "synthetic" and self.name not in SYNTHETIC_TOPOLOGIES:
            raise ReproError(
                f"unknown synthetic topology {self.name!r}; "
                f"choose from {SYNTHETIC_TOPOLOGIES}"
            )
        if self.scale is not None and (
            not isinstance(self.scale, int) or self.scale < 2
        ):
            raise ReproError("model source scale must be an int >= 2")
        if self.width is not None and (
            not isinstance(self.width, int) or self.width < 1
        ):
            raise ReproError("model source width must be an int >= 1")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def builtin(cls, name: str, scale: Optional[int] = None) -> "ModelSource":
        return cls(kind="builtin", name=name, scale=scale)

    @classmethod
    def path(cls, path: str, width: Optional[int] = None) -> "ModelSource":
        return cls(kind="file", name=str(path), width=width)

    @classmethod
    def synthetic(cls, scale: int, topology: str = "cascade",
                  width: Optional[int] = None, seed: int = 0) -> "ModelSource":
        return cls(kind="synthetic", name=topology, scale=scale,
                   width=width, seed=seed)

    @classmethod
    def inline(cls, model: Any) -> "ModelSource":
        return cls(kind="inline", model=model)

    # ------------------------------------------------------------------
    @classmethod
    def of(cls, value: Any) -> "ModelSource":
        """Coerce any legacy ``model`` spelling to a ``ModelSource``.

        ``ModelSource`` passes through; a ``Model`` object becomes an
        inline source; a string goes through :meth:`parse` after a
        once-per-process ``DeprecationWarning``.
        """
        if isinstance(value, cls):
            return value
        from repro.model.graph import Model

        if isinstance(value, Model):
            return cls.inline(value)
        if isinstance(value, str):
            _warn_once(
                "request-model-str",
                "passing a raw string as GenerateRequest.model is "
                "deprecated; pass repro.api.ModelSource.parse(...) instead",
            )
            return cls.parse(value)
        raise ReproError(
            f"cannot interpret {type(value).__name__} as a model source; "
            "pass a ModelSource, a Model, or a string spec"
        )

    @classmethod
    def parse(cls, text: str, *, default_width: Optional[int] = None) -> "ModelSource":
        """Parse the CLI/wire grammar into a source.

        ``FIR`` · ``FIR@256`` · ``models/fir.xml`` · ``path/to/m.mdl`` ·
        ``synthetic:300`` · ``synthetic:mixed:64`` ·
        ``synthetic:cascade:300:seed=7:width=48``
        """
        if isinstance(text, cls):
            return text
        text = str(text).strip()
        if not text:
            raise ReproError("empty model spec")
        if text.startswith("synthetic:") or text == "synthetic":
            return cls._parse_synthetic(text)
        if "@" in text and not _looks_like_path(text):
            name, _, scale_text = text.partition("@")
            try:
                scale = int(scale_text)
            except ValueError:
                raise ReproError(
                    f"bad builtin scale {scale_text!r} in {text!r}; "
                    "expected NAME@INT"
                )
            cls._check_builtin(name)
            return cls.builtin(name, scale)
        if not _looks_like_path(text):
            from repro.bench.models import BENCHMARK_MODELS

            if text in BENCHMARK_MODELS:
                return cls.builtin(text)
        return cls.path(text, width=default_width)

    @classmethod
    def _parse_synthetic(cls, text: str) -> "ModelSource":
        tokens = text.split(":")[1:]
        topology = "cascade"
        scale: Optional[int] = None
        options: Dict[str, int] = {}
        for token in tokens:
            if not token:
                continue
            if "=" in token:
                key, _, value = token.partition("=")
                if key not in ("seed", "width"):
                    raise ReproError(
                        f"unknown synthetic option {key!r} in {text!r}; "
                        "allowed: seed, width"
                    )
                try:
                    options[key] = int(value)
                except ValueError:
                    raise ReproError(f"synthetic {key} must be an int")
            elif token.isdigit():
                scale = int(token)
            else:
                topology = token
        if scale is None:
            raise ReproError(
                f"synthetic model spec {text!r} needs an actor count, "
                "e.g. synthetic:300 or synthetic:mixed:64"
            )
        return cls.synthetic(scale, topology=topology,
                             width=options.get("width"),
                             seed=options.get("seed", 0))

    @staticmethod
    def _check_builtin(name: str) -> None:
        from repro.bench.models import BENCHMARK_MODELS

        if name not in BENCHMARK_MODELS:
            raise ReproError(
                f"unknown builtin model {name!r}; "
                f"choose from {sorted(BENCHMARK_MODELS)}"
            )

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def resolve(self) -> Any:
        """Build the :class:`~repro.model.graph.Model` this source names."""
        if self.kind == "inline":
            return self.model
        if self.kind == "builtin":
            self._check_builtin(self.name)
            if self.scale is None:
                from repro.bench.models import BENCHMARK_MODELS

                return BENCHMARK_MODELS[self.name]()
            builders = scaled_model_builders()
            if self.name not in builders:
                raise ReproError(
                    f"builtin {self.name!r} cannot be scaled; "
                    f"scalable: {sorted(builders)}"
                )
            return builders[self.name](self.scale)
        if self.kind == "synthetic":
            from repro.bench.synthetic import synthetic_model

            return synthetic_model(self.name, self.scale,
                                   width=self.width, seed=self.seed)
        # file
        if str(self.name).endswith(".mdl"):
            from repro.model.mdl_io import read_mdl

            return read_mdl(self.name, default_width=self.width or 1)
        from repro.model.xml_io import read_model

        return read_model(self.name)

    # ------------------------------------------------------------------
    # Wire form (daemon JSON protocol)
    # ------------------------------------------------------------------
    def to_wire(self) -> Dict[str, Any]:
        """The JSON-safe dict the daemon protocol carries."""
        if self.kind == "inline":
            raise ReproError(
                "inline model sources cannot be serialized for the wire; "
                "write the model to a file and send a file source"
            )
        wire: Dict[str, Any] = {"kind": self.kind, "name": self.name}
        if self.scale is not None:
            wire["scale"] = self.scale
        if self.width is not None:
            wire["width"] = self.width
        if self.seed:
            wire["seed"] = self.seed
        return wire

    @classmethod
    def from_wire(cls, wire: Dict[str, Any]) -> "ModelSource":
        if not isinstance(wire, dict):
            raise ReproError("'source' must be a JSON object")
        unknown = set(wire) - {"kind", "name", "scale", "width", "seed"}
        if unknown:
            raise ReproError(f"unknown source field(s) {sorted(unknown)}")
        kind = wire.get("kind")
        if kind == "inline":
            raise ReproError("inline model sources are not wire-safe")
        return cls(
            kind=kind,
            name=wire.get("name"),
            scale=wire.get("scale"),
            width=wire.get("width"),
            seed=int(wire.get("seed", 0)),
        )

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """A short human-readable label (CLI tables, logs)."""
        if self.kind == "inline":
            name = getattr(self.model, "name", None)
            return f"inline:{name}" if name else "inline"
        if self.kind == "builtin":
            return self.name if self.scale is None else f"{self.name}@{self.scale}"
        if self.kind == "synthetic":
            parts = ["synthetic", self.name, str(self.scale)]
            if self.seed:
                parts.append(f"seed={self.seed}")
            return ":".join(parts)
        return str(self.name)


def _looks_like_path(text: str) -> bool:
    return (
        "/" in text
        or "\\" in text
        or text.endswith(".xml")
        or text.endswith(".mdl")
    )
