"""Cost-driven partitioning of one model across heterogeneous backends.

Given a model and a list of :class:`~repro.arch.backend.BackendSpec`
backends, the partitioner searches single cuts of the topological
schedule — every actor before the cut on one backend, everything after
it on the other — plus the trivial all-on-one-backend assignments, and
keeps the candidate with the lowest *predicted* cost: each candidate's
partition programs are generated (HCG) and executed on the VM under the
candidate backend's cost table, and every byte crossing a backend
boundary is charged at that backend's ``transfer_cost_per_byte``
(see :class:`~repro.vm.partitioned.PartitionedMachine`).

Cut validity: no connection may point backwards across the cut —
including ``UnitDelay`` state inputs, which, although not a same-step
dependency, must be produced by an earlier-or-equal partition so the
delayed value can cross the boundary forward in time.

Source actors are cheap to replicate: an ``Inport`` or ``Const``
consumed on both sides is instantiated in each partition (the
environment feeds inports directly; constants are baked into each
program), so only *computed* crossing values become handoff buffers.

The chosen plan is differentially verified against the model's
reference semantics before being returned.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.arch.backend import BackendSpec
from repro.diagnostics import Diagnostic, DiagnosticsCollector
from repro.errors import ReproError, VerificationError
from repro.model.actor_defs import create_actor
from repro.model.graph import Model
from repro.observability.metrics import COUNTERS, SPANS
from repro.schedule.scheduler import compute_schedule
from repro.vm.partitioned import Handoff, PartitionProgram, PartitionedMachine

#: handoff buffers are named xfer0, xfer1, ... in crossing order
_XFER_PREFIX = "xfer"

#: replicable source actor types (duplicated instead of handed off)
_SOURCE_TYPES = ("Inport", "Const")


@dataclasses.dataclass(frozen=True)
class Partition:
    """One side of the chosen cut."""

    backend: BackendSpec
    actors: Tuple[str, ...]
    model: Model
    program: Any  # repro.ir.program.Program


@dataclasses.dataclass(frozen=True)
class PartitionResult:
    """The partitioner's verdict for one model."""

    model: str
    backends: Tuple[BackendSpec, ...]
    partitions: Tuple[Partition, ...]
    handoffs: Tuple[Handoff, ...]
    #: predicted per-step cycles of the chosen plan (incl. transfer)
    predicted_cycles: float
    #: the transfer share of ``predicted_cycles``
    transfer_cycles: float
    #: predicted per-step cycles had the whole model run on one backend
    single_backend_cycles: Dict[str, float]
    #: candidates generated and cost-evaluated during the search
    candidates_evaluated: int
    #: peak working-set bytes, max over partitions
    peak_live_bytes: int
    diagnostics: Tuple[Diagnostic, ...] = ()
    verified: bool = False

    @property
    def split(self) -> bool:
        return len(self.partitions) > 1

    def best_single_backend_cycles(self) -> float:
        return min(self.single_backend_cycles.values())

    def contract(self) -> Dict[str, Any]:
        """The JSON-able boundary-buffer handoff contract."""
        return {
            "model": self.model,
            "partitions": [
                {
                    "backend": part.backend.describe(),
                    "arch": part.backend.arch,
                    "actors": list(part.actors),
                }
                for part in self.partitions
            ],
            "handoffs": [h.contract_entry() for h in self.handoffs],
            "predicted_cycles": self.predicted_cycles,
            "transfer_cycles": self.transfer_cycles,
        }


@dataclasses.dataclass
class _Candidate:
    """One (cut, backend assignment) under evaluation."""

    label: str
    parts: List[Tuple[BackendSpec, Model, Tuple[str, ...]]]
    handoffs: Tuple[Handoff, ...]


# ----------------------------------------------------------------------
# Sub-model construction
# ----------------------------------------------------------------------
def _build_candidate(
    model: Model,
    order: Sequence[str],
    cut: int,
    backends: Sequence[BackendSpec],
) -> Optional[_Candidate]:
    """Split ``model`` at schedule position ``cut`` onto ``backends``.

    ``cut == 0`` or ``cut == len(order)`` yields a single partition on
    ``backends[0]``.  Returns ``None`` for degenerate cuts where one
    side ends up empty after source replication.
    """
    position = {name: index for index, name in enumerate(order)}
    if cut <= 0 or cut >= len(order):
        sides = {name: 0 for name in order}
        active = [backends[0]]
    else:
        sides = {name: (0 if position[name] < cut else 1) for name in order}
        active = list(backends[:2])

    n_sides = len(active)
    #: side -> connections internal to it (after source replication)
    internal: Dict[int, List] = {side: [] for side in range(n_sides)}
    #: side -> source actor names replicated into it
    replicated: Dict[int, set] = {side: set() for side in range(n_sides)}
    #: (src actor, src port) -> crossing connections
    crossing: Dict[Tuple[str, str], List] = {}

    for connection in model.connections:
        src_side = sides[connection.src_actor]
        dst_side = sides[connection.dst_actor]
        src_type = model.actor(connection.src_actor).actor_type
        if src_side == dst_side:
            internal[dst_side].append(connection)
        elif src_type in _SOURCE_TYPES:
            replicated[dst_side].add(connection.src_actor)
            internal[dst_side].append(connection)
        elif src_side > dst_side:
            return None  # backward dependency; invalid cut
        else:
            crossing.setdefault(
                (connection.src_actor, connection.src_port), []
            ).append(connection)

    # A source actor stays on its own side only if consumed there.
    used: Dict[int, set] = {side: set() for side in range(n_sides)}
    for side, connections in internal.items():
        for connection in connections:
            used[side].add(connection.src_actor)
            used[side].add(connection.dst_actor)
    for (src_actor, _), _connections in crossing.items():
        used[sides[src_actor]].add(src_actor)

    members: Dict[int, List[str]] = {side: [] for side in range(n_sides)}
    for actor in model.actors:
        side = sides[actor.name]
        if actor.actor_type in _SOURCE_TYPES and actor.name not in used[side]:
            if any(actor.name in used[s] or actor.name in replicated[s]
                   for s in range(n_sides)):
                continue  # consumed elsewhere via replication; drop here
        members[side].append(actor.name)
    for side in range(n_sides):
        for name in sorted(replicated[side], key=lambda n: position[n]):
            if name not in members[side]:
                members[side].append(name)
        if not members[side]:
            return None

    parts: List[Tuple[BackendSpec, Model, Tuple[str, ...]]] = []
    part_models: Dict[int, Model] = {}
    for side in range(n_sides):
        part = Model(f"{model.name}_{active[side].name}")
        ordered = sorted(members[side], key=lambda n: position[n])
        for name in ordered:
            part.add_actor(model.actor(name))
        for connection in internal[side]:
            part.connect(connection.src_actor, connection.src_port,
                         connection.dst_actor, connection.dst_port)
        part_models[side] = part
        parts.append((active[side], part, tuple(ordered)))

    # Handoff ports: one Outport/Inport pair per crossing value.
    handoffs: List[Handoff] = []
    for index, ((src_actor, src_port), connections) in enumerate(
        sorted(crossing.items(), key=lambda item: (position[item[0][0]], item[0][1]))
    ):
        name = f"{_XFER_PREFIX}{index}"
        while any(name in (a.name for a in m.actors) for m in part_models.values()):
            name = f"_{name}"
        src_side = sides[src_actor]
        dst_side = sides[connections[0].dst_actor]
        port = model.actor(src_actor).output(src_port)
        producer = part_models[src_side]
        producer.add_actor(create_actor(
            name, "Outport", port.dtype, {"shape": port.shape}
        ))
        producer.connect(src_actor, src_port, name, "in1")
        consumer = part_models[dst_side]
        consumer.add_actor(create_actor(
            name, "Inport", port.dtype, {"shape": port.shape}
        ))
        for connection in connections:
            consumer.connect(name, "out", connection.dst_actor, connection.dst_port)
        handoffs.append(Handoff(
            name=name, src_actor=src_actor, src_port=src_port,
            producer=active[src_side].name, consumer=active[dst_side].name,
            dtype=port.dtype, shape=tuple(port.shape),
        ))

    for _backend, part, _names in parts:
        part.validate()
    label = (
        f"all on {active[0].name}" if n_sides == 1
        else f"cut@{cut}: {active[0].name}|{active[1].name}"
    )
    return _Candidate(label=label, parts=parts, handoffs=tuple(handoffs))


def _valid_cuts(model: Model, order: Sequence[str]) -> List[int]:
    """Cut positions with no backward (incl. delay-input) dependency."""
    position = {name: index for index, name in enumerate(order)}
    n = len(order)
    invalid = [False] * (n + 1)
    for connection in model.connections:
        src = position[connection.src_actor]
        dst = position[connection.dst_actor]
        if src >= dst:  # only delay inputs can point backwards
            for k in range(dst + 1, src + 1):
                invalid[k] = True
    return [k for k in range(1, n) if not invalid[k]]


# ----------------------------------------------------------------------
# Candidate evaluation
# ----------------------------------------------------------------------
class _ProgramFactory:
    """Generates (and memoizes) one partition's program per backend arch."""

    def __init__(self, options: Any, tracer: Any) -> None:
        self.options = options
        self.tracer = tracer
        self._memo: Dict[Tuple[Tuple[str, ...], str, str], Any] = {}

    def program_for(self, part: Model, backend: BackendSpec) -> Any:
        key = (
            tuple(actor.name for actor in part.actors),
            part.name.rsplit("_", 1)[0],
            backend.arch,
        )
        if key not in self._memo:
            from repro.bench.runner import make_generator

            kwargs = dict(self.options.generator_kwargs("hcg"))
            kwargs["policy"] = "permissive"
            kwargs["tracer"] = self.tracer
            generator = make_generator("hcg", backend.architecture(), **kwargs)
            self._memo[key] = generator.generate(part)
        return self._memo[key]


def _machine_for(
    candidate: _Candidate, factory: _ProgramFactory
) -> Tuple[PartitionedMachine, Tuple[Partition, ...]]:
    parts = []
    partitions = []
    for backend, part_model, names in candidate.parts:
        program = factory.program_for(part_model, backend)
        parts.append(PartitionProgram(
            backend_name=backend.name,
            arch=backend.architecture(),
            cost=backend.cost_table(),
            transfer_cost_per_byte=backend.transfer_cost_per_byte,
            program=program,
        ))
        partitions.append(Partition(
            backend=backend, actors=names, model=part_model, program=program,
        ))
    return (
        PartitionedMachine(parts, candidate.handoffs),
        tuple(partitions),
    )


def _predict(machine: PartitionedMachine, inputs: Mapping[str, Any],
             steps: int) -> Any:
    result = None
    for _ in range(max(steps, 1)):
        result = machine.run(inputs)
    return result


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def partition_model(
    model: Model,
    backends: Sequence[BackendSpec],
    *,
    options: Optional[Any] = None,
    steps: int = 2,
    seed: int = 2022,
    max_cuts: int = 16,
    tracer: Optional[Any] = None,
    verify: bool = True,
) -> PartitionResult:
    """Choose the lowest-predicted-cost split of ``model``.

    Evaluates every all-on-one-backend assignment plus up to
    ``max_cuts`` valid schedule cuts for each ordered backend pair;
    verifies the winner against the model's reference semantics.
    """
    if len(backends) < 1:
        raise ReproError("partitioning needs at least one backend")
    names = [backend.name for backend in backends]
    if len(set(names)) != len(names):
        raise ReproError(f"duplicate backend names: {names}")
    if options is None:
        from repro.codegen.options import CodegenOptions

        options = CodegenOptions()
    if tracer is None:
        from repro.observability.tracer import Tracer

        tracer = Tracer()
    from repro.bench.models import benchmark_inputs

    model.validate()
    order = compute_schedule(model).order
    inputs = benchmark_inputs(model, seed=seed)
    factory = _ProgramFactory(options, tracer)
    collector = DiagnosticsCollector(policy="permissive")

    cuts = _valid_cuts(model, order)
    if len(cuts) > max_cuts:
        stride = len(cuts) / max_cuts
        cuts = [cuts[int(i * stride)] for i in range(max_cuts)]

    with tracer.span(
        SPANS.SCHED_PARTITION, model=model.name,
        backends=[b.describe() for b in backends], cuts=len(cuts),
    ) as span:
        candidates: List[Tuple[str, _Candidate]] = []
        for backend in backends:
            built = _build_candidate(model, order, 0, [backend])
            if built is not None:
                candidates.append((backend.name, built))
        for cut in cuts:
            for pair in itertools.permutations(backends, 2):
                built = _build_candidate(model, order, cut, list(pair))
                if built is not None:
                    candidates.append(("", built))

        best = None
        single_cycles: Dict[str, float] = {}
        evaluated = 0
        for single_name, candidate in candidates:
            with tracer.span(
                SPANS.SCHED_PARTITION_CANDIDATE, label=candidate.label
            ) as cand_span:
                machine, partitions = _machine_for(candidate, factory)
                result = _predict(machine, inputs, steps)
                evaluated += 1
                tracer.count(COUNTERS.SCHED_PARTITION_CANDIDATES)
                cand_span.set(cycles=round(result.cycles, 3))
            if single_name:
                single_cycles[single_name] = result.cycles
            if best is None or result.cycles < best[0]:
                best = (result.cycles, candidate, machine, partitions, result)

        if best is None:
            raise ReproError(
                f"no valid partition candidate for model {model.name!r}"
            )
        best_cycles, candidate, machine, partitions, result = best
        if len(partitions) == 1:
            collector.report(
                "HCG231",
                f"model {model.name!r} stays on backend "
                f"{partitions[0].backend.name!r}: no cut beats "
                f"{best_cycles:.1f} predicted cycles",
                actor=model.name,
            )
        span.set(
            chosen=candidate.label, predicted_cycles=round(best_cycles, 3),
            candidates=evaluated,
        )

    verified = False
    if verify:
        _verify_partition(model, machine, inputs, steps)
        verified = True

    return PartitionResult(
        model=model.name,
        backends=tuple(backends),
        partitions=partitions,
        handoffs=candidate.handoffs,
        predicted_cycles=best_cycles,
        transfer_cycles=machine.transfer_cycles(),
        single_backend_cycles=single_cycles,
        candidates_evaluated=evaluated,
        peak_live_bytes=result.peak_live_bytes,
        diagnostics=collector.diagnostics,
        verified=verified,
    )


def _verify_partition(model: Model, machine: PartitionedMachine,
                      inputs: Mapping[str, Any], steps: int) -> None:
    """The chosen plan must match the model's reference semantics."""
    from repro.model.semantics import ModelEvaluator

    fresh_machine = PartitionedMachine(machine.parts, machine.handoffs)
    reference = ModelEvaluator(model)
    expected = got = None
    for _ in range(max(steps, 1)):
        expected = reference.step(inputs)
        got = fresh_machine.run(inputs)
    assert expected is not None and got is not None
    for name, value in expected.items():
        actual = got.outputs[name].reshape(np.asarray(value).shape)
        if np.asarray(value).dtype.kind in "fc":
            ok = np.allclose(actual, value, rtol=1e-4, atol=1e-4, equal_nan=True)
        else:
            ok = np.array_equal(actual, value)
        if not ok:
            raise VerificationError(
                f"partitioned output {name!r} diverges from the model "
                f"reference for {model.name!r}"
            )
