"""Budget-constrained tiling of oversized batch groups.

Algorithm 2 keeps every group-internal value in a vector register for
the whole body, so a group's *vector working set* — simultaneously live
registers times the register byte width — grows with the group.  On an
embedded target that working set is the scarce resource (the register
file, or the scratchpad a compiler spills into); main memory is not.
``CodegenOptions.memory_budget`` therefore bounds the **per-pass vector
working set in bytes**::

    footprint(tile) = register_peak(tile) * lane_bytes

When the whole group's footprint exceeds the budget, the group is split
into contiguous *tiles* of its dataflow graph, each emitted as its own
full pass over the signal (remainder + SIMD loop), so only one tile's
registers are ever live.  Values computed in one tile and consumed in a
later one are *spilled* to full-width local buffers in ordinary memory;
spill slots are pooled and reused between tiles once the value's last
consumer has run (MASIM-style multi-array reuse).  Spill traffic is
*reported* (slot count, bytes, reuses) but not charged against the
budget — it lives in unconstrained RAM, which is exactly the trade the
scheduler makes: registers for memory.

Greedy packing grows each tile while the footprint fits; when even a
single-node tile overflows, the plan reports *demotion* and Algorithm 2
falls back to the conventional scalar translation (diagnostic HCG221).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.codegen.hcg.dfg import Dfg, DfgNode, ExtInput, NodeInput
from repro.sched.liveness import (
    last_internal_uses,
    register_peak,
    value_positions,
)


@dataclasses.dataclass(frozen=True)
class SpillSlot:
    """One pooled full-width spill buffer (may serve several values)."""

    label: str
    dtype: object        # repro.dtypes.DataType
    length: int          # the group's signal width

    @property
    def nbytes(self) -> int:
        return self.length * self.dtype.byte_width


@dataclasses.dataclass(frozen=True)
class Tile:
    """One contiguous range of the group's dataflow graph."""

    start: int
    stop: int
    names: Tuple[str, ...]

    def __len__(self) -> int:
        return self.stop - self.start


@dataclasses.dataclass(frozen=True)
class TilePlan:
    """The scheduler's verdict for one batch group."""

    tiles: Tuple[Tile, ...]
    #: even the minimum (single-node) tile overflows the budget
    demoted: bool
    reason: str
    #: worst-case per-pass vector working set of the plan, in bytes
    peak_bytes: int
    budget: Optional[int]
    lane_bytes: int
    #: distinct spill buffers the plan declares
    slots: Tuple[SpillSlot, ...]
    #: spilled value (node name) -> slot label
    spilled: Dict[str, str]
    #: spill allocations served by reusing a freed slot
    slots_reused: int

    @property
    def tiled(self) -> bool:
        return len(self.tiles) > 1

    @property
    def spill_bytes(self) -> int:
        """Ordinary-memory bytes the plan's spill slots occupy."""
        return sum(slot.nbytes for slot in self.slots)


def tile_footprint(dfg: Dfg, start: int, stop: int, *, lane_bytes: int) -> int:
    """The vector working set of one pass over tile ``[start, stop)``."""
    return register_peak(dfg, start, stop) * lane_bytes


def plan_tiles(
    dfg: Dfg,
    *,
    width: int,
    lane_bytes: int,
    budget: Optional[int],
) -> TilePlan:
    """Pack the group's nodes into budget-fitting tiles, greedily.

    ``budget is None`` plans a single unconstrained tile (so callers
    still get the footprint estimate); otherwise each tile is grown
    while its modelled footprint fits, and a single-node overflow
    demotes the whole group.
    """
    n = len(dfg.nodes)
    positions = value_positions(dfg)
    last_use = last_internal_uses(dfg)

    def footprint(a: int, b: int) -> int:
        return tile_footprint(dfg, a, b, lane_bytes=lane_bytes)

    if budget is None or footprint(0, n) <= budget:
        whole = Tile(0, n, tuple(node.name for node in dfg.nodes))
        return TilePlan(
            tiles=(whole,), demoted=False, reason="",
            peak_bytes=footprint(0, n), budget=budget, lane_bytes=lane_bytes,
            slots=(), spilled={}, slots_reused=0,
        )

    tiles: List[Tile] = []
    start = 0
    while start < n:
        single = footprint(start, start + 1)
        if single > budget:
            return TilePlan(
                tiles=(), demoted=True,
                reason=(
                    f"node {dfg.nodes[start].name!r} alone needs {single} "
                    f"working-set bytes, over the {budget}-byte budget"
                ),
                peak_bytes=single, budget=budget, lane_bytes=lane_bytes,
                slots=(), spilled={}, slots_reused=0,
            )
        stop = start + 1
        while stop < n and footprint(start, stop + 1) <= budget:
            stop += 1
        tiles.append(Tile(
            start, stop,
            tuple(node.name for node in dfg.nodes[start:stop]),
        ))
        start = stop

    slots, spilled, reused = _assign_spill_slots(
        dfg, tiles, width, positions, last_use
    )
    peak = max(footprint(tile.start, tile.stop) for tile in tiles)
    return TilePlan(
        tiles=tuple(tiles), demoted=False, reason="",
        peak_bytes=peak, budget=budget, lane_bytes=lane_bytes,
        slots=tuple(slots), spilled=spilled, slots_reused=reused,
    )


def tile_dfg(dfg: Dfg, start: int, stop: int) -> Dfg:
    """The sub-graph of tile ``[start, stop)``, ready for Algorithm 2.

    Values defined in earlier tiles become external inputs (their key is
    the defining node's output port, which the planner aliases to either
    the value's real signal buffer or a spill slot); values consumed by
    later tiles gain ``needs_store`` so the tile's pass writes them out.
    """
    positions = value_positions(dfg)
    last_use = last_internal_uses(dfg)
    nodes = []
    for node in dfg.nodes[start:stop]:
        refs = []
        for ref in node.inputs:
            if isinstance(ref, NodeInput) and positions[ref.node] < start:
                refs.append(ExtInput((ref.node, "out"), dfg.node(ref.node).dtype))
            else:
                refs.append(ref)
        nodes.append(DfgNode(
            name=node.name,
            op=node.op,
            dtype=node.dtype,
            inputs=tuple(refs),
            imm=node.imm,
            internal_consumers=tuple(
                c for c in node.internal_consumers if positions[c] < stop
            ),
            needs_store=node.needs_store or last_use[node.name] >= stop,
            src_dtype=node.src_dtype,
        ))
    return Dfg(nodes)


def _assign_spill_slots(
    dfg: Dfg,
    tiles: List[Tile],
    width: int,
    positions: Dict[str, int],
    last_use: Dict[str, int],
) -> Tuple[List[SpillSlot], Dict[str, str], int]:
    """Pool spill slots across tiles, reusing freed ones per dtype."""
    tile_of: Dict[int, int] = {}
    for index, tile in enumerate(tiles):
        for position in range(tile.start, tile.stop):
            tile_of[position] = index

    slots: List[SpillSlot] = []
    spilled: Dict[str, str] = {}
    free: Dict[str, List[str]] = {}
    counters: Dict[str, int] = {}
    #: (last consumer tile, slot label, dtype key) of live spills
    active: List[Tuple[int, str, str]] = []
    reused = 0

    for index, tile in enumerate(tiles):
        still_active = []
        for end_tile, label, key in active:
            if end_tile < index:
                free.setdefault(key, []).append(label)
            else:
                still_active.append((end_tile, label, key))
        active = still_active

        for position in range(tile.start, tile.stop):
            node = dfg.nodes[position]
            if node.needs_store:
                continue  # its signal buffer doubles as the spill
            end_tile = tile_of[last_use[node.name]]
            if end_tile <= index:
                continue  # consumed within this tile; register-only
            key = node.dtype.value
            pool = free.get(key, [])
            if pool:
                label = pool.pop()
                reused += 1
            else:
                counters[key] = counters.get(key, 0) + 1
                label = f"sched_spill_{key}_{counters[key]}"
                slots.append(SpillSlot(label, node.dtype, width))
            spilled[node.name] = label
            active.append((end_tile, label, key))

    return slots, spilled, reused
