"""Memory-aware group scheduling and multi-backend partitioning.

This subsystem extends Algorithm 2's batch-group mapping along the two
axes ROADMAP item 3 names (grounded in PAPERS.md: memory-constrained
dataflow vectorization for hybrid CPU-GPU platforms, and MASIM's
multi-array scheduling):

* :mod:`repro.sched.liveness` / :mod:`repro.sched.tiling` — bound a
  batch group's peak live-buffer bytes against
  ``CodegenOptions.memory_budget`` by splitting oversized groups into
  budget-fitting tiles with spill-slot reuse between them;
* :mod:`repro.sched.partition` — split one model's dataflow graph
  across heterogeneous :class:`~repro.arch.backend.BackendSpec`
  backends, choosing the cut by predicted VM cost including per-edge
  transfer costs.

Everything here is internal; the supported surface is
``repro.api.partition`` plus the ``memory_budget`` option
(``tools/check_api_boundary.py`` enforces the boundary).
"""

# The graph vocabulary every sched entry point consumes, re-exported
# so callers (and the sched test suite) need not reach into
# repro.codegen to build one.
from repro.codegen.hcg.dfg import Dfg, DfgNode, ExtInput, NodeInput
from repro.sched.liveness import group_register_peak, register_peak
from repro.sched.tiling import TilePlan, plan_tiles, tile_dfg
from repro.sched.partition import PartitionResult, partition_model

__all__ = [
    "Dfg",
    "DfgNode",
    "ExtInput",
    "NodeInput",
    "PartitionResult",
    "TilePlan",
    "group_register_peak",
    "partition_model",
    "plan_tiles",
    "register_peak",
    "tile_dfg",
]
