"""Register liveness over a batch group's dataflow graph.

Algorithm 2 keeps every group-internal value in a vector register for
the whole body; the number of simultaneously live registers therefore
grows with the group, and so does the working set.  This module
computes, for any contiguous node range of a :class:`~repro.codegen.hcg.dfg.Dfg`,
the peak number of simultaneously live register values the emitted
body can need — the quantity the tile planner bounds against
``CodegenOptions.memory_budget``.

The model mirrors how :meth:`BatchSynthesizer._simd_body` emits code:

* every external input of the range is loaded into a register at the
  top of the body (live from position ``start``);
* each node's result occupies a register from its own position until
  its last in-range internal use (a value consumed only outside the
  range is stored immediately, so its register dies at its definition
  unless a later in-range node reads it).

This is a conservative upper bound: subgraph matching fuses several
nodes into one instruction, so the real body often uses fewer
registers — never more.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.codegen.hcg.dfg import Dfg, ExtInput, NodeInput


def value_positions(dfg: Dfg) -> Dict[str, int]:
    """Node name -> index in the group's schedule order."""
    return {node.name: index for index, node in enumerate(dfg.nodes)}


def last_internal_uses(dfg: Dfg) -> Dict[str, int]:
    """Node name -> last position that reads it inside the group.

    A node nobody inside the group consumes maps to its own position
    (its register dies immediately after definition).
    """
    positions = value_positions(dfg)
    last: Dict[str, int] = {}
    for node in dfg.nodes:
        uses = [positions[c] for c in node.internal_consumers]
        last[node.name] = max(uses) if uses else positions[node.name]
    return last


def range_inputs(dfg: Dfg, start: int, stop: int) -> Tuple[object, ...]:
    """Values entering the range from outside it, in first-use order.

    External inputs of the group stay :class:`ExtInput`; values defined
    by nodes *before* ``start`` appear as :class:`NodeInput` references
    (the planner decides whether they read a real buffer or a spill
    slot).
    """
    positions = value_positions(dfg)
    seen: List[object] = []
    for node in dfg.nodes[start:stop]:
        for ref in node.inputs:
            if isinstance(ref, NodeInput) and positions[ref.node] >= start:
                continue
            if ref not in seen:
                seen.append(ref)
    return tuple(seen)


def register_peak(dfg: Dfg, start: int, stop: int) -> int:
    """Peak simultaneously-live register count for nodes [start, stop).

    Counts the range's input registers (all loaded up front, each live
    until its last in-range use) plus every node's result register
    (live from definition to last in-range internal use).
    """
    if stop <= start:
        return 0
    positions = value_positions(dfg)

    # Death position of every register value, within the range.
    deaths: Dict[int, int] = {}

    def _dies(position: int) -> None:
        deaths[position] = deaths.get(position, 0) + 1

    inputs = range_inputs(dfg, start, stop)
    for ref in inputs:
        last = start
        for position in range(start, stop):
            if ref in dfg.nodes[position].inputs:
                last = position
        _dies(last)
    for position in range(start, stop):
        node = dfg.nodes[position]
        uses = [
            positions[c] for c in node.internal_consumers
            if start <= positions[c] < stop
        ]
        _dies(max(uses) if uses else position)

    live = len(inputs)
    peak = live
    for position in range(start, stop):
        live += 1  # the node's own result register
        peak = max(peak, live)
        live -= deaths.get(position, 0)
    return peak


def group_register_peak(dfg: Dfg) -> int:
    """Peak live registers for the whole (untiled) group body."""
    return register_peak(dfg, 0, len(dfg.nodes))
