"""Benchmark harness: generate, compile, execute, compare.

One :func:`run_generator` call does what the paper's evaluation did for
one (model, tool, architecture, compiler) cell: generate code, compile
it, run it on the target and report execution time — except the target
is the cost-modelled VM, so "execution time" is modelled seconds.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Any, Dict, Mapping, Optional, Sequence

import numpy as np

from repro.arch.arch import Architecture
from repro.bench.models import benchmark_inputs
from repro.codegen.dfsynth import DfsynthGenerator
from repro.codegen.hcg.generator import HcgGenerator
from repro.codegen.simulink_coder import SimulinkCoderGenerator
from repro.compiler.toolchain import Compiler
from repro.errors import ReproError
from repro.ir.program import Program
from repro.model.graph import Model
from repro.model.semantics import ModelEvaluator
from repro.observability.metrics import generation_metrics
from repro.vm.machine import Machine
from repro.vm.profile import simd_coverage

GENERATORS = ("simulink_coder", "dfsynth", "hcg")

#: iterations the paper used per target (Intel ran 10x the ARM count)
ARM_ITERATIONS = 10_000
INTEL_ITERATIONS = 100_000


def make_generator(name: str, arch: Architecture, **kwargs):
    if name == "simulink_coder":
        return SimulinkCoderGenerator(arch, **kwargs)
    if name == "dfsynth":
        return DfsynthGenerator(arch, **kwargs)
    if name == "hcg":
        return HcgGenerator(arch, **kwargs)
    raise ReproError(f"unknown generator {name!r}; choose from {GENERATORS}")


def iterations_for(arch: Architecture) -> int:
    return INTEL_ITERATIONS if arch.name.startswith("intel") else ARM_ITERATIONS


@dataclasses.dataclass
class RunResult:
    """One evaluation cell."""

    model: str
    generator: str
    arch: str
    compiler: str
    cycles_per_step: float
    seconds: float
    iterations: int
    outputs: Dict[str, np.ndarray]
    codegen_seconds: float
    data_bytes: int
    program: Program
    #: percent of modelled cycles in SIMD ops/memory (see repro.vm.profile)
    simd_coverage: float = 0.0
    #: generator-side counters (history hit rate, diagnostics, tracer
    #: counters — see repro.observability.metrics.generation_metrics)
    metrics: Dict[str, Any] = dataclasses.field(default_factory=dict)
    #: peak simultaneously-live bytes (vector registers + written
    #: locals) the VM observed in one step — the quantity
    #: ``CodegenOptions.memory_budget`` constrains
    peak_live_bytes: int = 0


def run_generator(
    model: Model,
    generator_name: str,
    arch: Architecture,
    compiler: Compiler,
    inputs: Optional[Mapping[str, Any]] = None,
    iterations: Optional[int] = None,
    steps: int = 1,
    service: Optional[Any] = None,
    options: Optional[Any] = None,
    **generator_kwargs: Any,
) -> RunResult:
    """Generate code with one tool and execute it on the VM.

    With a :class:`~repro.service.service.CodegenService` attached,
    generation goes through the service (and its content-addressed
    cache): a warm cell skips code generation entirely and the cell's
    ``metrics`` carry ``service.from_cache``.  ``generator_kwargs`` are
    only meaningful on the direct path; the service owns histories and
    tracer wiring itself (via ``options``).
    """
    if inputs is None:
        inputs = benchmark_inputs(model)
    if iterations is None:
        iterations = iterations_for(arch)

    if service is not None:
        from repro.api import GenerateRequest
        from repro.codegen.options import CodegenOptions

        opts = options if options is not None else CodegenOptions()
        if opts.arch != arch.name:
            opts = opts.replace(arch=arch.name)
        tracer = generator_kwargs.pop("tracer", None)
        if tracer is not None:
            opts = opts.replace(tracer=tracer)
        started = time.perf_counter()
        generated = service.generate(
            GenerateRequest(model=model, generator=generator_name, options=opts)
        )
        codegen_seconds = time.perf_counter() - started
        program = generated.program
        metrics: Dict[str, Any] = dict(generated.metrics)
        metrics.setdefault(
            "service.from_cache", 1 if generated.from_cache else 0
        )
    else:
        generator = make_generator(generator_name, arch, **generator_kwargs)
        started = time.perf_counter()
        program = generator.generate(model)
        codegen_seconds = time.perf_counter() - started
        metrics = generation_metrics(generator)

    compiled = compiler.compile(program)
    machine = Machine(compiled, arch, cost=compiler.effective_cost(arch))
    result = None
    peak_live = 0
    for _ in range(max(steps, 1)):
        result = machine.run(inputs)
        peak_live = max(peak_live, result.peak_live_bytes)
    assert result is not None
    return RunResult(
        model=model.name,
        generator=generator_name,
        arch=arch.name,
        compiler=compiler.name,
        cycles_per_step=result.cycles,
        seconds=result.seconds(arch, iterations),
        iterations=iterations,
        outputs=result.outputs,
        codegen_seconds=codegen_seconds,
        data_bytes=compiled.data_bytes(),
        program=compiled,
        simd_coverage=simd_coverage(result),
        metrics=metrics,
        peak_live_bytes=peak_live,
    )


def compare_generators(
    model: Model,
    arch: Architecture,
    compiler: Compiler,
    generators: Sequence[str] = GENERATORS,
    inputs: Optional[Mapping[str, Any]] = None,
    check_consistency: bool = True,
    steps: int = 1,
    per_generator_kwargs: Optional[Mapping[str, Mapping[str, Any]]] = None,
    service: Optional[Any] = None,
    options: Optional[Any] = None,
    **generator_kwargs: Any,
) -> Dict[str, RunResult]:
    """Run every generator on one model; verify the outputs agree.

    The paper reports that "their computation results of each execution
    are consistent"; we assert it.  ``generator_kwargs`` go to every
    generator; ``per_generator_kwargs`` maps a generator name to extras
    only that generator accepts (e.g. a shared HCG selection history).
    ``service``/``options`` route generation through the cache-aware
    codegen service instead (see :func:`run_generator`).
    """
    if inputs is None:
        inputs = benchmark_inputs(model)
    per_generator_kwargs = per_generator_kwargs or {}
    results = {
        name: run_generator(
            model, name, arch, compiler, inputs=inputs, steps=steps,
            service=service, options=options,
            **{**generator_kwargs, **per_generator_kwargs.get(name, {})}
        )
        for name in generators
    }
    if check_consistency and len(results) > 1:
        reference = ModelEvaluator(model)
        expected = None
        for _ in range(max(steps, 1)):
            expected = reference.step(inputs)
        assert expected is not None
        for name, run in results.items():
            for out_name, value in expected.items():
                got = run.outputs[out_name].reshape(value.shape)
                if value.dtype.kind in "fc":
                    if not np.allclose(got, value, rtol=1e-4, atol=1e-4, equal_nan=True):
                        raise ReproError(
                            f"{name} output {out_name!r} diverges from the model "
                            f"reference (max err {np.abs(got - value).max():g})"
                        )
                elif not np.array_equal(got, value):
                    raise ReproError(
                        f"{name} output {out_name!r} diverges from the model reference"
                    )
    return results


def improvement(baseline_seconds: float, hcg_seconds: float) -> float:
    """The paper's improvement metric: time reduction in percent."""
    if baseline_seconds <= 0:
        return 0.0
    return (baseline_seconds - hcg_seconds) / baseline_seconds * 100.0
