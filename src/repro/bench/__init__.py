"""Benchmark models and harness reproducing the paper's evaluation."""

from repro.bench.models import (
    BENCHMARK_MODELS,
    benchmark_inputs,
    benchmark_suite,
    conv_model,
    dct_model,
    fft_model,
    fir_model,
    highpass_model,
    lowpass_model,
)
from repro.bench.runner import (
    ARM_ITERATIONS,
    GENERATORS,
    INTEL_ITERATIONS,
    RunResult,
    compare_generators,
    improvement,
    iterations_for,
    make_generator,
    run_generator,
)
from repro.bench.report import (
    render_figure1,
    render_figure5,
    render_figure5_bars,
    render_table2,
    results_to_csv,
    summarize_improvements,
)

__all__ = [
    "ARM_ITERATIONS",
    "BENCHMARK_MODELS",
    "GENERATORS",
    "INTEL_ITERATIONS",
    "RunResult",
    "benchmark_inputs",
    "benchmark_suite",
    "compare_generators",
    "conv_model",
    "dct_model",
    "fft_model",
    "fir_model",
    "highpass_model",
    "improvement",
    "iterations_for",
    "lowpass_model",
    "make_generator",
    "render_figure1",
    "render_figure5",
    "render_figure5_bars",
    "render_table2",
    "results_to_csv",
    "run_generator",
    "summarize_improvements",
]
