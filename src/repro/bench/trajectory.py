"""The ISA-matrix bench harness behind ``repro bench``.

Runs benchmark models under the five ISA presets (NEON via the ARM
A72, SSE4 and AVX2 via the i7-8700, RVV via the SiFive U74, AVX-512
via the Xeon 8380) for all three generators — the paper's Table 2 /
Figure 5 grid plus the two masked/scalable targets — and shapes the
results into
the schema-versioned ``BENCH_codegen.json`` perf-trajectory record
(:mod:`repro.observability.benchfile`).

HCG cells share one :class:`~repro.codegen.hcg.history.SelectionHistory`
per architecture, so the recorded history hit rate reflects how much
Algorithm 1 pre-calculation the cache actually saved across the suite
(FFT/DCT/Conv at equal scales hit after their first selection).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

from repro.arch.presets import get_architecture
from repro.bench.models import BENCHMARK_MODELS
from repro.bench.runner import GENERATORS, RunResult, compare_generators
from repro.codegen.hcg.history import SelectionHistory
from repro.compiler.toolchain import Compiler
from repro.errors import ReproError
from repro.model.graph import Model
from repro.observability.tracer import Tracer

#: the paper's three ISA presets plus the masked/scalable targets,
#: by architecture name
ISA_MATRIX_ARCHS = ("arm_a72", "intel_i7_8700_sse4", "intel_i7_8700",
                    "riscv_u74", "intel_xeon_8380")

#: benchmark scale used by ``--quick`` (full scale is 1024)
QUICK_SCALE = 64


def quick_suite(scale: int = QUICK_SCALE) -> Dict[str, Model]:
    """The six paper models scaled down for smoke runs."""
    from repro.bench.models import (
        conv_model,
        dct_model,
        fft_model,
        fir_model,
        highpass_model,
        lowpass_model,
    )

    return {
        "FFT": fft_model(scale),
        "DCT": dct_model(scale),
        "Conv": conv_model(scale, max(scale // 16, 2)),
        "HighPass": highpass_model(scale),
        "LowPass": lowpass_model(scale),
        "FIR": fir_model(scale),
    }


def resolve_bench_models(
    names: Optional[Sequence[str]], quick: bool
) -> Dict[str, Model]:
    """Map CLI ``--model`` values to Model instances.

    A value is either a benchmark name (``FIR``, ``FFT``, ...) or a
    model file path (``models/fir.xml``, ``*.mdl``); ``--quick`` scales
    the named benchmarks down and leaves file models untouched.
    """
    suite = quick_suite() if quick else None
    if not names:
        return suite if suite is not None else {
            name: make() for name, make in BENCHMARK_MODELS.items()
        }
    from repro.source import ModelSource

    models: Dict[str, Model] = {}
    for name in names:
        if name in BENCHMARK_MODELS:
            models[name] = suite[name] if suite is not None else BENCHMARK_MODELS[name]()
            continue
        try:
            model = ModelSource.parse(str(name)).resolve()
        except ReproError as exc:
            raise ReproError(
                f"unknown benchmark model {name!r}; choose from "
                f"{sorted(BENCHMARK_MODELS)}, pass a model file path, or "
                f"use the ModelSource grammar (FIR@256, synthetic:mixed:64) "
                f"[{exc}]"
            )
        models[model.name] = model
    return models


def bench_matrix(
    models: Mapping[str, Model],
    compiler: Compiler,
    archs: Sequence[str] = ISA_MATRIX_ARCHS,
    steps: int = 2,
    check_consistency: bool = True,
    jobs: int = 1,
    service=None,
    options=None,
    memory_budget: Optional[int] = None,
) -> Dict[str, Dict[str, Dict[str, RunResult]]]:
    """Run every (arch, model, generator) cell.

    Returns ``arch name -> model name -> generator name -> RunResult``.

    ``jobs > 1`` fans the (arch, model) cells out over a worker pool;
    the matrix comes back in the same deterministic order either way,
    and the first failing cell's exception surfaces as it would have
    serially.  With a :class:`~repro.service.service.CodegenService`
    attached, cells generate through its content-addressed cache (a
    rerun with a warm cache skips code generation entirely) and the
    service owns the per-arch selection histories; without one, each
    arch shares one in-memory :class:`SelectionHistory` across its HCG
    cells, which is thread-safe for the pool.

    ``memory_budget`` bounds each HCG group's vector working set
    (``repro bench --memory-budget``); consistency checking then doubles
    as differential verification of the tiled/demoted programs.  On the
    service path the budget must already be in ``options``.
    """
    histories: Dict[str, SelectionHistory] = {
        arch_name: SelectionHistory() for arch_name in archs
    }
    cells = [
        (arch_name, model_name, model)
        for arch_name in archs
        for model_name, model in models.items()
    ]

    def run_cell(cell):
        arch_name, _, model = cell
        arch = get_architecture(arch_name)
        # A fresh per-cell tracer gives HCG rows their Algorithm 1/2
        # counters in the record; the shared history spans the arch.
        per_generator = {"hcg": {"tracer": Tracer()}}
        if service is None:
            per_generator["hcg"]["history"] = histories[arch_name]
            if memory_budget is not None:
                per_generator["hcg"]["memory_budget"] = memory_budget
        return compare_generators(
            model, arch, compiler,
            check_consistency=check_consistency,
            steps=steps,
            service=service,
            options=options,
            per_generator_kwargs=per_generator,
        )

    from repro.service.executor import ParallelExecutor

    executor = ParallelExecutor(jobs)
    outcomes = executor.map(
        run_cell, cells, label=lambda index, cell: f"{cell[0]}/{cell[1]}"
    )
    executor.raise_first(outcomes)

    matrix: Dict[str, Dict[str, Dict[str, RunResult]]] = {}
    for (arch_name, model_name, _), outcome in zip(cells, outcomes):
        matrix.setdefault(arch_name, {})[model_name] = outcome.value
    return matrix


def isa_of_archs(archs: Sequence[str]) -> Dict[str, str]:
    """Architecture name -> ISA name (``neon`` / ``sse4`` / ``avx2`` /
    ``rvv`` / ``avx512``)."""
    return {name: get_architecture(name).isa_name for name in archs}
