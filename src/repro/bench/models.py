"""The six benchmark models of the paper's evaluation (§4).

FFT, DCT and Conv contain intensive computing actors; HighPass,
LowPass and FIR contain batch computing actors (batch Add / Sub / Mul
...).  Widths default to the paper's scales (1024-element signals,
i32*1024 for FIR); every constructor takes the size as a parameter so
tests and ablations can scale them down or up.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.dtypes import DataType
from repro.model.builder import ModelBuilder
from repro.model.graph import Model


def fft_model(n: int = 1024, dtype: DataType = DataType.F32) -> Model:
    """1-D fast Fourier transform of an ``n``-point float signal."""
    b = ModelBuilder("FFT", default_dtype=dtype)
    x = b.inport("x", shape=n)
    spectrum = b.add_actor("FFT", "fft", x, n=n)
    b.outport("y", spectrum)
    return b.build()


def dct_model(n: int = 1024, dtype: DataType = DataType.F32) -> Model:
    """1-D discrete cosine transform of an ``n``-point float signal."""
    b = ModelBuilder("DCT", default_dtype=dtype)
    x = b.inport("x", shape=n)
    coeffs = b.add_actor("DCT", "dct", x, n=n)
    b.outport("y", coeffs)
    return b.build()


def conv_model(n: int = 1024, m: int = 64, dtype: DataType = DataType.F32) -> Model:
    """1-D convolution of an ``n``-point signal with ``m`` filter taps."""
    b = ModelBuilder("Conv", default_dtype=dtype)
    x = b.inport("x", shape=n)
    rng = np.random.default_rng(7)
    taps = b.const("h", value=rng.normal(scale=0.2, size=m).tolist())
    out = b.add_actor("Conv", "conv", x, taps, n=n, m=m)
    b.outport("y", out)
    return b.build()


def highpass_model(n: int = 1024, dtype: DataType = DataType.F32) -> Model:
    """First-order high-pass filter with a bypass switch.

    A low-pass state ``lp = b*x + a*lp_prev`` is tracked with batch Mul
    and Add actors (fusing into ``vmla``); the high-pass output is
    ``x - lp``; a scalar control signal selects filtered output or raw
    bypass.  The Switch exercises the generators' branch handling
    (DFSynth's structured control flow vs per-element selects).
    """
    b = ModelBuilder("HighPass", default_dtype=dtype)
    x = b.inport("x", shape=n)
    ctrl = b.inport("ctrl")
    a = b.const("a", value=[0.82] * n)
    one_minus_a = b.const("b", value=[0.18] * n)
    prev = b.add_actor("UnitDelay", "prev", dtype=dtype, shape=n, initial=0)
    term_new = b.add_actor("Mul", "term_new", one_minus_a, x)
    term_old = b.add_actor("Mul", "term_old", a, prev)
    lp = b.add_actor("Add", "lp", term_new, term_old)
    hp = b.add_actor("Sub", "hp", x, lp)
    switch = b.add_actor("Switch", "bypass", hp, dtype=dtype, shape=n, threshold=0.5)
    b.connect(ctrl, switch, "ctrl")
    b.connect(x, switch, "in2")
    b.outport("y", switch)
    b.connect(lp, prev, "in1")
    return b.build()


def lowpass_model(n: int = 1024, dtype: DataType = DataType.F32) -> Model:
    """First-order low-pass filter with output clamping.

    ``y = clamp(a*x + (1-a)*y_prev, lo, hi)`` — a chain of batch Mul,
    Mul, Add, Min and Max actors over ``n``-element float signals with
    a feedback UnitDelay.  The Mul + Add pair fuses into ``vmla``.
    """
    b = ModelBuilder("LowPass", default_dtype=dtype)
    x = b.inport("x", shape=n)
    a = b.const("a", value=[0.3] * n)
    one_minus_a = b.const("b", value=[0.7] * n)
    hi = b.const("hi", value=[0.95] * n)
    lo = b.const("lo", value=[-0.95] * n)
    prev = b.add_actor("UnitDelay", "prev", dtype=dtype, shape=n, initial=0)
    term_new = b.add_actor("Mul", "term_new", a, x)
    term_old = b.add_actor("Mul", "term_old", one_minus_a, prev)
    mixed = b.add_actor("Add", "mixed", term_new, term_old)
    clipped_hi = b.add_actor("Min", "clip_hi", mixed, hi)
    y = b.add_actor("Max", "clip_lo", clipped_hi, lo)
    b.outport("y", y)
    b.connect(y, prev, "in1")
    return b.build()


def fir_model(n: int = 1024, dtype: DataType = DataType.I32) -> Model:
    """Integer FIR stage: batch Mul (i32*1024) then batch Add (i32*1024).

    This is the paper's §4.1 example of the model Simulink Coder fails
    to vectorise ("two connected batch computing actors, batch Mul
    (i32*1024) and batch Add (i32*1024)").
    """
    b = ModelBuilder("FIR", default_dtype=dtype)
    x = b.inport("x", shape=n)
    rng = np.random.default_rng(11)
    coeffs = b.const("h", value=rng.integers(-8, 9, size=n).tolist())
    delayed = b.add_actor("UnitDelay", "delayed", dtype=dtype, shape=n, initial=0)
    weighted = b.add_actor("Mul", "weighted", x, coeffs)
    acc = b.add_actor("Add", "acc", weighted, delayed)
    b.outport("y", acc)
    b.connect(x, delayed, "in1")
    return b.build()


#: model name -> constructor with paper-scale defaults
BENCHMARK_MODELS: Dict[str, Callable[[], Model]] = {
    "FFT": fft_model,
    "DCT": dct_model,
    "Conv": conv_model,
    "HighPass": highpass_model,
    "LowPass": lowpass_model,
    "FIR": fir_model,
}


def benchmark_suite() -> Dict[str, Model]:
    """All six benchmark models at the paper's scales."""
    return {name: make() for name, make in BENCHMARK_MODELS.items()}


def benchmark_inputs(model: Model, seed: int = 2022) -> Dict[str, np.ndarray]:
    """Deterministic pseudo-random step inputs for a benchmark model."""
    rng = np.random.default_rng(seed)
    inputs: Dict[str, np.ndarray] = {}
    for inport in model.inports:
        port = inport.output("out")
        shape = port.shape or ()
        if inport.name == "ctrl":
            inputs[inport.name] = np.asarray(1.0, dtype=port.dtype.numpy_dtype)
        elif port.dtype.is_float:
            inputs[inport.name] = rng.uniform(-1.0, 1.0, size=shape).astype(port.dtype.numpy_dtype)
        else:
            inputs[inport.name] = rng.integers(-1000, 1000, size=shape).astype(port.dtype.numpy_dtype)
    return inputs
