"""Text rendering of the paper's tables and figures."""

from __future__ import annotations

from typing import Dict, List, Mapping

from repro.bench.runner import RunResult, improvement


def render_table2(rows: Mapping[str, Mapping[str, RunResult]]) -> str:
    """Render Table 2: per-model execution times plus HCG improvement.

    ``rows`` maps model name -> generator name -> result.
    """
    lines = [
        f"{'Model':10s} {'Simulink':>10s} {'DFSynth':>10s} {'HCG':>10s} "
        f"{'vs Simulink':>12s} {'vs DFSynth':>11s}"
    ]
    for model, results in rows.items():
        simulink = results["simulink_coder"].seconds
        dfsynth = results["dfsynth"].seconds
        hcg = results["hcg"].seconds
        lines.append(
            f"{model:10s} {simulink:9.3f}s {dfsynth:9.3f}s {hcg:9.3f}s "
            f"{improvement(simulink, hcg):11.1f}% {improvement(dfsynth, hcg):10.1f}%"
        )
    return "\n".join(lines)


def render_figure5(
    panels: Mapping[str, Mapping[str, Mapping[str, RunResult]]]
) -> str:
    """Render Figure 5: one panel per (arch, compiler) combination.

    ``panels`` maps panel label -> model -> generator -> result.
    """
    blocks: List[str] = []
    for label, rows in panels.items():
        blocks.append(f"--- {label} ---")
        blocks.append(render_table2(rows))
        blocks.append("")
    return "\n".join(blocks)


def render_figure1(series: Mapping[str, Mapping[int, float]]) -> str:
    """Render Figure 1: FFT implementation cost per input length.

    ``series`` maps implementation name -> {input length: cost}.
    """
    lengths = sorted({n for curve in series.values() for n in curve})
    header = f"{'n':>6s} " + " ".join(f"{name:>16s}" for name in series)
    lines = [header]
    for n in lengths:
        cells = []
        for name in series:
            value = series[name].get(n)
            cells.append(f"{value:16.0f}" if value is not None else f"{'-':>16s}")
        lines.append(f"{n:6d} " + " ".join(cells))
    return "\n".join(lines)


def render_figure5_bars(
    panels: Mapping[str, Mapping[str, Mapping[str, RunResult]]],
    width: int = 40,
) -> str:
    """ASCII bar charts, one panel per (arch, compiler) — the visual
    shape of the paper's Figure 5."""
    blocks: List[str] = []
    for label, rows in panels.items():
        blocks.append(f"--- {label} ---")
        peak = max(r.seconds for results in rows.values() for r in results.values())
        for model, results in rows.items():
            blocks.append(f"{model}:")
            for generator in ("simulink_coder", "dfsynth", "hcg"):
                seconds = results[generator].seconds
                bar = "#" * max(int(round(seconds / peak * width)), 1)
                blocks.append(f"  {generator:15s} {bar} {seconds:.3f}s")
        blocks.append("")
    return "\n".join(blocks)


def results_to_csv(rows: Mapping[str, Mapping[str, RunResult]]) -> str:
    """Comma-separated export of a result table for external plotting."""
    lines = [
        "model,generator,arch,compiler,seconds,cycles_per_step,iterations,"
        "codegen_seconds,data_bytes"
    ]
    for model, results in rows.items():
        for generator, run in results.items():
            lines.append(
                f"{model},{generator},{run.arch},{run.compiler},"
                f"{run.seconds:.6f},{run.cycles_per_step:.1f},{run.iterations},"
                f"{run.codegen_seconds:.4f},{run.data_bytes}"
            )
    return "\n".join(lines) + "\n"


def summarize_improvements(
    rows: Mapping[str, Mapping[str, RunResult]]
) -> Dict[str, float]:
    """Min/max improvement of HCG over each baseline across models."""
    vs_simulink = [
        improvement(r["simulink_coder"].seconds, r["hcg"].seconds) for r in rows.values()
    ]
    vs_dfsynth = [
        improvement(r["dfsynth"].seconds, r["hcg"].seconds) for r in rows.values()
    ]
    return {
        "simulink_min": min(vs_simulink),
        "simulink_max": max(vs_simulink),
        "dfsynth_min": min(vs_dfsynth),
        "dfsynth_max": max(vs_dfsynth),
    }
