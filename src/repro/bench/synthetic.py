"""Parameterized synthetic benchmark models (``repro bench --synthetic N``).

The six paper models top out at a few dozen actors, which never
stresses Algorithm 2's subgraph matcher.  :func:`synthetic_cascade`
builds a deep elementwise cascade with ``N`` batch actors forming one
connected batch group — the hundreds-of-actors regime of ROADMAP items
4-5 — deterministically, so two runs (or two matchers) see the same
model.

The topology is a dense cascade: each actor's first operand is its
predecessor and its second operand *taps an earlier node* (cycling
through a few tap distances) rather than a fresh constant.  The taps
give interior nodes fan-out, which is what makes matching hard: they
create many multi-escape and non-convex candidate sets, the regime
where the naive matcher's per-seed re-enumeration blows up.  Two fixed
positions per op-cycle take constants instead — a ``Min`` with a
positive constant followed by a ``Max`` with a negative one — clamping
every value into ``[-0.5, 0.5]`` so the cascade stays finite at any
depth.  The cycle still puts ``Mul`` directly in front of ``Add``/
``Sub`` so fused multiply-accumulate patterns (neon ``vmlaq_f32``,
AVX2 ``vfmadd231ps``) have real matches, and taps avoid landing on a
``Mul`` so those fusions stay single-sink.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.dtypes import DataType
from repro.model.builder import ModelBuilder
from repro.model.graph import Model

#: topologies :func:`synthetic_model` can build (mirrors
#: repro.source.SYNTHETIC_TOPOLOGIES — the ModelSource grammar)
TOPOLOGIES = ("cascade", "multirate", "mixed")

#: signal width of synthetic models; a multiple of every preset's f32
#: lane count (4/4/8), so the whole cascade vectorises with no remainder
SYNTHETIC_WIDTH = 64

#: the op sequence, cycled; Mul immediately before Add/Sub feeds the
#: compound multiply-accumulate patterns of neon/avx2
_OP_CYCLE = ("Mul", "Add", "Sub", "Min", "Max", "Mul", "Add", "Sub")

#: cycle positions whose second operand is a constant: the Min/Max
#: clamp pair that bounds values to [-0.5, 0.5]
_CONST_POSITIONS = frozenset({3, 4})

#: cycle positions holding a Mul (taps skip these so multiply-add
#: fusions keep a single escaping value)
_MUL_POSITIONS = frozenset(
    i for i, op in enumerate(_OP_CYCLE) if op == "Mul"
)

#: tap distances for the second operand, cycled per actor index
_TAP_OFFSETS = (2, 3, 5)


def _const_values(index: int, width: int, seed: int = 0) -> list:
    """Deterministic pseudo-random constants in [-0.5, 0.5).

    ``seed`` perturbs the sequence; ``seed=0`` reproduces the historical
    values byte-for-byte, so committed bench records stay comparable.
    """
    return [
        ((index * 31 + lane * 17 + 3 + seed * 53) % 101) / 101.0 - 0.5
        for lane in range(width)
    ]


def _clamp_values(index: int, width: int) -> list:
    """The clamp constants: +0.5 for the Min node, -0.5 for the Max."""
    bound = 0.5 if index % len(_OP_CYCLE) == 3 else -0.5
    return [bound] * width


def synthetic_cascade(
    n_actors: int,
    width: int = SYNTHETIC_WIDTH,
    tap_offsets: Tuple[int, ...] = _TAP_OFFSETS,
    seed: int = 0,
) -> Model:
    """A deep cascade of ``n_actors`` f32 batch actors in one group.

    ``seed`` rotates the tap-distance cycle and perturbs the constant
    values, producing a structurally different (but still deterministic)
    instance; ``seed=0`` is the historical model, unchanged.
    """
    if n_actors < 1:
        raise ValueError(f"n_actors must be >= 1, got {n_actors}")
    if seed:
        rotation = seed % len(tap_offsets)
        tap_offsets = tap_offsets[rotation:] + tap_offsets[:rotation]
    name = f"Synthetic{n_actors}" if not seed else f"Synthetic{n_actors}s{seed}"
    builder = ModelBuilder(name, default_dtype=DataType.F32)
    previous = builder.inport("x", shape=width)
    nodes = []
    pad = len(str(max(n_actors - 1, 1)))
    cycle = len(_OP_CYCLE)
    for index in range(n_actors):
        position = index % cycle
        op = _OP_CYCLE[position]
        if position in _CONST_POSITIONS:
            second = builder.const(
                f"c{index:0{pad}d}", value=_clamp_values(index, width)
            )
        elif index >= 2:
            target = index - tap_offsets[index % len(tap_offsets)]
            # Never tap a Mul: its value must stay internal to the
            # multiply-add fusion candidates rooted at its consumer.
            while target >= 0 and target % cycle in _MUL_POSITIONS:
                target -= 1
            if target >= 0:
                second = nodes[target]
            else:
                second = builder.const(
                    f"c{index:0{pad}d}", value=_const_values(index, width)
                )
        else:
            second = builder.const(
                f"c{index:0{pad}d}", value=_const_values(index, width)
            )
        node = builder.add_actor(op, f"n{index:0{pad}d}", previous, second)
        nodes.append(node)
        previous = node
    builder.outport("y", previous)
    return builder.build()


def _chain(builder, value, count: int, width: int, *, seed: int, prefix: str):
    """A simple bounded cascade: op cycle with constant second operands."""
    pad = len(str(max(count - 1, 1)))
    cycle = len(_OP_CYCLE)
    for index in range(count):
        position = index % cycle
        if position in _CONST_POSITIONS:
            values = _clamp_values(index, width)
        else:
            values = _const_values(index, width, seed)
        const = builder.const(f"{prefix}c{index:0{pad}d}", value=values)
        value = builder.add_actor(
            _OP_CYCLE[position], f"{prefix}n{index:0{pad}d}", value, const
        )
    return value


def synthetic_multirate(
    n_actors: int,
    width: int = SYNTHETIC_WIDTH,
    seed: int = 0,
) -> Model:
    """Two cascades at different rates: a multi-group synthetic model.

    A full-rate chain processes the whole ``width``-lane signal while a
    half-rate chain processes its lower half (split off with a ``Slice``,
    merged back with ``Concat``).  The copy actors break the model into
    two batch groups at *different* signal widths, so Algorithm 2 maps
    (and the scheduler budgets) each group independently — the
    multi-rate regime Simulink models hit with rate-transition blocks.
    """
    if n_actors < 2:
        raise ValueError(f"n_actors must be >= 2, got {n_actors}")
    if width < 2 or width % 2:
        raise ValueError(f"width must be even and >= 2, got {width}")
    suffix = f"s{seed}" if seed else ""
    builder = ModelBuilder(
        f"SyntheticMultirate{n_actors}{suffix}", default_dtype=DataType.F32
    )
    x = builder.inport("x", shape=width)
    full_count = max(1, (2 * n_actors) // 3)
    half_count = max(1, n_actors - full_count)
    half_width = width // 2
    full = _chain(builder, x, full_count, width, seed=seed, prefix="f")
    low = builder.add_actor(
        "Slice", "low", x, shape=width, offset=0, length=half_width
    )
    half = _chain(builder, low, half_count, half_width, seed=seed + 1, prefix="h")
    high = builder.add_actor(
        "Slice", "high", x, shape=width, offset=half_width, length=half_width
    )
    merged = builder.add_actor(
        "Concat", "merge", half, high, shape=half_width, shape2=half_width
    )
    builder.outport("y", builder.add_actor("Add", "mix", full, merged))
    return builder.build()


def synthetic_mixed(
    n_actors: int,
    width: int = SYNTHETIC_WIDTH,
    seed: int = 0,
) -> Model:
    """A wide product fan, an intensive ``Conv`` stage, and a tail chain.

    The fan (``~n_actors/3`` parallel ``Mul``s reduced by an ``Add``
    chain) keeps every product live until its reduction step, so the
    group's vector working set grows linearly with the fan width — the
    register-pressure regime that exercises ``memory_budget`` tiling.
    The ``Conv`` contributes the intensive/batch mix of ROADMAP item 4,
    and the cascade tail keeps a second plain batch group downstream.
    """
    if n_actors < 4:
        raise ValueError(f"n_actors must be >= 4, got {n_actors}")
    suffix = f"s{seed}" if seed else ""
    builder = ModelBuilder(
        f"SyntheticMixed{n_actors}{suffix}", default_dtype=DataType.F32
    )
    x = builder.inport("x", shape=width)
    fan = max(2, n_actors // 3)
    pad = len(str(fan - 1))
    products = [
        builder.add_actor(
            "Mul", f"fan{index:0{pad}d}", x,
            builder.const(
                f"fanc{index:0{pad}d}", value=_const_values(index, width, seed)
            ),
        )
        for index in range(fan)
    ]
    value = products[0]
    for index, product in enumerate(products[1:]):
        value = builder.add_actor("Add", f"acc{index:0{pad}d}", value, product)
    # Clamp into [-0.5, 0.5] so the convolution stays bounded.
    value = builder.add_actor(
        "Min", "clamp_hi", value, builder.const("chi", value=_clamp_values(3, width))
    )
    value = builder.add_actor(
        "Max", "clamp_lo", value, builder.const("clo", value=_clamp_values(4, width))
    )
    taps = builder.const("taps", value=_const_values(7, 8, seed))
    conv = builder.add_actor("Conv", "conv", value, taps, n=width, m=8)
    trimmed = builder.add_actor(
        "Slice", "trim", conv, shape=width + 7, offset=0, length=width
    )
    tail_count = max(1, n_actors - 2 * fan + 1 - 3)
    tail = _chain(builder, trimmed, tail_count, width, seed=seed, prefix="t")
    builder.outport("y", tail)
    return builder.build()


def synthetic_model(
    topology: str,
    n_actors: int,
    width: Optional[int] = None,
    seed: int = 0,
) -> Model:
    """Build the named synthetic topology (the ModelSource entry point)."""
    if topology not in TOPOLOGIES:
        raise ValueError(
            f"unknown synthetic topology {topology!r}; "
            f"expected one of {', '.join(TOPOLOGIES)}"
        )
    if width is None:
        width = SYNTHETIC_WIDTH
    if topology == "cascade":
        return synthetic_cascade(n_actors, width, seed=seed)
    if topology == "multirate":
        return synthetic_multirate(n_actors, width, seed=seed)
    return synthetic_mixed(n_actors, width, seed=seed)


def synthetic_inputs(model: Model) -> Dict[str, Any]:
    """Deterministic input battery for a synthetic model."""
    width = model.actor("x").output("out").shape[0]
    return {"x": [((lane * 13 + 5) % 41) / 41.0 - 0.5 for lane in range(width)]}


def matcher_cells(
    n_actors: int,
    arch_name: str,
    compiler,
    steps: int = 2,
    reps: int = 1,
    seed: int = 0,
) -> Dict[str, Any]:
    """Run the synthetic model under both matcher kinds on one arch.

    Returns ``{"hcg_indexed": RunResult, "hcg_naive": RunResult}`` for
    injection into the bench matrix as a ``Synthetic<N>`` model row.
    Each cell carries the ``alg2.match.*`` counters of its run, so the
    committed record demonstrates the speedup (tools/check_bench.py
    asserts it).  With ``reps > 1`` each kind runs that many times and
    the repetition with the smallest matcher wall is kept — the usual
    min-of-k discipline that strips scheduler noise from a wall-clock
    benchmark.  Output divergence between the two matchers is an
    error — this doubles as a cheap differential check at scale.
    """
    import numpy as np

    from repro.arch.presets import get_architecture
    from repro.bench.runner import run_generator
    from repro.compiler.toolchain import get_compiler
    from repro.errors import ReproError
    from repro.observability.tracer import Tracer

    model = synthetic_cascade(n_actors, seed=seed)
    inputs = synthetic_inputs(model)
    arch = get_architecture(arch_name)
    if isinstance(compiler, str):
        compiler = get_compiler(compiler)
    cells: Dict[str, Any] = {}
    for kind in ("indexed", "naive"):
        best = None
        for _ in range(max(reps, 1)):
            run = run_generator(
                model, "hcg", arch, compiler,
                inputs=inputs, steps=steps,
                matcher=kind, tracer=Tracer(),
            )
            wall = run.metrics["alg2.match.wall_s"]
            if best is None or wall < best.metrics["alg2.match.wall_s"]:
                best = run
        cells[f"hcg_{kind}"] = best
    indexed, naive = cells["hcg_indexed"], cells["hcg_naive"]
    for name, value in indexed.outputs.items():
        if not np.array_equal(value, naive.outputs[name]):
            raise ReproError(
                f"matcher divergence on {model.name} output {name!r}: "
                f"indexed and naive programs disagree"
            )
    return cells
