"""SIMD instruction-set substrate: specs, the ``.si`` format, registry."""

from repro.isa.parser import (
    dump_instruction_set,
    load_instruction_set,
    parse_instruction_set,
    parse_pattern,
)
from repro.isa.registry import (
    builtin_names,
    clear_custom,
    load_builtin,
    register_instruction_set,
)
from repro.isa.spec import InstructionSet, InstructionSpec, PatternNode

__all__ = [
    "InstructionSet",
    "InstructionSpec",
    "PatternNode",
    "builtin_names",
    "clear_custom",
    "dump_instruction_set",
    "load_builtin",
    "load_instruction_set",
    "parse_instruction_set",
    "parse_pattern",
    "register_instruction_set",
]
