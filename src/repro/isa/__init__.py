"""SIMD instruction-set substrate: specs, the ``.si`` format, registry.

§3.3 of the paper keeps instruction-set information in external
description files so a new architecture is one more file, not code.
``spec`` models one instruction as a dataflow pattern graph plus its C
intrinsic template, ``parser`` reads/writes the ``.si`` text format
(docs/isa_format.md), and ``registry`` serves the packaged NEON /
SSE4.1 / AVX2 sets and runtime-registered custom ones.
"""

from repro.isa.parser import (
    dump_instruction_set,
    load_instruction_set,
    parse_instruction_set,
    parse_pattern,
)
from repro.isa.registry import (
    builtin_names,
    clear_custom,
    load_builtin,
    register_instruction_set,
)
from repro.isa.spec import InstructionSet, InstructionSpec, PatternNode

__all__ = [
    "InstructionSet",
    "InstructionSpec",
    "PatternNode",
    "builtin_names",
    "clear_custom",
    "dump_instruction_set",
    "load_builtin",
    "load_instruction_set",
    "parse_instruction_set",
    "parse_pattern",
    "register_instruction_set",
]
