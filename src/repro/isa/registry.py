"""Registry of built-in and user-supplied instruction sets.

§3.3: instruction-set information is kept in external files, so the
synthesizer supports a new architecture by loading one more ``.si``
file.  ``load_builtin("neon")`` loads and caches the packaged sets;
:func:`register_instruction_set` adds custom ones at runtime.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Tuple

from repro.errors import IsaError
from repro.isa.parser import load_instruction_set
from repro.isa.spec import InstructionSet

_DATA_DIR = Path(__file__).parent / "data"
_CACHE: Dict[str, InstructionSet] = {}
_CUSTOM: Dict[str, InstructionSet] = {}


def builtin_names() -> Tuple[str, ...]:
    """Names of the packaged instruction sets (``avx2``, ``avx512``,
    ``neon``, ``rvv``, ``sse4``)."""
    return tuple(sorted(p.stem for p in _DATA_DIR.glob("*.si")))


def load_builtin(name: str) -> InstructionSet:
    """Load (and cache) a packaged instruction set by name."""
    if name in _CUSTOM:
        return _CUSTOM[name]
    if name not in _CACHE:
        path = _DATA_DIR / f"{name}.si"
        if not path.exists():
            raise IsaError(
                f"no built-in instruction set {name!r}; available: "
                f"{list(builtin_names()) + sorted(_CUSTOM)}"
            )
        _CACHE[name] = load_instruction_set(path)
    return _CACHE[name]


def register_instruction_set(iset: InstructionSet, name: str = "") -> None:
    """Register a custom instruction set under ``name`` (default: its arch)."""
    _CUSTOM[name or iset.arch] = iset


def clear_custom() -> None:
    """Remove runtime-registered sets (used by tests)."""
    _CUSTOM.clear()
