"""Parser for ``.si`` instruction-set description files.

The format extends the paper's example
(``Graph: Add, i32, 4, I1, I2, O1 ; Code: O1 = vaddq_s32(I1, I2);``)
just enough to be a complete file format:

.. code-block:: text

    # ARM NEON, 128-bit registers
    arch: neon
    vector_bits: 128

    Ins: vaddq_s32 ; Graph: Add,i32,4,I1,I2,O1 ; Code: O1 = vaddq_s32(I1, I2) ; Cost: 1
    Ins: vmlaq_s32 ; Graph: Mul,i32,4,I1,I2,T1 | Add,i32,4,T1,I3,O1 ; Code: O1 = vmlaq_s32(I3, I1, I2) ; Cost: 2

* blank lines and ``#`` comments are ignored;
* header keys (``arch``, ``vector_bits``, and — format version 2 —
  ``format``, ``features``) precede the first record;
* each record is one line of ``Key: value`` fields separated by ``;``
  (the ``Code`` template therefore contains no semicolon — the C
  emitter appends it);
* a multi-node ``Graph`` separates nodes with ``|``, listed in
  dependency order, last node producing ``O1``.

Format version 2 (``format: 2``) adds a ``features:`` header declaring
capability flags (``scalable``, ``mask`` — see
:data:`repro.isa.spec.ISA_FEATURES` and docs/isa_format.md).  A file
without a ``format:`` header is version 1 and may not declare features.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, List, Tuple, Union

from repro.errors import IsaParseError
from repro.isa.spec import ISA_FEATURES, InstructionSet, InstructionSpec, PatternNode
from repro.dtypes import DataType

PathLike = Union[str, Path]

#: ``.si`` format versions this parser accepts
KNOWN_FORMATS = (1, 2)


def parse_pattern(text: str) -> Tuple[PatternNode, ...]:
    """Parse a ``Graph`` field into pattern nodes."""
    nodes: List[PatternNode] = []
    for chunk in text.split("|"):
        parts = [p.strip() for p in chunk.split(",")]
        if len(parts) < 4:
            raise IsaParseError(
                f"pattern node {chunk.strip()!r} needs at least op,dtype,lanes,out"
            )
        op = parts[0]
        try:
            dtype = DataType.from_name(parts[1])
        except ValueError as exc:
            raise IsaParseError(str(exc)) from None
        try:
            lanes = int(parts[2])
        except ValueError:
            raise IsaParseError(f"pattern node {chunk.strip()!r}: bad lane count {parts[2]!r}") from None
        operands: List[str] = []
        value_dtypes: List = []
        for token in parts[3:-1]:
            if ":" in token:
                bare, anno = token.split(":", 1)
                operands.append(bare.strip())
                try:
                    value_dtypes.append(DataType.from_name(anno))
                except ValueError as exc:
                    raise IsaParseError(str(exc)) from None
            else:
                operands.append(token)
                if not token.startswith("#"):
                    value_dtypes.append(None)
        output = parts[-1]
        nodes.append(
            PatternNode(op, dtype, lanes, tuple(operands), output, tuple(value_dtypes))
        )
    return tuple(nodes)


def _parse_record(line: str, arch: str, line_no: int) -> InstructionSpec:
    fields: Dict[str, str] = {}
    for raw in line.split(";"):
        raw = raw.strip()
        if not raw:
            continue
        if ":" not in raw:
            raise IsaParseError(f"line {line_no}: field {raw!r} is not 'Key: value'")
        key, value = raw.split(":", 1)
        key = key.strip().lower()
        if key in fields:
            raise IsaParseError(f"line {line_no}: duplicate field {key!r}")
        fields[key] = value.strip()

    if "ins" not in fields and "code" in fields:
        # The paper's §3.3 example omits an explicit name
        # (``Graph: ... ; Code: O1 = vaddq_s32(I1, I2);``): derive it
        # from the code template's function identifier.
        match = re.search(r"=\s*([A-Za-z_][A-Za-z0-9_]*)\s*\(", fields["code"])
        if match:
            fields["ins"] = match.group(1)

    missing = [k for k in ("ins", "graph", "code") if k not in fields]
    if missing:
        raise IsaParseError(f"line {line_no}: record missing field(s) {missing}")

    cost = 1.0
    if "cost" in fields:
        try:
            cost = float(fields["cost"])
        except ValueError:
            raise IsaParseError(f"line {line_no}: bad cost {fields['cost']!r}") from None

    try:
        nodes = parse_pattern(fields["graph"])
        return InstructionSpec(
            name=fields["ins"],
            arch=arch,
            nodes=nodes,
            code_template=fields["code"],
            cost=cost,
        )
    except IsaParseError:
        raise
    except Exception as exc:  # fault-isolation: re-raised typed, with line context
        raise IsaParseError(f"line {line_no}: {exc}") from exc


def parse_instruction_set(text: str, source: str = "<string>") -> InstructionSet:
    """Parse a complete ``.si`` document."""
    arch = ""
    vector_bits = 0
    format_version = 1
    features: Tuple[str, ...] = ()
    specs: List[InstructionSpec] = []

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        lowered = line.lower()
        if lowered.startswith("arch:"):
            arch = line.split(":", 1)[1].strip()
            continue
        if lowered.startswith("vector_bits:"):
            value = line.split(":", 1)[1].strip()
            try:
                vector_bits = int(value)
            except ValueError:
                raise IsaParseError(f"{source}:{line_no}: bad vector_bits {value!r}") from None
            continue
        if lowered.startswith("format:"):
            value = line.split(":", 1)[1].strip()
            try:
                format_version = int(value)
            except ValueError:
                raise IsaParseError(f"{source}:{line_no}: bad format {value!r}") from None
            if format_version not in KNOWN_FORMATS:
                raise IsaParseError(
                    f"{source}:{line_no}: unsupported format {format_version} "
                    f"(known: {list(KNOWN_FORMATS)})"
                )
            continue
        if lowered.startswith("features:"):
            tokens = [t.strip() for t in line.split(":", 1)[1].split(",") if t.strip()]
            unknown = [t for t in tokens if t not in ISA_FEATURES]
            if unknown:
                raise IsaParseError(
                    f"{source}:{line_no}: unknown feature(s) {unknown} "
                    f"(recognised: {list(ISA_FEATURES)})"
                )
            features = tuple(tokens)
            continue
        if not arch or not vector_bits:
            raise IsaParseError(
                f"{source}:{line_no}: 'arch' and 'vector_bits' headers must precede records"
            )
        try:
            specs.append(_parse_record(line, arch, line_no))
        except IsaParseError as exc:
            raise IsaParseError(f"{source}: {exc}") from None

    if not arch or not vector_bits:
        raise IsaParseError(f"{source}: missing 'arch'/'vector_bits' headers")
    if features and format_version < 2:
        raise IsaParseError(
            f"{source}: the 'features' header requires 'format: 2' "
            f"(see docs/isa_format.md for the migration note)"
        )
    if not specs:
        raise IsaParseError(f"{source}: instruction set contains no instructions")
    return InstructionSet(
        arch=arch, vector_bits=vector_bits, instructions=tuple(specs),
        features=features,
    )


def load_instruction_set(path: PathLike) -> InstructionSet:
    """Parse the ``.si`` file at ``path``."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise IsaParseError(f"cannot read {path}: {exc}") from None
    return parse_instruction_set(text, source=str(path))


def dump_instruction_set(iset: InstructionSet) -> str:
    """Serialise an instruction set back to ``.si`` text (round-trips)."""
    lines = [f"arch: {iset.arch}", f"vector_bits: {iset.vector_bits}"]
    if iset.features:
        lines.append("format: 2")
        lines.append(f"features: {', '.join(iset.features)}")
    lines.append("")

    def node_tokens(node: PatternNode) -> List[str]:
        tokens: List[str] = []
        value_index = 0
        for token in node.inputs:
            if token.startswith("#"):
                tokens.append(token)
                continue
            annotation = None
            if value_index < len(node.input_dtypes):
                annotation = node.input_dtypes[value_index]
            tokens.append(f"{token}:{annotation}" if annotation else token)
            value_index += 1
        return tokens

    for spec in iset.instructions:
        graph = " | ".join(
            f"{n.op},{n.dtype},{n.lanes},{','.join(node_tokens(n) + [n.output])}"
            for n in spec.nodes
        )
        lines.append(
            f"Ins: {spec.name} ; Graph: {graph} ; Code: {spec.code_template} ; Cost: {spec.cost:g}"
        )
    return "\n".join(lines) + "\n"
