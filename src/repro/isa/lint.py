"""Static linter for ``.si`` instruction-set description files.

The parser (:mod:`repro.isa.parser`) stops at the first malformed
record; the linter instead scans a whole file and accumulates every
problem it can find, so a hand-edited instruction set gets one complete
report.  Each finding carries a **stable code** — codes are append-only
and never renumbered, so CI greps and suppression lists stay valid:

========  ==================================================================
code      meaning
========  ==================================================================
ISA100    record or header cannot be parsed (syntax, bad pattern structure)
ISA101    duplicate ``Ins`` name within the file
ISA102    duplicate ``Graph`` pattern (two instructions match identically)
ISA103    unknown op in a ``Graph`` node
ISA104    ``Code`` template operands disagree with the ``Graph`` pattern
ISA105    unsupported dtype for an op, or pattern/``vector_bits`` mismatch
ISA106    non-positive ``Cost``
ISA107    bad format-v2 header (``format``/``features`` value or ordering)
ISA108    ``VL`` token disagrees with the ``scalable`` feature
========  ==================================================================

ISA108 enforces the scalable-vector contract (docs/isa_format.md): in a
``features: scalable`` file every ``Code`` template must mention the
``VL`` token (the emitter substitutes the active lane count), and a
non-scalable file must never use it.

Entry points: :func:`lint_text`, :func:`lint_file`, :func:`lint_paths`;
``repro isa lint`` and ``tools/check_isa.py`` are thin CLI wrappers.
"""

from __future__ import annotations

import dataclasses
import re
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro import ops
from repro.errors import IsaError, IsaParseError
from repro.isa.parser import KNOWN_FORMATS, parse_pattern
from repro.isa.spec import ISA_FEATURES, InstructionSpec, PatternNode

PathLike = Union[str, Path]

#: operand-ish tokens inside a C code template
_TEMPLATE_TOKEN_RE = re.compile(r"\b(I\d+|T\d+|O1)\b")

#: the scalable-vector-length token in a C code template (ISA108)
_VL_RE = re.compile(r"\bVL\b")


@dataclasses.dataclass(frozen=True)
class LintFinding:
    """One linter diagnostic, tied to a source line."""

    code: str
    source: str
    line: int
    instruction: str
    message: str

    def format(self) -> str:
        where = f"{self.source}:{self.line}"
        subject = f" [{self.instruction}]" if self.instruction else ""
        return f"{where}: {self.code}{subject}: {self.message}"


def _finding(code: str, source: str, line: int, instruction: str,
             message: str) -> LintFinding:
    return LintFinding(code=code, source=source, line=line,
                       instruction=instruction, message=message)


# ---------------------------------------------------------------------------
# Record-level checks
# ---------------------------------------------------------------------------

def _split_fields(line: str, source: str,
                  line_no: int) -> Optional[Dict[str, str]]:
    """Parse ``Key: value ; ...`` fields, or None with no usable fields."""
    fields: Dict[str, str] = {}
    for raw in line.split(";"):
        raw = raw.strip()
        if not raw:
            continue
        if ":" not in raw:
            return None
        key, value = raw.split(":", 1)
        key = key.strip().lower()
        if key in fields:
            return None
        fields[key] = value.strip()
    return fields or None


def _derive_name(fields: Dict[str, str]) -> str:
    if "ins" in fields:
        return fields["ins"]
    match = re.search(r"=\s*([A-Za-z_][A-Za-z0-9_]*)\s*\(", fields.get("code", ""))
    return match.group(1) if match else ""


def _pattern_key(nodes: Tuple[PatternNode, ...]) -> Tuple:
    """Canonical structural key: two instructions with equal keys match
    exactly the same actor subgraphs, making selection ambiguous."""
    return tuple(
        (n.op, str(n.dtype), n.lanes, n.inputs, n.output,
         tuple(str(d) if d is not None else None for d in n.input_dtypes))
        for n in nodes
    )


def _check_nodes(nodes: Tuple[PatternNode, ...], name: str, source: str,
                 line_no: int, vector_bits: int) -> List[LintFinding]:
    findings: List[LintFinding] = []
    for node in nodes:
        try:
            info = ops.op_info(node.op)
        except KeyError:
            findings.append(_finding(
                "ISA103", source, line_no, name,
                f"unknown op {node.op!r} (known: {sorted(ops.OPS)})"))
            continue
        if not info.supports(node.dtype):
            findings.append(_finding(
                "ISA105", source, line_no, name,
                f"op {node.op} does not support dtype {node.dtype}"))
        if len(node.value_inputs) != info.arity:
            findings.append(_finding(
                "ISA104", source, line_no, name,
                f"op {node.op} expects {info.arity} value operand(s), "
                f"pattern node has {len(node.value_inputs)}"))
        if info.needs_imm and node.imm_token is None:
            findings.append(_finding(
                "ISA104", source, line_no, name,
                f"op {node.op} requires an immediate operand (#imm or #n)"))
        if not info.needs_imm and node.imm_token is not None:
            findings.append(_finding(
                "ISA104", source, line_no, name,
                f"op {node.op} takes no immediate, pattern has "
                f"{node.imm_token!r}"))
    # The O1 node fixes the instruction's register shape; it must fill
    # the declared vector width exactly.
    root = nodes[-1]
    width = root.dtype.bit_width * root.lanes
    if vector_bits and width != vector_bits:
        findings.append(_finding(
            "ISA105", source, line_no, name,
            f"pattern is {width}-bit ({root.lanes} x {root.dtype}) in a "
            f"{vector_bits}-bit instruction set"))
    return findings


def _check_template(spec_name: str, nodes: Tuple[PatternNode, ...],
                    template: str, source: str,
                    line_no: int) -> List[LintFinding]:
    """ISA104: the ``Code`` template must consume exactly the pattern's
    external operands and produce ``O1``."""
    findings: List[LintFinding] = []
    pattern_inputs = []
    for node in nodes:
        for token in node.value_inputs:
            if token.startswith("I") and token not in pattern_inputs:
                pattern_inputs.append(token)
    template_tokens = set(_TEMPLATE_TOKEN_RE.findall(template))

    if "O1" not in template_tokens:
        findings.append(_finding(
            "ISA104", source, line_no, spec_name,
            "Code template never assigns O1"))
    for token in sorted(template_tokens - {"O1"} - set(pattern_inputs)):
        if token.startswith("T"):
            findings.append(_finding(
                "ISA104", source, line_no, spec_name,
                f"Code template uses internal temporary {token}; only "
                f"I*/O1/#imm may appear in emitted code"))
        else:
            findings.append(_finding(
                "ISA104", source, line_no, spec_name,
                f"Code template operand {token} is not an input of the "
                f"Graph pattern"))
    for token in pattern_inputs:
        if token not in template_tokens:
            findings.append(_finding(
                "ISA104", source, line_no, spec_name,
                f"Graph input {token} never appears in the Code template"))

    has_wildcard = any(n.imm_token == "#imm" for n in nodes)
    if has_wildcard and "#imm" not in template:
        findings.append(_finding(
            "ISA104", source, line_no, spec_name,
            "Graph has a #imm wildcard but the Code template does not"))
    if not has_wildcard and "#imm" in template:
        findings.append(_finding(
            "ISA104", source, line_no, spec_name,
            "Code template uses #imm but the Graph has no #imm wildcard"))
    return findings


def _check_vl_token(spec_name: str, template: str, scalable: bool,
                    source: str, line_no: int) -> List[LintFinding]:
    """ISA108: the ``VL`` token must appear in every template of a
    scalable instruction set and in none of a fixed-width one."""
    has_vl = bool(_VL_RE.search(template))
    if scalable and not has_vl:
        return [_finding(
            "ISA108", source, line_no, spec_name,
            "scalable instruction set, but the Code template has no VL "
            "token (the emitter cannot trim the active vector length)")]
    if not scalable and has_vl:
        return [_finding(
            "ISA108", source, line_no, spec_name,
            "Code template uses the VL token but the instruction set "
            "does not declare 'features: scalable'")]
    return []


def _lint_record(line: str, source: str, line_no: int, arch: str,
                 vector_bits: int, scalable: bool,
                 seen_names: Dict[str, int],
                 seen_patterns: Dict[Tuple, Tuple[str, int]],
                 ) -> List[LintFinding]:
    findings: List[LintFinding] = []
    fields = _split_fields(line, source, line_no)
    if fields is None:
        return [_finding("ISA100", source, line_no, "",
                         "record is not ';'-separated 'Key: value' fields "
                         "(or repeats a field)")]
    name = _derive_name(fields)
    missing = [k for k in ("graph", "code") if k not in fields]
    if not name:
        missing.insert(0, "ins")
    if missing:
        return [_finding("ISA100", source, line_no, name,
                         f"record missing field(s) {missing}")]

    if name in seen_names:
        findings.append(_finding(
            "ISA101", source, line_no, name,
            f"duplicate instruction name (first defined at line "
            f"{seen_names[name]})"))
    else:
        seen_names[name] = line_no

    if "cost" in fields:
        try:
            cost = float(fields["cost"])
        except ValueError:
            findings.append(_finding(
                "ISA100", source, line_no, name,
                f"bad cost {fields['cost']!r}"))
            cost = 1.0
        else:
            if not cost > 0:
                findings.append(_finding(
                    "ISA106", source, line_no, name,
                    f"cost must be positive, got {cost:g}"))

    try:
        nodes = parse_pattern(fields["graph"])
    except IsaParseError as exc:
        findings.append(_finding("ISA100", source, line_no, name, str(exc)))
        return findings

    key = _pattern_key(nodes)
    if key in seen_patterns:
        other_name, other_line = seen_patterns[key]
        findings.append(_finding(
            "ISA102", source, line_no, name,
            f"Graph pattern duplicates {other_name!r} (line {other_line}); "
            f"matching cannot distinguish them"))
    else:
        seen_patterns[key] = (name, line_no)

    findings.extend(_check_nodes(nodes, name, source, line_no, vector_bits))
    findings.extend(_check_template(name, nodes, fields["code"], source, line_no))
    findings.extend(_check_vl_token(name, fields["code"], scalable, source, line_no))

    # Structural invariants the checks above do not cover (token syntax,
    # use-before-def, duplicate/missing O1, mixed lanes): delegate to the
    # InstructionSpec validator and report whatever it rejects.
    if not any(f.code in ("ISA103", "ISA104") for f in findings):
        try:
            InstructionSpec(name=name, arch=arch, nodes=nodes,
                            code_template=fields["code"])
        except IsaError as exc:
            findings.append(_finding("ISA100", source, line_no, name, str(exc)))
    return findings


# ---------------------------------------------------------------------------
# File-level entry points
# ---------------------------------------------------------------------------

def lint_text(text: str, source: str = "<string>") -> List[LintFinding]:
    """Lint a complete ``.si`` document, accumulating every finding."""
    findings: List[LintFinding] = []
    arch = ""
    vector_bits = 0
    format_version = 1
    features: Tuple[str, ...] = ()
    features_line = 0
    seen_names: Dict[str, int] = {}
    seen_patterns: Dict[Tuple, Tuple[str, int]] = {}
    saw_record = False

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        lowered = line.lower()
        if lowered.startswith("arch:"):
            arch = line.split(":", 1)[1].strip()
            continue
        if lowered.startswith("vector_bits:"):
            value = line.split(":", 1)[1].strip()
            try:
                vector_bits = int(value)
            except ValueError:
                findings.append(_finding(
                    "ISA100", source, line_no, "",
                    f"bad vector_bits {value!r}"))
            continue
        if lowered.startswith("format:"):
            value = line.split(":", 1)[1].strip()
            try:
                format_version = int(value)
            except ValueError:
                findings.append(_finding(
                    "ISA107", source, line_no, "",
                    f"bad format {value!r}"))
                continue
            if format_version not in KNOWN_FORMATS:
                findings.append(_finding(
                    "ISA107", source, line_no, "",
                    f"unsupported format {format_version} "
                    f"(known: {list(KNOWN_FORMATS)})"))
            continue
        if lowered.startswith("features:"):
            tokens = [t.strip() for t in line.split(":", 1)[1].split(",")
                      if t.strip()]
            for token in tokens:
                if token not in ISA_FEATURES:
                    findings.append(_finding(
                        "ISA107", source, line_no, "",
                        f"unknown feature {token!r} "
                        f"(recognised: {list(ISA_FEATURES)})"))
            if len(set(tokens)) != len(tokens):
                findings.append(_finding(
                    "ISA107", source, line_no, "",
                    "duplicate feature in 'features' header"))
            features = tuple(t for t in tokens if t in ISA_FEATURES)
            features_line = line_no
            continue
        if not arch or not vector_bits:
            findings.append(_finding(
                "ISA100", source, line_no, "",
                "'arch' and 'vector_bits' headers must precede records"))
            # Keep linting the records anyway; width checks are skipped.
        saw_record = True
        findings.extend(_lint_record(line, source, line_no, arch,
                                     vector_bits, "scalable" in features,
                                     seen_names, seen_patterns))

    if features and format_version < 2:
        findings.append(_finding(
            "ISA107", source, features_line, "",
            "'features' header requires 'format: 2' "
            "(see docs/isa_format.md)"))
    if not saw_record:
        findings.append(_finding(
            "ISA100", source, 0, "", "instruction set contains no records"))
    return findings


def lint_file(path: PathLike) -> List[LintFinding]:
    """Lint the ``.si`` file at ``path``."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        return [_finding("ISA100", str(path), 0, "", f"cannot read: {exc}")]
    return lint_text(text, source=str(path))


def default_isa_paths() -> List[Path]:
    """The packaged ``.si`` files (what CI lints)."""
    data_dir = Path(__file__).parent / "data"
    return sorted(data_dir.glob("*.si"))


def lint_paths(paths: Sequence[PathLike] = ()) -> List[LintFinding]:
    """Lint the given files, defaulting to every packaged ``.si`` file."""
    targets = [Path(p) for p in paths] if paths else default_isa_paths()
    findings: List[LintFinding] = []
    for target in targets:
        findings.extend(lint_file(target))
    return findings
