"""SIMD instruction specifications and their computing graphs.

§3.3 of the paper: *"the calculation graph and the code format of each
SIMD instruction is defined as the following form:*
``Graph: Add, i32, 4, I1, I2, O1 ; Code: O1 = vaddq_s32(I1, I2);``\\ *"*.

An :class:`InstructionSpec` carries exactly that information: a small
dataflow *pattern graph* over the shared elementwise ops, plus the C
code template the emitter prints.  Compound instructions (``vmlaq``,
``vhaddq``, ``vabaq`` ...) have multi-node graphs; Algorithm 2 prefers
them because one instruction then covers several model actors.

Operand tokens:

* ``I1``, ``I2``, ... — external vector inputs;
* ``T1``, ``T2``, ... — internal temporaries produced by earlier nodes;
* ``O1``               — the single external output;
* ``#3``               — a fixed immediate (must equal the actor's);
* ``#imm``             — a wildcard immediate (bound during matching).
"""

from __future__ import annotations

import dataclasses
import functools
import re
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import ops
from repro.errors import IsaError
from repro.dtypes import DataType

_INPUT_RE = re.compile(r"^I(\d+)$")
_TEMP_RE = re.compile(r"^T(\d+)$")
_IMM_RE = re.compile(r"^#(imm|\d+)$")

#: recognised ``features:`` header values (format version 2):
#:
#: * ``scalable`` — vector length is a runtime parameter; every ``Code``
#:   template references the ``VL`` token, which the emitter replaces
#:   with the active lane count (RVV-style ``vl``);
#: * ``mask``     — the target has per-lane mask registers, so partial
#:   vectors are expressible as masked loads/stores (AVX-512 style).
#:
#: Either feature lets Algorithm 2 emit a *predicated tail* for the
#: ``DataLength % BatchSize`` remainder instead of the paper's scalar
#: offset prologue (see docs/algorithms.md).
ISA_FEATURES: Tuple[str, ...] = ("scalable", "mask")


@dataclasses.dataclass(frozen=True)
class PatternNode:
    """One op node in an instruction's computing graph."""

    op: str
    dtype: DataType
    lanes: int
    #: operand tokens (``I*``/``T*``/``#*``), in op order
    inputs: Tuple[str, ...]
    #: result token (``T*`` or ``O1``)
    output: str
    #: optional per-operand dtype annotations (``I1:i32`` syntax); ``None``
    #: entries default to the node dtype.  Needed by Cast patterns, whose
    #: operand type differs from the result type.
    input_dtypes: Tuple[Optional[DataType], ...] = ()

    @property
    def value_inputs(self) -> Tuple[str, ...]:
        """Operands that are values (not immediates)."""
        return tuple(t for t in self.inputs if not _IMM_RE.match(t))

    def operand_dtype(self, position: int) -> DataType:
        """Expected dtype of value operand ``position`` (op order)."""
        if position < len(self.input_dtypes) and self.input_dtypes[position] is not None:
            return self.input_dtypes[position]
        return self.dtype

    @property
    def imm_token(self) -> Optional[str]:
        """The immediate operand token, if the op takes one."""
        for token in self.inputs:
            if _IMM_RE.match(token):
                return token
        return None


@dataclasses.dataclass(frozen=True)
class InstructionSpec:
    """A SIMD instruction: name, pattern graph, code template, cost."""

    name: str
    arch: str
    nodes: Tuple[PatternNode, ...]
    code_template: str
    #: issue cost in cycles on the home architecture
    cost: float = 1.0

    def __post_init__(self) -> None:
        self._validate()

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        if not self.nodes:
            raise IsaError(f"instruction {self.name!r}: empty pattern graph")
        produced: set = set()
        outputs = [n.output for n in self.nodes]
        if outputs.count("O1") != 1 or outputs[-1] != "O1":
            raise IsaError(
                f"instruction {self.name!r}: pattern must end with exactly one O1 node"
            )
        for node in self.nodes:
            info = ops.op_info(node.op)  # raises on unknown op
            if len(node.value_inputs) != info.arity:
                raise IsaError(
                    f"instruction {self.name!r}: op {node.op} expects {info.arity} "
                    f"value operand(s), got {node.value_inputs}"
                )
            if info.needs_imm and node.imm_token is None:
                raise IsaError(
                    f"instruction {self.name!r}: op {node.op} requires an immediate"
                )
            if not info.needs_imm and node.imm_token is not None:
                raise IsaError(
                    f"instruction {self.name!r}: op {node.op} takes no immediate"
                )
            for token in node.inputs:
                if _TEMP_RE.match(token) and token not in produced:
                    raise IsaError(
                        f"instruction {self.name!r}: {token} used before it is produced"
                    )
                if not (_INPUT_RE.match(token) or _TEMP_RE.match(token) or _IMM_RE.match(token)):
                    raise IsaError(
                        f"instruction {self.name!r}: invalid operand token {token!r}"
                    )
            if node.output != "O1":
                if not _TEMP_RE.match(node.output):
                    raise IsaError(
                        f"instruction {self.name!r}: invalid output token {node.output!r}"
                    )
                if node.output in produced:
                    raise IsaError(
                        f"instruction {self.name!r}: {node.output} produced twice"
                    )
                produced.add(node.output)
            if node.lanes != self.lanes or node.dtype is not self.dtype:
                # Cast nodes may change type/lanes; others must be uniform.
                if node.op != "Cast":
                    raise IsaError(
                        f"instruction {self.name!r}: mixed dtype/lanes in pattern "
                        f"(only Cast nodes may differ)"
                    )

    @property
    def root(self) -> PatternNode:
        """The node producing ``O1``."""
        return self.nodes[-1]

    @property
    def dtype(self) -> DataType:
        return self.nodes[-1].dtype

    @property
    def lanes(self) -> int:
        return self.nodes[-1].lanes

    @property
    def vector_bits(self) -> int:
        return self.dtype.bit_width * self.lanes

    @property
    def node_count(self) -> int:
        return len(self.nodes)

    @property
    def input_tokens(self) -> Tuple[str, ...]:
        """Distinct ``I*`` tokens in first-use order."""
        seen: List[str] = []
        for node in self.nodes:
            for token in node.value_inputs:
                if _INPUT_RE.match(token) and token not in seen:
                    seen.append(token)
        return tuple(seen)

    @property
    def n_inputs(self) -> int:
        return len(self.input_tokens)

    def producer_of(self, token: str) -> Optional[PatternNode]:
        """The node producing a ``T*``/``O1`` token, or None for inputs."""
        for node in self.nodes:
            if node.output == token:
                return node
        return None

    @functools.cached_property
    def depth(self) -> int:
        """Longest producer chain in the pattern graph.

        Cached: Algorithm 2 reads pattern depths on every mapping round
        and the spec is frozen, so the chain walk runs once per spec
        (``cached_property`` writes to ``__dict__`` directly, bypassing
        the frozen-dataclass ``__setattr__``; equality and hashing only
        look at declared fields, so the cache never affects them)."""
        memo: Dict[str, int] = {}

        def depth_of(node: PatternNode) -> int:
            if node.output in memo:
                return memo[node.output]
            best = 0
            for token in node.value_inputs:
                producer = self.producer_of(token)
                if producer is not None:
                    best = max(best, depth_of(producer))
            memo[node.output] = best + 1
            return best + 1

        return depth_of(self.root)

    @property
    def has_wildcard_imm(self) -> bool:
        return any(n.imm_token == "#imm" for n in self.nodes)

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------
    def evaluate(
        self,
        inputs: Dict[str, np.ndarray],
        imm: Optional[int] = None,
    ) -> np.ndarray:
        """Run the pattern graph on lane arrays.

        ``inputs`` maps ``I*`` tokens to arrays of ``lanes`` elements.
        Returns the ``O1`` array.  This is the instruction's executable
        semantics; the VM calls it for every :class:`~repro.ir.stmt.SimdOp`.
        """
        env: Dict[str, np.ndarray] = dict(inputs)
        missing = [t for t in self.input_tokens if t not in env]
        if missing:
            raise IsaError(f"instruction {self.name!r}: missing inputs {missing}")
        result: Optional[np.ndarray] = None
        for node in self.nodes:
            args = [env[token] for token in node.value_inputs]
            node_imm: Optional[int] = None
            if node.imm_token is not None:
                if node.imm_token == "#imm":
                    if imm is None:
                        raise IsaError(
                            f"instruction {self.name!r} requires an immediate value"
                        )
                    node_imm = int(imm)
                else:
                    node_imm = int(node.imm_token[1:])
            value = ops.apply_op(node.op, node.dtype, args, node_imm)
            env[node.output] = value
            if node.output == "O1":
                result = value
        assert result is not None, "validated patterns always produce O1"
        return result

    # ------------------------------------------------------------------
    # Code rendering
    # ------------------------------------------------------------------
    def render_code(
        self,
        output: str,
        inputs: Dict[str, str],
        imm: Optional[int] = None,
    ) -> str:
        """Instantiate the C template with concrete variable names."""
        text = self.code_template
        # Longest tokens first, so I10 is not clobbered by I1.
        for token in sorted(inputs, key=len, reverse=True):
            text = text.replace(token, inputs[token])
        text = text.replace("O1", output)
        if "#imm" in text:
            if imm is None:
                raise IsaError(f"instruction {self.name!r}: template needs an immediate")
            text = text.replace("#imm", str(int(imm)))
        return text

    def __str__(self) -> str:
        graph = " | ".join(
            f"{n.op},{n.dtype},{n.lanes},{','.join(n.inputs)},{n.output}"
            for n in self.nodes
        )
        return f"{self.name}: Graph: {graph} ; Code: {self.code_template} ; Cost: {self.cost}"


@dataclasses.dataclass(frozen=True)
class InstructionSet:
    """A named collection of instructions for one architecture."""

    arch: str
    vector_bits: int
    instructions: Tuple[InstructionSpec, ...]
    #: format-2 capability flags (subset of :data:`ISA_FEATURES`); for a
    #: ``scalable`` ISA ``vector_bits`` is the modelled VLEN — lane
    #: counts still derive from it, but the emitted code carries the
    #: active length as a runtime ``VL`` parameter
    features: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        names = [i.name for i in self.instructions]
        dupes = {n for n in names if names.count(n) > 1}
        if dupes:
            raise IsaError(f"instruction set {self.arch!r}: duplicate names {sorted(dupes)}")
        unknown = [f for f in self.features if f not in ISA_FEATURES]
        if unknown:
            raise IsaError(
                f"instruction set {self.arch!r}: unknown feature(s) {unknown}; "
                f"recognised: {list(ISA_FEATURES)}"
            )
        if len(set(self.features)) != len(self.features):
            raise IsaError(f"instruction set {self.arch!r}: duplicate features")
        for spec in self.instructions:
            if spec.vector_bits != self.vector_bits:
                raise IsaError(
                    f"instruction {spec.name!r}: {spec.vector_bits}-bit pattern in a "
                    f"{self.vector_bits}-bit instruction set"
                )

    @property
    def is_scalable(self) -> bool:
        """Vector length is a runtime parameter (RVV-style ``vl``)."""
        return "scalable" in self.features

    @property
    def has_masks(self) -> bool:
        """Per-lane mask registers exist (AVX-512 style)."""
        return "mask" in self.features

    @property
    def supports_masked_tail(self) -> bool:
        """Can Algorithm 2 predicate the remainder instead of emitting
        the scalar offset prologue?  True for scalable *or* masked ISAs."""
        return self.is_scalable or self.has_masks

    def by_name(self, name: str) -> InstructionSpec:
        for spec in self.instructions:
            if spec.name == name:
                return spec
        raise IsaError(f"instruction set {self.arch!r} has no instruction {name!r}")

    def for_dtype(self, dtype: DataType) -> Tuple[InstructionSpec, ...]:
        return tuple(i for i in self.instructions if i.dtype is dtype)

    def lanes_for(self, dtype: DataType) -> int:
        """How many ``dtype`` elements one vector register holds."""
        return self.vector_bits // dtype.bit_width

    @functools.cached_property
    def max_node_count(self) -> int:
        return max(i.node_count for i in self.instructions)

    @functools.cached_property
    def max_depth(self) -> int:
        return max(i.depth for i in self.instructions)

    def restricted(self, max_nodes: int) -> "InstructionSet":
        """A copy keeping only patterns of at most ``max_nodes`` nodes.

        Used by the ISA ablation benchmark (basic-only vs compound).
        """
        kept = tuple(i for i in self.instructions if i.node_count <= max_nodes)
        return InstructionSet(self.arch, self.vector_bits, kept, self.features)
