"""Elementwise operation semantics shared by the whole system.

The model reference evaluator, the instruction-set pattern graphs and the
virtual machine all compute elementwise operations through this single
table, so "the generated code computes the same thing as the model" holds
by construction rather than by triplicated arithmetic.

Semantics follow C on a typical embedded target:

* integer add/sub/mul/shift-left wrap modulo 2^n;
* integer division truncates toward zero, division by zero yields 0
  (a defined stand-in for C's UB so programs stay comparable);
* float division by zero yields ±inf (IEEE-754);
* ``Shr`` is arithmetic for signed, logical for unsigned operands;
* ``Abd`` (absolute difference) is ``max - min`` for integers (the NEON
  ``vabd`` behaviour) and ``|a - b|`` for floats.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.dtypes import DataType


@dataclasses.dataclass(frozen=True)
class OpInfo:
    """Static description of one elementwise operation.

    ``arity`` counts variable (tensor) operands only; operations such as
    shifts additionally take a compile-time immediate (``needs_imm``).
    """

    name: str
    arity: int
    needs_imm: bool = False
    int_only: bool = False
    float_only: bool = False
    commutative: bool = False
    #: relative scalar-ALU weight used by cost models (1.0 = one add)
    base_cost: float = 1.0

    def supports(self, dtype: DataType) -> bool:
        if self.int_only and not dtype.is_integer:
            return False
        if self.float_only and not dtype.is_float:
            return False
        return True


def _wrap(dtype: DataType, value: np.ndarray) -> np.ndarray:
    """Cast ``value`` back to ``dtype`` with C wrap-around semantics."""
    return value.astype(dtype.numpy_dtype, copy=False)


def _binop_wrapping(fn: Callable[..., np.ndarray]) -> Callable[..., np.ndarray]:
    def apply(dtype: DataType, args: Sequence[np.ndarray], imm: Optional[int]) -> np.ndarray:
        with np.errstate(over="ignore"):
            return _wrap(dtype, fn(*args))

    return apply


def _apply_div(dtype: DataType, args: Sequence[np.ndarray], imm: Optional[int]) -> np.ndarray:
    a, b = args
    if dtype.is_float:
        with np.errstate(divide="ignore", invalid="ignore"):
            return _wrap(dtype, a / b)
    # C integer division truncates toward zero; numpy's // floors.
    zero = b == 0
    safe_b = np.where(zero, np.ones_like(b), b)
    wide = np.trunc(a.astype(np.float64) / safe_b.astype(np.float64))
    out = wide.astype(dtype.numpy_dtype)
    return np.where(zero, np.zeros_like(out), out)


def _apply_shr(dtype: DataType, args: Sequence[np.ndarray], imm: Optional[int]) -> np.ndarray:
    (a,) = args
    assert imm is not None, "Shr requires an immediate shift amount"
    return _wrap(dtype, a >> np.asarray(imm, dtype=a.dtype))


def _apply_shl(dtype: DataType, args: Sequence[np.ndarray], imm: Optional[int]) -> np.ndarray:
    (a,) = args
    assert imm is not None, "Shl requires an immediate shift amount"
    # Shift in the unsigned domain so sign bits wrap instead of raising.
    unsigned = a.view(_unsigned_view(dtype)) if dtype.is_integer and dtype.is_signed else a
    shifted = unsigned << np.asarray(imm, dtype=unsigned.dtype)
    return shifted.view(dtype.numpy_dtype) if dtype.is_integer and dtype.is_signed else _wrap(dtype, shifted)


def _unsigned_view(dtype: DataType) -> np.dtype:
    return np.dtype(f"uint{dtype.bit_width}")


def _apply_abd(dtype: DataType, args: Sequence[np.ndarray], imm: Optional[int]) -> np.ndarray:
    a, b = args
    if dtype.is_float:
        return _wrap(dtype, np.abs(a - b))
    return _wrap(dtype, np.maximum(a, b) - np.minimum(a, b))


def _apply_recp(dtype: DataType, args: Sequence[np.ndarray], imm: Optional[int]) -> np.ndarray:
    (a,) = args
    with np.errstate(divide="ignore", invalid="ignore"):
        return _wrap(dtype, np.asarray(1.0, dtype=a.dtype) / a)


def _apply_sqrt(dtype: DataType, args: Sequence[np.ndarray], imm: Optional[int]) -> np.ndarray:
    (a,) = args
    with np.errstate(invalid="ignore"):
        return _wrap(dtype, np.sqrt(a))


def _apply_cast(dtype: DataType, args: Sequence[np.ndarray], imm: Optional[int]) -> np.ndarray:
    (a,) = args
    return a.astype(dtype.numpy_dtype)


_APPLY: Dict[str, Callable[[DataType, Sequence[np.ndarray], Optional[int]], np.ndarray]] = {
    "Add": _binop_wrapping(np.add),
    "Sub": _binop_wrapping(np.subtract),
    "Mul": _binop_wrapping(np.multiply),
    "Div": _apply_div,
    "Shr": _apply_shr,
    "Shl": _apply_shl,
    "BitNot": _binop_wrapping(np.bitwise_not),
    "BitAnd": _binop_wrapping(np.bitwise_and),
    "BitOr": _binop_wrapping(np.bitwise_or),
    "BitXor": _binop_wrapping(np.bitwise_xor),
    "Min": _binop_wrapping(np.minimum),
    "Max": _binop_wrapping(np.maximum),
    "Abs": _binop_wrapping(np.abs),
    "Abd": _apply_abd,
    "Recp": _apply_recp,
    "Sqrt": _apply_sqrt,
    "Neg": _binop_wrapping(np.negative),
    "Cast": _apply_cast,
}

#: Every elementwise op the system knows, keyed by name.  ``base_cost``
#: is a scalar-ALU weight: division and square root are far slower than
#: an add on both Cortex-A72 and Skylake.
OPS: Dict[str, OpInfo] = {
    info.name: info
    for info in [
        OpInfo("Add", 2, commutative=True, base_cost=1.0),
        OpInfo("Sub", 2, base_cost=1.0),
        OpInfo("Mul", 2, commutative=True, base_cost=3.0),
        OpInfo("Div", 2, base_cost=18.0),
        OpInfo("Shr", 1, needs_imm=True, int_only=True, base_cost=1.0),
        OpInfo("Shl", 1, needs_imm=True, int_only=True, base_cost=1.0),
        OpInfo("BitNot", 1, int_only=True, base_cost=1.0),
        OpInfo("BitAnd", 2, int_only=True, commutative=True, base_cost=1.0),
        OpInfo("BitOr", 2, int_only=True, commutative=True, base_cost=1.0),
        OpInfo("BitXor", 2, int_only=True, commutative=True, base_cost=1.0),
        OpInfo("Min", 2, commutative=True, base_cost=1.5),
        OpInfo("Max", 2, commutative=True, base_cost=1.5),
        OpInfo("Abs", 1, base_cost=1.5),
        OpInfo("Abd", 2, base_cost=2.5),
        OpInfo("Recp", 1, float_only=True, base_cost=14.0),
        OpInfo("Sqrt", 1, float_only=True, base_cost=16.0),
        OpInfo("Neg", 1, base_cost=1.0),
        OpInfo("Cast", 1, base_cost=1.0),
    ]
}


def op_info(name: str) -> OpInfo:
    """Look up an op, raising ``KeyError`` with the valid names on a miss."""
    try:
        return OPS[name]
    except KeyError:
        raise KeyError(f"unknown elementwise op {name!r}; known ops: {sorted(OPS)}") from None


def apply_op(
    name: str,
    dtype: DataType,
    args: Sequence[np.ndarray],
    imm: Optional[int] = None,
) -> np.ndarray:
    """Apply op ``name`` elementwise with C-on-embedded semantics.

    ``args`` are numpy arrays already of ``dtype`` (except for ``Cast``,
    whose argument may be any type and is converted *to* ``dtype``).
    """
    info = op_info(name)
    if len(args) != info.arity:
        raise ValueError(f"op {name} expects {info.arity} operand(s), got {len(args)}")
    if not info.supports(dtype):
        raise ValueError(f"op {name} does not support dtype {dtype}")
    if info.needs_imm and imm is None:
        raise ValueError(f"op {name} requires an immediate operand")
    arrays = [np.asarray(a) for a in args]
    return _APPLY[name](dtype, arrays, imm)


def scalar_op_names() -> Tuple[str, ...]:
    """All op names, in a stable order (used by hypothesis strategies)."""
    return tuple(sorted(OPS))
