"""Reference semantics: evaluate a model directly on numpy values.

This evaluator defines *what a model means*.  Every code generator in
the package is tested by checking that the program it emits — executed
on the virtual machine — produces the same outputs as this evaluator.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.errors import ModelError
from repro.model.actor_defs import actor_def
from repro.model.graph import Model
from repro.schedule.scheduler import compute_schedule

#: inport name -> value for one step
StepInputs = Mapping[str, Any]
#: outport name -> value for one step
StepOutputs = Dict[str, np.ndarray]


class ModelEvaluator:
    """Stateful step-by-step evaluator for a validated model."""

    def __init__(self, model: Model) -> None:
        model.validate()
        self.model = model
        self.schedule = compute_schedule(model)
        self._state: Dict[str, Dict[str, Any]] = {a.name: {} for a in model.actors}

    def reset(self) -> None:
        """Clear all actor state (UnitDelay contents, etc.)."""
        for state in self._state.values():
            state.clear()

    def step(self, inputs: Optional[StepInputs] = None) -> StepOutputs:
        """Evaluate one synchronous step of the model.

        ``inputs`` maps inport names to values; missing inports default
        to zeros.  Returns a dict of outport name -> produced value.
        """
        inputs = dict(inputs or {})
        port_values: Dict[tuple, np.ndarray] = {}
        outputs: StepOutputs = {}
        delayed: List[str] = []

        for actor_name in self.schedule.order:
            actor = self.model.actor(actor_name)
            defn = actor_def(actor.actor_type)
            actor_inputs: Dict[str, np.ndarray] = {}

            if actor.actor_type == "UnitDelay":
                # Emit current state now; commit the new input at step end
                # (the input may not be produced yet — delays break cycles).
                port_values[(actor_name, "out")] = self._peek_delay(actor)
                delayed.append(actor_name)
                continue

            if actor.actor_type == "Inport":
                port = actor.output("out")
                raw = inputs.pop(actor_name, None)
                if raw is None:
                    raw = np.zeros(port.shape or (), dtype=port.dtype.numpy_dtype)
                value = np.asarray(raw, dtype=port.dtype.numpy_dtype)
                if value.shape != (port.shape or ()):
                    raise ModelError(
                        f"inport {actor_name!r} expects shape {port.shape or ()}, "
                        f"got {value.shape}"
                    )
                actor_inputs["__external__"] = value
            else:
                for port in actor.inputs:
                    connection = self.model.driver_of(actor_name, port.name)
                    assert connection is not None, "validated model has driven inputs"
                    key = (connection.src_actor, connection.src_port)
                    if key not in port_values:
                        # Only delays may be read before firing: their
                        # output is last step's state.
                        src_actor = self.model.actor(connection.src_actor)
                        if src_actor.actor_type != "UnitDelay":
                            raise ModelError(
                                f"schedule violation: {key} read before it was produced"
                            )
                        port_values[key] = self._peek_delay(src_actor)
                    actor_inputs[port.name] = port_values[key]

            result = defn.evaluate(actor, actor_inputs, self._state[actor_name])
            if actor.actor_type == "Outport":
                outputs[actor_name] = np.array(result["__sink__"], copy=True)
            else:
                for port_name, value in result.items():
                    port_values[(actor_name, port_name)] = value

        for actor_name in delayed:
            actor = self.model.actor(actor_name)
            connection = self.model.driver_of(actor_name, "in1")
            assert connection is not None
            new_value = port_values[(connection.src_actor, connection.src_port)]
            self._state[actor_name]["value"] = np.array(new_value, copy=True)

        return outputs

    def _peek_delay(self, actor) -> np.ndarray:
        """Current output of a UnitDelay without advancing its state."""
        state = self._state[actor.name]
        if "value" not in state:
            port = actor.output("out")
            initial = np.broadcast_to(
                np.asarray(actor.params.get("initial", 0), dtype=port.dtype.numpy_dtype),
                port.shape or (),
            )
            state["value"] = np.array(initial, copy=True)
        return np.array(state["value"], copy=True)

    def run(self, steps: Sequence[StepInputs]) -> List[StepOutputs]:
        """Evaluate several steps in sequence, returning per-step outputs."""
        return [self.step(s) for s in steps]


def evaluate_model(model: Model, inputs: Optional[StepInputs] = None) -> StepOutputs:
    """Evaluate a stateless model for a single step (convenience)."""
    return ModelEvaluator(model).step(inputs)
