"""The model graph: actors wired together by typed connections."""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.errors import ConnectionError_, ModelError
from repro.model.actor import Actor
from repro.model.actor_defs import ActorKind, actor_def


@dataclasses.dataclass(frozen=True)
class Connection:
    """A directed wire from an output port to an input port."""

    src_actor: str
    src_port: str
    dst_actor: str
    dst_port: str

    def __str__(self) -> str:
        return f"{self.src_actor}.{self.src_port} -> {self.dst_actor}.{self.dst_port}"


class Model:
    """A Simulink-like dataflow model.

    A model is a set of named :class:`Actor` instances plus connections.
    Each actor input port must be driven by exactly one output port;
    output ports may fan out to any number of inputs.  ``validate()``
    checks structural integrity and type/shape agreement; the code
    generators require a validated model.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._actors: Dict[str, Actor] = {}
        self._connections: List[Connection] = []
        # dst (actor, port) -> Connection; an input has a single driver.
        self._driver: Dict[Tuple[str, str], Connection] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_actor(self, actor: Actor) -> Actor:
        if actor.name in self._actors:
            raise ModelError(f"model {self.name!r} already contains an actor named {actor.name!r}")
        self._actors[actor.name] = actor
        return actor

    def connect(self, src_actor: str, src_port: str, dst_actor: str, dst_port: str) -> Connection:
        src = self.actor(src_actor).output(src_port)
        dst = self.actor(dst_actor).input(dst_port)
        key = (dst_actor, dst_port)
        if key in self._driver:
            raise ConnectionError_(
                f"input {dst_actor}.{dst_port} already driven by {self._driver[key]}"
            )
        if src.dtype is not dst.dtype:
            raise ConnectionError_(
                f"dtype mismatch on {src_actor}.{src_port} -> {dst_actor}.{dst_port}: "
                f"{src.dtype} vs {dst.dtype}"
            )
        if src.shape != dst.shape:
            raise ConnectionError_(
                f"shape mismatch on {src_actor}.{src_port} -> {dst_actor}.{dst_port}: "
                f"{src.shape} vs {dst.shape}"
            )
        connection = Connection(src_actor, src_port, dst_actor, dst_port)
        self._connections.append(connection)
        self._driver[key] = connection
        return connection

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def actor(self, name: str) -> Actor:
        try:
            return self._actors[name]
        except KeyError:
            raise ModelError(f"model {self.name!r} has no actor named {name!r}") from None

    @property
    def actors(self) -> Tuple[Actor, ...]:
        """Actors in insertion order."""
        return tuple(self._actors.values())

    @property
    def connections(self) -> Tuple[Connection, ...]:
        return tuple(self._connections)

    def driver_of(self, dst_actor: str, dst_port: str) -> Optional[Connection]:
        """The connection driving an input port, or None if undriven."""
        return self._driver.get((dst_actor, dst_port))

    def consumers_of(self, src_actor: str, src_port: str) -> Tuple[Connection, ...]:
        """All connections fanning out from an output port."""
        return tuple(
            c for c in self._connections
            if c.src_actor == src_actor and c.src_port == src_port
        )

    def predecessors(self, actor_name: str) -> Tuple[str, ...]:
        """Names of actors feeding ``actor_name``, one per driven input."""
        actor = self.actor(actor_name)
        preds = []
        for port in actor.inputs:
            connection = self._driver.get((actor_name, port.name))
            if connection is not None:
                preds.append(connection.src_actor)
        return tuple(preds)

    def successors(self, actor_name: str) -> Tuple[str, ...]:
        """Names of actors consuming any output of ``actor_name``."""
        seen = []
        for connection in self._connections:
            if connection.src_actor == actor_name and connection.dst_actor not in seen:
                seen.append(connection.dst_actor)
        return tuple(seen)

    # ------------------------------------------------------------------
    # Filtered views
    # ------------------------------------------------------------------
    def actors_of_kind(self, kind: ActorKind) -> Tuple[Actor, ...]:
        return tuple(a for a in self.actors if actor_def(a.actor_type).kind is kind)

    @property
    def inports(self) -> Tuple[Actor, ...]:
        return tuple(a for a in self.actors if a.actor_type == "Inport")

    @property
    def outports(self) -> Tuple[Actor, ...]:
        return tuple(a for a in self.actors if a.actor_type == "Outport")

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`ModelError` if the model is structurally invalid."""
        if not self._actors:
            raise ModelError(f"model {self.name!r} is empty")
        for actor in self.actors:
            actor_def(actor.actor_type)  # raises on unknown types
            for port in actor.inputs:
                if (actor.name, port.name) not in self._driver:
                    raise ModelError(
                        f"input {actor.name}.{port.name} is not driven by any connection"
                    )
        self._check_no_zero_delay_cycle()

    def _check_no_zero_delay_cycle(self) -> None:
        """Detect algebraic loops: cycles not broken by a UnitDelay."""
        # Edges that create a same-step dependency: every connection whose
        # destination is not a UnitDelay input (a delay reads old state).
        adjacency: Dict[str, List[str]] = {name: [] for name in self._actors}
        for connection in self._connections:
            dst = self._actors[connection.dst_actor]
            if dst.actor_type == "UnitDelay":
                continue
            adjacency[connection.src_actor].append(connection.dst_actor)

        WHITE, GRAY, BLACK = 0, 1, 2
        color = {name: WHITE for name in self._actors}

        def visit(start: str) -> None:
            stack = [(start, iter(adjacency[start]))]
            color[start] = GRAY
            while stack:
                node, it = stack[-1]
                advanced = False
                for nxt in it:
                    if color[nxt] == GRAY:
                        raise ModelError(
                            f"model {self.name!r} contains an algebraic loop through {nxt!r}"
                        )
                    if color[nxt] == WHITE:
                        color[nxt] = GRAY
                        stack.append((nxt, iter(adjacency[nxt])))
                        advanced = True
                        break
                if not advanced:
                    color[node] = BLACK
                    stack.pop()

        for name in self._actors:
            if color[name] == WHITE:
                visit(name)

    def __repr__(self) -> str:
        return f"Model({self.name!r}, actors={len(self._actors)}, connections={len(self._connections)})"
