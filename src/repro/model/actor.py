"""Actors and ports — the building blocks of a Simulink-like model.

An :class:`Actor` is one block in the model (an ``Add``, an ``FFT``, an
``Inport`` ...).  It has typed, shaped :class:`Port` objects and a free-form
parameter dictionary (gain value, shift amount, switch threshold, ...).
The semantics of each actor *type* live in :mod:`repro.model.actor_defs`;
this module only carries structure.
"""

from __future__ import annotations

import dataclasses
import enum
import math
from typing import Any, Dict, Optional, Tuple

from repro.errors import PortError
from repro.dtypes import DataType


class PortDirection(enum.Enum):
    IN = "in"
    OUT = "out"


@dataclasses.dataclass(frozen=True)
class Port:
    """One input or output port of an actor.

    ``shape`` is the array shape carried by the port: ``()`` for a scalar,
    ``(n,)`` for a vector, ``(r, c)`` for a matrix.  ``width`` is the total
    element count, which is what the paper's algorithms key on.
    """

    name: str
    direction: PortDirection
    dtype: DataType
    shape: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if any(d <= 0 for d in self.shape):
            raise PortError(f"port {self.name!r}: shape {self.shape} has non-positive dims")

    @property
    def width(self) -> int:
        """Total number of elements flowing through this port."""
        return math.prod(self.shape) if self.shape else 1

    @property
    def is_array(self) -> bool:
        """True when the port carries more than one element."""
        return self.width > 1

    def __str__(self) -> str:
        shape = "x".join(str(d) for d in self.shape) if self.shape else "scalar"
        return f"{self.name}:{self.dtype}[{shape}]"


class Actor:
    """One block instance in a model.

    Parameters
    ----------
    name:
        Unique name within the model.
    actor_type:
        The type name, e.g. ``"Add"`` or ``"FFT"``.  Must be registered in
        :mod:`repro.model.actor_defs` for the model to validate.
    params:
        Type-specific parameters (``{"gain": 3}``, ``{"shift": 2}``, ...).
    """

    def __init__(
        self,
        name: str,
        actor_type: str,
        params: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.name = name
        self.actor_type = actor_type
        self.params: Dict[str, Any] = dict(params or {})
        self._inputs: Dict[str, Port] = {}
        self._outputs: Dict[str, Port] = {}

    # ------------------------------------------------------------------
    # Port management
    # ------------------------------------------------------------------
    def add_port(self, port: Port) -> Port:
        table = self._inputs if port.direction is PortDirection.IN else self._outputs
        if port.name in table:
            raise PortError(f"actor {self.name!r} already has a {port.direction.value} port {port.name!r}")
        table[port.name] = port
        return port

    def add_input(self, name: str, dtype: DataType, shape: Tuple[int, ...] = ()) -> Port:
        return self.add_port(Port(name, PortDirection.IN, dtype, shape))

    def add_output(self, name: str, dtype: DataType, shape: Tuple[int, ...] = ()) -> Port:
        return self.add_port(Port(name, PortDirection.OUT, dtype, shape))

    def input(self, name: str) -> Port:
        try:
            return self._inputs[name]
        except KeyError:
            raise PortError(f"actor {self.name!r} has no input port {name!r}") from None

    def output(self, name: str) -> Port:
        try:
            return self._outputs[name]
        except KeyError:
            raise PortError(f"actor {self.name!r} has no output port {name!r}") from None

    @property
    def inputs(self) -> Tuple[Port, ...]:
        """Input ports in declaration order."""
        return tuple(self._inputs.values())

    @property
    def outputs(self) -> Tuple[Port, ...]:
        """Output ports in declaration order."""
        return tuple(self._outputs.values())

    # ------------------------------------------------------------------
    # Convenience accessors used by classification and codegen
    # ------------------------------------------------------------------
    @property
    def max_input_width(self) -> int:
        return max((p.width for p in self.inputs), default=0)

    @property
    def has_array_input(self) -> bool:
        return any(p.is_array for p in self.inputs)

    def param(self, key: str, default: Any = None) -> Any:
        return self.params.get(key, default)

    def __repr__(self) -> str:
        return f"Actor({self.name!r}, {self.actor_type!r})"
