"""A fluent builder for constructing models programmatically.

Example
-------
>>> from repro.model import ModelBuilder, DataType
>>> b = ModelBuilder("sample", default_dtype=DataType.I32)
>>> a = b.inport("a", shape=4)
>>> c = b.const("c", value=[1, 2, 3, 4])
>>> s = b.add_actor("Add", "s", a, c)
>>> _ = b.outport("y", s)
>>> model = b.build()
"""

from __future__ import annotations

import dataclasses
from typing import Any, Optional, Tuple, Union

from repro.errors import ModelError
from repro.model.actor import Actor
from repro.model.actor_defs import create_actor
from repro.dtypes import DataType
from repro.model.graph import Model

ShapeLike = Union[int, Tuple[int, ...]]


@dataclasses.dataclass(frozen=True)
class ActorRef:
    """A handle to one output port of an actor inside a builder."""

    actor: Actor
    port: str = "out"

    def __getitem__(self, port: str) -> "ActorRef":
        """Select a different output port, e.g. ``ref["out2"]``."""
        return ActorRef(self.actor, port)


def _as_shape(shape: Optional[ShapeLike]) -> Tuple[int, ...]:
    if shape is None:
        return ()
    if isinstance(shape, int):
        return (shape,)
    return tuple(shape)


class ModelBuilder:
    """Incrementally build a validated :class:`Model`."""

    def __init__(self, name: str, default_dtype: DataType = DataType.F32) -> None:
        self._model = Model(name)
        self.default_dtype = default_dtype

    # ------------------------------------------------------------------
    # Generic actor creation
    # ------------------------------------------------------------------
    def add_actor(
        self,
        type_name: str,
        name: str,
        *inputs: ActorRef,
        dtype: Optional[DataType] = None,
        **params: Any,
    ) -> ActorRef:
        """Create an actor, inferring dtype/shape from ``inputs`` when omitted.

        Positional ``inputs`` are wired to the actor's input ports in
        declaration order.
        """
        if dtype is None:
            dtype = inputs[0].actor.output(inputs[0].port).dtype if inputs else self.default_dtype
        if "shape" in params:
            params["shape"] = _as_shape(params["shape"])
        elif inputs:
            params["shape"] = inputs[0].actor.output(inputs[0].port).shape
        actor = create_actor(name, type_name, dtype, params)
        self._model.add_actor(actor)
        in_ports = actor.inputs
        if len(inputs) > len(in_ports):
            raise ModelError(
                f"actor {name!r} ({type_name}) has {len(in_ports)} input port(s), "
                f"got {len(inputs)} argument(s)"
            )
        for ref, port in zip(inputs, in_ports):
            self._model.connect(ref.actor.name, ref.port, name, port.name)
        return ActorRef(actor)

    def connect(self, src: ActorRef, dst: ActorRef, dst_port: str) -> None:
        """Wire an extra connection, e.g. a Switch control input."""
        self._model.connect(src.actor.name, src.port, dst.actor.name, dst_port)

    # ------------------------------------------------------------------
    # Shorthand constructors for common types
    # ------------------------------------------------------------------
    def inport(self, name: str, shape: Optional[ShapeLike] = None,
               dtype: Optional[DataType] = None) -> ActorRef:
        return self.add_actor("Inport", name, dtype=dtype, shape=_as_shape(shape))

    def outport(self, name: str, src: ActorRef) -> ActorRef:
        port = src.actor.output(src.port)
        ref = self.add_actor("Outport", name, dtype=port.dtype, shape=port.shape)
        self._model.connect(src.actor.name, src.port, name, "in1")
        return ref

    def const(self, name: str, value: Any, dtype: Optional[DataType] = None) -> ActorRef:
        return self.add_actor("Const", name, dtype=dtype, value=value)

    # ------------------------------------------------------------------
    # Finalisation
    # ------------------------------------------------------------------
    def build(self, validate: bool = True) -> Model:
        if validate:
            self._model.validate()
        return self._model

    @property
    def model(self) -> Model:
        """The model under construction (not yet validated)."""
        return self._model
