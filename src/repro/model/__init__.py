"""Simulink-like model substrate: actors, graphs, builder, XML I/O."""

from repro.model.actor import Actor, Port, PortDirection
from repro.model.actor_defs import (
    ActorDef,
    ActorKind,
    actor_def,
    create_actor,
    registered_types,
)
from repro.model.builder import ActorRef, ModelBuilder
from repro.dtypes import DataType, c_type_name
from repro.model.graph import Connection, Model
from repro.model.mdl_io import model_from_mdl, read_mdl
from repro.model.semantics import ModelEvaluator, evaluate_model
from repro.model.xml_io import (
    model_from_string,
    model_to_string,
    read_model,
    write_model,
)

__all__ = [
    "Actor",
    "ActorDef",
    "ActorKind",
    "ActorRef",
    "Connection",
    "DataType",
    "Model",
    "ModelBuilder",
    "ModelEvaluator",
    "Port",
    "PortDirection",
    "actor_def",
    "c_type_name",
    "create_actor",
    "evaluate_model",
    "model_from_mdl",
    "model_from_string",
    "model_to_string",
    "read_mdl",
    "read_model",
    "registered_types",
    "write_model",
]
