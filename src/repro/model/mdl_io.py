"""Reader for a subset of the classic Simulink ``.mdl`` text format.

Before ``.slx`` (a zip of XML), Simulink stored models as a plain-text
nested-brace format::

    Model {
      Name    "fir"
      System {
        Block {
          BlockType  Inport
          Name       "x"
          Port       "1"
        }
        Block {
          BlockType  Product
          Name       "weighted"
          Inputs     "2"
        }
        Line {
          SrcBlock   "x"
          SrcPort    1
          DstBlock   "weighted"
          DstPort    1
        }
      }
    }

This module parses that structure (tokenizer + recursive-descent over
``Key { ... }`` sections and ``Key value`` fields, including repeated
keys and ``Branch`` fan-outs) and converts a practical subset of block
types into a :class:`repro.model.graph.Model`:

====================  =======================================
.mdl BlockType        repro actor type
====================  =======================================
``Inport``            ``Inport``
``Outport``           ``Outport``
``Constant``          ``Const`` (``Value`` parameter)
``Gain``              ``Gain`` (``Gain`` parameter)
``UnitDelay``         ``UnitDelay`` (``X0`` initial state)
``Sum``               ``Add`` / ``Sub`` (from the ``Inputs`` signs)
``Product``           ``Mul`` / ``Div`` (from the ``Inputs`` signs)
``MinMax``            ``Min`` / ``Max`` (``Function`` parameter)
``Abs``               ``Abs``
``Sqrt``              ``Sqrt``
``Math`` reciprocal   ``Recp``
``Switch``            ``Switch`` (``Threshold`` parameter)
``Selector``          ``Slice``
====================  =======================================

Because ``.mdl`` blocks carry no port dtype/width, the caller supplies
the model-wide ``dtype`` and the width of each Inport (or one default
width); widths then propagate through the elementwise blocks.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.dtypes import DataType
from repro.errors import ModelParseError
from repro.model.actor_defs import create_actor
from repro.model.graph import Model

PathLike = Union[str, Path]

_TOKEN_RE = re.compile(
    r"""
    \s*(?:
        (?P<lbrace>\{) |
        (?P<rbrace>\}) |
        (?P<string>"(?:[^"\\]|\\.)*") |
        (?P<word>[^\s{}"]+)
    )
    """,
    re.VERBOSE,
)


class MdlNode:
    """One ``Key { ... }`` section: fields plus child sections."""

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self.fields: Dict[str, str] = {}
        self.children: List["MdlNode"] = []

    def child(self, kind: str) -> Optional["MdlNode"]:
        for node in self.children:
            if node.kind == kind:
                return node
        return None

    def all(self, kind: str) -> List["MdlNode"]:
        return [node for node in self.children if node.kind == kind]

    def get(self, key: str, default: Optional[str] = None) -> Optional[str]:
        return self.fields.get(key, default)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MdlNode({self.kind!r}, fields={list(self.fields)}, children={len(self.children)})"


def _tokenize(text: str) -> List[str]:
    tokens: List[str] = []
    position = 0
    for line in text.splitlines():
        stripped = line.split("#", 1)[0]
        while stripped:
            match = _TOKEN_RE.match(stripped)
            if match is None or not match.group(0).strip():
                break
            if match.group("string") is not None:
                tokens.append(match.group("string"))
            elif match.group("word") is not None:
                tokens.append(match.group("word"))
            elif match.group("lbrace"):
                tokens.append("{")
            else:
                tokens.append("}")
            stripped = stripped[match.end():]
    return tokens


def _unquote(token: str) -> str:
    if token.startswith('"') and token.endswith('"'):
        return token[1:-1].replace('\\"', '"')
    return token


def parse_mdl(text: str) -> MdlNode:
    """Parse ``.mdl`` text into a tree of :class:`MdlNode`."""
    tokens = _tokenize(text)
    root = MdlNode("__root__")
    stack = [root]
    index = 0
    while index < len(tokens):
        token = tokens[index]
        if token == "}":
            if len(stack) == 1:
                raise ModelParseError("unbalanced '}' in .mdl input")
            stack.pop()
            index += 1
            continue
        if index + 1 < len(tokens) and tokens[index + 1] == "{":
            node = MdlNode(token)
            stack[-1].children.append(node)
            stack.append(node)
            index += 2
            continue
        if index + 1 >= len(tokens):
            raise ModelParseError(f"dangling key {token!r} at end of .mdl input")
        key, value = token, tokens[index + 1]
        if value in ("{", "}"):
            raise ModelParseError(f"key {key!r} has no value")
        stack[-1].fields[key] = _unquote(value)
        index += 2
    if len(stack) != 1:
        raise ModelParseError("unbalanced '{' in .mdl input: missing closers")
    return root


# ---------------------------------------------------------------------------
# Block conversion
# ---------------------------------------------------------------------------

def _parse_value_list(text: str) -> Any:
    """Parse a Simulink value string: scalar or ``[a b c]`` / ``[a,b,c]``."""
    cleaned = text.strip()
    if cleaned.startswith("[") and cleaned.endswith("]"):
        items = [v for v in re.split(r"[\s,;]+", cleaned[1:-1].strip()) if v]
        return [float(v) for v in items]
    try:
        return float(cleaned)
    except ValueError:
        raise ModelParseError(f"cannot parse Constant value {text!r}") from None


def _signs(inputs_field: Optional[str], default_arity: int = 2) -> str:
    """Normalise a Sum/Product ``Inputs`` field to a sign string."""
    if inputs_field is None:
        return "+" * default_arity
    cleaned = inputs_field.strip()
    if cleaned.isdigit():
        return "+" * int(cleaned)
    return "".join(ch for ch in cleaned if ch in "+-*/")


class _MdlConverter:
    def __init__(
        self,
        system: MdlNode,
        name: str,
        dtype: DataType,
        port_widths: Mapping[str, int],
        default_width: int,
    ) -> None:
        self.system = system
        self.model = Model(name)
        self.dtype = dtype
        self.port_widths = dict(port_widths)
        self.default_width = default_width
        #: block name -> width of its (first) output
        self.widths: Dict[str, int] = {}
        self._pending: List[MdlNode] = []

    # --------------------------------------------------------------
    def convert(self) -> Model:
        blocks = self.system.all("Block")
        lines = self.system.all("Line")
        by_name = {block.get("Name", ""): block for block in blocks}
        incoming = self._wires(lines)

        # Convert in dependency order so widths propagate.  UnitDelay
        # blocks break feedback cycles: when propagation stalls, a stuck
        # delay takes its width from the resolved signals around it.
        remaining = list(blocks)
        while remaining:
            progress = False
            for block in list(remaining):
                name = block.get("Name", "")
                sources = [src for src, _sp, _dp in incoming.get(name, [])]
                if all(src in self.widths for src in sources) or not sources:
                    self._convert_block(block, incoming)
                    remaining.remove(block)
                    progress = True
            if progress:
                continue
            delay = next(
                (b for b in remaining if b.get("BlockType") == "UnitDelay"), None
            )
            if delay is None:
                stuck = [b.get("Name") for b in remaining]
                raise ModelParseError(f".mdl blocks form a same-step cycle: {stuck}")
            self._convert_block(
                delay, incoming, forced_width=self._neighbour_width(delay, incoming)
            )
            remaining.remove(delay)

        for dst, wires in incoming.items():
            dst_block = by_name.get(dst)
            if dst_block is None:
                raise ModelParseError(f"Line references unknown DstBlock {dst!r}")
            for src, src_port, dst_port in wires:
                self.model.connect(
                    src, "out", dst, self._input_port_name(dst_block, dst_port)
                )
        self.model.validate()
        return self.model

    # --------------------------------------------------------------
    def _wires(self, lines: List[MdlNode]) -> Dict[str, List[Tuple[str, int, int]]]:
        """dst block -> [(src block, src port, dst port)], branches included."""
        incoming: Dict[str, List[Tuple[str, int, int]]] = {}

        def record(src: str, src_port: int, node: MdlNode) -> None:
            dst = node.get("DstBlock")
            if dst is not None:
                dst_port = int(node.get("DstPort", "1"))
                incoming.setdefault(dst, []).append((src, src_port, dst_port))
            for branch in node.all("Branch"):
                record(src, src_port, branch)

        for line in lines:
            src = line.get("SrcBlock")
            if src is None:
                raise ModelParseError("Line without SrcBlock in .mdl input")
            record(src, int(line.get("SrcPort", "1")), line)
        return incoming

    def _width_of_inputs(self, name: str, incoming) -> int:
        sources = [src for src, _sp, _dp in incoming.get(name, [])]
        widths = [self.widths[s] for s in sources if self.widths.get(s, 1) > 1]
        return max(widths, default=self.default_width if not sources else 1)

    def _neighbour_width(self, block: MdlNode, incoming) -> int:
        """Width guess for a feedback UnitDelay: the widest resolved
        signal feeding any block this delay shares a consumer with."""
        name = block.get("Name", "")
        candidates = []
        for dst, wires in incoming.items():
            if any(src == name for src, _sp, _dp in wires):
                for src, _sp, _dp in wires:
                    if src in self.widths:
                        candidates.append(self.widths[src])
        return max(candidates, default=self.default_width)

    def _input_port_name(self, block: MdlNode, dst_port: int) -> str:
        if block.get("BlockType") == "Switch":
            return {1: "in1", 2: "ctrl", 3: "in2"}[dst_port]
        return f"in{dst_port}"

    # --------------------------------------------------------------
    def _convert_block(
        self, block: MdlNode, incoming, forced_width: Optional[int] = None
    ) -> None:
        block_type = block.get("BlockType")
        name = block.get("Name")
        if not block_type or not name:
            raise ModelParseError("Block requires BlockType and Name")
        width = forced_width if forced_width is not None \
            else self._width_of_inputs(name, incoming)
        shape = (width,) if width > 1 else ()

        def add(actor_type: str, **params: Any) -> None:
            actor = create_actor(name, actor_type, self.dtype, params)
            self.model.add_actor(actor)
            outs = actor.outputs
            self.widths[name] = outs[0].width if outs else 0

        if block_type == "Inport":
            in_width = self.port_widths.get(name, self.default_width)
            add("Inport", shape=(in_width,) if in_width > 1 else ())
        elif block_type == "Outport":
            add("Outport", shape=shape)
        elif block_type == "Constant":
            value = _parse_value_list(block.get("Value", "0"))
            if isinstance(value, float) and width > 1:
                value = [value] * width
            add("Const", value=value)
        elif block_type == "Gain":
            add("Gain", shape=shape, gain=float(block.get("Gain", "1")))
        elif block_type == "UnitDelay":
            add("UnitDelay", shape=shape, initial=float(block.get("X0", "0")))
        elif block_type == "Sum":
            signs = _signs(block.get("Inputs"))
            if signs in ("++",):
                add("Add", shape=shape)
            elif signs in ("+-",):
                add("Sub", shape=shape)
            else:
                raise ModelParseError(
                    f"Sum block {name!r}: unsupported Inputs {block.get('Inputs')!r} "
                    f"(two-input '++'/'+-' supported)"
                )
        elif block_type == "Product":
            signs = _signs(block.get("Inputs"), default_arity=2)
            if signs in ("**", "++"):
                add("Mul", shape=shape)
            elif signs == "*/":
                add("Div", shape=shape)
            else:
                raise ModelParseError(
                    f"Product block {name!r}: unsupported Inputs {block.get('Inputs')!r}"
                )
        elif block_type == "MinMax":
            function = (block.get("Function") or "min").lower()
            add("Min" if function == "min" else "Max", shape=shape)
        elif block_type == "Abs":
            add("Abs", shape=shape)
        elif block_type == "Sqrt":
            add("Sqrt", shape=shape)
        elif block_type == "Math":
            operator = (block.get("Operator") or "").lower()
            if operator in ("reciprocal", "1/u"):
                add("Recp", shape=shape)
            else:
                raise ModelParseError(f"Math block {name!r}: operator {operator!r} unsupported")
        elif block_type == "Switch":
            add("Switch", shape=shape, threshold=float(block.get("Threshold", "0")))
        elif block_type == "Selector":
            indices = block.get("Elements") or block.get("Indices") or "[1]"
            values = _parse_value_list(indices)
            if isinstance(values, float):
                values = [values]
            start = int(min(values)) - 1  # .mdl indices are 1-based
            length = int(max(values)) - int(min(values)) + 1
            add("Slice", shape=shape, offset=start, length=length)
        else:
            raise ModelParseError(
                f"unsupported .mdl BlockType {block_type!r} (block {name!r})"
            )


def model_from_mdl(
    text: str,
    dtype: DataType = DataType.F64,
    port_widths: Optional[Mapping[str, int]] = None,
    default_width: int = 1,
) -> Model:
    """Convert ``.mdl`` text into a validated :class:`Model`."""
    root = parse_mdl(text)
    model_node = root.child("Model")
    if model_node is None:
        raise ModelParseError(".mdl input has no Model { } section")
    system = model_node.child("System")
    if system is None:
        raise ModelParseError(".mdl Model has no System { } section")
    name = model_node.get("Name") or system.get("Name") or "mdl_model"
    converter = _MdlConverter(
        system, name, dtype, port_widths or {}, default_width
    )
    return converter.convert()


def read_mdl(
    path: PathLike,
    dtype: DataType = DataType.F64,
    port_widths: Optional[Mapping[str, int]] = None,
    default_width: int = 1,
) -> Model:
    """Read a classic Simulink ``.mdl`` file (supported subset)."""
    try:
        text = Path(path).read_text()
    except OSError as exc:
        raise ModelParseError(f"cannot read {path}: {exc}") from None
    return model_from_mdl(text, dtype, port_widths, default_width)
