"""Compatibility re-export; the canonical module is :mod:`repro.dtypes`."""

from repro.dtypes import (  # noqa: F401
    DataType,
    FLOAT_TYPES,
    INTEGER_TYPES,
    SIGNED_INTEGER_TYPES,
    c_type_name,
)

__all__ = [
    "DataType",
    "FLOAT_TYPES",
    "INTEGER_TYPES",
    "SIGNED_INTEGER_TYPES",
    "c_type_name",
]
