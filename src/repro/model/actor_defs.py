"""The actor-type registry: structure and reference semantics per type.

Each Simulink-like actor type the system understands is described by an
:class:`ActorDef` that knows how to create the actor's ports from its
parameters and how to evaluate the actor on numpy values.  The evaluator
here is the *reference semantics* every code generator is tested against.

Three families exist, mirroring §3.1 of the paper:

* **elementwise** types (``Add``, ``Shr``, ``Recp``, ...) — classified as
  *batch computing actors* when an input port carries an array;
* **intensive** types (``FFT``, ``DCT``, ``Conv``, ``MatMul``, ...) —
  array-in/array-out with cross-element data dependencies;
* **basic** types (``Inport``, ``Const``, ``Switch``, ``UnitDelay``, ...)
  — translated with the conventional method by every generator.

Complex-valued signals (FFT/IFFT) are carried as a leading axis of size 2
holding ``[real, imag]`` planes, matching how the generated embedded C
stores split re/im arrays.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np

from repro import ops
from repro.errors import ModelError
from repro.model.actor import Actor
from repro.dtypes import DataType


class ActorKind(enum.Enum):
    SOURCE = "source"
    SINK = "sink"
    BASIC = "basic"
    ELEMENTWISE = "elementwise"
    INTENSIVE = "intensive"


EvalFn = Callable[[Actor, Dict[str, np.ndarray], Dict[str, Any]], Dict[str, np.ndarray]]
BuildFn = Callable[[Actor, DataType, Dict[str, Any]], None]


@dataclasses.dataclass(frozen=True)
class ActorDef:
    """Static description of one actor type."""

    type_name: str
    kind: ActorKind
    build_ports: BuildFn
    evaluate: EvalFn
    #: For elementwise types, the op name in :mod:`repro.ops`.
    op_name: Optional[str] = None
    #: For intensive types, the key into the kernel code library.
    kernel_key: Optional[str] = None
    #: True for actors that keep state across evaluation steps.
    stateful: bool = False


_REGISTRY: Dict[str, ActorDef] = {}


def register(defn: ActorDef) -> ActorDef:
    if defn.type_name in _REGISTRY:
        raise ValueError(f"actor type {defn.type_name!r} registered twice")
    _REGISTRY[defn.type_name] = defn
    return defn


def actor_def(type_name: str) -> ActorDef:
    """Look up an actor type, with a readable error for unknown names."""
    try:
        return _REGISTRY[type_name]
    except KeyError:
        raise ModelError(
            f"unknown actor type {type_name!r}; known types: {sorted(_REGISTRY)}"
        ) from None


def registered_types() -> Tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


def _shape_param(params: Dict[str, Any]) -> Tuple[int, ...]:
    shape = params.get("shape", ())
    if isinstance(shape, int):
        shape = (shape,)
    return tuple(int(d) for d in shape)


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ModelError(message)


# ---------------------------------------------------------------------------
# Source / sink / basic actors
# ---------------------------------------------------------------------------

def _build_inport(actor: Actor, dtype: DataType, params: Dict[str, Any]) -> None:
    actor.add_output("out", dtype, _shape_param(params))


def _eval_inport(actor: Actor, inputs: Dict[str, np.ndarray], state: Dict[str, Any]) -> Dict[str, np.ndarray]:
    # The environment injects the value under the reserved key "__external__".
    value = inputs["__external__"]
    return {"out": np.asarray(value, dtype=actor.output("out").dtype.numpy_dtype)}


def _build_outport(actor: Actor, dtype: DataType, params: Dict[str, Any]) -> None:
    actor.add_input("in1", dtype, _shape_param(params))


def _eval_outport(actor: Actor, inputs: Dict[str, np.ndarray], state: Dict[str, Any]) -> Dict[str, np.ndarray]:
    return {"__sink__": inputs["in1"]}


def _build_const(actor: Actor, dtype: DataType, params: Dict[str, Any]) -> None:
    _require("value" in params, f"Const actor {actor.name!r} needs a 'value' parameter")
    value = np.asarray(params["value"], dtype=dtype.numpy_dtype)
    actor.params["value"] = value
    actor.add_output("out", dtype, value.shape)


def _eval_const(actor: Actor, inputs: Dict[str, np.ndarray], state: Dict[str, Any]) -> Dict[str, np.ndarray]:
    return {"out": np.array(actor.params["value"], copy=True)}


def _build_gain(actor: Actor, dtype: DataType, params: Dict[str, Any]) -> None:
    _require("gain" in params, f"Gain actor {actor.name!r} needs a 'gain' parameter")
    shape = _shape_param(params)
    actor.add_input("in1", dtype, shape)
    actor.add_output("out", dtype, shape)


def _eval_gain(actor: Actor, inputs: Dict[str, np.ndarray], state: Dict[str, Any]) -> Dict[str, np.ndarray]:
    dtype = actor.output("out").dtype
    gain = np.asarray(actor.params["gain"], dtype=dtype.numpy_dtype)
    return {"out": ops.apply_op("Mul", dtype, [inputs["in1"], gain])}


def _build_unit_delay(actor: Actor, dtype: DataType, params: Dict[str, Any]) -> None:
    shape = _shape_param(params)
    actor.params.setdefault("initial", 0)
    actor.add_input("in1", dtype, shape)
    actor.add_output("out", dtype, shape)


def _eval_unit_delay(actor: Actor, inputs: Dict[str, np.ndarray], state: Dict[str, Any]) -> Dict[str, np.ndarray]:
    dtype = actor.output("out").dtype
    shape = actor.output("out").shape
    if "value" not in state:
        initial = np.broadcast_to(
            np.asarray(actor.params["initial"], dtype=dtype.numpy_dtype), shape or ()
        )
        state["value"] = np.array(initial, copy=True)
    out = np.array(state["value"], copy=True)
    state["value"] = np.array(inputs["in1"], copy=True)
    return {"out": out}


def _build_switch(actor: Actor, dtype: DataType, params: Dict[str, Any]) -> None:
    shape = _shape_param(params)
    actor.params.setdefault("threshold", 0)
    # The threshold must be representable in the signal dtype: the
    # reference evaluator compares in Python arithmetic, but generated
    # code compares in the signal's machine type, so an unrepresentable
    # threshold (e.g. -2 on a u8 Switch) would silently mean different
    # things to the two sides (found by repro.verify fuzzing).
    if dtype.is_integer:
        info = np.iinfo(dtype.numpy_dtype)
        threshold = actor.params["threshold"]
        _require(
            float(threshold) == int(threshold)
            and info.min <= int(threshold) <= info.max,
            f"Switch actor {actor.name!r}: threshold {threshold!r} is not "
            f"representable in {dtype}",
        )
    actor.add_input("in1", dtype, shape)
    actor.add_input("ctrl", dtype, ())
    actor.add_input("in2", dtype, shape)
    actor.add_output("out", dtype, shape)


def _eval_switch(actor: Actor, inputs: Dict[str, np.ndarray], state: Dict[str, Any]) -> Dict[str, np.ndarray]:
    threshold = actor.params["threshold"]
    take_first = np.asarray(inputs["ctrl"]).item() >= threshold
    chosen = inputs["in1"] if take_first else inputs["in2"]
    return {"out": np.array(chosen, copy=True)}


def _build_slice(actor: Actor, dtype: DataType, params: Dict[str, Any]) -> None:
    """Simulink's Selector: take ``length`` elements from ``offset``."""
    shape = _shape_param(params)
    _require(len(shape) == 1, f"Slice actor {actor.name!r} needs a 1-D input shape")
    offset = int(params.get("offset", 0))
    length = int(params.get("length", shape[0] - offset))
    _require(
        0 <= offset and offset + length <= shape[0] and length >= 1,
        f"Slice actor {actor.name!r}: [{offset}, {offset + length}) out of "
        f"range for input of {shape[0]}",
    )
    actor.params.update(offset=offset, length=length)
    actor.add_input("in1", dtype, shape)
    actor.add_output("out", dtype, (length,))


def _eval_slice(actor: Actor, inputs: Dict[str, np.ndarray], state: Dict[str, Any]) -> Dict[str, np.ndarray]:
    offset = int(actor.params["offset"])
    length = int(actor.params["length"])
    return {"out": np.array(inputs["in1"][offset : offset + length], copy=True)}


def _build_concat(actor: Actor, dtype: DataType, params: Dict[str, Any]) -> None:
    """Simulink's Vector Concatenate: join two 1-D signals."""
    shape = _shape_param(params)
    _require(len(shape) == 1, f"Concat actor {actor.name!r} needs a 1-D 'shape' (first input)")
    second = params.get("shape2", shape)
    if isinstance(second, int):
        second = (second,)
    second = tuple(int(d) for d in second)
    _require(len(second) == 1, f"Concat actor {actor.name!r}: 'shape2' must be 1-D")
    actor.params["shape2"] = second
    actor.add_input("in1", dtype, shape)
    actor.add_input("in2", dtype, second)
    actor.add_output("out", dtype, (shape[0] + second[0],))


def _eval_concat(actor: Actor, inputs: Dict[str, np.ndarray], state: Dict[str, Any]) -> Dict[str, np.ndarray]:
    return {"out": np.concatenate([inputs["in1"], inputs["in2"]])}


# ---------------------------------------------------------------------------
# Elementwise (batch-capable) actors
# ---------------------------------------------------------------------------

def _make_elementwise(op_name: str) -> ActorDef:
    info = ops.op_info(op_name)

    def build(actor: Actor, dtype: DataType, params: Dict[str, Any]) -> None:
        if not info.supports(dtype):
            raise ModelError(f"actor type {op_name} does not support dtype {dtype}")
        shape = _shape_param(params)
        if info.needs_imm:
            _require(
                "shift" in params,
                f"{op_name} actor {actor.name!r} needs a 'shift' parameter",
            )
            shift = int(params["shift"])
            _require(
                0 <= shift < dtype.bit_width,
                f"{op_name} actor {actor.name!r}: shift {shift} out of range for {dtype}",
            )
        for index in range(info.arity):
            actor.add_input(f"in{index + 1}", dtype, shape)
        actor.add_output("out", dtype, shape)

    def evaluate(actor: Actor, inputs: Dict[str, np.ndarray], state: Dict[str, Any]) -> Dict[str, np.ndarray]:
        dtype = actor.output("out").dtype
        args = [inputs[f"in{index + 1}"] for index in range(info.arity)]
        imm = int(actor.params["shift"]) if info.needs_imm else None
        return {"out": ops.apply_op(op_name, dtype, args, imm)}

    return ActorDef(op_name, ActorKind.ELEMENTWISE, build, evaluate, op_name=op_name)


def _build_cast(actor: Actor, dtype: DataType, params: Dict[str, Any]) -> None:
    _require("from_dtype" in params, f"Cast actor {actor.name!r} needs a 'from_dtype' parameter")
    src = params["from_dtype"]
    src_dtype = src if isinstance(src, DataType) else DataType.from_name(src)
    actor.params["from_dtype"] = src_dtype
    shape = _shape_param(params)
    actor.add_input("in1", src_dtype, shape)
    actor.add_output("out", dtype, shape)


def _eval_cast(actor: Actor, inputs: Dict[str, np.ndarray], state: Dict[str, Any]) -> Dict[str, np.ndarray]:
    dtype = actor.output("out").dtype
    return {"out": ops.apply_op("Cast", dtype, [inputs["in1"]])}


# ---------------------------------------------------------------------------
# Intensive computing actors
# ---------------------------------------------------------------------------

def _require_float(type_name: str, dtype: DataType) -> None:
    _require(dtype.is_float, f"{type_name} requires a float dtype, got {dtype}")


def _build_fft(actor: Actor, dtype: DataType, params: Dict[str, Any]) -> None:
    _require_float(actor.actor_type, dtype)
    n = int(params["n"])
    _require(n >= 1, f"{actor.actor_type} length must be >= 1, got {n}")
    actor.params["n"] = n
    if actor.actor_type in ("FFT",):
        actor.add_input("in1", dtype, (n,))
    else:  # IFFT consumes complex data
        actor.add_input("in1", dtype, (2, n))
    actor.add_output("out", dtype, (2, n))


def _eval_fft(actor: Actor, inputs: Dict[str, np.ndarray], state: Dict[str, Any]) -> Dict[str, np.ndarray]:
    dtype = actor.output("out").dtype
    data = np.asarray(inputs["in1"], dtype=np.float64)
    if actor.actor_type == "FFT":
        spectrum = np.fft.fft(data)
    else:
        spectrum = np.fft.ifft(data[0] + 1j * data[1])
    stacked = np.stack([spectrum.real, spectrum.imag]).astype(dtype.numpy_dtype)
    return {"out": stacked}


def _build_fft2d(actor: Actor, dtype: DataType, params: Dict[str, Any]) -> None:
    _require_float(actor.actor_type, dtype)
    rows, cols = int(params["rows"]), int(params["cols"])
    _require(rows >= 1 and cols >= 1, f"{actor.actor_type} dims must be >= 1")
    actor.params.update(rows=rows, cols=cols)
    if actor.actor_type == "FFT2D":
        actor.add_input("in1", dtype, (rows, cols))
    else:
        actor.add_input("in1", dtype, (2, rows, cols))
    actor.add_output("out", dtype, (2, rows, cols))


def _eval_fft2d(actor: Actor, inputs: Dict[str, np.ndarray], state: Dict[str, Any]) -> Dict[str, np.ndarray]:
    dtype = actor.output("out").dtype
    data = np.asarray(inputs["in1"], dtype=np.float64)
    if actor.actor_type == "FFT2D":
        spectrum = np.fft.fft2(data)
    else:
        spectrum = np.fft.ifft2(data[0] + 1j * data[1])
    stacked = np.stack([spectrum.real, spectrum.imag]).astype(dtype.numpy_dtype)
    return {"out": stacked}


def _dct2_matrix(n: int) -> np.ndarray:
    """The DCT-II basis matrix (unnormalised, matching the kernels)."""
    k = np.arange(n)[:, None]
    i = np.arange(n)[None, :]
    return np.cos(np.pi * (2 * i + 1) * k / (2 * n))


def _build_dct(actor: Actor, dtype: DataType, params: Dict[str, Any]) -> None:
    _require_float(actor.actor_type, dtype)
    n = int(params["n"])
    _require(n >= 1, f"{actor.actor_type} length must be >= 1, got {n}")
    actor.params["n"] = n
    actor.add_input("in1", dtype, (n,))
    actor.add_output("out", dtype, (n,))


def _eval_dct(actor: Actor, inputs: Dict[str, np.ndarray], state: Dict[str, Any]) -> Dict[str, np.ndarray]:
    dtype = actor.output("out").dtype
    data = np.asarray(inputs["in1"], dtype=np.float64)
    n = data.shape[0]
    basis = _dct2_matrix(n)
    if actor.actor_type == "DCT":
        out = basis @ data
    else:  # IDCT: inverse of the unnormalised DCT-II
        # DCT-III scaled by 2/n, with the DC term halved.
        coeffs = np.array(data, copy=True)
        coeffs[0] *= 0.5
        out = (2.0 / n) * (basis.T @ coeffs)
    return {"out": out.astype(dtype.numpy_dtype)}


def _build_dct2d(actor: Actor, dtype: DataType, params: Dict[str, Any]) -> None:
    _require_float(actor.actor_type, dtype)
    rows, cols = int(params["rows"]), int(params["cols"])
    _require(rows >= 1 and cols >= 1, f"{actor.actor_type} dims must be >= 1")
    actor.params.update(rows=rows, cols=cols)
    actor.add_input("in1", dtype, (rows, cols))
    actor.add_output("out", dtype, (rows, cols))


def _eval_dct2d(actor: Actor, inputs: Dict[str, np.ndarray], state: Dict[str, Any]) -> Dict[str, np.ndarray]:
    dtype = actor.output("out").dtype
    data = np.asarray(inputs["in1"], dtype=np.float64)
    rows, cols = data.shape
    row_basis = _dct2_matrix(rows)
    col_basis = _dct2_matrix(cols)
    if actor.actor_type == "DCT2D":
        out = row_basis @ data @ col_basis.T
    else:
        coeffs = np.array(data, copy=True)
        coeffs[0, :] *= 0.5
        coeffs[:, 0] *= 0.5
        out = (2.0 / rows) * (2.0 / cols) * (row_basis.T @ coeffs @ col_basis)
    return {"out": out.astype(dtype.numpy_dtype)}


def _build_conv(actor: Actor, dtype: DataType, params: Dict[str, Any]) -> None:
    _require(
        dtype.is_float or dtype is DataType.I32,
        f"Conv supports f32/f64/i32, got {dtype}",
    )
    n, m = int(params["n"]), int(params["m"])
    _require(n >= 1 and m >= 1, "Conv lengths must be >= 1")
    actor.params.update(n=n, m=m)
    actor.add_input("in1", dtype, (n,))
    actor.add_input("in2", dtype, (m,))
    actor.add_output("out", dtype, (n + m - 1,))


def _eval_conv(actor: Actor, inputs: Dict[str, np.ndarray], state: Dict[str, Any]) -> Dict[str, np.ndarray]:
    dtype = actor.output("out").dtype
    if dtype.is_float:
        out = np.convolve(
            np.asarray(inputs["in1"], dtype=np.float64),
            np.asarray(inputs["in2"], dtype=np.float64),
        )
        return {"out": out.astype(dtype.numpy_dtype)}
    # Integer convolution with wrap-around accumulation.
    a = np.asarray(inputs["in1"], dtype=np.int64)
    b = np.asarray(inputs["in2"], dtype=np.int64)
    out = np.convolve(a, b)
    return {"out": out.astype(dtype.numpy_dtype)}


def _build_conv2d(actor: Actor, dtype: DataType, params: Dict[str, Any]) -> None:
    _require_float(actor.actor_type, dtype)
    rows, cols = int(params["rows"]), int(params["cols"])
    krows, kcols = int(params["krows"]), int(params["kcols"])
    _require(min(rows, cols, krows, kcols) >= 1, "Conv2D dims must be >= 1")
    actor.params.update(rows=rows, cols=cols, krows=krows, kcols=kcols)
    actor.add_input("in1", dtype, (rows, cols))
    actor.add_input("in2", dtype, (krows, kcols))
    actor.add_output("out", dtype, (rows + krows - 1, cols + kcols - 1))


def _eval_conv2d(actor: Actor, inputs: Dict[str, np.ndarray], state: Dict[str, Any]) -> Dict[str, np.ndarray]:
    dtype = actor.output("out").dtype
    a = np.asarray(inputs["in1"], dtype=np.float64)
    k = np.asarray(inputs["in2"], dtype=np.float64)
    out_rows = a.shape[0] + k.shape[0] - 1
    out_cols = a.shape[1] + k.shape[1] - 1
    out = np.zeros((out_rows, out_cols), dtype=np.float64)
    for dr in range(k.shape[0]):
        for dc in range(k.shape[1]):
            out[dr : dr + a.shape[0], dc : dc + a.shape[1]] += k[dr, dc] * a
    return {"out": out.astype(dtype.numpy_dtype)}


def _build_matmul(actor: Actor, dtype: DataType, params: Dict[str, Any]) -> None:
    n = int(params["n"])
    _require(n >= 1, f"MatMul size must be >= 1, got {n}")
    actor.params["n"] = n
    actor.add_input("in1", dtype, (n, n))
    actor.add_input("in2", dtype, (n, n))
    actor.add_output("out", dtype, (n, n))


def _eval_matmul(actor: Actor, inputs: Dict[str, np.ndarray], state: Dict[str, Any]) -> Dict[str, np.ndarray]:
    dtype = actor.output("out").dtype
    if dtype.is_float:
        out = np.asarray(inputs["in1"], dtype=np.float64) @ np.asarray(inputs["in2"], dtype=np.float64)
        return {"out": out.astype(dtype.numpy_dtype)}
    a = np.asarray(inputs["in1"], dtype=np.int64)
    b = np.asarray(inputs["in2"], dtype=np.int64)
    return {"out": (a @ b).astype(dtype.numpy_dtype)}


def _build_matinv(actor: Actor, dtype: DataType, params: Dict[str, Any]) -> None:
    _require_float(actor.actor_type, dtype)
    n = int(params["n"])
    _require(n >= 1, f"MatInv size must be >= 1, got {n}")
    actor.params["n"] = n
    actor.add_input("in1", dtype, (n, n))
    actor.add_output("out", dtype, (n, n))


def _eval_matinv(actor: Actor, inputs: Dict[str, np.ndarray], state: Dict[str, Any]) -> Dict[str, np.ndarray]:
    dtype = actor.output("out").dtype
    out = np.linalg.inv(np.asarray(inputs["in1"], dtype=np.float64))
    return {"out": out.astype(dtype.numpy_dtype)}


def _build_matdet(actor: Actor, dtype: DataType, params: Dict[str, Any]) -> None:
    _require_float(actor.actor_type, dtype)
    n = int(params["n"])
    _require(n >= 1, f"MatDet size must be >= 1, got {n}")
    actor.params["n"] = n
    actor.add_input("in1", dtype, (n, n))
    actor.add_output("out", dtype, ())


def _eval_matdet(actor: Actor, inputs: Dict[str, np.ndarray], state: Dict[str, Any]) -> Dict[str, np.ndarray]:
    dtype = actor.output("out").dtype
    out = np.linalg.det(np.asarray(inputs["in1"], dtype=np.float64))
    return {"out": np.asarray(out, dtype=dtype.numpy_dtype)}


# ---------------------------------------------------------------------------
# Registration
# ---------------------------------------------------------------------------

register(ActorDef("Inport", ActorKind.SOURCE, _build_inport, _eval_inport))
register(ActorDef("Outport", ActorKind.SINK, _build_outport, _eval_outport))
register(ActorDef("Const", ActorKind.SOURCE, _build_const, _eval_const))
register(ActorDef("Gain", ActorKind.BASIC, _build_gain, _eval_gain))
register(ActorDef("UnitDelay", ActorKind.BASIC, _build_unit_delay, _eval_unit_delay, stateful=True))
register(ActorDef("Switch", ActorKind.BASIC, _build_switch, _eval_switch))
register(ActorDef("Slice", ActorKind.BASIC, _build_slice, _eval_slice))
register(ActorDef("Concat", ActorKind.BASIC, _build_concat, _eval_concat))
register(ActorDef("Cast", ActorKind.ELEMENTWISE, _build_cast, _eval_cast, op_name="Cast"))

for _op in ("Add", "Sub", "Mul", "Div", "Shr", "Shl", "BitNot", "BitAnd",
            "BitOr", "BitXor", "Min", "Max", "Abs", "Abd", "Recp", "Sqrt", "Neg"):
    register(_make_elementwise(_op))

register(ActorDef("FFT", ActorKind.INTENSIVE, _build_fft, _eval_fft, kernel_key="fft"))
register(ActorDef("IFFT", ActorKind.INTENSIVE, _build_fft, _eval_fft, kernel_key="ifft"))
register(ActorDef("FFT2D", ActorKind.INTENSIVE, _build_fft2d, _eval_fft2d, kernel_key="fft2d"))
register(ActorDef("IFFT2D", ActorKind.INTENSIVE, _build_fft2d, _eval_fft2d, kernel_key="ifft2d"))
register(ActorDef("DCT", ActorKind.INTENSIVE, _build_dct, _eval_dct, kernel_key="dct"))
register(ActorDef("IDCT", ActorKind.INTENSIVE, _build_dct, _eval_dct, kernel_key="idct"))
register(ActorDef("DCT2D", ActorKind.INTENSIVE, _build_dct2d, _eval_dct2d, kernel_key="dct2d"))
register(ActorDef("IDCT2D", ActorKind.INTENSIVE, _build_dct2d, _eval_dct2d, kernel_key="idct2d"))
register(ActorDef("Conv", ActorKind.INTENSIVE, _build_conv, _eval_conv, kernel_key="conv"))
register(ActorDef("Conv2D", ActorKind.INTENSIVE, _build_conv2d, _eval_conv2d, kernel_key="conv2d"))
register(ActorDef("MatMul", ActorKind.INTENSIVE, _build_matmul, _eval_matmul, kernel_key="matmul"))
register(ActorDef("MatInv", ActorKind.INTENSIVE, _build_matinv, _eval_matinv, kernel_key="matinv"))
register(ActorDef("MatDet", ActorKind.INTENSIVE, _build_matdet, _eval_matdet, kernel_key="matdet"))


def create_actor(name: str, type_name: str, dtype: DataType, params: Optional[Dict[str, Any]] = None) -> Actor:
    """Instantiate an actor of a registered type with its ports built."""
    defn = actor_def(type_name)
    actor = Actor(name, type_name, params)
    defn.build_ports(actor, dtype, actor.params)
    return actor
