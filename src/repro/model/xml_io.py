"""Read and write models as XML files.

The paper's tool parses real Simulink ``.slx``/``.mdl`` files with Unzip
and Tinyxml.  Those formats are proprietary, so this reproduction
defines an equivalent open XML carrier for the same information —
actors with types, dtypes and parameters, plus port-to-port connections:

.. code-block:: xml

    <model name="sample">
      <actor name="a" type="Inport" dtype="i32">
        <param name="shape" value="[4]"/>
      </actor>
      <actor name="s" type="Add" dtype="i32">
        <param name="shape" value="[4]"/>
      </actor>
      <connection src="a.out" dst="s.in1"/>
      ...
    </model>

Parameter values are JSON literals, so numbers, strings and (nested)
lists round-trip exactly.
"""

from __future__ import annotations

import json
import xml.etree.ElementTree as ET
from pathlib import Path
from typing import Any, Dict, Union

import numpy as np

from repro.errors import ModelParseError
from repro.model.actor_defs import create_actor
from repro.dtypes import DataType
from repro.model.graph import Model

PathLike = Union[str, Path]


def _param_to_text(value: Any) -> str:
    if isinstance(value, DataType):
        return json.dumps(value.value)
    if isinstance(value, np.ndarray):
        return json.dumps(value.tolist())
    if isinstance(value, tuple):
        return json.dumps(list(value))
    if isinstance(value, (np.integer,)):
        return json.dumps(int(value))
    if isinstance(value, (np.floating,)):
        return json.dumps(float(value))
    return json.dumps(value)


def _text_to_param(text: str) -> Any:
    try:
        return json.loads(text)
    except json.JSONDecodeError as exc:
        raise ModelParseError(f"invalid parameter literal {text!r}: {exc}") from None


# ---------------------------------------------------------------------------
# Writing
# ---------------------------------------------------------------------------

def model_to_element(model: Model) -> ET.Element:
    """Serialise ``model`` into an XML element tree."""
    root = ET.Element("model", {"name": model.name})
    for actor in model.actors:
        dtype = (actor.outputs or actor.inputs)[0].dtype
        actor_el = ET.SubElement(
            root, "actor", {"name": actor.name, "type": actor.actor_type, "dtype": dtype.value}
        )
        params = dict(actor.params)
        # Reconstructable port shape: store the build-time shape parameter.
        if "shape" not in params and actor.actor_type not in _SHAPELESS_TYPES:
            primary = (actor.inputs or actor.outputs)[0]
            params["shape"] = primary.shape
        for key in sorted(params):
            ET.SubElement(
                actor_el, "param", {"name": key, "value": _param_to_text(params[key])}
            )
    for connection in model.connections:
        ET.SubElement(
            root,
            "connection",
            {
                "src": f"{connection.src_actor}.{connection.src_port}",
                "dst": f"{connection.dst_actor}.{connection.dst_port}",
            },
        )
    return root


#: Types whose ports are fully determined by their own parameters.
_SHAPELESS_TYPES = frozenset(
    {"Const", "FFT", "IFFT", "FFT2D", "IFFT2D", "DCT", "IDCT", "DCT2D",
     "IDCT2D", "Conv", "Conv2D", "MatMul", "MatInv", "MatDet"}
)


def write_model(model: Model, path: PathLike) -> None:
    """Write ``model`` to an XML file at ``path``."""
    element = model_to_element(model)
    _indent(element)
    ET.ElementTree(element).write(str(path), encoding="unicode", xml_declaration=True)


def model_to_string(model: Model) -> str:
    element = model_to_element(model)
    _indent(element)
    return ET.tostring(element, encoding="unicode")


def _indent(element: ET.Element, level: int = 0) -> None:
    pad = "\n" + "  " * level
    if len(element):
        if not (element.text or "").strip():
            element.text = pad + "  "
        for child in element:
            _indent(child, level + 1)
            if not (child.tail or "").strip():
                child.tail = pad + "  "
        if not (element[-1].tail or "").strip():
            element[-1].tail = pad
    elif level and not (element.tail or "").strip():
        element.tail = pad


# ---------------------------------------------------------------------------
# Reading
# ---------------------------------------------------------------------------

def model_from_element(root: ET.Element) -> Model:
    """Deserialise a model from an XML element tree."""
    if root.tag != "model":
        raise ModelParseError(f"expected <model> root element, got <{root.tag}>")
    name = root.get("name")
    if not name:
        raise ModelParseError("<model> element is missing a 'name' attribute")
    model = Model(name)

    for actor_el in root.findall("actor"):
        actor_name = actor_el.get("name")
        type_name = actor_el.get("type")
        dtype_name = actor_el.get("dtype")
        if not actor_name or not type_name or not dtype_name:
            raise ModelParseError(
                "<actor> elements require 'name', 'type' and 'dtype' attributes"
            )
        try:
            dtype = DataType.from_name(dtype_name)
        except ValueError as exc:
            raise ModelParseError(str(exc)) from None
        params: Dict[str, Any] = {}
        for param_el in actor_el.findall("param"):
            key = param_el.get("name")
            raw = param_el.get("value")
            if key is None or raw is None:
                raise ModelParseError(
                    f"actor {actor_name!r}: <param> requires 'name' and 'value'"
                )
            params[key] = _text_to_param(raw)
        model.add_actor(create_actor(actor_name, type_name, dtype, params))

    for conn_el in root.findall("connection"):
        src = conn_el.get("src", "")
        dst = conn_el.get("dst", "")
        try:
            src_actor, src_port = src.rsplit(".", 1)
            dst_actor, dst_port = dst.rsplit(".", 1)
        except ValueError:
            raise ModelParseError(
                f"connection endpoints must be 'actor.port', got src={src!r} dst={dst!r}"
            ) from None
        model.connect(src_actor, src_port, dst_actor, dst_port)

    return model


def read_model(path: PathLike) -> Model:
    """Parse the model XML file at ``path``; the result is validated."""
    try:
        tree = ET.parse(str(path))
    except ET.ParseError as exc:
        raise ModelParseError(f"cannot parse {path}: {exc}") from None
    except OSError as exc:
        raise ModelParseError(f"cannot read {path}: {exc}") from None
    model = model_from_element(tree.getroot())
    model.validate()
    return model


def model_from_string(text: str) -> Model:
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise ModelParseError(f"cannot parse model XML: {exc}") from None
    model = model_from_element(root)
    model.validate()
    return model
