"""Scalar element data types used throughout the model, IR and VM.

The paper's instruction-set format names element types ``i8 .. i64``,
``u8 .. u64``, ``f32`` and ``f64``; the same names are used in model
files, in IR value types and in ``.si`` instruction descriptions, so they
live here at the bottom of the dependency graph.
"""

from __future__ import annotations

import enum
from typing import Union

import numpy as np


class DataType(enum.Enum):
    """An element data type, named as in the paper's ISA files."""

    I8 = "i8"
    U8 = "u8"
    I16 = "i16"
    U16 = "u16"
    I32 = "i32"
    U32 = "u32"
    I64 = "i64"
    U64 = "u64"
    F32 = "f32"
    F64 = "f64"

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_name(cls, name: str) -> "DataType":
        """Return the type named ``name`` (e.g. ``"i32"``).

        Raises ``ValueError`` with the list of valid names on a miss, so
        parser error messages stay readable.
        """
        try:
            return cls(name.strip().lower())
        except ValueError:
            valid = ", ".join(t.value for t in cls)
            raise ValueError(f"unknown data type {name!r}; expected one of: {valid}") from None

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def bit_width(self) -> int:
        """Width of one element in bits (8/16/32/64)."""
        return int(self.value[1:])

    @property
    def byte_width(self) -> int:
        """Width of one element in bytes."""
        return self.bit_width // 8

    @property
    def is_float(self) -> bool:
        return self.value[0] == "f"

    @property
    def is_integer(self) -> bool:
        return not self.is_float

    @property
    def is_signed(self) -> bool:
        """True for signed integers and floats."""
        return self.value[0] in ("i", "f")

    @property
    def numpy_dtype(self) -> np.dtype:
        """The equivalent numpy dtype (used by the reference semantics and VM)."""
        return np.dtype(_NUMPY_NAMES[self])

    # ------------------------------------------------------------------
    # Value domain helpers
    # ------------------------------------------------------------------
    @property
    def min_value(self) -> Union[int, float]:
        if self.is_float:
            return float(np.finfo(self.numpy_dtype).min)
        return int(np.iinfo(self.numpy_dtype).min)

    @property
    def max_value(self) -> Union[int, float]:
        if self.is_float:
            return float(np.finfo(self.numpy_dtype).max)
        return int(np.iinfo(self.numpy_dtype).max)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


_NUMPY_NAMES = {
    DataType.I8: "int8",
    DataType.U8: "uint8",
    DataType.I16: "int16",
    DataType.U16: "uint16",
    DataType.I32: "int32",
    DataType.U32: "uint32",
    DataType.I64: "int64",
    DataType.U64: "uint64",
    DataType.F32: "float32",
    DataType.F64: "float64",
}

#: Types commonly used by the benchmark models.
INTEGER_TYPES = tuple(t for t in DataType if t.is_integer)
FLOAT_TYPES = (DataType.F32, DataType.F64)
SIGNED_INTEGER_TYPES = tuple(t for t in INTEGER_TYPES if t.is_signed)


def c_type_name(dtype: DataType) -> str:
    """The C99 type name the C emitter prints for ``dtype``."""
    if dtype is DataType.F32:
        return "float"
    if dtype is DataType.F64:
        return "double"
    return f"{'u' if not dtype.is_signed else ''}int{dtype.bit_width}_t"
