"""The stable public facade of the reproduction.

One request type, one result type, one entry point::

    from repro.api import CodegenOptions, GenerateRequest, generate

    result = generate(GenerateRequest(
        model="FIR",                       # name, path, or a Model object
        generator="hcg",
        options=CodegenOptions(arch="arm_a72", policy="permissive"),
        verify=True,
    ))
    print(result.c_source)

This facade subsumes the three generators' divergent
``generate``/``generate_verified`` signatures.  It is backed by the
parallel, cache-aware :class:`~repro.service.service.CodegenService`:
repeated requests for unchanged ``(model, ISA, generator, options)``
are answered byte-identically from the on-disk codegen cache, and
``generate_many`` fans independent requests out over a worker pool
with deterministic result ordering.

Stability policy (docs/api.md): the names exported here —
:class:`GenerateRequest`, :class:`GenerateResult`,
:class:`CodegenOptions`, :func:`generate`, :func:`generate_many` — are
the supported programmatic interface.  Fields are only ever appended,
never renamed or removed; everything under ``repro.codegen`` is
internal and may change between releases (CI enforces the boundary via
``tools/check_api_boundary.py``).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.arch.backend import BackendSpec, example_backend_pair
from repro.codegen.options import CodegenOptions
from repro.diagnostics import Diagnostic
from repro.errors import ReproError
from repro.source import ModelSource

#: the three supported generator names (mirrors repro.bench.runner)
GENERATOR_NAMES = ("simulink_coder", "dfsynth", "hcg")

__all__ = [
    "BackendSpec",
    "CodegenOptions",
    "GENERATOR_NAMES",
    "GenerateRequest",
    "GenerateResult",
    "ModelSource",
    "example_backend_pair",
    "generate",
    "generate_many",
    "partition",
]


@dataclasses.dataclass(frozen=True)
class GenerateRequest:
    """Everything one generation run needs, as one immutable value."""

    #: a :class:`~repro.source.ModelSource` — the one way to say which
    #: model.  Legacy spellings still coerce: a Model object silently
    #: (inline source), a bare string (``"FIR"``, ``models/fir.xml``)
    #: with a once-per-process ``DeprecationWarning``.
    model: Any
    #: ``"hcg"`` (the paper's tool) or one of the two baselines
    generator: str = "hcg"
    #: all codegen knobs, consolidated (see repro.codegen.options)
    options: CodegenOptions = CodegenOptions()
    #: differentially verify the program against the model's reference
    #: semantics before returning (docs/verification.md); raises
    #: :class:`~repro.errors.VerificationError` on divergence
    verify: bool = False
    #: seed for the verification input battery
    seed: int = 0
    #: simulation steps per verification input case
    steps: int = 2

    def __post_init__(self) -> None:
        if self.generator not in GENERATOR_NAMES:
            raise ReproError(
                f"unknown generator {self.generator!r}; "
                f"choose from {GENERATOR_NAMES}"
            )
        # Normalize every legacy spelling up front so downstream code
        # (service, cache keys, daemon) sees exactly one type.
        object.__setattr__(self, "model", ModelSource.of(self.model))

    # ------------------------------------------------------------------
    @property
    def source(self) -> ModelSource:
        """The normalized model source (alias for ``self.model``)."""
        return self.model

    def resolve_model(self):
        """The :class:`~repro.model.graph.Model` this request names."""
        return self.model.resolve()


@dataclasses.dataclass(frozen=True)
class GenerateResult:
    """The complete outcome of one generation run."""

    #: model name (after resolution)
    model: str
    #: generator that produced (or originally produced) the code
    generator: str
    #: architecture preset the code targets
    arch: str
    #: the emitted C source — byte-identical across cache hits
    c_source: str
    #: the IR program (for ``--ir`` dumps, projects, VM execution)
    program: Any
    #: every diagnostic the run recorded (stable HCG codes)
    diagnostics: Tuple[Diagnostic, ...] = ()
    #: generator-side counters (history hit rate, tracer counters, ...)
    metrics: Dict[str, Any] = dataclasses.field(default_factory=dict)
    #: whether this result was answered from the codegen cache
    from_cache: bool = False
    #: whether the program passed differential verification
    verified: bool = False
    #: content address of the result (``None`` when caching is off)
    cache_key: Optional[str] = None


def generate(request: GenerateRequest, *, service=None) -> GenerateResult:
    """The single entry point: one request in, one result out.

    A default :class:`~repro.service.service.CodegenService` is built
    from ``request.options`` (cache root, parallelism, tracer); pass an
    explicit ``service`` to share caches and worker pools across calls.
    """
    if service is None:
        from repro.service.service import CodegenService

        service = CodegenService.from_options(request.options)
    return service.generate(request)


def generate_many(
    requests: Sequence[GenerateRequest],
    *,
    jobs: Optional[int] = None,
    service=None,
) -> List[GenerateResult]:
    """Generate a batch of independent requests, possibly in parallel.

    Results come back in request order regardless of ``jobs``; the
    first failing request's exception is re-raised deterministically.
    """
    if service is None:
        from repro.service.service import CodegenService

        options = requests[0].options if requests else CodegenOptions()
        service = CodegenService.from_options(options)
    return service.generate_many(requests, jobs=jobs)


def partition(
    model: Any,
    backends: Optional[Sequence[Any]] = None,
    *,
    options: Optional[CodegenOptions] = None,
    steps: int = 2,
    seed: int = 2022,
    max_cuts: int = 16,
    verify: bool = True,
    tracer: Any = None,
):
    """Split one model across heterogeneous backends by predicted cost.

    ``model`` accepts a :class:`ModelSource`, a Model object, or any
    string :meth:`ModelSource.parse` understands.  ``backends`` accepts
    :class:`BackendSpec` objects or their ``[name=]arch[:field=value]*``
    string forms, defaulting to :func:`example_backend_pair`.  Every
    valid single cut of the model's schedule (plus each all-on-one
    assignment) is costed on the VM including per-edge transfer cycles;
    the cheapest plan comes back as a
    :class:`~repro.sched.partition.PartitionResult` — one program per
    partition plus the boundary-buffer handoff contract — after
    differential verification against the model's reference semantics
    (``verify=False`` skips that).
    """
    from repro.model.graph import Model
    from repro.sched.partition import partition_model

    if isinstance(model, ModelSource):
        resolved = model.resolve()
    elif isinstance(model, Model):
        resolved = model
    else:
        resolved = ModelSource.parse(str(model)).resolve()
    if backends is None:
        specs: Tuple[BackendSpec, ...] = example_backend_pair()
    else:
        specs = tuple(
            b if isinstance(b, BackendSpec) else BackendSpec.parse(str(b))
            for b in backends
        )
    return partition_model(
        resolved, specs, options=options, steps=steps, seed=seed,
        max_cuts=max_cuts, tracer=tracer, verify=verify,
    )
