"""The stable public facade of the reproduction.

One request type, one result type, one entry point::

    from repro.api import CodegenOptions, GenerateRequest, generate

    result = generate(GenerateRequest(
        model="FIR",                       # name, path, or a Model object
        generator="hcg",
        options=CodegenOptions(arch="arm_a72", policy="permissive"),
        verify=True,
    ))
    print(result.c_source)

This facade subsumes the three generators' divergent
``generate``/``generate_verified`` signatures.  It is backed by the
parallel, cache-aware :class:`~repro.service.service.CodegenService`:
repeated requests for unchanged ``(model, ISA, generator, options)``
are answered byte-identically from the on-disk codegen cache, and
``generate_many`` fans independent requests out over a worker pool
with deterministic result ordering.

Stability policy (docs/api.md): the names exported here —
:class:`GenerateRequest`, :class:`GenerateResult`,
:class:`CodegenOptions`, :func:`generate`, :func:`generate_many` — are
the supported programmatic interface.  Fields are only ever appended,
never renamed or removed; everything under ``repro.codegen`` is
internal and may change between releases (CI enforces the boundary via
``tools/check_api_boundary.py``).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.codegen.options import CodegenOptions
from repro.diagnostics import Diagnostic
from repro.errors import ReproError

#: the three supported generator names (mirrors repro.bench.runner)
GENERATOR_NAMES = ("simulink_coder", "dfsynth", "hcg")

__all__ = [
    "CodegenOptions",
    "GENERATOR_NAMES",
    "GenerateRequest",
    "GenerateResult",
    "generate",
    "generate_many",
]


@dataclasses.dataclass(frozen=True)
class GenerateRequest:
    """Everything one generation run needs, as one immutable value."""

    #: a :class:`~repro.model.graph.Model`, a benchmark name (``"FIR"``),
    #: or a model file path (``models/fir.xml``, ``*.mdl``)
    model: Any
    #: ``"hcg"`` (the paper's tool) or one of the two baselines
    generator: str = "hcg"
    #: all codegen knobs, consolidated (see repro.codegen.options)
    options: CodegenOptions = CodegenOptions()
    #: differentially verify the program against the model's reference
    #: semantics before returning (docs/verification.md); raises
    #: :class:`~repro.errors.VerificationError` on divergence
    verify: bool = False
    #: seed for the verification input battery
    seed: int = 0
    #: simulation steps per verification input case
    steps: int = 2

    def __post_init__(self) -> None:
        if self.generator not in GENERATOR_NAMES:
            raise ReproError(
                f"unknown generator {self.generator!r}; "
                f"choose from {GENERATOR_NAMES}"
            )

    # ------------------------------------------------------------------
    def resolve_model(self):
        """The :class:`~repro.model.graph.Model` this request names."""
        from repro.model.graph import Model

        if isinstance(self.model, Model):
            return self.model
        from repro.bench.models import BENCHMARK_MODELS

        name = str(self.model)
        if name in BENCHMARK_MODELS:
            return BENCHMARK_MODELS[name]()
        if name.endswith(".mdl"):
            from repro.model.mdl_io import read_mdl

            return read_mdl(name)
        from repro.model.xml_io import read_model

        return read_model(name)


@dataclasses.dataclass(frozen=True)
class GenerateResult:
    """The complete outcome of one generation run."""

    #: model name (after resolution)
    model: str
    #: generator that produced (or originally produced) the code
    generator: str
    #: architecture preset the code targets
    arch: str
    #: the emitted C source — byte-identical across cache hits
    c_source: str
    #: the IR program (for ``--ir`` dumps, projects, VM execution)
    program: Any
    #: every diagnostic the run recorded (stable HCG codes)
    diagnostics: Tuple[Diagnostic, ...] = ()
    #: generator-side counters (history hit rate, tracer counters, ...)
    metrics: Dict[str, Any] = dataclasses.field(default_factory=dict)
    #: whether this result was answered from the codegen cache
    from_cache: bool = False
    #: whether the program passed differential verification
    verified: bool = False
    #: content address of the result (``None`` when caching is off)
    cache_key: Optional[str] = None


def generate(request: GenerateRequest, *, service=None) -> GenerateResult:
    """The single entry point: one request in, one result out.

    A default :class:`~repro.service.service.CodegenService` is built
    from ``request.options`` (cache root, parallelism, tracer); pass an
    explicit ``service`` to share caches and worker pools across calls.
    """
    if service is None:
        from repro.service.service import CodegenService

        service = CodegenService.from_options(request.options)
    return service.generate(request)


def generate_many(
    requests: Sequence[GenerateRequest],
    *,
    jobs: Optional[int] = None,
    service=None,
) -> List[GenerateResult]:
    """Generate a batch of independent requests, possibly in parallel.

    Results come back in request order regardless of ``jobs``; the
    first failing request's exception is re-raised deterministically.
    """
    if service is None:
        from repro.service.service import CodegenService

        options = requests[0].options if requests else CodegenOptions()
        service = CodegenService.from_options(options)
    return service.generate_many(requests, jobs=jobs)
