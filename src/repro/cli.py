"""Command-line interface: ``python -m repro <command>``.

Commands mirror how the paper's tool is used:

* ``generate`` — model XML in, C source out, for a chosen generator and
  architecture;
* ``run``      — execute a model's generated code on the cost VM and
  report outputs and modelled cycles;
* ``bench``    — run the paper's evaluation matrix (6 models x 3 ISA
  presets x 3 generators) and write a schema-versioned
  ``BENCH_codegen.json``; with ``--model`` it benchmarks one model on
  one target instead;
* ``partition`` — split one model across heterogeneous backends by
  predicted VM cost (including transfer), emitting one program per
  partition plus the boundary-buffer handoff contract;
* ``inspect``  — dispatch report: how HCG classifies a model's actors;
* ``isa``      — list, dump or lint the built-in instruction sets;
* ``verify``   — differential translation validation: run every
  generator's output against the model reference semantics (and each
  other), optionally fuzzing random models and ISA subsets; failures
  are minimized and quarantined as repro cases (docs/verification.md);
* ``serve``    — the resilient codegen daemon: generate/verify over an
  HTTP JSON API with backpressure, deadlines, retries, circuit
  breakers and graceful drain (docs/api.md, docs/robustness.md).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

import numpy as np

from repro.arch.presets import get_architecture, preset_names
from repro.bench.models import benchmark_inputs
from repro.bench.report import render_table2, summarize_improvements
from repro.bench.runner import GENERATORS, make_generator
from repro.codegen.hcg.dispatch import dispatch
from repro.compiler.toolchain import compiler_names, get_compiler
from repro.errors import ReproError
from repro.ir.printer import format_program
from repro.isa.parser import dump_instruction_set
from repro.isa.registry import builtin_names, load_builtin
from repro.schedule.scheduler import compute_schedule
from repro.vm.machine import Machine


def _add_model_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--width", type=int, default=1, dest="mdl_width",
        help="default Inport width when loading classic .mdl models",
    )


def _add_policy_args(parser: argparse.ArgumentParser) -> None:
    group = parser.add_mutually_exclusive_group()
    group.add_argument(
        "--strict", dest="policy", action="store_const", const="strict",
        default="strict",
        help="fail generation when a fault forces a degradation (default)",
    )
    group.add_argument(
        "--permissive", dest="policy", action="store_const", const="permissive",
        help="degrade gracefully on faults (scalar/general fallbacks) and "
             "report diagnostics instead of failing",
    )


def _print_diagnostics(generator) -> None:
    """Print the diagnostics summary of the last generation, if any."""
    collector = getattr(generator, "last_diagnostics", None)
    if collector is None or len(collector) == 0:
        return
    print(collector.summary_table(), file=sys.stderr)


def _print_diagnostic_tuple(diagnostics) -> None:
    """Print a facade result's diagnostics tuple as the summary table."""
    if not diagnostics:
        return
    from repro.diagnostics import DiagnosticsCollector

    collector = DiagnosticsCollector(policy="permissive")
    collector.extend(diagnostics)
    print(collector.summary_table(), file=sys.stderr)


def _add_service_args(parser: argparse.ArgumentParser) -> None:
    """``--jobs`` / ``--cache-dir`` / ``--no-cache`` (docs/api.md)."""
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker threads for candidate pre-calculation and matrix "
             "fan-out (default 1; results are identical at any value)",
    )
    parser.add_argument(
        "--cache-dir", metavar="DIR",
        help="cache root for the codegen cache, selection histories and "
             "candidate timings (default: $REPRO_CACHE_DIR, then "
             "$XDG_CACHE_HOME/repro, then ~/.cache/repro)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk codegen cache for this invocation",
    )
    parser.add_argument(
        "--task-timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget per fanned-out cell; a cell still running "
             "at the deadline degrades with HCG213 instead of hanging the "
             "batch (default: unbounded)",
    )


def _service_options(args: argparse.Namespace, tracer=None):
    """The :class:`~repro.codegen.options.CodegenOptions` a command's
    flags describe.

    Caching activates when a cache root is configured — ``--cache-dir``
    or ``REPRO_CACHE_DIR`` — and ``--no-cache`` always wins; without a
    configured root the CLI stays hermetic (no writes under ``~``).
    """
    from repro.codegen.options import CodegenOptions
    from repro.service.paths import ENV_CACHE_DIR

    use_cache = not args.no_cache and bool(
        args.cache_dir or os.environ.get(ENV_CACHE_DIR)
    )
    # verify's --arch is a repeatable list; the per-cell arch is applied
    # downstream, so any placeholder preset works here.
    arch = getattr(args, "arch", None)
    if not isinstance(arch, str):
        arch = "arm_a72"
    return CodegenOptions(
        arch=arch,
        policy=getattr(args, "policy", "strict"),
        cache_dir=args.cache_dir,
        use_cache=use_cache,
        jobs=max(1, args.jobs),
        task_timeout_s=getattr(args, "task_timeout", None),
        memory_budget=getattr(args, "memory_budget", None),
        tracer=tracer,
    )


def _add_target_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--arch", default="arm_a72", choices=preset_names(),
        help="target architecture preset",
    )
    parser.add_argument(
        "--compiler", default="gcc", choices=compiler_names(),
        help="toolchain model applied to the generated code",
    )


def _add_budget_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--memory-budget", type=int, default=None, metavar="BYTES",
        help="bound each HCG batch group's vector working set to this "
             "many bytes; oversized groups are tiled into several "
             "budget-fitting passes (HCG222) or, when even one node "
             "overflows, demoted to scalar code (HCG221)",
    )


def _load_model(args: argparse.Namespace):
    """Resolve the positional ``model`` argument via the ModelSource
    grammar (``FIR``, ``FIR@256``, ``models/fir.xml``,
    ``synthetic:mixed:64``)."""
    from repro.source import ModelSource

    width = getattr(args, "mdl_width", 1) or 1
    return ModelSource.parse(str(args.model), default_width=width).resolve()


def cmd_generate(args: argparse.Namespace) -> int:
    from repro.api import GenerateRequest, generate

    model = _load_model(args)
    arch = get_architecture(args.arch)
    tracer = None
    if args.trace_out:
        from repro.observability.tracer import Tracer

        tracer = Tracer()
    result = generate(GenerateRequest(
        model=model, generator=args.generator,
        options=_service_options(args, tracer=tracer),
    ))
    program = result.program
    _print_diagnostic_tuple(result.diagnostics)
    if result.from_cache:
        print(f"cache hit ({result.cache_key[:12]})", file=sys.stderr)
    if tracer is not None:
        tracer.dump_json(args.trace_out)
        print(f"wrote {args.trace_out}", file=sys.stderr)
    if args.project:
        from pathlib import Path

        from repro.ir.project import emit_project

        directory = Path(args.project)
        directory.mkdir(parents=True, exist_ok=True)
        for filename, contents in emit_project(program, arch.instruction_set).items():
            (directory / filename).write_text(contents)
            print(f"wrote {directory / filename}")
        return 0
    if args.ir:
        text = format_program(program)
    else:
        text = result.c_source
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    model = _load_model(args)
    arch = get_architecture(args.arch)
    compiler = get_compiler(args.compiler)
    kwargs = {}
    if args.generator == "hcg" and getattr(args, "memory_budget", None) is not None:
        kwargs["memory_budget"] = args.memory_budget
    generator = make_generator(args.generator, arch, policy=args.policy, **kwargs)
    program = compiler.compile(generator.generate(model))
    _print_diagnostics(generator)
    machine = Machine(program, arch, cost=compiler.effective_cost(arch))
    inputs = benchmark_inputs(model, seed=args.seed)
    result = None
    for _ in range(args.steps):
        result = machine.run(inputs)
    assert result is not None
    for name, value in result.outputs.items():
        flat = np.asarray(value).ravel()
        preview = ", ".join(f"{v:g}" for v in flat[:8])
        suffix = ", ..." if flat.size > 8 else ""
        print(f"{name}: [{preview}{suffix}]  ({flat.size} elements)")
    print(f"modelled cycles/step: {result.cycles:,.1f}")
    if args.profile:
        from repro.vm.profile import profile_report

        print(profile_report(result, arch))
    else:
        print(f"cost breakdown: {json.dumps(result.cost.as_dict(), indent=2)}")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench.trajectory import (
        ISA_MATRIX_ARCHS,
        bench_matrix,
        isa_of_archs,
        resolve_bench_models,
    )
    from repro.observability.benchfile import build_bench_record, write_bench_record

    compiler = get_compiler(args.compiler)
    models = resolve_bench_models(args.model, args.quick)
    # --model pins a single target; the default run covers the paper's
    # full evaluation matrix (every ISA preset) and writes the record.
    archs = (args.arch,) if args.model else ISA_MATRIX_ARCHS
    steps = 2
    service = None
    options = _service_options(args)
    if options.use_cache:
        from repro.service.service import CodegenService

        service = CodegenService.from_options(options)
    matrix = bench_matrix(models, compiler, archs=archs, steps=steps,
                          jobs=options.jobs, service=service,
                          options=options if service is not None else None,
                          memory_budget=options.memory_budget)
    if service is not None and service.cache is not None:
        stats = service.cache.stats()
        print(
            f"codegen cache: {stats['hits']} hit(s), {stats['misses']} "
            f"miss(es), {stats['entries']} entr(ies)",
            file=sys.stderr,
        )
    for arch_name, rows in matrix.items():
        arch = get_architecture(arch_name)
        print(f"target: {arch.name} ({arch.isa_name}) + {compiler.name}")
        print(render_table2(rows))
        if len(rows) > 1:
            summary = summarize_improvements(rows)
            print(
                f"HCG improvement: vs Simulink {summary['simulink_min']:.1f}-"
                f"{summary['simulink_max']:.1f}%, vs DFSynth {summary['dfsynth_min']:.1f}-"
                f"{summary['dfsynth_max']:.1f}%"
            )
        print()
    if args.synthetic:
        from repro.bench.synthetic import matcher_cells

        # One synthetic cell, on the paper's home architecture when the
        # run covers it.  Both matcher kinds run and the cells land in
        # the record as Synthetic<N> rows, so the alg2.match.* counters
        # of the committed baseline demonstrate the indexed speedup.
        synth_arch = "arm_a72" if "arm_a72" in archs else archs[0]
        cells = matcher_cells(args.synthetic, synth_arch, compiler,
                              steps=steps, reps=3,
                              seed=args.synthetic_seed)
        row_name = f"Synthetic{args.synthetic}"
        if args.synthetic_seed:
            row_name += f"s{args.synthetic_seed}"
        matrix.setdefault(synth_arch, {})[row_name] = cells
        indexed_wall = cells["hcg_indexed"].metrics["alg2.match.wall_s"]
        naive_wall = cells["hcg_naive"].metrics["alg2.match.wall_s"]
        print(
            f"synthetic cascade ({args.synthetic} actors, {synth_arch}): "
            f"indexed matcher {indexed_wall * 1000:.2f} ms vs naive "
            f"{naive_wall * 1000:.2f} ms ({naive_wall / indexed_wall:.1f}x)"
        )
        print()
    json_path = args.json or (None if args.model else "BENCH_codegen.json")
    if json_path:
        record = build_bench_record(
            matrix, isa_of_archs(archs), compiler.name, steps=steps,
            quick=args.quick, seed=args.synthetic_seed,
            memory_budget=options.memory_budget,
        )
        write_bench_record(record, json_path)
        print(f"wrote {json_path}")
    return 0


def cmd_inspect(args: argparse.Namespace) -> int:
    model = _load_model(args)
    arch = get_architecture(args.arch)
    schedule = compute_schedule(model)
    result = dispatch(model, schedule, arch.instruction_set)
    print(f"model {model.name}: {len(model.actors)} actors, "
          f"{len(model.connections)} connections")
    print(f"schedule: {' -> '.join(schedule.order)}")
    print(f"intensive computing actors: {list(result.intensive) or 'none'}")
    if result.groups:
        for index, group in enumerate(result.groups):
            lanes = arch.instruction_set.vector_bits // group.bit_width
            print(f"batch group {index}: {list(group.members)} "
                  f"(width {group.width}, {group.bit_width}-bit elements, "
                  f"{lanes} lanes/register)")
    else:
        print("batch groups: none")
    classified = set(result.intensive) | {m for g in result.groups for m in g.members}
    basic = [a.name for a in model.actors if a.name not in classified]
    print(f"conventional (basic) actors: {basic}")
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    from repro.bench.trajectory import resolve_bench_models
    from repro.verify import faults
    from repro.verify.service import DEFAULT_ARCHS, run_session

    if args.inject_fault:
        # Test-only hook: arm fault injection so CI can prove the
        # verifier catches a silently-miscompiled program end to end.
        try:
            faults.install_many(args.inject_fault)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    try:
        models = None
        if args.model:
            models = resolve_bench_models(args.model, quick=not args.full)
        options = _service_options(args)
        service = None
        if options.use_cache:
            from repro.service.service import CodegenService

            service = CodegenService.from_options(options)
        result = run_session(
            models=models,
            archs=tuple(args.arch) if args.arch else DEFAULT_ARCHS,
            fuzz=args.fuzz,
            seed=args.seed,
            steps=args.steps,
            corpus=args.corpus,
            quarantine=args.quarantine,
            progress=(lambda line: print(line, file=sys.stderr))
            if args.verbose else None,
            jobs=options.jobs,
            service=service,
        )
    finally:
        if args.inject_fault:
            faults.clear()
    print(result.summary())
    if len(result.diagnostics):
        print(result.diagnostics.summary_table(), file=sys.stderr)
    return 0 if result.ok else 1


def cmd_serve(args: argparse.Namespace) -> int:
    import dataclasses as _dataclasses

    from repro.observability.tracer import Tracer
    from repro.server import KNOWN_CHAOS, CodegenDaemon, ServerConfig
    from repro.server.config import (
        ConfigError,
        TenantLimits,
        apply_overrides,
        load_config_overrides,
        parse_tenant_spec,
    )
    from repro.server.retry import RetryPolicy
    from repro.service.service import CodegenService

    chaos = tuple(name for name in (args.inject or "").split(",") if name)
    unknown = [name for name in chaos if name not in KNOWN_CHAOS]
    if unknown:
        print(f"error: unknown chaos fault(s) {unknown}; "
              f"known: {list(KNOWN_CHAOS)}", file=sys.stderr)
        return 2
    options = _service_options(args)
    service = CodegenService.from_options(options, tracer=None)
    try:
        default_limits = {
            key: value
            for key, value in (
                ("rate", args.tenant_rate),
                ("burst", args.tenant_burst),
                ("max_concurrency", args.tenant_concurrency),
                ("max_queued", args.tenant_queued),
            )
            if value is not None
        }
        default_tenant = _dataclasses.replace(TenantLimits(), **default_limits)
        tenants = {}
        for spec_text in args.tenants or ():
            name, overrides = parse_tenant_spec(spec_text)
            base = tenants.get(name, default_tenant)
            tenants[name] = _dataclasses.replace(base, **overrides)
        config = ServerConfig(
            host=args.host,
            port=args.port,
            queue_size=args.queue_size,
            workers=args.workers,
            deadline_s=args.deadline,
            drain_grace_s=args.drain_grace,
            retry=RetryPolicy(attempts=args.retry_attempts),
            breaker_threshold=args.breaker_threshold,
            breaker_cooldown_s=args.breaker_cooldown,
            default_tenant=default_tenant,
            tenants=tenants,
            batch_window_s=args.batch_window,
            batch_max=args.batch_max,
            config_path=args.config_file,
            chaos=chaos,
            chaos_rate=args.chaos_rate,
            chaos_seed=args.chaos_seed,
            chaos_slow_s=args.chaos_slow,
            chaos_noisy_tenant=args.chaos_noisy_tenant,
        )
        if args.config_file:
            # Apply the overrides file at boot too, so SIGHUP re-reads
            # produce a config the daemon could have started with.
            config, _ = apply_overrides(
                config, load_config_overrides(args.config_file))
    except (ConfigError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    daemon = CodegenDaemon(service, config, base_options=options,
                           tracer=Tracer())
    return daemon.run()


def cmd_partition(args: argparse.Namespace) -> int:
    from repro.api import BackendSpec, example_backend_pair, partition
    from repro.codegen.options import CodegenOptions

    if args.backends:
        backends = BackendSpec.parse_list(args.backends)
    else:
        backends = example_backend_pair(args.arch)
    options = CodegenOptions(
        arch=args.arch, policy="permissive",
        memory_budget=getattr(args, "memory_budget", None),
    )
    result = partition(
        str(args.model), backends, options=options,
        steps=args.steps, seed=args.seed, verify=not args.no_verify,
    )
    _print_diagnostic_tuple(result.diagnostics)
    print(f"model {result.model}: {len(result.partitions)} partition(s), "
          f"{result.candidates_evaluated} candidate(s) evaluated")
    for index, part in enumerate(result.partitions):
        print(f"  partition {index} on {part.backend.describe()}: "
              f"[{', '.join(part.actors)}]")
    if result.handoffs:
        for handoff in result.handoffs:
            nbytes = handoff.dtype.byte_width
            for dim in handoff.shape:
                nbytes *= dim
            print(f"  handoff {handoff.name}: {handoff.src_actor}.{handoff.src_port} "
                  f"{handoff.producer} -> {handoff.consumer} ({nbytes} bytes)")
    else:
        print("  handoffs: none")
    best_single = result.best_single_backend_cycles()
    print(f"predicted cycles/step: {result.predicted_cycles:,.1f} "
          f"({result.transfer_cycles:,.1f} transfer)")
    print(f"best single backend:   {best_single:,.1f}")
    if result.split and result.predicted_cycles < best_single:
        gain = (best_single - result.predicted_cycles) / best_single * 100.0
        print(f"partitioning wins by {gain:.1f}%")
    if not args.no_verify:
        print(f"differential verification: "
              f"{'ok' if result.verified else 'FAILED'}")
    if args.contract:
        with open(args.contract, "w") as handle:
            json.dump(result.contract(), handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.contract}")
    return 0


def cmd_isa(args: argparse.Namespace) -> int:
    if args.name == "lint":
        from repro.isa.lint import lint_paths

        findings = lint_paths(args.paths)
        for finding in findings:
            print(finding.format())
        if findings:
            print(f"{len(findings)} ISA lint finding(s)", file=sys.stderr)
            return 1
        print("isa lint: clean")
        return 0
    if args.paths:
        print("error: extra arguments are only valid with 'isa lint'",
              file=sys.stderr)
        return 2
    if not args.name:
        for name in builtin_names():
            iset = load_builtin(name)
            compound = sum(1 for i in iset.instructions if i.node_count > 1)
            print(f"{name:8s} {iset.vector_bits:4d}-bit  "
                  f"{len(iset.instructions):3d} instructions "
                  f"({compound} compound)")
        return 0
    print(dump_instruction_set(load_builtin(args.name)), end="")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HCG reproduction: Simulink-style code generation with "
                    "SIMD instruction synthesis (DAC 2022)",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "examples:\n"
            "  repro generate FIR --arch arm_a72 -o fir.c\n"
            "  repro generate models/fir.xml --trace-out fir_trace.json\n"
            "  repro run FFT --profile --arch intel_i7_8700\n"
            "  repro bench --quick                 # full ISA matrix, scaled\n"
            "  repro bench --model FIR --arch arm_a72\n"
            "  repro bench --json BENCH_codegen.json\n"
            "  repro bench --quick --memory-budget 4096\n"
            "  repro generate synthetic:mixed:64 --memory-budget 256\n"
            "  repro partition HighPass --backends "
            "cpu=arm_a72:transfer=0.25,accel=arm_a72:simd_scale=0.25\n"
            "  repro inspect models/fir.xml\n"
            "  repro isa neon\n"
            "  repro serve --port 8337 --workers 4\n"
            "\n"
            "docs/architecture.md walks the pipeline end to end;\n"
            "docs/observability.md documents traces, metrics and the\n"
            "BENCH_codegen.json schema."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", help="generate C (or IR) for a model")
    p.add_argument("model", help="model XML path, or a benchmark name (FFT, FIR, ...)")
    p.add_argument("--generator", default="hcg", choices=GENERATORS)
    p.add_argument("--output", "-o", help="write to a file instead of stdout")
    p.add_argument("--ir", action="store_true", help="print the IR instead of C")
    p.add_argument("--project", metavar="DIR",
                   help="write a deployable project (source + header + README)")
    p.add_argument("--trace-out", metavar="PATH",
                   help="record a span trace of the generation pipeline and "
                        "write it as JSON (see docs/observability.md)")
    _add_model_args(p)
    _add_target_args(p)
    _add_budget_arg(p)
    _add_policy_args(p)
    _add_service_args(p)
    p.set_defaults(func=cmd_generate)

    p = sub.add_parser("run", help="execute generated code on the cost VM")
    p.add_argument("model")
    p.add_argument("--generator", default="hcg", choices=GENERATORS)
    p.add_argument("--steps", type=int, default=1)
    p.add_argument("--seed", type=int, default=2022)
    p.add_argument("--profile", action="store_true",
                   help="print a profiler view of the cycle budget")
    _add_model_args(p)
    _add_target_args(p)
    _add_budget_arg(p)
    _add_policy_args(p)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser(
        "bench",
        help="run the evaluation matrix (6 models x 5 ISAs x 3 generators) "
             "and write BENCH_codegen.json",
        description="Run the paper's evaluation on the cost-model VM.  "
                    "Without --model, every benchmark model runs under all "
                    "five ISA presets (neon / sse4 / avx2 / rvv / avx512) "
                    "for all three "
                    "generators, and the results are written to a "
                    "schema-versioned BENCH_codegen.json.  With --model, a "
                    "single model is benchmarked on --arch only.",
    )
    p.add_argument(
        "--model", action="append", metavar="NAME_OR_PATH",
        help="benchmark name (FIR, FFT, ...) or model file path; repeatable. "
             "Pins the run to a single target (--arch)",
    )
    p.add_argument(
        "--quick", action="store_true",
        help="scale the named benchmarks down (n=64) for a fast smoke run",
    )
    p.add_argument(
        "--synthetic", type=int, metavar="N",
        help="also benchmark a synthetic N-actor cascade under both "
             "subgraph matchers (indexed vs naive) and record the "
             "alg2.match.* counters as Synthetic<N> rows",
    )
    p.add_argument(
        "--synthetic-seed", type=int, default=0, metavar="SEED",
        help="seed for the --synthetic model's constants and topology "
             "(recorded in BENCH_codegen.json; default 0, the committed "
             "baseline's instance)",
    )
    p.add_argument(
        "--json", metavar="PATH",
        help="where to write the BENCH_codegen.json record "
             "(default: BENCH_codegen.json in matrix mode, off with --model)",
    )
    _add_target_args(p)
    _add_budget_arg(p)
    _add_service_args(p)
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser("inspect", help="show HCG's actor dispatch for a model")
    p.add_argument("model")
    _add_model_args(p)
    _add_target_args(p)
    p.set_defaults(func=cmd_inspect)

    p = sub.add_parser(
        "verify",
        help="differential translation validation (+ fuzzing)",
        description="Run every generator's output on the cost VM against "
                    "the model's reference semantics over an adversarial "
                    "input battery, replay the committed repro corpus, and "
                    "optionally fuzz random (model, ISA subset) pairs.  "
                    "Failures are minimized by the shrinker and written to "
                    "the quarantine directory.  See docs/verification.md.",
    )
    p.add_argument(
        "--model", action="append", metavar="NAME_OR_PATH",
        help="verify only this benchmark name or model file; repeatable "
             "(default: the whole quick-scaled benchmark suite)",
    )
    p.add_argument("--full", action="store_true",
                   help="verify named benchmarks at full scale, not n=64")
    p.add_argument("--fuzz", type=int, default=0, metavar="N",
                   help="additionally fuzz N random (model, ISA) cases")
    p.add_argument("--seed", type=int, default=0,
                   help="deterministic seed for inputs and fuzzing")
    p.add_argument("--steps", type=int, default=2,
                   help="simulation steps per input case (default 2)")
    p.add_argument(
        "--arch", action="append", choices=preset_names(), metavar="ARCH",
        help="target architecture preset; repeatable (default: all five "
             "ISA presets)",
    )
    p.add_argument("--corpus", metavar="DIR",
                   help="replay committed repro cases from this directory")
    p.add_argument("--quarantine", metavar="DIR", default="verify_quarantine",
                   help="where minimized failures are written "
                        "(default: verify_quarantine/)")
    p.add_argument("--verbose", "-v", action="store_true",
                   help="print each case's verdict as it completes")
    p.add_argument("--inject-fault", action="append", help=argparse.SUPPRESS)
    _add_budget_arg(p)
    _add_service_args(p)
    p.set_defaults(func=cmd_verify)

    p = sub.add_parser(
        "partition",
        help="split one model across >= 2 backends by predicted cost",
        description="Partition a model's dataflow graph across "
                    "heterogeneous backends — each an (ISA preset, cost "
                    "table) pair — choosing the cut by predicted VM cost "
                    "including per-edge transfer cycles.  Emits one "
                    "program per partition plus the boundary-buffer "
                    "handoff contract, differentially verified against "
                    "the model's reference semantics.",
    )
    p.add_argument("model",
                   help="model spec: benchmark name, path, FIR@256, or "
                        "synthetic:mixed:64")
    p.add_argument(
        "--backends", metavar="SPEC[,SPEC...]",
        help="comma-separated backend specs, each "
             "[name=]arch[:field=value]* (fields: transfer, simd_scale, "
             "scalar_scale, simd_load, simd_store, call_overhead); "
             "default: the example cpu+accel pair on --arch",
    )
    p.add_argument("--steps", type=int, default=2,
                   help="simulation steps per cost evaluation (default 2)")
    p.add_argument("--seed", type=int, default=2022,
                   help="seed for the cost-evaluation input battery")
    p.add_argument("--no-verify", action="store_true",
                   help="skip differential verification of the chosen plan")
    p.add_argument("--contract", metavar="PATH",
                   help="write the JSON handoff contract to this file")
    _add_target_args(p)
    _add_budget_arg(p)
    p.set_defaults(func=cmd_partition)

    p = sub.add_parser(
        "serve",
        help="run the resilient codegen daemon (HTTP JSON API)",
        description="Serve generate/verify requests over HTTP with bounded "
                    "admission (429 + Retry-After), per-request deadlines, "
                    "retries with backoff, per-generator circuit breakers "
                    "that demote traffic to the scalar fallback, and "
                    "graceful SIGTERM drain.  Protocol: docs/api.md; "
                    "failure semantics: docs/robustness.md.  Load + chaos "
                    "harness: tools/loadgen.py.",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8337,
                   help="TCP port (0 = ephemeral; the bound port is logged "
                        "in the 'listening' event)")
    p.add_argument("--queue-size", type=int, default=64, metavar="N",
                   help="bounded request queue; beyond it requests are shed "
                        "with 429 + Retry-After (default 64)")
    p.add_argument("--workers", type=int, default=4, metavar="N",
                   help="concurrent request workers (default 4)")
    p.add_argument("--deadline", type=float, default=10.0, metavar="SECONDS",
                   help="default and maximum per-request wall-clock budget "
                        "(default 10)")
    p.add_argument("--drain-grace", type=float, default=30.0,
                   metavar="SECONDS",
                   help="how long a SIGTERM drain waits for accepted "
                        "requests (default 30)")
    p.add_argument("--retry-attempts", type=int, default=3, metavar="N",
                   help="total tries per request for transient faults "
                        "(default 3; 1 disables retries)")
    p.add_argument("--breaker-threshold", type=int, default=5, metavar="N",
                   help="consecutive failures that trip a generator's "
                        "circuit breaker (default 5)")
    p.add_argument("--breaker-cooldown", type=float, default=2.0,
                   metavar="SECONDS",
                   help="open-state cooldown before a half-open probe "
                        "(default 2)")
    p.add_argument("--batch-window", type=float, default=0.01,
                   metavar="SECONDS",
                   help="coalesce compatible queued generates within this "
                        "window onto one executor pass (0 disables; "
                        "default 0.01)")
    p.add_argument("--batch-max", type=int, default=8, metavar="N",
                   help="most requests one coalesced batch may carry "
                        "(default 8)")
    p.add_argument("--config", metavar="FILE", dest="config_file",
                   help="JSON overrides applied at boot and re-read on "
                        "SIGHUP / empty POST /admin/reload "
                        "(reloadable fields only; see docs/api.md)")
    p.add_argument("--tenant", action="append", metavar="NAME:K=V[,K=V...]",
                   dest="tenants",
                   help="per-tenant admission limits, repeatable "
                        "(keys: rate, burst, max_concurrency, max_queued, "
                        "weight; e.g. --tenant noisy:rate=5,burst=10)")
    p.add_argument("--tenant-rate", type=float, default=None, metavar="R",
                   help="default-tenant sustained admission rate "
                        "(requests/second)")
    p.add_argument("--tenant-burst", type=int, default=None, metavar="N",
                   help="default-tenant burst allowance (token bucket "
                        "capacity)")
    p.add_argument("--tenant-concurrency", type=int, default=None,
                   metavar="N",
                   help="default-tenant concurrent-request quota")
    p.add_argument("--tenant-queued", type=int, default=None, metavar="N",
                   help="default-tenant queued-request quota")
    p.add_argument("--inject", metavar="FAULT[,FAULT...]",
                   help="chaos harness: inject faults (worker_crash, "
                        "slow_generator, cache_corrupt, disk_full, "
                        "noisy_neighbor)")
    p.add_argument("--chaos-rate", type=float, default=0.25,
                   help=argparse.SUPPRESS)
    p.add_argument("--chaos-seed", type=int, default=0,
                   help=argparse.SUPPRESS)
    p.add_argument("--chaos-slow", type=float, default=1.0,
                   help=argparse.SUPPRESS)
    p.add_argument("--chaos-noisy-tenant", default="noisy",
                   help=argparse.SUPPRESS)
    _add_policy_args(p)
    _add_service_args(p)
    # A daemon must degrade and keep serving, not abort the process; the
    # strict/permissive choice still applies per request via "options".
    p.set_defaults(policy="permissive")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "isa",
        help="list, dump or lint instruction sets",
        description="Without arguments, list the packaged instruction "
                    "sets.  With a name, dump that set as .si text.  "
                    "'repro isa lint [FILE ...]' lints .si data files "
                    "(default: the packaged ones) with stable ISA1xx "
                    "error codes.",
    )
    p.add_argument("name", nargs="?",
                   help="dump this set as .si text, or 'lint'")
    p.add_argument("paths", nargs="*",
                   help=".si files for 'isa lint' (default: packaged sets)")
    p.set_defaults(func=cmd_isa)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        diagnostics = getattr(exc, "diagnostics", ())
        if diagnostics:
            for diagnostic in diagnostics:
                print(f"  {diagnostic.format()}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
