"""A lightweight span tracer for the generation pipeline.

Spans nest via the context-manager protocol and time themselves with
the monotonic :func:`time.perf_counter` clock, so system clock jumps
never produce negative durations.  A tracer also carries named
*counters* (cache hits, subgraphs enumerated, ...) that pipeline stages
bump as they run.

Tracing is opt-in.  Code under instrumentation holds a reference that
is either a real :class:`Tracer` or the shared :data:`NULL_TRACER`,
whose ``span()`` returns one preallocated no-op handle and whose
``count()`` does nothing — when tracing is disabled the instrumentation
cost is one attribute lookup and one call per site, with no allocation
and no clock reads (guarded by ``tests/observability/test_tracer.py``).

Typical use::

    tracer = Tracer()
    with tracer.span("generate", model=model.name):
        with tracer.span("dispatch") as span:
            ...
            span.set(groups=len(result.groups))
        tracer.count("alg1.history_hit")
    tracer.dump_json("trace.json")

The exported JSON (``{"schema": 1, "spans": [...], "counters": {...}}``)
is documented in docs/observability.md.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

#: on-disk format of :meth:`Tracer.to_dict`; bump when the layout changes
TRACE_SCHEMA_VERSION = 1


class Span:
    """One timed, attributed, nestable section of the pipeline.

    Entering the span starts its clock and pushes it on the owning
    tracer's stack; leaving stops the clock, pops the stack and attaches
    the span to its parent (or the tracer's roots).  An exception
    propagating through marks ``status="error"`` and records the
    exception type — the span still closes, so a fault-isolated retry
    (e.g. a demoted batch group) leaves an honest trace behind.
    """

    __slots__ = ("name", "attrs", "start", "end", "children", "status", "_tracer")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.start: Optional[float] = None
        self.end: Optional[float] = None
        self.children: List["Span"] = []
        self.status = "ok"

    # ------------------------------------------------------------------
    def __enter__(self) -> "Span":
        self._tracer._push(self)
        self.start = self._tracer._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end = self._tracer._clock()
        if exc_type is not None:
            self.status = "error"
            self.attrs.setdefault("exception", exc_type.__name__)
        self._tracer._pop(self)
        return False  # never swallow

    # ------------------------------------------------------------------
    def set(self, **attrs: Any) -> "Span":
        """Attach attributes to the span (chainable)."""
        self.attrs.update(attrs)
        return self

    @property
    def duration(self) -> float:
        """Elapsed seconds (0.0 while the span is still open)."""
        if self.start is None or self.end is None:
            return 0.0
        return self.end - self.start

    def to_dict(self, epoch: float = 0.0) -> Dict[str, Any]:
        return {
            "name": self.name,
            "start_s": round((self.start or 0.0) - epoch, 9),
            "duration_s": round(self.duration, 9),
            "status": self.status,
            "attrs": dict(self.attrs),
            "children": [child.to_dict(epoch) for child in self.children],
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Span({self.name!r}, {self.duration * 1e3:.3f} ms, {self.attrs})"


class Tracer:
    """Collects spans and counters for one (or several) generation runs."""

    enabled = True

    def __init__(self, clock=time.perf_counter) -> None:
        self._clock = clock
        self.roots: List[Span] = []
        self.counters: Dict[str, float] = {}
        self._stack: List[Span] = []

    # ------------------------------------------------------------------
    def span(self, name: str, **attrs: Any) -> Span:
        """A new span; use as ``with tracer.span("dispatch") as s:``."""
        return Span(self, name, attrs)

    def count(self, name: str, delta: float = 1) -> None:
        """Bump a named counter."""
        self.counters[name] = self.counters.get(name, 0) + delta

    # ------------------------------------------------------------------
    def _push(self, span: Span) -> None:
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        # The span being closed is normally the top of the stack; a
        # mismatched pop (exotic control flow) degrades gracefully by
        # discarding deeper unclosed spans.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        parent = self._stack[-1] if self._stack else None
        if parent is not None:
            parent.children.append(span)
        else:
            self.roots.append(span)

    # ------------------------------------------------------------------
    def iter_spans(self):
        """Every finished span, depth-first."""
        stack = list(reversed(self.roots))
        while stack:
            span = stack.pop()
            yield span
            stack.extend(reversed(span.children))

    def find(self, name: str) -> List[Span]:
        """All finished spans with this name."""
        return [s for s in self.iter_spans() if s.name == name]

    def total_seconds(self, name: str) -> float:
        """Summed duration of every span with this name."""
        return sum(s.duration for s in self.find(name))

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready export; span starts are relative to the first span."""
        epoch = min((s.start for s in self.roots if s.start is not None), default=0.0)
        return {
            "schema": TRACE_SCHEMA_VERSION,
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "spans": [span.to_dict(epoch) for span in self.roots],
        }

    def dump_json(self, path: Union[str, Path]) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2) + "\n")


class _NullSpan:
    """The do-nothing span handle shared by every disabled call site."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    @property
    def duration(self) -> float:
        return 0.0


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Tracing disabled: every operation is a no-op.

    ``span()`` hands back the one preallocated :data:`_NULL_SPAN` — no
    object creation, no clock read — so instrumented code can always
    write ``with ctx.tracer.span(...):`` without an enabled check.
    """

    enabled = False

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def count(self, name: str, delta: float = 1) -> None:
        pass

    @property
    def counters(self) -> Dict[str, float]:
        return {}

    def to_dict(self) -> Dict[str, Any]:
        return {"schema": TRACE_SCHEMA_VERSION, "counters": {}, "spans": []}


#: The shared disabled tracer; the pipeline default.
NULL_TRACER = NullTracer()
