"""The schema-versioned ``BENCH_codegen.json`` perf-trajectory record.

``repro bench`` runs the paper's six models under the five ISA presets
(neon / sse4 / avx2 / rvv / avx512) for all three generators and
serialises one record
per (model, ISA, generator) cell: wall-clock generation time, modelled
VM cost, SIMD coverage and selection-history statistics.  The file is
the first point of the repo's performance trajectory — future perf PRs
regenerate it and compare against the committed baseline.

The schema is versioned (``"schema": 1``) and validated by
:func:`validate_bench_record`; docs/observability.md documents every
field.
"""

from __future__ import annotations

import datetime
import json
from pathlib import Path
from typing import Any, Dict, List, Mapping, Union

#: bump when the record layout changes (tools grep for the old value)
#: 2: per-cell ``peak_live_bytes`` + top-level ``seed``/``memory_budget``
BENCH_SCHEMA_VERSION = 2

#: the record discriminator, so mixed artifact directories stay sortable
BENCH_KIND = "BENCH_codegen"

#: required keys of one result row and their types
_ROW_FIELDS: Dict[str, type] = {
    "model": str,
    "arch": str,
    "isa": str,
    "generator": str,
    "compiler": str,
    "codegen_wall_s": float,
    "vm_cycles_per_step": float,
    "vm_seconds": float,
    "iterations": int,
    "simd_coverage_pct": float,
    "data_bytes": int,
    "peak_live_bytes": int,
    "metrics": dict,
}


def build_bench_record(
    matrix: Mapping[str, Mapping[str, Mapping[str, Any]]],
    isa_of_arch: Mapping[str, str],
    compiler_name: str,
    steps: int,
    quick: bool,
    seed: int = 0,
    memory_budget: Any = None,
) -> Dict[str, Any]:
    """Assemble the record from a (arch -> model -> generator -> RunResult)
    matrix produced by :func:`repro.bench.trajectory.bench_matrix`."""
    from repro.bench.runner import improvement

    rows: List[Dict[str, Any]] = []
    vs_simulink: List[float] = []
    vs_dfsynth: List[float] = []
    for arch_name, models in matrix.items():
        for model_name, results in models.items():
            for generator_name, run in results.items():
                rows.append({
                    "model": model_name,
                    "arch": arch_name,
                    "isa": isa_of_arch[arch_name],
                    "generator": generator_name,
                    "compiler": run.compiler,
                    "codegen_wall_s": round(run.codegen_seconds, 6),
                    "vm_cycles_per_step": round(run.cycles_per_step, 3),
                    "vm_seconds": round(run.seconds, 9),
                    "iterations": run.iterations,
                    "simd_coverage_pct": round(run.simd_coverage, 3),
                    "data_bytes": run.data_bytes,
                    "peak_live_bytes": getattr(run, "peak_live_bytes", 0),
                    "metrics": dict(run.metrics),
                })
            if {"simulink_coder", "hcg"} <= set(results):
                vs_simulink.append(
                    improvement(results["simulink_coder"].seconds, results["hcg"].seconds)
                )
            if {"dfsynth", "hcg"} <= set(results):
                vs_dfsynth.append(
                    improvement(results["dfsynth"].seconds, results["hcg"].seconds)
                )

    summary: Dict[str, Any] = {"cells": len(rows)}
    if vs_simulink:
        summary["hcg_vs_simulink_pct"] = {
            "min": round(min(vs_simulink), 2), "max": round(max(vs_simulink), 2),
        }
    if vs_dfsynth:
        summary["hcg_vs_dfsynth_pct"] = {
            "min": round(min(vs_dfsynth), 2), "max": round(max(vs_dfsynth), 2),
        }
    return {
        "schema": BENCH_SCHEMA_VERSION,
        "kind": BENCH_KIND,
        "created_at": datetime.datetime.now(datetime.timezone.utc)
                      .isoformat(timespec="seconds"),
        "tool": "repro bench",
        "quick": quick,
        "compiler": compiler_name,
        "steps": steps,
        "seed": seed,
        "memory_budget": memory_budget,
        "archs": {name: isa_of_arch[name] for name in matrix},
        "results": rows,
        "summary": summary,
    }


def _check_finite_json(value: Any, where: str) -> None:
    """Reject values that break strict JSON: NaN/Inf floats (at any
    nesting depth) and non-JSON types.  ``json.dumps`` would serialise
    NaN as the invalid literal ``NaN``, producing a baseline file no
    strict parser can read back."""
    if isinstance(value, bool) or value is None or isinstance(value, (str, int)):
        return
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            raise ValueError(f"{where} must be a finite number, got {value!r}")
        return
    if isinstance(value, (list, tuple)):
        for index, item in enumerate(value):
            _check_finite_json(item, f"{where}[{index}]")
        return
    if isinstance(value, dict):
        for key, item in value.items():
            if not isinstance(key, str):
                raise ValueError(f"{where} key {key!r} must be a string")
            _check_finite_json(item, f"{where}.{key}")
        return
    raise ValueError(
        f"{where} must be a JSON value, got {type(value).__name__}"
    )


def validate_bench_record(payload: Any) -> None:
    """Raise ``ValueError`` unless ``payload`` is a well-formed record.

    Called by :func:`write_bench_record` before anything touches disk —
    a malformed record (wrong types, NaN timings, non-JSON metrics) is
    an error at write time, never a silently bad ``BENCH_codegen.json``
    — and by downstream tooling before trusting a committed baseline.
    """
    if not isinstance(payload, dict):
        raise ValueError(f"bench record must be an object, got {type(payload).__name__}")
    if payload.get("schema") != BENCH_SCHEMA_VERSION:
        raise ValueError(
            f"bench schema {payload.get('schema')!r} != {BENCH_SCHEMA_VERSION}"
        )
    if payload.get("kind") != BENCH_KIND:
        raise ValueError(f"bench kind {payload.get('kind')!r} != {BENCH_KIND!r}")
    for key in ("created_at", "compiler"):
        if not isinstance(payload.get(key), str):
            raise ValueError(f"bench record field {key!r} must be a string")
    if not isinstance(payload.get("quick"), bool):
        raise ValueError("bench record field 'quick' must be a boolean")
    if not isinstance(payload.get("seed", 0), int) or isinstance(
        payload.get("seed", 0), bool
    ):
        raise ValueError("bench record field 'seed' must be an integer")
    budget = payload.get("memory_budget")
    if budget is not None and (not isinstance(budget, int) or isinstance(budget, bool)):
        raise ValueError(
            "bench record field 'memory_budget' must be an integer or null"
        )
    if not isinstance(payload.get("archs"), dict) or not payload["archs"]:
        raise ValueError("bench record field 'archs' must be a non-empty object")
    rows = payload.get("results")
    if not isinstance(rows, list) or not rows:
        raise ValueError("bench record field 'results' must be a non-empty array")
    for index, row in enumerate(rows):
        if not isinstance(row, dict):
            raise ValueError(f"results[{index}] must be an object")
        for field, kind in _ROW_FIELDS.items():
            if field not in row:
                raise ValueError(f"results[{index}] missing field {field!r}")
            value = row[field]
            if kind is float and isinstance(value, int) and not isinstance(value, bool):
                continue  # whole-number floats serialise as ints
            if not isinstance(value, kind) or isinstance(value, bool):
                raise ValueError(
                    f"results[{index}].{field} must be {kind.__name__}, "
                    f"got {type(value).__name__}"
                )
            _check_finite_json(value, f"results[{index}].{field}")
    summary = payload.get("summary")
    if not isinstance(summary, dict):
        raise ValueError("bench record field 'summary' must be an object")
    _check_finite_json(summary, "summary")


def write_bench_record(record: Dict[str, Any], path: Union[str, Path]) -> Path:
    """Validate and write the record; returns the path written.

    ``allow_nan=False`` backstops the validator: even a field the
    schema check does not type-constrain can never reach disk as the
    invalid-JSON ``NaN``/``Infinity`` literals.
    """
    validate_bench_record(record)
    path = Path(path)
    path.write_text(
        json.dumps(record, indent=2, sort_keys=False, allow_nan=False) + "\n"
    )
    return path
