"""The stable names of every span and counter the pipeline emits.

Instrumented code references these constants instead of string
literals, so the names documented in docs/observability.md cannot
silently drift from what the pipeline actually emits.  Like the
diagnostic codes (repro.diagnostics), the names are part of the tool's
interface: never rename one, only append.
"""

from __future__ import annotations

from typing import Any, Dict


class SPANS:
    """Span names, in pipeline order (see docs/observability.md)."""

    #: whole generator.generate() call (root)
    GENERATE = "generate"
    #: model validation + schedule + buffer layout (CodegenContext setup)
    MODEL_PARSE = "model.parse"
    #: actor classification + batch grouping (§3.1)
    DISPATCH = "dispatch"
    #: one Algorithm 1 selection (per intensive actor)
    ALG1_SELECT = "alg1.select"
    #: one candidate pre-calculation inside a selection
    ALG1_CANDIDATE = "alg1.candidate"
    #: one Algorithm 2 SIMD mapping (per batch group)
    ALG2_GROUP = "alg2.group"
    #: the iterative mapping loop of one group (matcher build + rounds)
    ALG2_MATCH = "alg2.match"
    #: candidate-pool + trie construction of the indexed matcher
    ALG2_MATCH_INDEX = "alg2.match.index"
    #: one conventional (scalar) translation of a batch group
    ALG2_FALLBACK = "alg2.fallback"
    #: composition: state updates + program assembly
    COMPOSE = "compose"
    #: the variable-reuse pass over the emitted IR
    REUSE = "reuse"
    #: one whole differential-verification run (repro verify)
    VERIFY = "verify"
    #: one (model, generator, arch) verification case inside a run
    VERIFY_CASE = "verify.case"
    #: one shrinker reduction of a failing fuzz case
    VERIFY_SHRINK = "verify.shrink"
    #: one request served by the codegen service (repro.api.generate)
    SERVICE_GENERATE = "service.generate"
    #: the codegen-cache key computation + lookup inside a request
    SERVICE_CACHE = "service.cache"
    #: one coalesced daemon batch (emitted synchronously after the
    #: executor pass; the ``ms`` attribute carries the pass duration)
    SERVER_BATCH = "server.batch"
    #: one hot config reload (validate + atomic swap, event loop only)
    SERVER_RELOAD = "server.reload"
    #: memory-budget tile planning of one batch group (repro.sched)
    SCHED_PLAN = "sched.plan"
    #: one whole partition search (repro.sched.partition)
    SCHED_PARTITION = "sched.partition"
    #: one evaluated partition candidate (cut + backend assignment)
    SCHED_PARTITION_CANDIDATE = "sched.partition.candidate"


class COUNTERS:
    """Counter names (see docs/observability.md for semantics)."""

    # Algorithm 1 — adaptive pre-calculated implementation selection
    ALG1_HISTORY_HITS = "alg1.history_hits"
    ALG1_HISTORY_MISSES = "alg1.history_misses"
    ALG1_CANDIDATES_MEASURED = "alg1.candidates_measured"
    ALG1_CANDIDATES_FAULTED = "alg1.candidates_faulted"
    # Algorithm 2 — iterative dataflow-graph mapping
    ALG2_GROUPS_VECTORIZED = "alg2.groups_vectorized"
    ALG2_GROUPS_SCALAR = "alg2.groups_scalar"
    ALG2_NODES_MAPPED = "alg2.nodes_mapped"
    ALG2_SUBGRAPHS_ENUMERATED = "alg2.subgraphs_enumerated"
    ALG2_INSTRUCTIONS_MATCHED = "alg2.instructions_matched"
    ALG2_TAIL_PREDICATED = "alg2.tail_predicated"
    ALG2_GROUPS_MASKED_NARROW = "alg2.groups_masked_narrow"
    # Algorithm 2 — subgraph matcher (indexed fast path + naive baseline)
    ALG2_MATCH_WALL_S = "alg2.match.wall_s"
    ALG2_MATCH_ROUNDS = "alg2.match.rounds"
    ALG2_MATCH_TRIE_HITS = "alg2.match.trie_hits"
    ALG2_MATCH_TRIE_MISSES = "alg2.match.trie_misses"
    ALG2_MATCH_MEMO_HITS = "alg2.match.memo_hits"
    ALG2_MATCH_MEMO_MISSES = "alg2.match.memo_misses"
    ALG2_MATCH_INVALIDATED = "alg2.match.invalidated"
    # Translation validation — differential runner / fuzzer / shrinker
    VERIFY_CASES_RUN = "verify.cases_run"
    VERIFY_CASES_FAILED = "verify.cases_failed"
    VERIFY_MODELS_FUZZED = "verify.models_fuzzed"
    VERIFY_SHRINK_STEPS = "verify.shrink_steps"
    # Algorithm 1 timing cache (the fine layer over the history)
    ALG1_TIMING_HITS = "alg1.timing_hits"
    ALG1_TIMING_MISSES = "alg1.timing_misses"
    # Codegen service — content-addressed result cache
    CACHE_HITS = "cache.hit"
    CACHE_MISSES = "cache.miss"
    CACHE_EVICTIONS = "cache.evict"
    CACHE_WRITE_FAILURES = "cache.write_failed"
    # Codegen service — parallel executor
    POOL_TASKS_SUBMITTED = "pool.task.submitted"
    POOL_TASKS_COMPLETED = "pool.task.completed"
    POOL_TASKS_FAILED = "pool.task.failed"
    POOL_TASKS_TIMEOUT = "pool.task.timeout"
    # Codegen daemon (repro serve) — admission, shedding, resilience
    SERVER_REQUESTS_ACCEPTED = "server.request.accepted"
    SERVER_REQUESTS_OK = "server.request.ok"
    SERVER_REQUESTS_FAILED = "server.request.failed"
    SERVER_SHED_QUEUE_FULL = "server.shed.queue_full"
    SERVER_SHED_EXPIRED = "server.shed.expired"
    SERVER_SHED_DRAINING = "server.shed.draining"
    SERVER_DEADLINE_CANCELLED = "server.deadline.cancelled"
    SERVER_RETRY_ATTEMPTS = "server.retry.attempts"
    SERVER_RETRY_EXHAUSTED = "server.retry.exhausted"
    SERVER_BREAKER_TRIPS = "server.breaker.trips"
    SERVER_BREAKER_RECOVERIES = "server.breaker.recoveries"
    SERVER_BREAKER_DEMOTED = "server.breaker.demoted"
    SERVER_DRAINED = "server.drained"
    # Codegen daemon — multi-tenant admission (X-Tenant)
    SERVER_SHED_TENANT_RATE = "server.shed.tenant_rate"
    SERVER_SHED_TENANT_QUOTA = "server.shed.tenant_quota"
    # Codegen daemon — request coalescing onto one executor pass
    SERVER_BATCH_DISPATCHED = "server.batch.dispatched"
    SERVER_BATCH_REQUESTS = "server.batch.requests"
    SERVER_BATCH_ISOLATED = "server.batch.isolated"
    # Codegen daemon — hot config reload (SIGHUP / POST /admin/reload)
    SERVER_RELOAD_OK = "server.reload.ok"
    SERVER_RELOAD_REJECTED = "server.reload.rejected"
    # Memory-aware scheduler (repro.sched, CodegenOptions.memory_budget)
    SCHED_GROUPS_PLANNED = "sched.groups_planned"
    SCHED_GROUPS_TILED = "sched.groups_tiled"
    SCHED_GROUPS_DEMOTED = "sched.groups_demoted"
    SCHED_TILES_EMITTED = "sched.tiles_emitted"
    SCHED_SPILL_SLOTS = "sched.spill_slots"
    SCHED_SPILL_REUSED = "sched.spill_reused"
    # Cost-driven partitioner (repro.sched.partition)
    SCHED_PARTITION_CANDIDATES = "sched.partition.candidates"


def generation_metrics(generator: Any) -> Dict[str, Any]:
    """Counters of the last ``generate()`` call of any generator.

    Works uniformly across the three generators: tracer counters when a
    tracer was attached, selection-history statistics when the generator
    keeps a history (HCG), and the diagnostics count all generators
    expose.  The result feeds the ``metrics`` column of a bench record.
    """
    metrics: Dict[str, Any] = {}
    tracer = getattr(generator, "tracer", None)
    if tracer is not None and getattr(tracer, "enabled", False):
        metrics.update(tracer.counters)
    history = getattr(generator, "history", None)
    if history is not None:
        metrics["history.hits"] = history.hits
        metrics["history.misses"] = history.misses
        metrics["history.hit_rate"] = history.hit_rate
        metrics["history.entries"] = len(history)
    diagnostics = getattr(generator, "last_diagnostics", None)
    if diagnostics is not None:
        metrics["diagnostics.count"] = len(diagnostics)
    return metrics
