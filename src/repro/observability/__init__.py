"""Observability: codegen tracing, phase metrics and bench records.

The paper's claims are quantitative (Table 2 / Figure 5), so the
reproduction needs machine-readable performance data: *where* does
generation time go, *which* Algorithm 1 / Algorithm 2 decisions were
made, and how do the three generators compare across targets.  This
package provides the three layers:

* :mod:`repro.observability.tracer` — a lightweight span tracer
  (context-manager API, monotonic clocks, JSON export) threaded through
  the generation pipeline via :class:`~repro.codegen.common.CodegenContext`;
* :mod:`repro.observability.metrics` — the stable names of every span
  and counter the pipeline emits (documented in docs/observability.md);
* :mod:`repro.observability.benchfile` — the schema-versioned
  ``BENCH_codegen.json`` record written by ``repro bench``, the repo's
  perf-trajectory baseline.
"""

from repro.observability.benchfile import (
    BENCH_SCHEMA_VERSION,
    build_bench_record,
    validate_bench_record,
    write_bench_record,
)
from repro.observability.metrics import (
    COUNTERS,
    SPANS,
    generation_metrics,
)
from repro.observability.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
)

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "COUNTERS",
    "NULL_TRACER",
    "NullTracer",
    "SPANS",
    "Span",
    "Tracer",
    "build_bench_record",
    "generation_metrics",
    "validate_bench_record",
    "write_bench_record",
]
