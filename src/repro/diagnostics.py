"""Structured diagnostics for the fault-tolerant generation pipeline.

HCG's promise is that it always produces *working* embedded C — SIMD
where the synthesis succeeds, scalar otherwise.  Faults met along the
way (a kernel implementation that crashes during Algorithm 1's
pre-calculation, a batch group Algorithm 2 cannot map, a corrupt
selection-history file) therefore do not abort generation by default:
each one becomes a :class:`Diagnostic` with a stable code, and the
generator degrades to the next rung of the fallback lattice (general
implementation, conventional scalar translation).

Two policies decide what happens to the collected diagnostics:

* ``permissive`` — degrade and continue; the caller inspects the
  collector afterwards;
* ``strict`` — still degrade (so the collector describes every fault of
  the run, not just the first), but raise :class:`~repro.errors.CodegenError`
  at the end of generation if any error-severity diagnostic was
  recorded.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, Iterable, Iterator, List, Optional, Tuple


class Severity(enum.IntEnum):
    """How bad one diagnostic is (ordered, so max() gives the worst)."""

    INFO = 0      # expected, recorded for observability (e.g. profitability demotion)
    WARNING = 1   # recovered locally; the result is unaffected
    ERROR = 2     # a fault forced a degradation of the generation strategy

    def label(self) -> str:
        return self.name.lower()


#: Stable diagnostic codes: code -> (default severity, short description).
#: Codes are part of the tool's interface (scripts grep for them); never
#: renumber an existing code, only append.
DIAGNOSTIC_CODES: Dict[str, Tuple[Severity, str]] = {
    # 2xx — code generation degradations
    "HCG201": (Severity.ERROR, "Algorithm 2 mapping failed; batch group demoted to scalar translation"),
    "HCG202": (Severity.WARNING, "candidate implementation failed during pre-calculation; excluded"),
    "HCG203": (Severity.ERROR, "Algorithm 1 selection failed; general implementation used"),
    "HCG204": (Severity.WARNING, "stale history entry dropped (kernel id no longer in library)"),
    "HCG211": (Severity.INFO, "batch group demoted: too narrow or below the profitability threshold"),
    "HCG212": (Severity.ERROR, "parallel generation task failed; fault isolated to its cell"),
    "HCG213": (Severity.ERROR, "parallel generation task exceeded its timeout; cell degraded"),
    # 22x — memory-aware group scheduling (repro.sched, memory_budget)
    "HCG221": (Severity.WARNING, "batch group demoted to scalar: even a single-node tile overflows the memory budget"),
    "HCG222": (Severity.INFO, "batch group tiled to fit the memory budget"),
    # 23x — cost-driven multi-backend partitioning (repro.sched.partition)
    "HCG231": (Severity.INFO, "partitioner kept the model on a single backend (no profitable cut)"),
    # 3xx — selection-history / cache recovery
    "HCG301": (Severity.WARNING, "corrupt history file quarantined and rebuilt"),
    "HCG302": (Severity.WARNING, "malformed history entry skipped"),
    "HCG303": (Severity.WARNING, "history schema mismatch; file quarantined and rebuilt"),
    "HCG304": (Severity.WARNING, "history file could not be persisted or locked"),
    "HCG305": (Severity.WARNING, "corrupt cache entry removed; treated as a miss"),
    "HCG306": (Severity.WARNING, "cache entry could not be persisted or evicted"),
    "HCG307": (Severity.WARNING, "cache write failed (disk full or read-only root); entry dropped, treated as a miss"),
    # 4xx — translation validation (repro.verify)
    "HCG401": (Severity.ERROR, "generated program diverges from the model's reference semantics"),
    "HCG402": (Severity.ERROR, "HCG output diverges from a baseline generator"),
    "HCG403": (Severity.ERROR, "generation or execution crashed during verification"),
    "HCG404": (Severity.WARNING, "fuzz failure minimized and written to quarantine"),
    "HCG405": (Severity.WARNING, "shrinker budget exhausted; repro case may not be minimal"),
    # 5xx — codegen service daemon (repro serve, docs/robustness.md)
    "HCG501": (Severity.ERROR, "request deadline exceeded; work cancelled"),
    "HCG502": (Severity.WARNING, "request shed: queue at capacity (backpressure)"),
    "HCG503": (Severity.WARNING, "request shed: deadline expired before a worker started it"),
    "HCG504": (Severity.WARNING, "circuit breaker open; request demoted to the fallback generator"),
    "HCG505": (Severity.ERROR, "request worker crashed; fault isolated to the request"),
    "HCG506": (Severity.WARNING, "transient fault; request attempt retried with backoff"),
    "HCG507": (Severity.ERROR, "retry budget exhausted; last fault surfaced"),
    "HCG508": (Severity.WARNING, "daemon draining; request rejected"),
    # 51x — multi-tenant admission, request batching, hot config reload
    "HCG511": (Severity.WARNING, "request shed: tenant rate limit exceeded (token bucket empty)"),
    "HCG512": (Severity.WARNING, "request shed: tenant queue/concurrency quota exhausted"),
    "HCG513": (Severity.WARNING, "batchmate fault isolated; request re-served individually"),
    "HCG514": (Severity.WARNING, "config reload rejected; previous configuration retained"),
    "HCG515": (Severity.INFO, "configuration hot-reloaded; new limits in force"),
}

#: Recognised collector policies.
POLICIES = ("strict", "permissive")


@dataclasses.dataclass(frozen=True)
class Diagnostic:
    """One recorded fault or degradation event."""

    code: str                      # stable code, e.g. "HCG201"
    severity: Severity
    message: str                   # human-readable, instance-specific
    actor: Optional[str] = None    # actor (or group member list) involved
    location: Optional[str] = None # file path or pipeline stage

    def format(self) -> str:
        where = f" [{self.actor}]" if self.actor else ""
        at = f" ({self.location})" if self.location else ""
        return f"{self.code} {self.severity.label()}{where}: {self.message}{at}"


class DiagnosticsCollector:
    """Accumulates diagnostics for one generation run.

    Threaded through :class:`~repro.codegen.common.CodegenContext` so
    every pipeline stage (dispatch, Algorithm 1, Algorithm 2, history)
    reports into the same place.
    """

    def __init__(self, policy: str = "strict") -> None:
        if policy not in POLICIES:
            raise ValueError(f"unknown policy {policy!r}; choose from {POLICIES}")
        self.policy = policy
        self._diagnostics: List[Diagnostic] = []

    # ------------------------------------------------------------------
    @property
    def permissive(self) -> bool:
        return self.policy == "permissive"

    def report(
        self,
        code: str,
        message: str,
        *,
        actor: Optional[str] = None,
        location: Optional[str] = None,
        severity: Optional[Severity] = None,
    ) -> Diagnostic:
        """Record one event under a stable code and return it."""
        if severity is None:
            if code not in DIAGNOSTIC_CODES:
                raise ValueError(f"unknown diagnostic code {code!r}")
            severity = DIAGNOSTIC_CODES[code][0]
        diagnostic = Diagnostic(code, severity, message, actor, location)
        self._diagnostics.append(diagnostic)
        return diagnostic

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        self._diagnostics.extend(diagnostics)

    def drain(self) -> List[Diagnostic]:
        """Remove and return everything collected (for re-homing into
        another collector, e.g. history load-time events into a run)."""
        drained, self._diagnostics = self._diagnostics, []
        return drained

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._diagnostics)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self._diagnostics)

    @property
    def diagnostics(self) -> Tuple[Diagnostic, ...]:
        return tuple(self._diagnostics)

    @property
    def errors(self) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self._diagnostics if d.severity is Severity.ERROR)

    @property
    def warnings(self) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self._diagnostics if d.severity is Severity.WARNING)

    def has_errors(self) -> bool:
        return any(d.severity is Severity.ERROR for d in self._diagnostics)

    def codes(self) -> Tuple[str, ...]:
        return tuple(d.code for d in self._diagnostics)

    # ------------------------------------------------------------------
    def finalize(self) -> None:
        """End-of-run policy application.

        Permissive: no-op.  Strict: raise ``CodegenError`` carrying every
        collected diagnostic if any error-severity event was recorded.
        """
        if self.permissive or not self.has_errors():
            return
        from repro.errors import CodegenError

        errors = self.errors
        raise CodegenError(
            f"strict mode: {len(errors)} error diagnostic(s) collected "
            f"({', '.join(sorted({d.code for d in errors}))}); "
            f"rerun permissive to degrade instead",
            diagnostics=self.diagnostics,
        )

    # ------------------------------------------------------------------
    def summary_table(self) -> str:
        """An aligned text table of every diagnostic, for CLI output."""
        if not self._diagnostics:
            return "diagnostics: none"
        rows = [
            (d.code, d.severity.label(), d.actor or "-", d.message)
            for d in sorted(self._diagnostics, key=lambda d: (-d.severity, d.code))
        ]
        headers = ("code", "severity", "actor", "message")
        widths = [
            max(len(headers[i]), max(len(row[i]) for row in rows))
            for i in range(3)
        ]
        lines = [
            "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers[:3])) + "  message",
            "  ".join("-" * widths[i] for i in range(3)) + "  -------",
        ]
        for row in rows:
            lines.append(
                "  ".join(row[i].ljust(widths[i]) for i in range(3)) + f"  {row[3]}"
            )
        counts = {}
        for d in self._diagnostics:
            counts[d.severity.label()] = counts.get(d.severity.label(), 0) + 1
        total = ", ".join(f"{n} {label}" for label, n in sorted(counts.items()))
        lines.append(f"({len(self._diagnostics)} diagnostics: {total})")
        return "\n".join(lines)
