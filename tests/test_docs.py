"""The documentation must stay consistent: tools/check_docs.py is the
CI gate; these tests run it and probe that it actually detects rot."""

import importlib.util
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO / "tools" / "check_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestCheckDocs:
    def test_repo_docs_are_clean(self):
        # the same invocation CI uses
        result = subprocess.run(
            [sys.executable, str(REPO / "tools" / "check_docs.py")],
            capture_output=True, text=True,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "OK" in result.stdout

    def test_every_diagnostic_code_is_documented(self):
        checker = load_checker()
        from repro.diagnostics import DIAGNOSTIC_CODES

        assert checker.registered_codes() >= set(DIAGNOSTIC_CODES)
        assert checker.check_diagnostic_codes() == []

    def test_detects_broken_link(self, monkeypatch, tmp_path):
        checker = load_checker()
        bad = tmp_path / "bad.md"
        bad.write_text("see [missing](no_such_file.md) and [ok](bad.md)\n")
        monkeypatch.setattr(checker, "DOC_FILES", [bad])
        problems = checker.check_links()
        assert len(problems) == 1 and "no_such_file.md" in problems[0]

    def test_detects_broken_anchor(self, monkeypatch, tmp_path):
        checker = load_checker()
        target = tmp_path / "target.md"
        target.write_text("# Real Heading\n")
        doc = tmp_path / "doc.md"
        doc.write_text(
            "[good](target.md#real-heading) [bad](target.md#ghost-section)\n"
        )
        monkeypatch.setattr(checker, "DOC_FILES", [doc])
        problems = checker.check_links()
        assert len(problems) == 1 and "ghost-section" in problems[0]

    def test_ignores_links_in_code_blocks(self, monkeypatch, tmp_path):
        checker = load_checker()
        doc = tmp_path / "doc.md"
        doc.write_text(
            "```\n[example](not_a_real_file.md)\n```\n"
            "and `[inline](also_fake.md)` too\n"
        )
        monkeypatch.setattr(checker, "DOC_FILES", [doc])
        assert checker.check_links() == []

    def test_anchor_slugging(self):
        checker = load_checker()
        assert checker.anchor_of("The `repro bench` CLI!") == "the-repro-bench-cli"
