"""End-to-end parallel/caching acceptance tests (ISSUE criteria).

* ``jobs=4`` output is byte-identical to ``jobs=1``;
* a warm-cache bench rerun answers every cell from the cache
  (hits == cells, misses == 0) — the counter-level form of the
  "warm rerun is >= 3x faster" acceptance bar;
* a crashed verification cell degrades to HCG212 without taking the
  session down.
"""

import pytest

from repro.api import CodegenOptions, GenerateRequest, generate_many
from repro.bench.models import fir_model, lowpass_model
from repro.bench.trajectory import bench_matrix, quick_suite
from repro.compiler.toolchain import get_compiler
from repro.service.service import CodegenService


def batch_requests():
    options = CodegenOptions(policy="permissive", use_cache=False)
    return [
        GenerateRequest(model=model, generator=generator, options=options)
        for model in (fir_model(8), lowpass_model(8))
        for generator in ("simulink_coder", "dfsynth", "hcg")
    ]


class TestJobsDeterminism:
    def test_jobs4_byte_identical_to_jobs1(self):
        serial = generate_many(batch_requests(), jobs=1)
        parallel = generate_many(batch_requests(), jobs=4)
        assert [r.c_source for r in parallel] == [r.c_source for r in serial]
        assert [(r.model, r.generator) for r in parallel] == [
            (r.model, r.generator) for r in serial
        ]

    def test_failure_surfaces_deterministically(self):
        requests = batch_requests()
        bad = GenerateRequest(
            model="models/does_not_exist.xml",
            options=CodegenOptions(use_cache=False),
        )
        requests.insert(2, bad)
        with pytest.raises(Exception) as serial_exc:
            generate_many(requests, jobs=1)
        with pytest.raises(Exception) as parallel_exc:
            generate_many(requests, jobs=4)
        assert type(parallel_exc.value) is type(serial_exc.value)


class TestWarmBenchMatrix:
    def bench(self, tmp_path, jobs):
        options = CodegenOptions(
            policy="strict", cache_dir=str(tmp_path), use_cache=True
        )
        service = CodegenService.from_options(options)
        matrix = bench_matrix(
            {"FIR": quick_suite()["FIR"]}, get_compiler("gcc"),
            archs=("arm_a72",), steps=1, jobs=jobs, service=service,
        )
        return matrix, service.stats()["codegen_cache"]

    def test_warm_rerun_hits_every_cell(self, tmp_path):
        cold_matrix, cold = self.bench(tmp_path, jobs=1)
        warm_matrix, warm = self.bench(tmp_path, jobs=2)
        cells = len(cold_matrix["arm_a72"]["FIR"])  # one per generator
        assert cold["hits"] == 0 and cold["misses"] == cells
        # every cell answered from the cache: code generation skipped,
        # which is where the >= 3x warm-rerun speedup comes from
        assert warm["hits"] == cells and warm["misses"] == 0
        from repro.arch.presets import get_architecture
        from repro.ir.cemit import emit_c

        iset = get_architecture("arm_a72").instruction_set
        for generator, cold_cell in cold_matrix["arm_a72"]["FIR"].items():
            warm_cell = warm_matrix["arm_a72"]["FIR"][generator]
            assert warm_cell.metrics["service.from_cache"] == 1
            assert emit_c(warm_cell.program, iset) == emit_c(
                cold_cell.program, iset
            )

    def test_warm_skips_codegen_time(self, tmp_path):
        _, _ = self.bench(tmp_path, jobs=1)
        warm_matrix, _ = self.bench(tmp_path, jobs=1)
        for cell in warm_matrix["arm_a72"]["FIR"].values():
            assert cell.metrics["service.from_cache"] == 1


class TestVerifySessionFaultIsolation:
    def test_crashed_cell_degrades_to_hcg212(self, monkeypatch, tmp_path):
        from repro.verify import service as verify_service

        real_verify_model = verify_service.verify_model

        def crashing_verify_model(model, arch_name, **kwargs):
            if model.name == "FIR":
                raise RuntimeError("induced cell crash")
            return real_verify_model(model, arch_name, **kwargs)

        monkeypatch.setattr(
            verify_service, "verify_model", crashing_verify_model
        )
        result = verify_service.run_session(
            models={"FIR": fir_model(8), "LowPass": lowpass_model(8)},
            archs=("arm_a72",), generators=("hcg",),
            quarantine=tmp_path / "q", steps=1, jobs=2,
        )
        # the healthy cell still verified; the crash became a diagnostic
        assert len(result.reports) == 1
        assert result.reports[0].ok
        assert not result.ok
        codes = [d.code for d in result.diagnostics]
        assert codes.count("HCG212") == 1

    def test_session_jobs2_matches_serial(self, tmp_path):
        from repro.verify.service import run_session

        kwargs = dict(
            models={"FIR": fir_model(8)}, archs=("arm_a72",),
            generators=("hcg",), steps=1,
        )
        serial = run_session(quarantine=tmp_path / "q1", jobs=1, **kwargs)
        parallel = run_session(quarantine=tmp_path / "q2", jobs=2, **kwargs)
        assert serial.ok and parallel.ok
        assert [r.summary() for r in parallel.reports] == [
            r.summary() for r in serial.reports
        ]
