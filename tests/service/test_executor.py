"""ParallelExecutor semantics: determinism, fault isolation, counters."""

import threading
import time

import pytest

from repro.observability.tracer import Tracer
from repro.service.executor import (
    MAX_JOBS,
    ParallelExecutor,
    TaskOutcome,
    TaskTimeoutError,
    effective_jobs,
)


class TestEffectiveJobs:
    def test_explicit_value_passes_through(self):
        assert effective_jobs(3) == 3

    @pytest.mark.parametrize("requested", [None, 0])
    def test_auto_picks_at_least_one(self, requested):
        assert 1 <= effective_jobs(requested) <= MAX_JOBS

    def test_ceiling_applies(self):
        assert effective_jobs(10**6) == MAX_JOBS


class TestDeterministicOrder:
    def test_outcomes_in_input_order_regardless_of_finish_order(self):
        release = threading.Event()

        def task(index):
            if index == 0:
                release.wait(timeout=5)  # first task finishes last
            else:
                release.set()
            return index * 10

        outcomes = ParallelExecutor(jobs=4).map(task, [0, 1, 2, 3])
        assert [o.value for o in outcomes] == [0, 10, 20, 30]
        assert [o.index for o in outcomes] == [0, 1, 2, 3]

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_serial_and_parallel_agree(self, jobs):
        outcomes = ParallelExecutor(jobs=jobs).map(
            lambda item: item.upper(), ["a", "b", "c"]
        )
        assert [o.value for o in outcomes] == ["A", "B", "C"]

    def test_labels_come_from_the_callback(self):
        outcomes = ParallelExecutor(jobs=2).map(
            len, ["xx", "yyy"], label=lambda index, item: f"cell:{item}"
        )
        assert [o.label for o in outcomes] == ["cell:xx", "cell:yyy"]


class TestFaultIsolation:
    def failing_map(self, jobs):
        def task(index):
            if index % 2:
                raise RuntimeError(f"boom {index}")
            return index

        return ParallelExecutor(jobs=jobs).map(task, list(range(4)))

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_one_failure_does_not_poison_the_pool(self, jobs):
        outcomes = self.failing_map(jobs)
        assert [o.ok for o in outcomes] == [True, False, True, False]
        assert outcomes[2].value == 2
        assert isinstance(outcomes[1].error, RuntimeError)

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_raise_first_is_deterministic(self, jobs):
        outcomes = self.failing_map(jobs)
        with pytest.raises(RuntimeError, match="boom 1"):
            ParallelExecutor.raise_first(outcomes)

    def test_raise_first_passes_clean_runs(self):
        ParallelExecutor.raise_first([TaskOutcome(index=0, label="x", value=1)])


class TestTaskTimeout:
    """task_timeout_s: a hung cell degrades (HCG213) instead of hanging
    the batch; the stuck thread's late result is discarded."""

    def slow_then_fast(self, release):
        def task(index):
            if index == 1:
                release.wait(timeout=10)  # hangs until the test releases
            return index * 10

        return task

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_timed_out_cell_degrades_without_stalling_the_batch(self, jobs):
        release = threading.Event()
        try:
            outcomes = ParallelExecutor(jobs=jobs, timeout_s=0.05).map(
                self.slow_then_fast(release), [0, 1, 2]
            )
        finally:
            release.set()
        assert [o.ok for o in outcomes] == [True, False, True]
        assert outcomes[0].value == 0 and outcomes[2].value == 20
        error = outcomes[1].error
        assert isinstance(error, TaskTimeoutError)
        assert error.label == "1"
        assert error.timeout_s == 0.05

    def test_late_result_is_discarded(self):
        release = threading.Event()
        outcomes = ParallelExecutor(jobs=1, timeout_s=0.05).map(
            self.slow_then_fast(release), [0, 1]
        )
        release.set()  # let the stuck thread finish *after* the timeout
        time.sleep(0.2)
        # the outcome object returned to the caller never sees the
        # late-arriving value — the thread wrote to a discarded object
        assert outcomes[1].value is None
        assert isinstance(outcomes[1].error, TaskTimeoutError)

    def test_fast_tasks_unaffected_by_the_budget(self):
        outcomes = ParallelExecutor(jobs=2, timeout_s=5.0).map(
            lambda item: item + 1, [1, 2, 3]
        )
        assert [o.value for o in outcomes] == [2, 3, 4]

    def test_timeout_counter(self):
        tracer = Tracer()
        release = threading.Event()
        try:
            ParallelExecutor(jobs=1, tracer=tracer, timeout_s=0.05).map(
                self.slow_then_fast(release), [0, 1, 2]
            )
        finally:
            release.set()
        assert tracer.counters["pool.task.timeout"] == 1
        assert tracer.counters["pool.task.failed"] == 1

    def test_options_validate_the_budget(self):
        from repro.api import CodegenOptions

        with pytest.raises(ValueError, match="task_timeout_s"):
            CodegenOptions(task_timeout_s=0)
        assert CodegenOptions(task_timeout_s=2.5).task_timeout_s == 2.5

    def test_service_threads_the_budget_through(self):
        from repro.api import CodegenOptions
        from repro.service.service import CodegenService

        options = CodegenOptions(use_cache=False, task_timeout_s=1.5)
        service = CodegenService.from_options(options)
        assert service.task_timeout_s == 1.5


class TestPoolCounters:
    def test_submitted_completed_failed(self):
        tracer = Tracer()

        def task(index):
            if index == 2:
                raise ValueError("bad cell")
            return index

        ParallelExecutor(jobs=2, tracer=tracer).map(task, list(range(5)))
        assert tracer.counters["pool.task.submitted"] == 5
        assert tracer.counters["pool.task.completed"] == 4
        assert tracer.counters["pool.task.failed"] == 1


class TestElapsed:
    def test_outcomes_carry_wall_clock_elapsed(self):
        outcomes = ParallelExecutor(jobs=2).map(
            lambda n: time.sleep(n) or n, [0.0, 0.05])
        assert outcomes[0].elapsed_s >= 0.0
        assert outcomes[1].elapsed_s >= 0.05

    def test_timed_path_also_measures(self):
        outcomes = ParallelExecutor(jobs=1, timeout_s=5.0).map(
            lambda n: n, [1, 2])
        assert all(o.elapsed_s >= 0.0 for o in outcomes)
        assert all(o.ok for o in outcomes)

    def test_timed_out_task_reports_zero_elapsed(self):
        release = threading.Event()

        def hang(_):
            release.wait(5.0)

        outcomes = ParallelExecutor(jobs=1, timeout_s=0.05).map(hang, [0])
        release.set()
        assert isinstance(outcomes[0].error, TaskTimeoutError)
        assert outcomes[0].elapsed_s == 0.0
